file(REMOVE_RECURSE
  "libficon.a"
)
