# Empty compiler generated dependencies file for ficon.
# This may be replaced when dependencies are built.
