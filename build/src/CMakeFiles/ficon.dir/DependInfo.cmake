
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/mcnc.cpp" "src/CMakeFiles/ficon.dir/circuit/mcnc.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/circuit/mcnc.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/ficon.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/CMakeFiles/ficon.dir/circuit/parser.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/circuit/parser.cpp.o.d"
  "/root/repo/src/congestion/approx.cpp" "src/CMakeFiles/ficon.dir/congestion/approx.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/congestion/approx.cpp.o.d"
  "/root/repo/src/congestion/congestion_map.cpp" "src/CMakeFiles/ficon.dir/congestion/congestion_map.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/congestion/congestion_map.cpp.o.d"
  "/root/repo/src/congestion/cutlines.cpp" "src/CMakeFiles/ficon.dir/congestion/cutlines.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/congestion/cutlines.cpp.o.d"
  "/root/repo/src/congestion/fixed_grid.cpp" "src/CMakeFiles/ficon.dir/congestion/fixed_grid.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/congestion/fixed_grid.cpp.o.d"
  "/root/repo/src/congestion/irregular_grid.cpp" "src/CMakeFiles/ficon.dir/congestion/irregular_grid.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/congestion/irregular_grid.cpp.o.d"
  "/root/repo/src/congestion/path_prob.cpp" "src/CMakeFiles/ficon.dir/congestion/path_prob.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/congestion/path_prob.cpp.o.d"
  "/root/repo/src/core/floorplanner.cpp" "src/CMakeFiles/ficon.dir/core/floorplanner.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/core/floorplanner.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/ficon.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/svg.cpp" "src/CMakeFiles/ficon.dir/exp/svg.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/exp/svg.cpp.o.d"
  "/root/repo/src/exp/table.cpp" "src/CMakeFiles/ficon.dir/exp/table.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/exp/table.cpp.o.d"
  "/root/repo/src/floorplan/polish.cpp" "src/CMakeFiles/ficon.dir/floorplan/polish.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/floorplan/polish.cpp.o.d"
  "/root/repo/src/floorplan/sequence_pair.cpp" "src/CMakeFiles/ficon.dir/floorplan/sequence_pair.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/floorplan/sequence_pair.cpp.o.d"
  "/root/repo/src/floorplan/shape.cpp" "src/CMakeFiles/ficon.dir/floorplan/shape.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/floorplan/shape.cpp.o.d"
  "/root/repo/src/floorplan/slicing.cpp" "src/CMakeFiles/ficon.dir/floorplan/slicing.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/floorplan/slicing.cpp.o.d"
  "/root/repo/src/numeric/factorial.cpp" "src/CMakeFiles/ficon.dir/numeric/factorial.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/numeric/factorial.cpp.o.d"
  "/root/repo/src/route/two_pin.cpp" "src/CMakeFiles/ficon.dir/route/two_pin.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/route/two_pin.cpp.o.d"
  "/root/repo/src/router/global_router.cpp" "src/CMakeFiles/ficon.dir/router/global_router.cpp.o" "gcc" "src/CMakeFiles/ficon.dir/router/global_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
