# Empty compiler generated dependencies file for model_compare.
# This may be replaced when dependencies are built.
