file(REMOVE_RECURSE
  "CMakeFiles/ficon_cli.dir/ficon_cli.cpp.o"
  "CMakeFiles/ficon_cli.dir/ficon_cli.cpp.o.d"
  "ficon_cli"
  "ficon_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficon_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
