# Empty compiler generated dependencies file for ficon_cli.
# This may be replaced when dependencies are built.
