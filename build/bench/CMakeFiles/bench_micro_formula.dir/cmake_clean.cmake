file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_formula.dir/bench_micro_formula.cpp.o"
  "CMakeFiles/bench_micro_formula.dir/bench_micro_formula.cpp.o.d"
  "bench_micro_formula"
  "bench_micro_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
