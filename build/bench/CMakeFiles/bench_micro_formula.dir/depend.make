# Empty dependencies file for bench_micro_formula.
# This may be replaced when dependencies are built.
