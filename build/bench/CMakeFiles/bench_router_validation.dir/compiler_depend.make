# Empty compiler generated dependencies file for bench_router_validation.
# This may be replaced when dependencies are built.
