file(REMOVE_RECURSE
  "CMakeFiles/bench_router_validation.dir/bench_router_validation.cpp.o"
  "CMakeFiles/bench_router_validation.dir/bench_router_validation.cpp.o.d"
  "bench_router_validation"
  "bench_router_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
