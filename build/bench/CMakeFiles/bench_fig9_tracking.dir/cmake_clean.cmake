file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tracking.dir/bench_fig9_tracking.cpp.o"
  "CMakeFiles/bench_fig9_tracking.dir/bench_fig9_tracking.cpp.o.d"
  "bench_fig9_tracking"
  "bench_fig9_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
