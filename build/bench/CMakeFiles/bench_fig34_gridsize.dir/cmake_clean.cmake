file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34_gridsize.dir/bench_fig34_gridsize.cpp.o"
  "CMakeFiles/bench_fig34_gridsize.dir/bench_fig34_gridsize.cpp.o.d"
  "bench_fig34_gridsize"
  "bench_fig34_gridsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_gridsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
