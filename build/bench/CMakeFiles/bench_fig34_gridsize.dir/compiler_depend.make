# Empty compiler generated dependencies file for bench_fig34_gridsize.
# This may be replaced when dependencies are built.
