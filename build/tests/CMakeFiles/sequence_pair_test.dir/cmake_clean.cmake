file(REMOVE_RECURSE
  "CMakeFiles/sequence_pair_test.dir/sequence_pair_test.cpp.o"
  "CMakeFiles/sequence_pair_test.dir/sequence_pair_test.cpp.o.d"
  "sequence_pair_test"
  "sequence_pair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
