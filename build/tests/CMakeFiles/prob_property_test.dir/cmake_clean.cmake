file(REMOVE_RECURSE
  "CMakeFiles/prob_property_test.dir/prob_property_test.cpp.o"
  "CMakeFiles/prob_property_test.dir/prob_property_test.cpp.o.d"
  "prob_property_test"
  "prob_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prob_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
