# Empty dependencies file for prob_property_test.
# This may be replaced when dependencies are built.
