# Empty compiler generated dependencies file for formula3_test.
# This may be replaced when dependencies are built.
