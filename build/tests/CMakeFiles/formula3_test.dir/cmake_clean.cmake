file(REMOVE_RECURSE
  "CMakeFiles/formula3_test.dir/formula3_test.cpp.o"
  "CMakeFiles/formula3_test.dir/formula3_test.cpp.o.d"
  "formula3_test"
  "formula3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
