file(REMOVE_RECURSE
  "CMakeFiles/cutlines_test.dir/cutlines_test.cpp.o"
  "CMakeFiles/cutlines_test.dir/cutlines_test.cpp.o.d"
  "cutlines_test"
  "cutlines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cutlines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
