# Empty compiler generated dependencies file for cutlines_test.
# This may be replaced when dependencies are built.
