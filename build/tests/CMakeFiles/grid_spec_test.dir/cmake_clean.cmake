file(REMOVE_RECURSE
  "CMakeFiles/grid_spec_test.dir/grid_spec_test.cpp.o"
  "CMakeFiles/grid_spec_test.dir/grid_spec_test.cpp.o.d"
  "grid_spec_test"
  "grid_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
