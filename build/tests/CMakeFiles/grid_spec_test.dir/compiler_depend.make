# Empty compiler generated dependencies file for grid_spec_test.
# This may be replaced when dependencies are built.
