# Empty dependencies file for floorplanner_test.
# This may be replaced when dependencies are built.
