file(REMOVE_RECURSE
  "CMakeFiles/floorplanner_test.dir/floorplanner_test.cpp.o"
  "CMakeFiles/floorplanner_test.dir/floorplanner_test.cpp.o.d"
  "floorplanner_test"
  "floorplanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
