# Empty compiler generated dependencies file for prob_cell_test.
# This may be replaced when dependencies are built.
