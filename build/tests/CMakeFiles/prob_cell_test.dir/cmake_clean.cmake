file(REMOVE_RECURSE
  "CMakeFiles/prob_cell_test.dir/prob_cell_test.cpp.o"
  "CMakeFiles/prob_cell_test.dir/prob_cell_test.cpp.o.d"
  "prob_cell_test"
  "prob_cell_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prob_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
