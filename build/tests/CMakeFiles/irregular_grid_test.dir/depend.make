# Empty dependencies file for irregular_grid_test.
# This may be replaced when dependencies are built.
