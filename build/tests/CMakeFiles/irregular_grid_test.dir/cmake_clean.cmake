file(REMOVE_RECURSE
  "CMakeFiles/irregular_grid_test.dir/irregular_grid_test.cpp.o"
  "CMakeFiles/irregular_grid_test.dir/irregular_grid_test.cpp.o.d"
  "irregular_grid_test"
  "irregular_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
