file(REMOVE_RECURSE
  "CMakeFiles/fixed_grid_test.dir/fixed_grid_test.cpp.o"
  "CMakeFiles/fixed_grid_test.dir/fixed_grid_test.cpp.o.d"
  "fixed_grid_test"
  "fixed_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
