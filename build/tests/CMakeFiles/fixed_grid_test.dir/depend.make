# Empty dependencies file for fixed_grid_test.
# This may be replaced when dependencies are built.
