// Using your own circuits: write a netlist in the native text format, load
// it back, floorplan it, and print the result — the round trip a downstream
// user follows to run the model on real data. Also demonstrates the
// per-temperature snapshot hook.
#include <iostream>
#include <sstream>

#include "ficon.hpp"

int main() {
  // A small hand-written circuit: a CPU-ish cluster. In a real flow this
  // text lives in a file and is read with ficon::load_netlist(path);
  // GSRC .blocks/.nets pairs load via ficon::load_gsrc(path).
  const char* text = R"(
# toy SoC block cluster (dimensions in um)
circuit toy_soc
module cpu    400 300
module l2     500 250
module dsp    300 300
module ddrphy 600 150
module noc    200 200
module pcie   350 180

net clk    cpu@0.5,1.0 l2 dsp noc
net membus cpu@1.0,0.5 l2@0.0,0.5 ddrphy
net dma    dsp noc pcie
net io     pcie@0.5,0.0 ddrphy@0.5,1.0
net snoop  cpu l2 noc@0.5,0.5
)";
  std::istringstream in(text);
  const ficon::Netlist netlist = ficon::parse_netlist(in);
  std::cout << "loaded '" << netlist.name() << "': "
            << netlist.module_count() << " modules, " << netlist.net_count()
            << " nets\n";

  ficon::FloorplanOptions options;
  options.objective.gamma = 0.5;
  options.objective.model = ficon::CongestionModelKind::kIrregularGrid;
  options.objective.irregular.grid_w = 20.0;
  options.objective.irregular.grid_h = 20.0;
  options.effort = 1.0;

  const ficon::Floorplanner planner(netlist, options);
  // Watch the annealer converge, one line per temperature step.
  const ficon::FloorplanSolution sol =
      planner.run([](const ficon::TemperatureSnapshot& snap) {
        if (snap.step % 10 == 0) {
          std::cout << "  step " << snap.step << "  T=" << snap.temperature
                    << "  area=" << snap.metrics.area / 1e6 << " mm^2"
                    << "  cost=" << snap.metrics.cost << '\n';
        }
      });

  std::cout << "final expression: " << sol.expression.to_string() << '\n';
  std::cout << "final area " << sol.metrics.area / 1e6 << " mm^2, wire "
            << sol.metrics.wirelength / 1e3 << " mm, IR congestion "
            << sol.metrics.congestion << '\n';
  for (std::size_t m = 0; m < netlist.module_count(); ++m) {
    const ficon::Rect& r = sol.placement.module_rects[m];
    std::cout << "  " << netlist.modules()[m].name << " at (" << r.xlo << ", "
              << r.ylo << ")"
              << (sol.placement.rotated[m] ? " rotated" : "") << '\n';
  }
  return 0;
}
