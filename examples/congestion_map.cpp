// Export congestion maps of a floorplan as CSV (for plotting), SVG (for
// looking at) and ASCII.
//
// Packs a circuit quickly (area+wire objective), then evaluates BOTH
// congestion models on the same placement and writes:
//   <prefix>_fixed.csv     fixed-grid map (x,y,congestion)
//   <prefix>_irregular.csv IR-grid map (xlo,ylo,xhi,yhi,flow,density)
//   <prefix>_fixed.svg     placement + fixed-grid heat overlay
//   <prefix>_irregular.svg placement + IR density overlay + cut lines
// and prints the fixed-grid ASCII heat map plus both solution costs.
//
//   ./congestion_map [circuit] [fixed_pitch_um] [out_prefix]
#include <fstream>
#include <iostream>
#include <string>

#include "ficon.hpp"

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "ami33";
  const double pitch = argc > 2 ? std::stod(argv[2]) : 50.0;
  const std::string prefix = argc > 3 ? argv[3] : "congestion";

  const ficon::Netlist netlist = ficon::make_mcnc(circuit);
  ficon::FloorplanOptions options;
  options.effort = 0.4;
  const ficon::FloorplanSolution sol =
      ficon::Floorplanner(netlist, options).run();
  const auto nets = ficon::decompose_to_two_pin(netlist, sol.placement);
  std::cout << "placement: " << sol.metrics.area / 1e6 << " mm^2, "
            << nets.size() << " two-pin nets\n";

  const ficon::FixedGridModel fixed(
      ficon::FixedGridParams{pitch, pitch, 0.10});
  const ficon::CongestionMap fixed_map =
      fixed.evaluate(nets, sol.placement.chip);
  {
    std::ofstream csv(prefix + "_fixed.csv");
    fixed_map.write_csv(csv);
  }
  std::cout << "fixed-grid model  (" << pitch << "x" << pitch << " um): "
            << fixed_map.grid().nx() << "x" << fixed_map.grid().ny()
            << " cells, top-10% cost "
            << fixed_map.top_fraction_cost(0.10) << " -> " << prefix
            << "_fixed.csv\n";

  ficon::IrregularGridParams ir_params;
  ir_params.grid_w = 30.0;
  ir_params.grid_h = 30.0;
  const ficon::IrregularGridModel irregular(ir_params);
  const ficon::IrregularCongestionMap ir_map =
      irregular.evaluate(nets, sol.placement.chip);
  {
    std::ofstream csv(prefix + "_irregular.csv");
    ir_map.write_csv(csv);
  }
  std::cout << "irregular-grid model: " << ir_map.nx() << "x" << ir_map.ny()
            << " IR-cells, top-10%-area cost "
            << ir_map.top_fraction_cost(0.10) << " -> " << prefix
            << "_irregular.csv\n";

  {
    std::ofstream svg(prefix + "_fixed.svg");
    ficon::write_svg(svg, netlist, sol.placement, fixed_map);
  }
  {
    std::ofstream svg(prefix + "_irregular.svg");
    ficon::write_svg(svg, netlist, sol.placement, ir_map);
  }
  std::cout << "wrote " << prefix << "_fixed.svg and " << prefix
            << "_irregular.svg\n";

  std::cout << "\nfixed-grid heat map:\n";
  fixed_map.write_ascii(std::cout);
  return 0;
}
