// Experiment 1 in miniature: compare a plain area+wire floorplanner
// against one that additionally optimizes the Irregular-Grid congestion
// estimate, judging both with the fine fixed-grid referee.
//
//   ./routability_driven [circuit] [seeds]
#include <iostream>
#include <string>

#include "ficon.hpp"

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "ami33";
  const int seeds = argc > 2 ? std::stoi(argv[2]) : 3;

  const ficon::Netlist netlist = ficon::make_mcnc(circuit);
  const ficon::FixedGridModel judge = ficon::make_judging_model(10.0);

  ficon::FloorplanOptions baseline;
  baseline.effort = 0.4;
  baseline.objective.alpha = 1.0;
  baseline.objective.beta = 1.0;

  ficon::FloorplanOptions congestion_driven = baseline;
  congestion_driven.objective.gamma = 0.4;
  congestion_driven.objective.model =
      ficon::CongestionModelKind::kIrregularGrid;
  congestion_driven.objective.irregular.grid_w = 30.0;
  congestion_driven.objective.irregular.grid_h = 30.0;

  std::cout << "circuit " << circuit << ", " << seeds
            << " seeds per floorplanner\n";
  const ficon::SeedSweep base =
      ficon::run_seed_sweep(netlist, baseline, seeds, judge);
  const ficon::SeedSweep cgt =
      ficon::run_seed_sweep(netlist, congestion_driven, seeds, judge);

  ficon::TextTable table({"objective", "area (mm^2)", "wire (mm)",
                          "judging cgt", "time (s)"});
  table.add_row({"area+wire", ficon::fmt_fixed(base.mean_area() / 1e6, 3),
                 ficon::fmt_fixed(base.mean_wirelength() / 1e3, 1),
                 ficon::fmt_fixed(base.mean_judging(), 4),
                 ficon::fmt_fixed(base.mean_seconds(), 2)});
  table.add_row({"+ IR congestion",
                 ficon::fmt_fixed(cgt.mean_area() / 1e6, 3),
                 ficon::fmt_fixed(cgt.mean_wirelength() / 1e3, 1),
                 ficon::fmt_fixed(cgt.mean_judging(), 4),
                 ficon::fmt_fixed(cgt.mean_seconds(), 2)});
  table.print(std::cout);

  const double improvement =
      (base.mean_judging() - cgt.mean_judging()) / base.mean_judging();
  std::cout << "judged congestion improvement: "
            << ficon::fmt_percent(improvement) << " %\n";
  std::cout << "area penalty: "
            << ficon::fmt_percent((cgt.mean_area() - base.mean_area()) /
                                  base.mean_area())
            << " %\n";
  return 0;
}
