// Model shoot-out on a single placement: evaluate the fixed-size-grid
// model across pitches and the Irregular-Grid model across strategies,
// reporting cell counts, costs and evaluation times — the intuition behind
// Experiment 3 without the annealing loop.
//
//   ./model_compare [circuit]
#include <iostream>
#include <string>

#include "ficon.hpp"

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "ami33";
  const ficon::Netlist netlist = ficon::make_mcnc(circuit);

  ficon::FloorplanOptions options;
  options.effort = 0.4;
  const ficon::FloorplanSolution sol =
      ficon::Floorplanner(netlist, options).run();
  const auto nets = ficon::decompose_to_two_pin(netlist, sol.placement);
  const ficon::Rect chip = sol.placement.chip;
  std::cout << "circuit " << circuit << ": chip " << chip.width() / 1e3
            << " x " << chip.height() / 1e3 << " mm, " << nets.size()
            << " two-pin nets\n\n";

  ficon::TextTable table(
      {"model", "cells", "cost", "eval time (ms)"});

  for (const double pitch : {200.0, 100.0, 50.0, 25.0, 10.0}) {
    const ficon::FixedGridModel model(
        ficon::FixedGridParams{pitch, pitch, 0.10});
    ficon::Stopwatch sw;
    const ficon::CongestionMap map = model.evaluate(nets, chip);
    const double ms = sw.milliseconds();
    table.add_row({"fixed " + ficon::fmt_fixed(pitch, 0) + "um",
                   std::to_string(map.grid().cell_count()),
                   ficon::fmt_general(map.top_fraction_cost(0.10), 4),
                   ficon::fmt_fixed(ms, 2)});
  }

  const auto ir_row = [&](ficon::IrEvalStrategy strategy, const char* name) {
    ficon::IrregularGridParams params;
    params.grid_w = 30.0;
    params.grid_h = 30.0;
    params.strategy = strategy;
    const ficon::IrregularGridModel model(params);
    ficon::Stopwatch sw;
    const ficon::IrregularCongestionMap map = model.evaluate(nets, chip);
    const double ms = sw.milliseconds();
    table.add_row({name, std::to_string(map.cell_count()),
                   ficon::fmt_general(map.top_fraction_cost(0.10), 4),
                   ficon::fmt_fixed(ms, 2)});
  };
  ir_row(ficon::IrEvalStrategy::kTheorem1, "IR-grid (Theorem 1)");
  ir_row(ficon::IrEvalStrategy::kExactPerRegion, "IR-grid (exact/region)");
  ir_row(ficon::IrEvalStrategy::kBandedExact, "IR-grid (banded exact)");

  table.print(std::cout);
  std::cout << "\nNote: fixed-grid and IR-grid costs are not directly\n"
               "comparable (per-cell probability sum vs per-area density);\n"
               "compare rows within each family.\n";
  return 0;
}
