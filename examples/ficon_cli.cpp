// ficon_cli — command-line floorplanner with congestion estimation.
//
// The tool a downstream user reaches for first: floorplan a circuit (from
// a file or the built-in MCNC-like suite), pick the objective and engine,
// and export results.
//
// Usage:
//   ficon_cli [options]
//     --circuit NAME|PATH    built-in name (ami33, ...) or .ficon/.blocks
//                            file (default ami33)
//     --engine polish|sp     floorplan representation (default polish)
//     --alpha A --beta B --gamma G   objective weights (default 1 1 0.4)
//     --model ir|fixed|none  congestion model in the objective (default ir)
//     --grid PITCH           congestion fine pitch in um (default 30)
//     --seed N               annealing seed (default 1)
//     --effort E             SA effort multiplier (default 1.0)
//     --svg PATH             write placement + IR heat map SVG
//     --csv PATH             write IR congestion map CSV
//     --heatmap PATH         write a standalone heat-map SVG of the
//                            objective model's flow field on the best
//                            floorplan (requires --model ir|fixed)
//     --heatmap-features PATH  write the per-cell feature dump for the
//                            same field (.jsonl extension = JSON Lines,
//                            anything else = CSV)
//     --save PATH            write the packed netlist in native format
//     --trace PATH           enable telemetry and write a JSONL trace
//                            (also honours the FICON_TRACE env knob)
//     --quiet                suppress the per-temperature trace
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "ficon.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "ficon_cli: " << message << " (see header comment for usage)\n";
  std::exit(2);
}

bool is_builtin(const std::string& name) {
  for (const ficon::McncSpec& spec : ficon::mcnc_specs()) {
    if (spec.name == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--quiet") {
      quiet = true;
      continue;
    }
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
      usage_error("bad argument '" + key + "'");
    }
    args[key.substr(2)] = argv[++i];
  }
  const auto get = [&](const std::string& key, const std::string& fallback) {
    const auto it = args.find(key);
    return it != args.end() ? it->second : fallback;
  };

  // --- Load the circuit.
  const std::string circuit = get("circuit", "ami33");
  ficon::Netlist netlist = [&] {
    if (is_builtin(circuit)) return ficon::make_mcnc(circuit);
    if (circuit.size() > 7 &&
        circuit.compare(circuit.size() - 7, 7, ".blocks") == 0) {
      return ficon::load_gsrc(circuit);
    }
    return ficon::load_netlist(circuit);
  }();
  std::cout << "circuit " << netlist.name() << ": " << netlist.module_count()
            << " modules, " << netlist.terminal_count() << " terminals, "
            << netlist.net_count() << " nets\n";

  // --- Configure.
  ficon::FloorplanOptions options;
  options.objective.alpha = std::stod(get("alpha", "1"));
  options.objective.beta = std::stod(get("beta", "1"));
  options.objective.gamma = std::stod(get("gamma", "0.4"));
  const std::string model = get("model", "ir");
  if (model == "ir") {
    options.objective.model = ficon::CongestionModelKind::kIrregularGrid;
    options.objective.irregular.grid_w = std::stod(get("grid", "30"));
    options.objective.irregular.grid_h = options.objective.irregular.grid_w;
  } else if (model == "fixed") {
    options.objective.model = ficon::CongestionModelKind::kFixedGrid;
    options.objective.fixed.grid_w = std::stod(get("grid", "100"));
    options.objective.fixed.grid_h = options.objective.fixed.grid_w;
  } else if (model == "none") {
    options.objective.model = ficon::CongestionModelKind::kNone;
    options.objective.gamma = 0.0;
  } else {
    usage_error("unknown model '" + model + "'");
  }
  const std::string engine = get("engine", "polish");
  if (engine == "sp") {
    options.engine = ficon::FloorplanEngine::kSequencePair;
  } else if (engine != "polish") {
    usage_error("unknown engine '" + engine + "'");
  }
  options.seed = std::stoull(get("seed", "1"));
  options.effort = std::stod(get("effort", "1.0"));

  // --trace PATH turns telemetry on for this process even when the
  // FICON_TRACE env knob is unset; the JSONL report goes to PATH.
  const std::string trace_path = get("trace", "");
  if (!trace_path.empty()) ficon::obs::set_trace_enabled(true);
  ficon::obs::set_thread_label("main");

  // --- Run.
  const ficon::Floorplanner planner(netlist, options);
  const ficon::FloorplanSolution sol = planner.run(
      quiet ? ficon::Floorplanner::SnapshotFn{}
            : [](const ficon::TemperatureSnapshot& s) {
                if (s.step % 10 == 0) {
                  std::cout << "  step " << s.step << "  area "
                            << s.metrics.area / 1e6 << " mm^2  cost "
                            << s.metrics.cost << '\n';
                }
              });

  const auto nets = ficon::decompose_to_two_pin(netlist, sol.placement);
  const double judged =
      ficon::make_judging_model(10.0).cost(nets, sol.placement.chip);
  const double deadspace =
      100.0 * (1.0 - netlist.total_module_area() / sol.metrics.area);
  std::cout << "area " << sol.metrics.area / 1e6 << " mm^2 (" << deadspace
            << "% deadspace), wire "
            << sol.metrics.wirelength / 1e3 << " mm, IR cgt "
            << sol.metrics.congestion << ", judging cgt " << judged << ", "
            << sol.seconds << " s\n";

  // --- Exports.
  if (const std::string path = get("svg", ""); !path.empty()) {
    ficon::IrregularGridParams params;
    params.grid_w = params.grid_h = std::stod(get("grid", "30"));
    std::ofstream svg(path);
    ficon::write_svg(svg, netlist, sol.placement,
                     ficon::IrregularGridModel(params).evaluate(
                         nets, sol.placement.chip));
    std::cout << "wrote " << path << '\n';
  }
  if (const std::string path = get("csv", ""); !path.empty()) {
    ficon::IrregularGridParams params;
    params.grid_w = params.grid_h = std::stod(get("grid", "30"));
    std::ofstream csv(path);
    ficon::IrregularGridModel(params)
        .evaluate(nets, sol.placement.chip)
        .write_csv(csv);
    std::cout << "wrote " << path << '\n';
  }
  const std::string heatmap_path = get("heatmap", "");
  const std::string features_path = get("heatmap-features", "");
  if (!heatmap_path.empty() || !features_path.empty()) {
    // The heat map renders the *objective's* flow field on the best
    // floorplan snapshot: same model, same parameters, same nets — the
    // per-cell values bit-match what the annealer optimized.
    const ficon::CongestionModel* cmodel = planner.congestion_model();
    if (cmodel == nullptr) {
      usage_error("--heatmap/--heatmap-features require --model ir|fixed");
    }
    const std::unique_ptr<ficon::FlowField> heat_field =
        cmodel->evaluate_field(nets, sol.placement.chip);
    ficon::HeatMapSource source(*heat_field, cmodel->name());
    source.set_nets(nets);
    if (!heatmap_path.empty()) {
      std::ofstream svg(heatmap_path);
      ficon::HeatMapOptions heat_options;
      heat_options.title = netlist.name() + " " +
                           std::string(cmodel->name()) + " congestion";
      source.write_svg(svg, heat_options);
      std::cout << "wrote " << heatmap_path << '\n';
    }
    if (!features_path.empty()) {
      std::ofstream features(features_path);
      const bool jsonl =
          features_path.size() > 6 &&
          features_path.compare(features_path.size() - 6, 6, ".jsonl") == 0;
      if (jsonl) {
        source.write_features_jsonl(features);
      } else {
        source.write_features_csv(features);
      }
      std::cout << "wrote " << features_path << '\n';
    }
  }
  if (const std::string path = get("save", ""); !path.empty()) {
    std::ofstream out(path);
    ficon::save_netlist(netlist, out);
    std::cout << "wrote " << path << '\n';
  }
  if (!trace_path.empty()) {
    const ficon::obs::TraceReport report = ficon::obs::capture();
    ficon::obs::write_summary(std::cout, report);
    std::ofstream trace(trace_path);
    ficon::obs::write_jsonl(trace, report, "ficon_cli");
    ficon::obs::write_solution_jsonl(trace, sol.metrics.area,
                                     sol.metrics.wirelength,
                                     sol.metrics.congestion,
                                     sol.metrics.cost, sol.seconds);
    std::cout << "wrote " << trace_path << '\n';
  } else if (ficon::obs::trace_enabled()) {
    ficon::obs::emit_env_trace(std::cout, "ficon_cli");
  }
  return 0;
}
