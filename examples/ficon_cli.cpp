// ficon_cli — command-line floorplanner with congestion estimation.
//
// The tool a downstream user reaches for first: floorplan a circuit (from
// a file or the built-in MCNC-like suite), pick the objective and engine,
// and export results. Doubles as the ficond client: with --connect it
// sends the same request to a running daemon instead of computing
// locally, and prints the same canonical result line — so
// `diff <(ficon_cli --json ...) <(ficon_cli --connect ...)` proves the
// service path bit-identical to the one-shot path.
//
// Usage:
//   ficon_cli [options]
//     --circuit NAME|PATH    built-in name (ami33, ...) or .ficon/.blocks
//                            file (default ami33)
//     --engine polish|sp     floorplan representation (default polish)
//     --alpha A --beta B --gamma G   objective weights (default 1 1 0.4)
//     --model ir|fixed|none  congestion model in the objective (default ir)
//     --grid PITCH           congestion fine pitch in um (default 30)
//     --seed N               annealing seed (default 1)
//     --effort E             SA effort multiplier (default 1.0)
//     --svg PATH             write placement + IR heat map SVG
//     --csv PATH             write IR congestion map CSV
//     --heatmap PATH         write a standalone heat-map SVG of the
//                            objective model's flow field on the best
//                            floorplan (requires --model ir|fixed)
//     --heatmap-features PATH  write the per-cell feature dump for the
//                            same field (.jsonl extension = JSON Lines,
//                            anything else = CSV)
//     --save PATH            write the packed netlist in native format
//     --trace PATH           enable telemetry and write a JSONL trace
//                            (also honours the FICON_TRACE env knob)
//     --quiet                suppress the per-temperature trace
//   Service mode (docs/SERVICE.md):
//     --json                 print one canonical JSON result line instead
//                            of the human summary (no exports)
//     --op evaluate|anneal   operation (default anneal; needs --json)
//     --seeds N              anneal seed fan-out (default 1; needs --json)
//     --expression EXPR      Polish expression for --op evaluate
//     --connect PATH         send the request to the ficond daemon at the
//                            Unix socket PATH (implies --json; --circuit
//                            is only the result-line label — the daemon
//                            owns the circuit)
//
// Exit codes: 0 success, 1 request finished non-ok (--json/--connect),
// 2 usage error, 3 cannot reach the daemon.
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define FICON_CLI_HAVE_SOCKETS 1
#endif

#include "ficon.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "ficon_cli: " << message
            << " (see header comment for usage)\n";
  std::exit(2);
}

double parse_double(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || errno != 0 || end != text.c_str() + text.size() ||
      !std::isfinite(v)) {
    usage_error("option '" + flag + "' needs a number, got '" + text + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || errno != 0 || end != text.c_str() + text.size() ||
      text[0] == '-') {
    usage_error("option '" + flag + "' needs a non-negative integer, got '" +
                text + "'");
  }
  return static_cast<std::uint64_t>(v);
}

int parse_count(const std::string& flag, const std::string& text, int lo,
                int hi) {
  const std::uint64_t v = parse_u64(flag, text);
  if (v < static_cast<std::uint64_t>(lo) ||
      v > static_cast<std::uint64_t>(hi)) {
    usage_error("option '" + flag + "' must be in [" + std::to_string(lo) +
                ", " + std::to_string(hi) + "], got '" + text + "'");
  }
  return static_cast<int>(v);
}

struct Cli {
  std::string circuit = "ami33";
  std::string engine = "polish";
  std::string model = "ir";
  double alpha = 1.0, beta = 1.0, gamma = 0.4;
  double grid = -1.0;  // sentinel: per-model default (ir 30, fixed 100)
  std::uint64_t seed = 1;
  double effort = 1.0;
  std::string op = "anneal";
  int seeds = 1;
  std::string expression;
  std::string connect;
  bool json = false;
  bool quiet = false;
  std::string svg, csv, heatmap, heatmap_features, save, trace;
};

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  bool service_knob = false;  // --op/--seeds/--expression seen
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet") {
      cli.quiet = true;
      continue;
    }
    if (arg == "--json") {
      cli.json = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      usage_error("unexpected argument '" + arg + "'");
    }
    // Every remaining option takes a value; a flag at the end of the
    // command line is "missing its value", not "unknown option".
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("option '" + arg + "' requires a value");
      return argv[++i];
    };
    if (arg == "--circuit") {
      cli.circuit = value();
    } else if (arg == "--engine") {
      cli.engine = value();
      if (cli.engine != "polish" && cli.engine != "sp") {
        usage_error("unknown engine '" + cli.engine + "'");
      }
    } else if (arg == "--model") {
      cli.model = value();
      if (cli.model != "ir" && cli.model != "fixed" && cli.model != "none") {
        usage_error("unknown model '" + cli.model + "'");
      }
    } else if (arg == "--alpha") {
      cli.alpha = parse_double(arg, value());
    } else if (arg == "--beta") {
      cli.beta = parse_double(arg, value());
    } else if (arg == "--gamma") {
      cli.gamma = parse_double(arg, value());
    } else if (arg == "--grid") {
      cli.grid = parse_double(arg, value());
      if (cli.grid <= 0.0) usage_error("--grid must be positive");
    } else if (arg == "--seed") {
      cli.seed = parse_u64(arg, value());
    } else if (arg == "--effort") {
      cli.effort = parse_double(arg, value());
      if (cli.effort <= 0.0) usage_error("--effort must be positive");
    } else if (arg == "--op") {
      cli.op = value();
      service_knob = true;
      if (cli.op != "evaluate" && cli.op != "anneal") {
        usage_error("unknown op '" + cli.op + "'");
      }
    } else if (arg == "--seeds") {
      cli.seeds = parse_count(arg, value(), 1, 4096);
      service_knob = true;
    } else if (arg == "--expression") {
      cli.expression = value();
      service_knob = true;
    } else if (arg == "--connect") {
      cli.connect = value();
      cli.json = true;
    } else if (arg == "--svg") {
      cli.svg = value();
    } else if (arg == "--csv") {
      cli.csv = value();
    } else if (arg == "--heatmap") {
      cli.heatmap = value();
    } else if (arg == "--heatmap-features") {
      cli.heatmap_features = value();
    } else if (arg == "--save") {
      cli.save = value();
    } else if (arg == "--trace") {
      cli.trace = value();
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (service_knob && !cli.json) {
    usage_error("--op/--seeds/--expression need --json or --connect");
  }
  if (cli.json && !(cli.svg.empty() && cli.csv.empty() &&
                    cli.heatmap.empty() && cli.heatmap_features.empty() &&
                    cli.save.empty() && cli.trace.empty())) {
    usage_error("exports are only available in the default output mode");
  }
  return cli;
}

/// The service request this invocation describes — the same construction
/// the protocol decoder applies, so one-shot, --json and --connect runs
/// are bit-identical by design.
ficon::service::Request build_request(const Cli& cli) {
  ficon::service::Request request;
  request.kind = cli.op == "evaluate"
                     ? ficon::service::RequestKind::kEvaluate
                     : ficon::service::RequestKind::kAnneal;
  request.objective.alpha = cli.alpha;
  request.objective.beta = cli.beta;
  request.objective.gamma = cli.gamma;
  if (cli.model == "ir") {
    request.objective.model = ficon::CongestionModelKind::kIrregularGrid;
    request.objective.irregular.grid_w = cli.grid > 0.0 ? cli.grid : 30.0;
    request.objective.irregular.grid_h = request.objective.irregular.grid_w;
  } else if (cli.model == "fixed") {
    request.objective.model = ficon::CongestionModelKind::kFixedGrid;
    request.objective.fixed.grid_w = cli.grid > 0.0 ? cli.grid : 100.0;
    request.objective.fixed.grid_h = request.objective.fixed.grid_w;
  } else {
    request.objective.model = ficon::CongestionModelKind::kNone;
    request.objective.gamma = 0.0;
  }
  request.engine = cli.engine == "sp"
                       ? ficon::FloorplanEngine::kSequencePair
                       : ficon::FloorplanEngine::kPolishExpression;
  request.seed = cli.seed;
  request.seeds = cli.seeds;
  request.effort = cli.effort;
  request.expression = cli.expression;
  return request;
}

int finish_json(const Cli& cli, const std::string& status,
                const std::vector<ficon::service::SeedResult>& seeds) {
  std::cout << ficon::service::encode_result_line(cli.op, cli.circuit,
                                                  status, seeds)
            << "\n";
  return status == "ok" ? 0 : 1;
}

int run_client(const Cli& cli) {
#if defined(FICON_CLI_HAVE_SOCKETS)
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "ficon_cli: socket: " << std::strerror(errno) << "\n";
    return 3;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cli.connect.size() >= sizeof(addr.sun_path)) {
    std::cerr << "ficon_cli: socket path too long\n";
    ::close(fd);
    return 3;
  }
  std::strncpy(addr.sun_path, cli.connect.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::cerr << "ficon_cli: connect " << cli.connect << ": "
              << std::strerror(errno) << "\n";
    ::close(fd);
    return 3;
  }
  const std::int64_t id = 1;
  if (!ficon::service::write_frame_fd(
          fd, ficon::service::encode_request(id, build_request(cli)))) {
    std::cerr << "ficon_cli: write to daemon failed\n";
    ::close(fd);
    return 3;
  }
  std::string payload;
  while (true) {
    const ficon::service::FrameStatus status =
        ficon::service::read_frame_fd(fd, &payload);
    if (status != ficon::service::FrameStatus::kOk) {
      std::cerr << "ficon_cli: daemon closed the connection\n";
      ::close(fd);
      return 3;
    }
    ficon::service::DecodedReply reply;
    std::string error;
    if (!ficon::service::decode_reply(payload, &reply, &error)) {
      std::cerr << "ficon_cli: bad reply: " << error << "\n";
      ::close(fd);
      return 3;
    }
    if (reply.id != id) continue;
    ::close(fd);
    if (!reply.error.empty()) {
      std::cerr << "ficon_cli: daemon: " << reply.error << "\n";
    }
    return finish_json(cli, reply.status, reply.seeds);
  }
#else
  (void)cli;
  std::cerr << "ficon_cli: --connect needs POSIX sockets\n";
  return 3;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  if (!cli.connect.empty()) return run_client(cli);

  // --- Load the circuit.
  const ficon::Netlist netlist = [&] {
    try {
      return ficon::service::load_circuit(cli.circuit);
    } catch (const std::exception& e) {
      std::cerr << "ficon_cli: cannot load '" << cli.circuit
                << "': " << e.what() << "\n";
      std::exit(2);
    }
  }();

  if (cli.json) {
    // One-shot service path: same Request, same shard code as the
    // daemon's executors — the canonical line diffs clean vs --connect.
    const ficon::service::Reply reply =
        ficon::service::run_oneshot(netlist, build_request(cli));
    if (!reply.error.empty()) {
      std::cerr << "ficon_cli: " << reply.error << "\n";
    }
    return finish_json(cli, ficon::service::to_string(reply.status),
                       reply.seeds);
  }

  std::cout << "circuit " << netlist.name() << ": " << netlist.module_count()
            << " modules, " << netlist.terminal_count() << " terminals, "
            << netlist.net_count() << " nets\n";

  // --- Configure. The legacy human-facing path drives the Floorplanner
  // directly; its options come from the same request construction the
  // service mode uses, so --seed here and "seed" over the wire agree.
  const ficon::FloorplanOptions options =
      ficon::service::to_floorplan_options(build_request(cli), cli.seed);

  // --trace PATH turns telemetry on for this process even when the
  // FICON_TRACE env knob is unset; the JSONL report goes to PATH.
  if (!cli.trace.empty()) ficon::obs::set_trace_enabled(true);
  ficon::obs::set_thread_label("main");

  // --- Run.
  const ficon::Floorplanner planner(netlist, options);
  const ficon::FloorplanSolution sol = planner.run(
      cli.quiet ? ficon::Floorplanner::SnapshotFn{}
                : [](const ficon::TemperatureSnapshot& s) {
                    if (s.step % 10 == 0) {
                      std::cout << "  step " << s.step << "  area "
                                << s.metrics.area / 1e6 << " mm^2  cost "
                                << s.metrics.cost << '\n';
                    }
                  });

  const auto nets = ficon::decompose_to_two_pin(netlist, sol.placement);
  const double judged =
      ficon::make_judging_model(10.0).cost(nets, sol.placement.chip);
  const double deadspace =
      100.0 * (1.0 - netlist.total_module_area() / sol.metrics.area);
  std::cout << "area " << sol.metrics.area / 1e6 << " mm^2 (" << deadspace
            << "% deadspace), wire "
            << sol.metrics.wirelength / 1e3 << " mm, IR cgt "
            << sol.metrics.congestion << ", judging cgt " << judged << ", "
            << sol.seconds << " s\n";

  // --- Exports.
  const double grid = cli.grid > 0.0 ? cli.grid : 30.0;
  if (!cli.svg.empty()) {
    ficon::IrregularGridParams params;
    params.grid_w = params.grid_h = grid;
    std::ofstream svg(cli.svg);
    ficon::write_svg(svg, netlist, sol.placement,
                     ficon::IrregularGridModel(params).evaluate(
                         nets, sol.placement.chip));
    std::cout << "wrote " << cli.svg << '\n';
  }
  if (!cli.csv.empty()) {
    ficon::IrregularGridParams params;
    params.grid_w = params.grid_h = grid;
    std::ofstream csv(cli.csv);
    ficon::IrregularGridModel(params)
        .evaluate(nets, sol.placement.chip)
        .write_csv(csv);
    std::cout << "wrote " << cli.csv << '\n';
  }
  if (!cli.heatmap.empty() || !cli.heatmap_features.empty()) {
    // The heat map renders the *objective's* flow field on the best
    // floorplan snapshot: same model, same parameters, same nets — the
    // per-cell values bit-match what the annealer optimized.
    const ficon::CongestionModel* cmodel = planner.congestion_model();
    if (cmodel == nullptr) {
      usage_error("--heatmap/--heatmap-features require --model ir|fixed");
    }
    const std::unique_ptr<ficon::FlowField> heat_field =
        cmodel->evaluate_field(nets, sol.placement.chip);
    ficon::HeatMapSource source(*heat_field, cmodel->name());
    source.set_nets(nets);
    if (!cli.heatmap.empty()) {
      std::ofstream svg(cli.heatmap);
      ficon::HeatMapOptions heat_options;
      heat_options.title = netlist.name() + " " +
                           std::string(cmodel->name()) + " congestion";
      source.write_svg(svg, heat_options);
      std::cout << "wrote " << cli.heatmap << '\n';
    }
    if (!cli.heatmap_features.empty()) {
      std::ofstream features(cli.heatmap_features);
      const std::string& path = cli.heatmap_features;
      const bool jsonl =
          path.size() > 6 &&
          path.compare(path.size() - 6, 6, ".jsonl") == 0;
      if (jsonl) {
        source.write_features_jsonl(features);
      } else {
        source.write_features_csv(features);
      }
      std::cout << "wrote " << path << '\n';
    }
  }
  if (!cli.save.empty()) {
    std::ofstream out(cli.save);
    ficon::save_netlist(netlist, out);
    std::cout << "wrote " << cli.save << '\n';
  }
  if (!cli.trace.empty()) {
    const ficon::obs::TraceReport report = ficon::obs::capture();
    ficon::obs::write_summary(std::cout, report);
    std::ofstream trace(cli.trace);
    ficon::obs::write_jsonl(trace, report, "ficon_cli");
    ficon::obs::write_solution_jsonl(trace, sol.metrics.area,
                                     sol.metrics.wirelength,
                                     sol.metrics.congestion,
                                     sol.metrics.cost, sol.seconds);
    std::cout << "wrote " << cli.trace << '\n';
  } else if (ficon::obs::trace_enabled()) {
    ficon::obs::emit_env_trace(std::cout, "ficon_cli");
  }
  return 0;
}
