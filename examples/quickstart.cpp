// Quickstart: floorplan an MCNC-like circuit with the Irregular-Grid
// congestion model in the loop, then print the solution metrics and an
// ASCII congestion heat map.
//
//   ./quickstart [circuit] [seed]     (default: ami33 1)
#include <iostream>
#include <string>

#include "ficon.hpp"

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "ami33";
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 1;

  // 1. Get a circuit. make_mcnc() deterministically regenerates the five
  //    MCNC-like benchmarks; load_netlist()/load_gsrc() read real files.
  const ficon::Netlist netlist = ficon::make_mcnc(circuit);
  std::cout << "circuit " << netlist.name() << ": " << netlist.module_count()
            << " modules, " << netlist.net_count() << " nets, "
            << netlist.pin_count() << " pins\n";

  // 2. Configure a routability-driven floorplanner: cost =
  //    alpha*Area + beta*Wire + gamma*Congestion(IR-grid).
  ficon::FloorplanOptions options;
  options.objective.alpha = 1.0;
  options.objective.beta = 1.0;
  options.objective.gamma = 1.0;
  options.objective.model = ficon::CongestionModelKind::kIrregularGrid;
  options.objective.irregular.grid_w = 30.0;
  options.objective.irregular.grid_h = 30.0;
  options.seed = seed;
  options.effort = 0.5;

  // 3. Anneal.
  const ficon::Floorplanner planner(netlist, options);
  const ficon::FloorplanSolution solution = planner.run();

  std::cout << "packed area      : " << solution.metrics.area / 1e6
            << " mm^2 (" << netlist.total_module_area() / 1e6
            << " mm^2 of modules)\n";
  std::cout << "wirelength (MST) : " << solution.metrics.wirelength / 1e3
            << " mm\n";
  std::cout << "IR-grid cgt cost : " << solution.metrics.congestion << '\n';
  std::cout << "anneal time      : " << solution.seconds << " s, "
            << solution.stats.temperature_steps << " temperature steps, "
            << solution.stats.moves_proposed << " moves\n";

  // 4. Judge the solution with the fine fixed-grid referee and draw it.
  const auto nets = ficon::decompose_to_two_pin(netlist, solution.placement);
  const ficon::FixedGridModel judge = ficon::make_judging_model(10.0);
  std::cout << "judging cgt cost : "
            << judge.cost(nets, solution.placement.chip) << '\n';

  std::cout << "\ncongestion heat map (fixed 10um judging grid):\n";
  judge.evaluate(nets, solution.placement.chip).write_ascii(std::cout);
  return 0;
}
