#include "route/two_pin.hpp"

#include <limits>

#include "util/check.hpp"

namespace ficon {

std::vector<TwoPinNet> mst_edges(const std::vector<Point>& pins,
                                 int source_net) {
  FICON_REQUIRE(pins.size() >= 2, "MST needs at least two pins");
  const std::size_t k = pins.size();
  std::vector<TwoPinNet> edges;
  edges.reserve(k - 1);

  // Prim's algorithm from pin 0.
  std::vector<bool> in_tree(k, false);
  std::vector<double> best_dist(k, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_parent(k, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < k; ++j) {
    best_dist[j] = manhattan(pins[0], pins[j]);
  }
  for (std::size_t added = 1; added < k; ++added) {
    std::size_t next = k;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree[j] && best_dist[j] < best) {
        best = best_dist[j];
        next = j;
      }
    }
    FICON_ASSERT(next < k, "Prim found no next vertex");
    in_tree[next] = true;
    edges.push_back(TwoPinNet{pins[best_parent[next]], pins[next],
                              source_net});
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree[j]) {
        const double d = manhattan(pins[next], pins[j]);
        if (d < best_dist[j]) {
          best_dist[j] = d;
          best_parent[j] = next;
        }
      }
    }
  }
  return edges;
}

std::vector<TwoPinNet> star_edges(const std::vector<Point>& pins,
                                  int source_net) {
  FICON_REQUIRE(pins.size() >= 2, "star needs at least two pins");
  // Componentwise median minimizes total Manhattan distance to the hub.
  std::vector<double> xs, ys;
  xs.reserve(pins.size());
  ys.reserve(pins.size());
  for (const Point& p : pins) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  const auto median = [](std::vector<double>& v) {
    const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
    std::nth_element(v.begin(), mid, v.end());
    return *mid;
  };
  const Point hub{median(xs), median(ys)};
  std::vector<TwoPinNet> edges;
  edges.reserve(pins.size());
  for (const Point& p : pins) {
    edges.push_back(TwoPinNet{hub, p, source_net});
  }
  return edges;
}

std::vector<TwoPinNet> decompose_to_two_pin(const Netlist& netlist,
                                            const Placement& placement,
                                            Decomposition method) {
  FICON_REQUIRE(placement.module_rects.size() == netlist.module_count(),
                "placement does not match netlist");
  std::vector<TwoPinNet> result;
  result.reserve(netlist.pin_count());  // upper bound: sum (degree - 1)
  std::vector<Point> pins;
  for (std::size_t n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.nets()[n];
    pins.clear();
    pins.reserve(net.pins.size());
    for (const Pin& pin : net.pins) {
      pins.push_back(placement.pin_position(pin));
    }
    auto edges = method == Decomposition::kMst
                     ? mst_edges(pins, static_cast<int>(n))
                     : star_edges(pins, static_cast<int>(n));
    result.insert(result.end(), edges.begin(), edges.end());
  }
  return result;
}

double mst_wirelength(const Netlist& netlist, const Placement& placement) {
  double total = 0.0;
  for (const TwoPinNet& e : decompose_to_two_pin(netlist, placement)) {
    total += e.manhattan_length();
  }
  return total;
}

double hpwl(const Netlist& netlist, const Placement& placement) {
  FICON_REQUIRE(placement.module_rects.size() == netlist.module_count(),
                "placement does not match netlist");
  double total = 0.0;
  for (const Net& net : netlist.nets()) {
    double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
    double ylo = xlo, yhi = -xlo;
    for (const Pin& pin : net.pins) {
      const Point p = placement.pin_position(pin);
      xlo = std::min(xlo, p.x);
      xhi = std::max(xhi, p.x);
      ylo = std::min(ylo, p.y);
      yhi = std::max(yhi, p.y);
    }
    total += (xhi - xlo) + (yhi - ylo);
  }
  return total;
}

}  // namespace ficon
