#include "route/two_pin.hpp"

#include <algorithm>
#include <limits>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace ficon {

namespace {

/// Componentwise median of the pin set — the star hub. nth_element is
/// deterministic for a fixed input, so every caller that feeds the same
/// pins gets the same hub (and therefore the same edges).
Point star_hub(std::span<const Point> pins, std::vector<double>& xs,
               std::vector<double>& ys) {
  xs.clear();
  ys.clear();
  xs.reserve(pins.size());
  ys.reserve(pins.size());
  for (const Point& p : pins) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  const auto median = [](std::vector<double>& v) {
    const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
    std::nth_element(v.begin(), mid, v.end());
    return *mid;
  };
  return Point{median(xs), median(ys)};
}

}  // namespace

void TwoPinDecomposer::mst_edges_into(std::span<const Point> pins,
                                      int source_net, TwoPinNet* out) {
  FICON_REQUIRE(pins.size() >= 2, "MST needs at least two pins");
  const std::size_t k = pins.size();

  // Prim's algorithm from pin 0, scratch arrays reused across nets.
  in_tree_.assign(k, 0);
  best_dist_.assign(k, std::numeric_limits<double>::infinity());
  best_parent_.assign(k, 0);
  in_tree_[0] = 1;
  for (std::size_t j = 1; j < k; ++j) {
    best_dist_[j] = manhattan(pins[0], pins[j]);
  }
  for (std::size_t added = 1; added < k; ++added) {
    std::size_t next = k;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree_[j] && best_dist_[j] < best) {
        best = best_dist_[j];
        next = j;
      }
    }
    FICON_ASSERT(next < k, "Prim found no next vertex");
    in_tree_[next] = 1;
    *out++ = TwoPinNet{pins[best_parent_[next]], pins[next], source_net};
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree_[j]) {
        const double d = manhattan(pins[next], pins[j]);
        if (d < best_dist_[j]) {
          best_dist_[j] = d;
          best_parent_[j] = next;
        }
      }
    }
  }
}

void TwoPinDecomposer::star_edges_into(std::span<const Point> pins,
                                       int source_net, TwoPinNet* out) {
  FICON_REQUIRE(pins.size() >= 2, "star needs at least two pins");
  const Point hub = star_hub(pins, xs_, ys_);
  for (const Point& p : pins) {
    *out++ = TwoPinNet{hub, p, source_net};
  }
}

void TwoPinDecomposer::append_mst_edges(const std::vector<Point>& pins,
                                        int source_net,
                                        std::vector<TwoPinNet>& out) {
  FICON_REQUIRE(pins.size() >= 2, "MST needs at least two pins");
  const std::size_t base = out.size();
  out.resize(base + pins.size() - 1);
  mst_edges_into(std::span<const Point>(pins), source_net, out.data() + base);
}

std::vector<TwoPinNet> mst_edges(const std::vector<Point>& pins,
                                 int source_net) {
  std::vector<TwoPinNet> edges;
  if (pins.size() >= 2) edges.reserve(pins.size() - 1);
  TwoPinDecomposer scratch;
  scratch.append_mst_edges(pins, source_net, edges);
  return edges;
}

std::vector<TwoPinNet> star_edges(const std::vector<Point>& pins,
                                  int source_net) {
  FICON_REQUIRE(pins.size() >= 2, "star needs at least two pins");
  std::vector<double> xs, ys;
  const Point hub = star_hub(pins, xs, ys);
  std::vector<TwoPinNet> edges;
  edges.reserve(pins.size());
  for (const Point& p : pins) {
    edges.push_back(TwoPinNet{hub, p, source_net});
  }
  return edges;
}

std::span<const TwoPinNet> TwoPinDecomposer::decompose(
    const Netlist& netlist, const Placement& placement,
    Decomposition method) {
  FICON_REQUIRE(placement.module_rects.size() == netlist.module_count(),
                "placement does not match netlist");
  if (cached_netlist_ != &netlist || cached_method_ != method) {
    // (Re)bind: flatten the netlist into the SoA view (pin CSR plus
    // module->net occurrence lists) and lay out per-net edge slices. Edge
    // counts depend only on net degrees, so each net's slice of nets_ is
    // stable for the lifetime of the binding.
    soa_ = std::make_unique<NetlistSoA>(netlist);
    edge_offset_.assign(1, 0);
    edge_offset_.reserve(soa_->net_count() + 1);
    for (std::size_t n = 0; n < soa_->net_count(); ++n) {
      const std::size_t k = soa_->degree(n);
      FICON_REQUIRE(k >= 2, "decomposition needs at least two pins per net");
      edge_offset_.push_back(edge_offset_.back() +
                             (method == Decomposition::kMst ? k - 1 : k));
    }
    cached_pins_.resize(soa_->pin_count());
    nets_.resize(edge_offset_.back());
    cached_netlist_ = &netlist;
    cached_method_ = method;
    pins_valid_ = false;
  }
  const NetlistSoA& soa = *soa_;

  // Module diff: a pin position is a pure function of its module's rect
  // and rotation (terminal pins: of the chip rect). Diff the module
  // count's worth of geometry up front and push dirt through the
  // occurrence lists onto exactly the incident nets — proportional to the
  // changed modules' fanout, not to the pin count.
  const std::size_t modules = soa.module_count();
  const std::size_t net_count = soa.net_count();
  const bool chip_same =
      pins_valid_ && placement.chip.xlo == cached_chip_.xlo &&
      placement.chip.ylo == cached_chip_.ylo &&
      placement.chip.xhi == cached_chip_.xhi &&
      placement.chip.yhi == cached_chip_.yhi;
  const bool diffable = pins_valid_ && cached_rects_.size() == modules;
  net_dirty_.assign(net_count, diffable ? 0 : 1);
  if (diffable) {
    for (std::size_t m = 0; m < modules; ++m) {
      const Rect& a = placement.module_rects[m];
      const Rect& b = cached_rects_[m];
      const char rot = placement.rotated[m] ? 1 : 0;
      if (!(a.xlo == b.xlo && a.ylo == b.ylo && a.xhi == b.xhi &&
            a.yhi == b.yhi && rot == cached_rotated_[m])) {
        for (const std::uint32_t incident : soa.nets_of_module(m)) {
          net_dirty_[incident] = 1;
        }
      }
    }
  }
  cached_chip_ = placement.chip;
  cached_rects_ = placement.module_rects;
  cached_rotated_.assign(modules, 0);
  for (std::size_t m = 0; m < modules; ++m) {
    cached_rotated_[m] = placement.rotated[m] ? 1 : 0;
  }

  long long reused = 0;
  long long recomputed = 0;
  for (std::size_t n = 0; n < net_count; ++n) {
    // Fast path: no incident module moved (and the chip is unchanged if
    // the net has terminal pins) — cached pins and edges still hold.
    if (pins_valid_ && !net_dirty_[n] &&
        (chip_same || !soa.net_has_terminal(n))) {
      ++reused;
      continue;
    }
    const std::size_t begin = soa.pin_begin(n);
    const std::size_t k = soa.degree(n);
    Point* cached = cached_pins_.data() + begin;
    // Gather this net's pin positions, diffing against the previous call
    // in the same pass (write-through): a dirty module can still leave a
    // net's pins in place (e.g. an unrelated chip resize).
    bool same = pins_valid_;
    for (std::size_t i = 0; i < k; ++i) {
      const Point p = soa.pin_position(begin + i, placement);
      if (same && (p.x != cached[i].x || p.y != cached[i].y)) same = false;
      cached[i] = p;
    }
    if (same) {  // unchanged pins: the cached edges already match
      ++reused;
      continue;
    }
    ++recomputed;
    const std::span<const Point> pins(cached, k);
    TwoPinNet* out = nets_.data() + edge_offset_[n];
    if (method == Decomposition::kMst) {
      mst_edges_into(pins, static_cast<int>(n), out);
    } else {
      star_edges_into(pins, static_cast<int>(n), out);
    }
  }
  pins_valid_ = true;
  if (obs::trace_enabled()) {
    obs::count(obs::Counter::kDecomposeCalls);
    obs::count(obs::Counter::kDecomposeNetsReused, reused);
    obs::count(obs::Counter::kDecomposeNetsRecomputed, recomputed);
  }
  return nets_;
}

std::vector<TwoPinNet> decompose_to_two_pin(const Netlist& netlist,
                                            const Placement& placement,
                                            Decomposition method) {
  TwoPinDecomposer decomposer;
  const std::span<const TwoPinNet> nets =
      decomposer.decompose(netlist, placement, method);
  return std::vector<TwoPinNet>(nets.begin(), nets.end());
}

double mst_wirelength(const Netlist& netlist, const Placement& placement) {
  double total = 0.0;
  for (const TwoPinNet& e : decompose_to_two_pin(netlist, placement)) {
    total += e.manhattan_length();
  }
  return total;
}

double total_length(std::span<const TwoPinNet> nets) {
  double total = 0.0;
  for (const TwoPinNet& e : nets) {
    total += e.manhattan_length();
  }
  return total;
}

double hpwl(const Netlist& netlist, const Placement& placement) {
  FICON_REQUIRE(placement.module_rects.size() == netlist.module_count(),
                "placement does not match netlist");
  double total = 0.0;
  for (const Net& net : netlist.nets()) {
    double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
    double ylo = xlo, yhi = -xlo;
    for (const Pin& pin : net.pins) {
      const Point p = placement.pin_position(pin);
      xlo = std::min(xlo, p.x);
      xhi = std::max(xhi, p.x);
      ylo = std::min(ylo, p.y);
      yhi = std::max(yhi, p.y);
    }
    total += (xhi - xlo) + (yhi - ylo);
  }
  return total;
}

}  // namespace ficon
