#include "route/two_pin.hpp"

#include <algorithm>
#include <limits>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace ficon {

namespace {

/// Componentwise median of the pin set — the star hub. nth_element is
/// deterministic for a fixed input, so every caller that feeds the same
/// pins gets the same hub (and therefore the same edges).
Point star_hub(std::span<const Point> pins, std::vector<double>& xs,
               std::vector<double>& ys) {
  xs.clear();
  ys.clear();
  xs.reserve(pins.size());
  ys.reserve(pins.size());
  for (const Point& p : pins) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  const auto median = [](std::vector<double>& v) {
    const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
    std::nth_element(v.begin(), mid, v.end());
    return *mid;
  };
  return Point{median(xs), median(ys)};
}

}  // namespace

void TwoPinDecomposer::mst_edges_into(std::span<const Point> pins,
                                      int source_net, TwoPinNet* out) {
  FICON_REQUIRE(pins.size() >= 2, "MST needs at least two pins");
  const std::size_t k = pins.size();

  // Prim's algorithm from pin 0, scratch arrays reused across nets.
  in_tree_.assign(k, 0);
  best_dist_.assign(k, std::numeric_limits<double>::infinity());
  best_parent_.assign(k, 0);
  in_tree_[0] = 1;
  for (std::size_t j = 1; j < k; ++j) {
    best_dist_[j] = manhattan(pins[0], pins[j]);
  }
  for (std::size_t added = 1; added < k; ++added) {
    std::size_t next = k;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree_[j] && best_dist_[j] < best) {
        best = best_dist_[j];
        next = j;
      }
    }
    FICON_ASSERT(next < k, "Prim found no next vertex");
    in_tree_[next] = 1;
    *out++ = TwoPinNet{pins[best_parent_[next]], pins[next], source_net};
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree_[j]) {
        const double d = manhattan(pins[next], pins[j]);
        if (d < best_dist_[j]) {
          best_dist_[j] = d;
          best_parent_[j] = next;
        }
      }
    }
  }
}

void TwoPinDecomposer::star_edges_into(std::span<const Point> pins,
                                       int source_net, TwoPinNet* out) {
  FICON_REQUIRE(pins.size() >= 2, "star needs at least two pins");
  const Point hub = star_hub(pins, xs_, ys_);
  for (const Point& p : pins) {
    *out++ = TwoPinNet{hub, p, source_net};
  }
}

void TwoPinDecomposer::append_mst_edges(const std::vector<Point>& pins,
                                        int source_net,
                                        std::vector<TwoPinNet>& out) {
  FICON_REQUIRE(pins.size() >= 2, "MST needs at least two pins");
  const std::size_t base = out.size();
  out.resize(base + pins.size() - 1);
  mst_edges_into(std::span<const Point>(pins), source_net, out.data() + base);
}

std::vector<TwoPinNet> mst_edges(const std::vector<Point>& pins,
                                 int source_net) {
  std::vector<TwoPinNet> edges;
  if (pins.size() >= 2) edges.reserve(pins.size() - 1);
  TwoPinDecomposer scratch;
  scratch.append_mst_edges(pins, source_net, edges);
  return edges;
}

std::vector<TwoPinNet> star_edges(const std::vector<Point>& pins,
                                  int source_net) {
  FICON_REQUIRE(pins.size() >= 2, "star needs at least two pins");
  std::vector<double> xs, ys;
  const Point hub = star_hub(pins, xs, ys);
  std::vector<TwoPinNet> edges;
  edges.reserve(pins.size());
  for (const Point& p : pins) {
    edges.push_back(TwoPinNet{hub, p, source_net});
  }
  return edges;
}

std::span<const TwoPinNet> TwoPinDecomposer::decompose(
    const Netlist& netlist, const Placement& placement,
    Decomposition method) {
  FICON_REQUIRE(placement.module_rects.size() == netlist.module_count(),
                "placement does not match netlist");
  if (cached_netlist_ != &netlist || cached_method_ != method) {
    // (Re)build the fixed layout: per-net pin and edge offsets. Both
    // depend only on net degrees, so they — and therefore each net's
    // slice of nets_ — are stable for the lifetime of the binding.
    pin_offset_.assign(1, 0);
    edge_offset_.assign(1, 0);
    pin_offset_.reserve(netlist.net_count() + 1);
    edge_offset_.reserve(netlist.net_count() + 1);
    net_modules_.clear();
    net_module_offset_.assign(1, 0);
    net_has_terminal_.clear();
    for (const Net& net : netlist.nets()) {
      const std::size_t k = net.pins.size();
      FICON_REQUIRE(k >= 2, "decomposition needs at least two pins per net");
      pin_offset_.push_back(pin_offset_.back() + k);
      edge_offset_.push_back(edge_offset_.back() +
                             (method == Decomposition::kMst ? k - 1 : k));
      char has_terminal = 0;
      for (const Pin& pin : net.pins) {
        if (pin.is_terminal()) {
          has_terminal = 1;
        } else {
          net_modules_.push_back(pin.module);
        }
      }
      net_module_offset_.push_back(net_modules_.size());
      net_has_terminal_.push_back(has_terminal);
    }
    cached_pins_.resize(pin_offset_.back());
    nets_.resize(edge_offset_.back());
    cached_netlist_ = &netlist;
    cached_method_ = method;
    pins_valid_ = false;
  }

  // Module diff: a pin position is a pure function of its module's rect
  // and rotation (terminal pins: of the chip rect), so comparing the
  // module count's worth of geometry up front tells us which nets can be
  // skipped without touching their pins at all.
  const std::size_t modules = netlist.module_count();
  const bool chip_same =
      pins_valid_ && placement.chip.xlo == cached_chip_.xlo &&
      placement.chip.ylo == cached_chip_.ylo &&
      placement.chip.xhi == cached_chip_.xhi &&
      placement.chip.yhi == cached_chip_.yhi;
  module_dirty_.assign(modules, 1);
  if (pins_valid_ && cached_rects_.size() == modules) {
    for (std::size_t m = 0; m < modules; ++m) {
      const Rect& a = placement.module_rects[m];
      const Rect& b = cached_rects_[m];
      const char rot = placement.rotated[m] ? 1 : 0;
      module_dirty_[m] = !(a.xlo == b.xlo && a.ylo == b.ylo &&
                           a.xhi == b.xhi && a.yhi == b.yhi &&
                           rot == cached_rotated_[m]);
    }
  }
  cached_chip_ = placement.chip;
  cached_rects_ = placement.module_rects;
  cached_rotated_.assign(modules, 0);
  for (std::size_t m = 0; m < modules; ++m) {
    cached_rotated_[m] = placement.rotated[m] ? 1 : 0;
  }

  long long reused = 0;
  long long recomputed = 0;
  for (std::size_t n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.nets()[n];
    // Fast path: every pin's module is clean (and the chip is unchanged
    // if the net has terminal pins) — cached pins and edges still hold.
    bool clean = pins_valid_ && (chip_same || !net_has_terminal_[n]);
    if (clean) {
      for (std::size_t i = net_module_offset_[n];
           i < net_module_offset_[n + 1]; ++i) {
        if (module_dirty_[static_cast<std::size_t>(net_modules_[i])]) {
          clean = false;
          break;
        }
      }
    }
    if (clean) {
      ++reused;
      continue;
    }
    Point* cached = cached_pins_.data() + pin_offset_[n];
    // Gather this net's pin positions, diffing against the previous call
    // in the same pass (write-through): a dirty module can still leave a
    // net's pins in place (e.g. an unrelated chip resize).
    bool same = pins_valid_;
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      const Point p = placement.pin_position(net.pins[i]);
      if (same && (p.x != cached[i].x || p.y != cached[i].y)) same = false;
      cached[i] = p;
    }
    if (same) {  // unchanged pins: the cached edges already match
      ++reused;
      continue;
    }
    ++recomputed;
    const std::span<const Point> pins(cached, net.pins.size());
    TwoPinNet* out = nets_.data() + edge_offset_[n];
    if (method == Decomposition::kMst) {
      mst_edges_into(pins, static_cast<int>(n), out);
    } else {
      star_edges_into(pins, static_cast<int>(n), out);
    }
  }
  pins_valid_ = true;
  if (obs::trace_enabled()) {
    obs::count(obs::Counter::kDecomposeCalls);
    obs::count(obs::Counter::kDecomposeNetsReused, reused);
    obs::count(obs::Counter::kDecomposeNetsRecomputed, recomputed);
  }
  return nets_;
}

std::vector<TwoPinNet> decompose_to_two_pin(const Netlist& netlist,
                                            const Placement& placement,
                                            Decomposition method) {
  TwoPinDecomposer decomposer;
  const std::span<const TwoPinNet> nets =
      decomposer.decompose(netlist, placement, method);
  return std::vector<TwoPinNet>(nets.begin(), nets.end());
}

double mst_wirelength(const Netlist& netlist, const Placement& placement) {
  double total = 0.0;
  for (const TwoPinNet& e : decompose_to_two_pin(netlist, placement)) {
    total += e.manhattan_length();
  }
  return total;
}

double total_length(std::span<const TwoPinNet> nets) {
  double total = 0.0;
  for (const TwoPinNet& e : nets) {
    total += e.manhattan_length();
  }
  return total;
}

double hpwl(const Netlist& netlist, const Placement& placement) {
  FICON_REQUIRE(placement.module_rects.size() == netlist.module_count(),
                "placement does not match netlist");
  double total = 0.0;
  for (const Net& net : netlist.nets()) {
    double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
    double ylo = xlo, yhi = -xlo;
    for (const Pin& pin : net.pins) {
      const Point p = placement.pin_position(pin);
      xlo = std::min(xlo, p.x);
      xhi = std::max(xhi, p.x);
      ylo = std::min(ylo, p.y);
      yhi = std::max(yhi, p.y);
    }
    total += (xhi - xlo) + (yhi - ylo);
  }
  return total;
}

}  // namespace ficon
