// Multi-pin net decomposition and wirelength evaluation.
//
// The paper (section 5) decomposes every multi-pin net into 2-pin nets by a
// minimum spanning tree before congestion estimation, and reports total
// wirelength over the decomposed nets. The MST is built on Manhattan
// distance between pin positions under a concrete placement.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace ficon {

/// A 2-pin net produced by decomposition: two endpoints in chip coordinates
/// plus the index of the originating multi-pin net.
struct TwoPinNet {
  Point a;
  Point b;
  int source_net = -1;

  /// Bounding box of the two pins = the net's routing range (paper sect. 2).
  Rect routing_range() const { return Rect::spanning(a, b); }

  double manhattan_length() const { return manhattan(a, b); }
};

/// Decompose one pin set into MST edges (Prim, O(k^2); net degrees are
/// small). Coincident pins yield zero-length edges, which are kept: the
/// models treat a point routing range as "passes through its cell with
/// probability 1".
std::vector<TwoPinNet> mst_edges(const std::vector<Point>& pins,
                                 int source_net);

/// Star decomposition: every pin connects to the pin set's componentwise
/// median — the hub minimizing total Manhattan length over all hub choices.
/// The hub is a Steiner point, so the star can be shorter OR longer than
/// the pin-spanning MST; its length is always >= the net's HPWL. Exposed
/// for decomposition-sensitivity studies (the paper uses the MST).
std::vector<TwoPinNet> star_edges(const std::vector<Point>& pins,
                                  int source_net);

/// Multi-pin decomposition strategy. The paper uses the MST (section 5).
enum class Decomposition { kMst, kStar };

/// Decompose every net of the netlist under the given placement.
std::vector<TwoPinNet> decompose_to_two_pin(
    const Netlist& netlist, const Placement& placement,
    Decomposition method = Decomposition::kMst);

/// Total Manhattan wirelength of the MST decomposition — the "wire length"
/// column of the paper's tables.
double mst_wirelength(const Netlist& netlist, const Placement& placement);

/// Half-perimeter wirelength (cheaper; used as an SA cost alternative).
double hpwl(const Netlist& netlist, const Placement& placement);

}  // namespace ficon
