// Multi-pin net decomposition and wirelength evaluation.
//
// The paper (section 5) decomposes every multi-pin net into 2-pin nets by a
// minimum spanning tree before congestion estimation, and reports total
// wirelength over the decomposed nets. The MST is built on Manhattan
// distance between pin positions under a concrete placement.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/netlist_soa.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace ficon {

/// A 2-pin net produced by decomposition: two endpoints in chip coordinates
/// plus the index of the originating multi-pin net.
struct TwoPinNet {
  Point a;
  Point b;
  int source_net = -1;

  /// Bounding box of the two pins = the net's routing range (paper sect. 2).
  Rect routing_range() const { return Rect::spanning(a, b); }

  double manhattan_length() const { return manhattan(a, b); }
};

/// Decompose one pin set into MST edges (Prim, O(k^2); net degrees are
/// small). Coincident pins yield zero-length edges, which are kept: the
/// models treat a point routing range as "passes through its cell with
/// probability 1".
std::vector<TwoPinNet> mst_edges(const std::vector<Point>& pins,
                                 int source_net);

/// Star decomposition: every pin connects to the pin set's componentwise
/// median — the hub minimizing total Manhattan length over all hub choices.
/// The hub is a Steiner point, so the star can be shorter OR longer than
/// the pin-spanning MST; its length is always >= the net's HPWL. Exposed
/// for decomposition-sensitivity studies (the paper uses the MST).
std::vector<TwoPinNet> star_edges(const std::vector<Point>& pins,
                                  int source_net);

/// Multi-pin decomposition strategy. The paper uses the MST (section 5).
enum class Decomposition { kMst, kStar };

/// Decompose every net of the netlist under the given placement.
std::vector<TwoPinNet> decompose_to_two_pin(
    const Netlist& netlist, const Placement& placement,
    Decomposition method = Decomposition::kMst);

/// Total Manhattan wirelength of the MST decomposition — the "wire length"
/// column of the paper's tables.
double mst_wirelength(const Netlist& netlist, const Placement& placement);

/// Sum of Manhattan lengths over already-decomposed nets. Summation order
/// is the net order, so for nets from decompose_to_two_pin() the result is
/// bit-identical to mst_wirelength() without decomposing again.
double total_length(std::span<const TwoPinNet> nets);

/// @brief Buffer-reusing, pin-caching net decomposition for the annealing
/// inner loop.
///
/// decompose_to_two_pin() allocates the result vector, a pin buffer and
/// the Prim scratch arrays on every call — once per proposed move when
/// used inside the floorplanner objective. This class produces the exact
/// same edges in the exact same order but keeps all buffers alive across
/// calls, so steady-state decomposition allocates nothing.
///
/// It additionally remembers every net's pin positions from the previous
/// call (for the same netlist and method): consecutive annealing
/// candidates differ by one local move, so most modules — and therefore
/// most nets' pins — do not move between calls. A net whose pins are
/// unchanged keeps its cached edges, skipping Prim entirely. The edges
/// are a pure function of the pin positions, so the cached values are
/// bit-identical to a recomputation; every net's edge count is fixed by
/// its degree, so each net owns a stable slice of the output buffer and
/// reuse never perturbs edge order.
///
/// Not internally synchronized: one instance per thread (the Floorplanner
/// owns one, mirroring its own threading contract). The pin cache is
/// keyed on the netlist's address; netlists are immutable after
/// construction, so entries cannot go stale.
class TwoPinDecomposer {
 public:
  /// @brief Decompose every net of the netlist under the placement.
  /// @return view of the internal buffer; valid until the next decompose()
  ///         call and invalidated by it.
  std::span<const TwoPinNet> decompose(
      const Netlist& netlist, const Placement& placement,
      Decomposition method = Decomposition::kMst);

  /// Flat connectivity view of the currently bound netlist, or nullptr
  /// before the first decompose() call. Exposed for tests and diagnostics.
  const NetlistSoA* bound_soa() const { return soa_.get(); }

 private:
  std::vector<TwoPinNet> nets_;  ///< net n owns [edge_offset_[n], edge_offset_[n+1])
  // Prim scratch, sized to the largest net degree seen so far.
  std::vector<char> in_tree_;
  std::vector<double> best_dist_;
  std::vector<std::size_t> best_parent_;
  // Star hub scratch.
  std::vector<double> xs_, ys_;
  // Binding: the flat connectivity view (pin CSR + module->net occurrence
  // lists) rebuilt whenever the netlist or method changes. The pin cache
  // shares the SoA's flat pin indexing: net n's previous pin positions
  // live at cached_pins_[soa_->pin_begin(n) .. soa_->pin_end(n)).
  const Netlist* cached_netlist_ = nullptr;
  Decomposition cached_method_ = Decomposition::kMst;
  bool pins_valid_ = false;
  std::unique_ptr<NetlistSoA> soa_;
  std::vector<Point> cached_pins_;
  std::vector<std::size_t> edge_offset_;
  // Module-diff fast path: the previous placement's module geometry. A
  // module whose rect/rotation changed pushes dirt through the occurrence
  // list onto exactly the nets it touches — O(dirty modules x fanout)
  // instead of a per-net scan over every pin — and a net with no dirty
  // bit (plus an unchanged chip if it has terminal pins) keeps its cached
  // pins and edges wholesale.
  Rect cached_chip_;
  std::vector<Rect> cached_rects_;
  std::vector<char> cached_rotated_;
  std::vector<char> net_dirty_;

  friend std::vector<TwoPinNet> mst_edges(const std::vector<Point>&, int);
  void append_mst_edges(const std::vector<Point>& pins, int source_net,
                        std::vector<TwoPinNet>& out);
  void mst_edges_into(std::span<const Point> pins, int source_net,
                      TwoPinNet* out);
  void star_edges_into(std::span<const Point> pins, int source_net,
                       TwoPinNet* out);
};

/// Half-perimeter wirelength (cheaper; used as an SA cost alternative).
double hpwl(const Netlist& netlist, const Placement& placement);

}  // namespace ficon
