#include "gen/scale.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <random>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

/// Published aggregate statistics of the GSRC soft-block suite used as
/// anchors; sizes between/beyond anchors scale the nearest anchor's
/// per-module ratios. (The real n100/n200/n300 numbers; the generated
/// circuits match these aggregates, not the actual block lists.)
struct GsrcAnchor {
  int modules;
  int nets;
  int pins;
  int terminals;
};
constexpr GsrcAnchor kGsrcAnchors[] = {
    {100, 885, 1873, 334},
    {200, 1585, 3599, 564},
    {300, 1893, 4358, 569},
};

/// Fractional chip-outline position of pad t of T, walking the perimeter
/// counter-clockwise from the lower-left corner (same convention as the
/// MCNC substrate).
Terminal perimeter_terminal(const std::string& name, int t, int total) {
  const double u = (t + 0.5) / total;
  double fx = 0.0, fy = 0.0;
  if (u < 0.25) {
    fx = 4.0 * u;
  } else if (u < 0.5) {
    fx = 1.0;
    fy = 4.0 * (u - 0.25);
  } else if (u < 0.75) {
    fx = 1.0 - 4.0 * (u - 0.5);
    fy = 1.0;
  } else {
    fy = 1.0 - 4.0 * (u - 0.75);
  }
  return Terminal{name, fx, fy};
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  const std::uint64_t len = s.size();
  h = fnv1a(h, &len, sizeof(len));
  return fnv1a(h, s.data(), s.size());
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  return fnv1a(h, &bits, sizeof(bits));
}

std::uint64_t mix_int(std::uint64_t h, std::int64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

}  // namespace

ScaleTierSpec gsrc_style_spec(int modules) {
  FICON_REQUIRE(modules >= 10, "GSRC-style tier needs at least 10 modules");
  // Nearest anchor by module count; ratios scale linearly from it.
  const GsrcAnchor* anchor = &kGsrcAnchors[0];
  for (const GsrcAnchor& a : kGsrcAnchors) {
    if (std::abs(a.modules - modules) <
        std::abs(anchor->modules - modules)) {
      anchor = &a;
    }
  }
  const double f = static_cast<double>(modules) / anchor->modules;
  ScaleTierSpec spec;
  spec.name = "n" + std::to_string(modules);
  spec.modules = modules;
  spec.nets = std::max(2, static_cast<int>(std::lround(anchor->nets * f)));
  spec.terminals =
      std::max(4, static_cast<int>(std::lround(anchor->terminals * f)));
  // Pad nets use one module pin, plain nets two: pins >= 2*nets suffices.
  spec.pins = std::max(static_cast<int>(std::lround(anchor->pins * f)),
                       2 * spec.nets);
  spec.terminals = std::min(spec.terminals, spec.nets);
  // GSRC blocks average ~1.8e3 um^2.
  spec.total_area_um2 = 1800.0 * modules;
  spec.tile_modules = std::min(50, modules);
  spec.soft = true;
  return spec;
}

ScaleTierSpec ami49x_spec(int copies) {
  FICON_REQUIRE(copies >= 1, "ami49x tier needs at least one copy");
  ScaleTierSpec spec;
  spec.name = "ami49x" + std::to_string(copies);
  spec.modules = 49 * copies;
  spec.nets = 408 * copies;
  spec.pins = 953 * copies;
  // Pads sit on the chip outline, so their count grows with the perimeter
  // (~sqrt of the area), not with the module count.
  spec.terminals = 22 * static_cast<int>(
                            std::ceil(std::sqrt(static_cast<double>(copies))));
  spec.terminals = std::min(spec.terminals, spec.nets);
  spec.pins += spec.terminals - 22;  // keep the published per-tile module pins
  spec.total_area_um2 = 35445424.0 * copies;
  spec.tile_modules = 49;
  spec.soft = false;
  return spec;
}

ScaleTierSpec parse_scale_tier(const std::string& token) {
  const auto parse_int = [&](const std::string& digits) {
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("bad scale tier token '" + token + "'");
    }
    const long v = std::strtol(digits.c_str(), nullptr, 10);
    FICON_REQUIRE(v > 0 && v <= 10'000'000, "scale tier out of range");
    return static_cast<int>(v);
  };
  if (token.rfind("ami49x", 0) == 0) {
    return ami49x_spec(parse_int(token.substr(6)));
  }
  if (!token.empty() && token[0] == 'n') {
    return gsrc_style_spec(parse_int(token.substr(1)));
  }
  // A bare module count maps to the smallest ami49x ladder rung covering it.
  const int modules = parse_int(token);
  return ami49x_spec(std::max(1, (modules + 48) / 49));
}

Netlist make_scale_netlist(const ScaleTierSpec& spec, std::uint64_t seed) {
  FICON_REQUIRE(spec.modules >= 2, "need at least two modules");
  FICON_REQUIRE(spec.nets >= 1, "need at least one net");
  FICON_REQUIRE(spec.terminals >= 0 && spec.terminals <= spec.nets,
                "terminal count must be in [0, nets]");
  FICON_REQUIRE(spec.tile_modules >= 1, "tile size must be positive");
  FICON_REQUIRE(spec.total_area_um2 > 0.0, "non-positive total area");
  // Pad nets use 1 module pin, all others at least 2.
  const int module_pin_budget = spec.pins - spec.terminals;
  FICON_REQUIRE(module_pin_budget >= 2 * spec.nets - spec.terminals,
                "module-pin budget below the per-net minimum");
  constexpr int kMaxDegree = 8;
  const int plain_nets = spec.nets - spec.terminals;
  FICON_REQUIRE(module_pin_budget <=
                    kMaxDegree * plain_nets + spec.terminals,
                "module-pin budget exceeds the degree cap");

  Rng rng(SplitMix64(seed).next());

  // --- Modules: lognormal areas renormalized to the target total, aspect
  // in [1/3, 3], whole-um dimensions (the MCNC substrate's idiom).
  std::vector<Module> modules;
  modules.reserve(static_cast<std::size_t>(spec.modules));
  {
    std::lognormal_distribution<double> dist(0.0, 0.8);
    std::vector<double> areas(static_cast<std::size_t>(spec.modules));
    double sum = 0.0;
    for (double& a : areas) {
      a = dist(rng.engine());
      sum += a;
    }
    for (double& a : areas) a *= spec.total_area_um2 / sum;
    for (int i = 0; i < spec.modules; ++i) {
      const std::string name = spec.name + "_m" + std::to_string(i);
      const double area = areas[static_cast<std::size_t>(i)];
      if (spec.soft) {
        modules.push_back(Module::make_soft(name, area, 1.0 / 3.0, 3.0));
      } else {
        const double aspect =
            std::exp(rng.uniform(-std::log(3.0), std::log(3.0)));
        const double w = std::max(1.0, std::round(std::sqrt(area * aspect)));
        const double h = std::max(1.0, std::round(area / w));
        modules.push_back(Module{name, w, h});
      }
    }
  }

  // --- Tiling: module i lives in tile i / tile_modules; net n's home tile
  // follows proportionally, so locality survives any circuit size.
  const int tiles = (spec.modules + spec.tile_modules - 1) / spec.tile_modules;
  const auto tile_range = [&](int tile) {
    const int lo = tile * spec.tile_modules;
    const int hi = std::min(spec.modules, lo + spec.tile_modules);
    return std::pair<int, int>(lo, hi);
  };

  // --- Net degrees (module pins only): pad nets get 1, plain nets start
  // at 2, and the remaining budget is sprinkled one pin at a time capped
  // at kMaxDegree. Pad nets are the last spec.terminals nets.
  std::vector<int> degree(static_cast<std::size_t>(spec.nets), 2);
  for (int n = plain_nets; n < spec.nets; ++n) {
    degree[static_cast<std::size_t>(n)] = 1;
  }
  int remaining = module_pin_budget - (2 * plain_nets + spec.terminals);
  while (remaining > 0) {
    const std::size_t n = rng.index(static_cast<std::size_t>(spec.nets));
    const bool pad = static_cast<int>(n) >= plain_nets;
    if (!pad && degree[n] < kMaxDegree) {
      ++degree[n];
      --remaining;
    }
  }

  // --- Nets: draw pins mostly from the home tile, sometimes the next
  // tile over, occasionally anywhere — hierarchical locality.
  constexpr double kHomeAffinity = 0.75;
  constexpr double kNeighborAffinity = 0.15;  // cumulative 0.90
  std::vector<Net> nets;
  nets.reserve(static_cast<std::size_t>(spec.nets));
  std::vector<int> used;
  for (int n = 0; n < spec.nets; ++n) {
    Net net;
    net.name = spec.name + "_e" + std::to_string(n);
    const int home =
        static_cast<int>(static_cast<long long>(n) * tiles / spec.nets);
    const int neighbor = home + 1 < tiles ? home + 1 : 0;
    used.clear();
    for (int p = 0; p < degree[static_cast<std::size_t>(n)]; ++p) {
      int module = -1;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const double u = rng.uniform();
        int tile = home;
        if (u >= kHomeAffinity + kNeighborAffinity) {
          tile = rng.uniform_int(0, tiles - 1);
        } else if (u >= kHomeAffinity) {
          tile = neighbor;
        }
        const auto [lo, hi] = tile_range(tile);
        module = rng.uniform_int(lo, hi - 1);
        if (std::find(used.begin(), used.end(), module) == used.end()) break;
      }
      // A repeated pin after 8 attempts is harmless: it collapses to a
      // zero-length edge in the MST decomposition (the MCNC substrate
      // accepts the same degenerate case).
      used.push_back(module);
      net.pins.push_back(Pin::on_module(module, rng.uniform(0.1, 0.9),
                                        rng.uniform(0.1, 0.9)));
    }
    nets.push_back(std::move(net));
  }

  // --- Terminals: pads ring the outline; pad t completes the degree-1
  // net plain_nets + t to a (module pin, pad) pair.
  std::vector<Terminal> terminals;
  terminals.reserve(static_cast<std::size_t>(spec.terminals));
  for (int t = 0; t < spec.terminals; ++t) {
    terminals.push_back(perimeter_terminal(
        spec.name + "_p" + std::to_string(t), t, spec.terminals));
    nets[static_cast<std::size_t>(plain_nets + t)].pins.push_back(
        Pin::on_terminal(t, terminals.back()));
  }

  return Netlist(spec.name, std::move(modules), std::move(terminals),
                 std::move(nets));
}

std::uint64_t netlist_fingerprint(const Netlist& netlist) {
  std::uint64_t h = 1469598103934665603ull;
  h = mix_string(h, netlist.name());
  h = mix_int(h, static_cast<std::int64_t>(netlist.module_count()));
  h = mix_int(h, static_cast<std::int64_t>(netlist.terminal_count()));
  h = mix_int(h, static_cast<std::int64_t>(netlist.net_count()));
  for (const Module& m : netlist.modules()) {
    h = mix_string(h, m.name);
    h = mix_double(h, m.width);
    h = mix_double(h, m.height);
    h = mix_int(h, m.soft ? 1 : 0);
    h = mix_double(h, m.min_aspect);
    h = mix_double(h, m.max_aspect);
  }
  for (const Terminal& t : netlist.terminals()) {
    h = mix_string(h, t.name);
    h = mix_double(h, t.fx);
    h = mix_double(h, t.fy);
  }
  for (const Net& net : netlist.nets()) {
    h = mix_string(h, net.name);
    h = mix_int(h, static_cast<std::int64_t>(net.pins.size()));
    for (const Pin& pin : net.pins) {
      h = mix_int(h, pin.module);
      h = mix_int(h, pin.terminal);
      h = mix_double(h, pin.fx);
      h = mix_double(h, pin.fy);
    }
  }
  return h;
}

}  // namespace ficon
