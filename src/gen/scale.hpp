// Scalable synthetic benchmark generator (ROADMAP item 2).
//
// The MCNC-like substrate (src/circuit/mcnc.hpp) tops out at ami49-class
// sizes; nothing there pins behavior at production scale. This module
// generates netlists from ~100 modules (GSRC n100/n300 flavoured soft-block
// circuits) up to ~100k modules / ~1M pins (scaled `ami49xN` tiers): module
// statistics follow the published aggregate numbers of the base circuit,
// and connectivity is *tiled* — modules are grouped into ami49-sized tiles,
// every net has a home tile and draws most of its pins there, some from
// the neighboring tile and a few uniformly — so routing-range size
// distributions stay realistic as the circuit grows instead of degrading
// into a uniform random graph.
//
// Generation is strictly linear in the pin count, single-threaded, and
// deterministic per (spec, seed): the same inputs produce byte-identical
// netlists on every platform and under every FICON_THREADS setting
// (pinned by tests/gen_test.cpp via netlist_fingerprint()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace ficon {

/// Aggregate statistics of one synthetic scale tier.
struct ScaleTierSpec {
  std::string name;
  int modules = 0;
  int nets = 0;
  int pins = 0;       ///< total pin count, terminal pins included
  int terminals = 0;  ///< I/O pads on the chip outline
  double total_area_um2 = 0.0;
  int tile_modules = 49;  ///< locality tile size (ami49-sized by default)
  bool soft = false;      ///< soft blocks (GSRC style) vs hard macros
};

/// GSRC-flavoured soft-block tier ("n100", "n300", ...): aggregate
/// statistics approximating the published GSRC hard-block suite numbers
/// (n100: 885 nets / 1873 pins; interpolated for other sizes).
ScaleTierSpec gsrc_style_spec(int modules);

/// Scaled-MCNC tier ("ami49x4", ...): `copies` tiles of ami49's published
/// statistics (49 modules, 408 nets, 953 pins, 35.4 mm^2 per tile), with
/// terminal count growing with the chip perimeter (~sqrt(copies)).
ScaleTierSpec ami49x_spec(int copies);

/// @brief Parse a tier token: "n<modules>" (GSRC style), "ami49x<N>"
/// (scaled MCNC), or a plain module count (mapped to the ami49x tier with
/// at least that many modules). Throws std::invalid_argument otherwise.
ScaleTierSpec parse_scale_tier(const std::string& token);

/// @brief Generate the tier's netlist. Linear time and memory in
/// spec.pins; deterministic per (spec, seed).
Netlist make_scale_netlist(const ScaleTierSpec& spec,
                           std::uint64_t seed = 7);

/// @brief Order-sensitive FNV-1a fingerprint of every field of the netlist
/// (names, dimensions, soft ranges, terminals, pins). Two netlists with
/// equal fingerprints are byte-identical for all practical purposes; used
/// by the determinism tests and as provenance in BENCH_*.json files.
std::uint64_t netlist_fingerprint(const Netlist& netlist);

}  // namespace ficon
