#include "exp/heatmap.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace ficon {
namespace {

/// %.17g: enough digits for a double to round-trip bit-exactly — the
/// feature dump is a data artifact, not a picture.
std::string fmt_value(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Fixed two-decimal pixel coordinates: deterministic and compact. SVG
/// geometry only needs picture precision.
std::string fmt_px(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.2f", v);
  return buffer;
}

/// White -> yellow -> red ramp, same palette as `exp/svg.cpp` overlays
/// so the standalone view and the placement overlay read alike.
std::string ramp_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  int r, g, b;
  if (t < 0.5) {
    const double u = t / 0.5;
    r = 255;
    g = static_cast<int>(255 - u * 31);
    b = static_cast<int>(255 - u * 191);
  } else {
    const double u = (t - 0.5) / 0.5;
    r = static_cast<int>(255 - u * 41);
    g = static_cast<int>(224 - u * 184);
    b = static_cast<int>(64 - u * 24);
  }
  return "rgb(" + std::to_string(r) + ',' + std::to_string(g) + ',' +
         std::to_string(b) + ')';
}

/// Column/row boundaries of a grid-like field, reconstructed from the
/// `cell_rect` geometry hook: boundaries[i] is the low edge of cell i,
/// boundaries[n] the high edge of the last cell. All three FlowField
/// implementations are products of per-axis partitions, so row 0 /
/// column 0 carries the full axis geometry.
std::vector<double> axis_boundaries(const FlowField& field, bool x_axis) {
  const int n = x_axis ? field.nx() : field.ny();
  std::vector<double> boundaries(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i < n; ++i) {
    const Rect r = x_axis ? field.cell_rect(i, 0) : field.cell_rect(0, i);
    boundaries[static_cast<std::size_t>(i)] = x_axis ? r.xlo : r.ylo;
  }
  const Rect last =
      x_axis ? field.cell_rect(n - 1, 0) : field.cell_rect(0, n - 1);
  boundaries[static_cast<std::size_t>(n)] = x_axis ? last.xhi : last.yhi;
  return boundaries;
}

/// Cells [first, last] whose closed span intersects [lo, hi]; empty
/// (first > last) when the range misses the axis. Touching a boundary
/// counts — a degenerate routing range on a cut line crosses both
/// neighbours, matching the models' closed routing-range semantics.
std::pair<int, int> cell_span(const std::vector<double>& boundaries,
                              double lo, double hi) {
  const int n = static_cast<int>(boundaries.size()) - 1;
  // First cell i with boundaries[i + 1] >= lo.
  const auto first_it =
      std::lower_bound(boundaries.begin() + 1, boundaries.end(), lo);
  // Last cell i with boundaries[i] <= hi.
  const auto last_it =
      std::upper_bound(boundaries.begin(), boundaries.end() - 1, hi);
  const int first = static_cast<int>(first_it - (boundaries.begin() + 1));
  const int last = static_cast<int>(last_it - boundaries.begin()) - 1;
  return {std::max(first, 0), std::min(last, n - 1)};
}

}  // namespace

HeatMapSource::HeatMapSource(const FlowField& field, std::string name)
    : field_(field), name_(std::move(name)) {
  FICON_REQUIRE(field.nx() > 0 && field.ny() > 0,
                "cannot build a heat map over an empty field");
  // Default capacity: spread the total flow uniformly over the total
  // cell area, so "overflow" means "more than its fair share".
  double total_value = 0.0;
  double total_area = 0.0;
  for (int cy = 0; cy < field_.ny(); ++cy) {
    for (int cx = 0; cx < field_.nx(); ++cx) {
      total_value += field_.value_at(cx, cy);
      total_area += field_.cell_rect(cx, cy).area();
    }
  }
  capacity_density_ = total_area > 0.0 ? total_value / total_area : 0.0;
}

void HeatMapSource::set_capacity_density(double per_um2) {
  FICON_REQUIRE(per_um2 >= 0.0, "capacity density must be non-negative");
  capacity_density_ = per_um2;
}

void HeatMapSource::set_nets(std::span<const TwoPinNet> nets) {
  crossing_.assign(static_cast<std::size_t>(field_.cell_count()), 0);
  const std::vector<double> xs = axis_boundaries(field_, true);
  const std::vector<double> ys = axis_boundaries(field_, false);
  for (const TwoPinNet& net : nets) {
    const Rect range = net.routing_range();
    const auto [ix0, ix1] = cell_span(xs, range.xlo, range.xhi);
    const auto [iy0, iy1] = cell_span(ys, range.ylo, range.yhi);
    for (int cy = iy0; cy <= iy1; ++cy) {
      for (int cx = ix0; cx <= ix1; ++cx) {
        crossing_[static_cast<std::size_t>(cy) *
                      static_cast<std::size_t>(field_.nx()) +
                  static_cast<std::size_t>(cx)] += 1;
      }
    }
  }
}

double HeatMapSource::capacity(int cx, int cy) const {
  return capacity_density_ * field_.cell_rect(cx, cy).area();
}

double HeatMapSource::overflow(int cx, int cy) const {
  return std::max(0.0, usage(cx, cy) - capacity(cx, cy));
}

long long HeatMapSource::crossing_nets(int cx, int cy) const {
  if (crossing_.empty()) return 0;
  return crossing_[static_cast<std::size_t>(cy) *
                       static_cast<std::size_t>(field_.nx()) +
                   static_cast<std::size_t>(cx)];
}

void HeatMapSource::write_svg(std::ostream& os,
                              const HeatMapOptions& options) const {
  const Rect lo_cell = field_.cell_rect(0, 0);
  const Rect hi_cell = field_.cell_rect(field_.nx() - 1, field_.ny() - 1);
  const Rect bounds{lo_cell.xlo, lo_cell.ylo, hi_cell.xhi, hi_cell.yhi};
  FICON_REQUIRE(bounds.is_proper(), "cannot render an empty field");
  const double scale =
      options.canvas_px / std::max(bounds.width(), bounds.height());
  const double map_w = bounds.width() * scale;
  const double map_h = bounds.height() * scale;
  const double title_h = 24.0;
  const double legend_h = options.draw_legend ? 44.0 : 8.0;
  const double canvas_w = map_w;
  const double canvas_h = title_h + map_h + legend_h;
  // Chip -> pixel, y flipped (SVG grows downwards, chips upwards).
  const auto px = [&](double x) { return (x - bounds.xlo) * scale; };
  const auto py = [&](double y) {
    return title_h + (bounds.yhi - y) * scale;
  };

  // Densities drive the colors: cells of different sizes are only
  // comparable per unit area (paper section 4.3).
  double peak_density = 0.0;
  for (int cy = 0; cy < field_.ny(); ++cy) {
    for (int cx = 0; cx < field_.nx(); ++cx) {
      peak_density = std::max(peak_density, density(cx, cy));
    }
  }
  const double norm = std::max(peak_density, 1e-12);

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << fmt_px(canvas_w) << "\" height=\"" << fmt_px(canvas_h)
     << "\" viewBox=\"0 0 " << fmt_px(canvas_w) << ' ' << fmt_px(canvas_h)
     << "\">\n";
  os << "  <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";
  const std::string title =
      options.title.empty() ? name_ + " congestion" : options.title;
  os << "  <text x=\"" << fmt_px(canvas_w / 2.0)
     << "\" y=\"16\" font-size=\"13\" font-family=\"sans-serif\" "
        "text-anchor=\"middle\" fill=\"#222222\">"
     << title << "</text>\n";

  for (int cy = 0; cy < field_.ny(); ++cy) {
    for (int cx = 0; cx < field_.nx(); ++cx) {
      const Rect cell = field_.cell_rect(cx, cy);
      os << "  <rect x=\"" << fmt_px(px(cell.xlo)) << "\" y=\""
         << fmt_px(py(cell.yhi)) << "\" width=\""
         << fmt_px(cell.width() * scale) << "\" height=\""
         << fmt_px(cell.height() * scale) << "\" fill=\""
         << ramp_color(density(cx, cy) / norm)
         << "\" stroke=\"#888888\" stroke-width=\"0.3\">";
      if (options.draw_tooltips) {
        os << "<title>cell (" << cx << ',' << cy << ") capacity="
           << fmt_value(capacity(cx, cy)) << " usage="
           << fmt_value(usage(cx, cy)) << " overflow="
           << fmt_value(overflow(cx, cy)) << " density="
           << fmt_value(density(cx, cy)) << " crossing_nets="
           << crossing_nets(cx, cy) << "</title>";
      }
      os << "</rect>\n";
    }
  }

  if (options.draw_legend) {
    const double bar_y = title_h + map_h + 14.0;
    const double bar_w = canvas_w * 0.6;
    const double bar_x = (canvas_w - bar_w) / 2.0;
    os << "  <defs><linearGradient id=\"heat\" x1=\"0\" y1=\"0\" x2=\"1\" "
          "y2=\"0\">";
    for (int stop = 0; stop <= 4; ++stop) {
      const double t = static_cast<double>(stop) / 4.0;
      os << "<stop offset=\"" << fmt_px(t * 100.0) << "%\" stop-color=\""
         << ramp_color(t) << "\"/>";
    }
    os << "</linearGradient></defs>\n";
    os << "  <rect x=\"" << fmt_px(bar_x) << "\" y=\"" << fmt_px(bar_y)
       << "\" width=\"" << fmt_px(bar_w)
       << "\" height=\"10\" fill=\"url(#heat)\" stroke=\"#555555\" "
          "stroke-width=\"0.5\"/>\n";
    os << "  <text x=\"" << fmt_px(bar_x) << "\" y=\""
       << fmt_px(bar_y + 22.0)
       << "\" font-size=\"10\" font-family=\"sans-serif\" "
          "text-anchor=\"start\" fill=\"#222222\">density 0</text>\n";
    os << "  <text x=\"" << fmt_px(bar_x + bar_w) << "\" y=\""
       << fmt_px(bar_y + 22.0)
       << "\" font-size=\"10\" font-family=\"sans-serif\" "
          "text-anchor=\"end\" fill=\"#222222\">"
       << fmt_value(peak_density) << "</text>\n";
  }
  os << "</svg>\n";
}

void HeatMapSource::write_features_csv(std::ostream& os) const {
  os << "cx,cy,xlo,ylo,xhi,yhi,capacity,usage,density,crossing_nets,"
        "overflow\n";
  for (int cy = 0; cy < field_.ny(); ++cy) {
    for (int cx = 0; cx < field_.nx(); ++cx) {
      const Rect cell = field_.cell_rect(cx, cy);
      os << cx << ',' << cy << ',' << fmt_value(cell.xlo) << ','
         << fmt_value(cell.ylo) << ',' << fmt_value(cell.xhi) << ','
         << fmt_value(cell.yhi) << ',' << fmt_value(capacity(cx, cy))
         << ',' << fmt_value(usage(cx, cy)) << ','
         << fmt_value(density(cx, cy)) << ',' << crossing_nets(cx, cy)
         << ',' << fmt_value(overflow(cx, cy)) << '\n';
    }
  }
}

void HeatMapSource::write_features_jsonl(std::ostream& os) const {
  for (int cy = 0; cy < field_.ny(); ++cy) {
    for (int cx = 0; cx < field_.nx(); ++cx) {
      const Rect cell = field_.cell_rect(cx, cy);
      os << "{\"source\":\"" << name_ << "\",\"cx\":" << cx
         << ",\"cy\":" << cy << ",\"xlo\":" << fmt_value(cell.xlo)
         << ",\"ylo\":" << fmt_value(cell.ylo)
         << ",\"xhi\":" << fmt_value(cell.xhi)
         << ",\"yhi\":" << fmt_value(cell.yhi)
         << ",\"capacity\":" << fmt_value(capacity(cx, cy))
         << ",\"usage\":" << fmt_value(usage(cx, cy))
         << ",\"density\":" << fmt_value(density(cx, cy))
         << ",\"crossing_nets\":" << crossing_nets(cx, cy)
         << ",\"overflow\":" << fmt_value(overflow(cx, cy)) << "}\n";
    }
  }
}

}  // namespace ficon
