/// \file
/// Heat-map export over the shared `FlowField` surface.
///
/// `HeatMapSource` adapts any per-cell flow field (`CongestionMap`,
/// `IrregularCongestionMap`, `RoutedCongestion`) into the repo's two
/// congestion-visibility artifacts:
///
///  * a standalone, deterministic SVG heat view — color ramp, legend,
///    and a per-cell `<title>` tooltip carrying capacity / usage /
///    overflow — in the spirit of OpenROAD's `HeatMapDataSource`;
///  * a per-cell feature dump (CSV or JSONL) with capacity, usage,
///    density, crossing-net count and overflow, the raw material for
///    learned congestion predictors.
///
/// Determinism contract: every number is formatted through `snprintf`
/// with a fixed format, cells are walked in row-major order, and all
/// quantities are pure functions of the field (which is itself
/// bit-identical at every thread count) — so the emitted bytes are
/// identical across runs, thread counts and machines for the same
/// floorplan. All SVG emission lives in `src/exp/`; `ficon_lint` rule
/// F007 keeps ad-hoc writers from growing elsewhere.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "congestion/field.hpp"
#include "route/two_pin.hpp"

namespace ficon {

struct HeatMapOptions {
  double canvas_px = 900.0;  ///< longer grid edge in pixels
  bool draw_legend = true;   ///< gradient bar + min/max labels
  bool draw_tooltips = true; ///< per-cell <title> elements
  std::string title;         ///< heading; empty = "<name> congestion"
};

/// Read-only heat-map view of a `FlowField`. The source keeps a
/// reference to the field — it must outlive the view.
class HeatMapSource {
 public:
  /// `name` labels the artifact ("irregular_grid", "fixed_grid",
  /// "routed", ...) in titles and feature dumps.
  HeatMapSource(const FlowField& field, std::string name);

  /// Per-area capacity (flow per um^2). A cell's capacity is this
  /// density times its area; overflow is usage above that. Defaults to
  /// the field's area-weighted mean density, so overflow reads as
  /// "usage above a uniform spread of the total flow".
  void set_capacity_density(double per_um2);
  double capacity_density() const { return capacity_density_; }

  /// Attach the decomposed 2-pin nets so the feature dump and tooltips
  /// can report per-cell crossing-net counts (a net crosses every cell
  /// its routing range intersects). Without nets the count is 0.
  void set_nets(std::span<const TwoPinNet> nets);

  const FlowField& field() const { return field_; }
  const std::string& name() const { return name_; }
  int nx() const { return field_.nx(); }
  int ny() const { return field_.ny(); }

  /// Accumulated flow of the cell (the field's raw value).
  double usage(int cx, int cy) const { return field_.value_at(cx, cy); }
  /// Usage per unit area.
  double density(int cx, int cy) const { return field_.density(cx, cy); }
  /// Capacity of the cell: capacity_density() * cell area.
  double capacity(int cx, int cy) const;
  /// max(0, usage - capacity).
  double overflow(int cx, int cy) const;
  /// Number of attached nets whose routing range intersects the cell.
  long long crossing_nets(int cx, int cy) const;

  /// Standalone SVG heat view (ramp + legend + tooltips).
  void write_svg(std::ostream& os, const HeatMapOptions& options = {}) const;

  /// Per-cell feature table, one row per cell in row-major order:
  /// "cx,cy,xlo,ylo,xhi,yhi,capacity,usage,density,crossing_nets,overflow"
  /// with %.17g doubles (bit-exact round trip).
  void write_features_csv(std::ostream& os) const;

  /// Same rows as JSON Lines, one object per cell.
  void write_features_jsonl(std::ostream& os) const;

 private:
  const FlowField& field_;
  std::string name_;
  double capacity_density_ = 0.0;
  std::vector<long long> crossing_;  ///< row-major; empty until set_nets.
};

}  // namespace ficon
