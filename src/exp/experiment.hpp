// Seed-sweep experiment runner.
//
// The paper performs every table cell 20 times with different random seeds
// and reports the average and the best result (best = lowest value of the
// active cost function). This module runs the sweep, attaches the judging
// model's verdict to every run (the referee of all three experiments), and
// aggregates. FICON_SEEDS / FICON_SCALE / FICON_CIRCUITS scale the sweeps
// (see util/env.hpp); FICON_THREADS fans the independent runs out across
// the global thread pool without changing any result (util/thread_pool.hpp).
#pragma once

#include <vector>

#include "congestion/fixed_grid.hpp"
#include "core/floorplanner.hpp"

namespace ficon {

/// One annealing run plus the judging model's independent verdict.
struct JudgedRun {
  FloorplanSolution solution;
  double judging_cost = 0.0;
};

struct SeedSweep {
  std::vector<JudgedRun> runs;

  /// Run with the lowest active-objective cost (the paper's "best result").
  const JudgedRun& best() const;

  double mean_area() const;
  double mean_wirelength() const;
  double mean_congestion() const;  ///< objective-model congestion
  double mean_seconds() const;
  double mean_judging() const;
};

/// @brief Run `seeds` independent annealing runs (seeds 1..n expanded
/// through SplitMix64) and judge each solution with `judge`.
///
/// The runs fan out across the global ThreadPool (FICON_THREADS). Per-seed
/// RNG streams are derived from the seed index alone and each run lands in
/// its seed-ordered slot, so the sweep — including best() and every mean —
/// is identical at every thread count.
///
/// @param netlist circuit to floorplan (shared read-only across threads).
/// @param base    options template; per-run seeds are derived from base.seed.
/// @param seeds   number of independent runs (>= 1).
/// @param judge   referee model; each run judges with a private copy.
SeedSweep run_seed_sweep(const Netlist& netlist, const FloorplanOptions& base,
                         int seeds, const FixedGridModel& judge);

/// Standard experiment configuration shared by the benches: resolves
/// FICON_SEEDS (default 3), FICON_SCALE (default 0.35) and FICON_CIRCUITS
/// (default all five MCNC circuits).
struct ExperimentConfig {
  int seeds = 3;
  double scale = 0.35;
  std::vector<std::string> circuits;
  double judging_pitch = 10.0;
};

ExperimentConfig experiment_config_from_env();

/// Print the standard "reduced scale" banner so bench output is
/// self-describing about how it deviates from the paper's setup.
void print_scale_banner(const ExperimentConfig& config);

}  // namespace ficon
