#include "exp/svg.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/check.hpp"

namespace ficon {
namespace {

/// Pixel mapper: chip coordinates -> SVG canvas (y flipped: SVG grows
/// downwards, chips grow upwards).
struct Mapper {
  Rect chip;
  double scale;

  static Mapper fit(const Rect& chip, double canvas_px) {
    FICON_REQUIRE(chip.is_proper(), "cannot render an empty chip");
    return Mapper{chip, canvas_px / std::max(chip.width(), chip.height())};
  }

  double w() const { return chip.width() * scale; }
  double h() const { return chip.height() * scale; }
  double x(double cx) const { return (cx - chip.xlo) * scale; }
  double y(double cy) const { return (chip.yhi - cy) * scale; }

  void rect(std::ostream& os, const Rect& r, const std::string& style) const {
    os << "  <rect x=\"" << x(r.xlo) << "\" y=\"" << y(r.yhi) << "\" width=\""
       << r.width() * scale << "\" height=\"" << r.height() * scale
       << "\" style=\"" << style << "\"/>\n";
  }
};

void open_svg(std::ostream& os, const Mapper& m) {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << m.w()
     << "\" height=\"" << m.h() << "\" viewBox=\"0 0 " << m.w() << ' '
     << m.h() << "\">\n";
  os << "  <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";
}

void close_svg(std::ostream& os) { os << "</svg>\n"; }

/// Map a normalized congestion value (0..1) to a white->yellow->red ramp.
std::string heat_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // 0 -> white (255,255,255), 0.5 -> yellow (255,224,64), 1 -> red (214,40,40)
  int r, g, b;
  if (t < 0.5) {
    const double u = t / 0.5;
    r = 255;
    g = static_cast<int>(255 - u * 31);
    b = static_cast<int>(255 - u * 191);
  } else {
    const double u = (t - 0.5) / 0.5;
    r = static_cast<int>(255 - u * 41);
    g = static_cast<int>(224 - u * 184);
    b = static_cast<int>(64 - u * 24);
  }
  return "rgb(" + std::to_string(r) + ',' + std::to_string(g) + ',' +
         std::to_string(b) + ')';
}

void draw_modules(std::ostream& os, const Mapper& m, const Netlist& netlist,
                  const Placement& placement, const SvgOptions& options) {
  for (std::size_t i = 0; i < placement.module_rects.size(); ++i) {
    const Rect& r = placement.module_rects[i];
    m.rect(os, r,
           "fill:none;stroke:#333333;stroke-width:1");
    if (options.draw_module_names && i < netlist.module_count()) {
      os << "  <text x=\"" << m.x(r.center().x) << "\" y=\""
         << m.y(r.center().y)
         << "\" font-size=\"10\" text-anchor=\"middle\" fill=\"#333333\">"
         << netlist.modules()[i].name << "</text>\n";
    }
  }
  // Chip outline and terminals.
  m.rect(os, placement.chip, "fill:none;stroke:#000000;stroke-width:2");
  for (const Terminal& t : netlist.terminals()) {
    const double px = m.x(placement.chip.xlo + t.fx * placement.chip.width());
    const double py = m.y(placement.chip.ylo + t.fy * placement.chip.height());
    os << "  <circle cx=\"" << px << "\" cy=\"" << py
       << "\" r=\"2.5\" fill=\"#0055aa\"/>\n";
  }
}

}  // namespace

void write_svg(std::ostream& os, const Netlist& netlist,
               const Placement& placement, const SvgOptions& options) {
  const Mapper m = Mapper::fit(placement.chip, options.canvas_px);
  open_svg(os, m);
  draw_modules(os, m, netlist, placement, options);
  close_svg(os);
}

void write_svg(std::ostream& os, const Netlist& netlist,
               const Placement& placement, const CongestionMap& map,
               const SvgOptions& options) {
  const Mapper m = Mapper::fit(placement.chip, options.canvas_px);
  open_svg(os, m);
  const double peak = std::max(map.max_value(), 1e-12);
  for (int cy = 0; cy < map.grid().ny(); ++cy) {
    for (int cx = 0; cx < map.grid().nx(); ++cx) {
      const double v = map.at(cx, cy);
      if (v <= 0.0) continue;
      m.rect(os, map.grid().cell_rect(cx, cy),
             "fill:" + heat_color(v / peak) +
                 ";fill-opacity:" + std::to_string(options.heat_alpha) +
                 ";stroke:none");
    }
  }
  draw_modules(os, m, netlist, placement, options);
  close_svg(os);
}

void write_svg(std::ostream& os, const Netlist& netlist,
               const Placement& placement, const IrregularCongestionMap& map,
               const SvgOptions& options) {
  const Mapper m = Mapper::fit(placement.chip, options.canvas_px);
  open_svg(os, m);
  double peak = 1e-300;
  for (int iy = 0; iy < map.ny(); ++iy) {
    for (int ix = 0; ix < map.nx(); ++ix) {
      peak = std::max(peak, map.density(ix, iy));
    }
  }
  for (int iy = 0; iy < map.ny(); ++iy) {
    for (int ix = 0; ix < map.nx(); ++ix) {
      const double v = map.density(ix, iy);
      if (v <= 0.0) continue;
      m.rect(os, map.lines().cell_rect(ix, iy),
             "fill:" + heat_color(v / peak) +
                 ";fill-opacity:" + std::to_string(options.heat_alpha) +
                 ";stroke:none");
    }
  }
  // Cut lines (Figure 5).
  for (const double x : map.lines().xs()) {
    os << "  <line x1=\"" << m.x(x) << "\" y1=\"0\" x2=\"" << m.x(x)
       << "\" y2=\"" << m.h()
       << "\" stroke=\"#7788aa\" stroke-width=\"0.4\"/>\n";
  }
  for (const double y : map.lines().ys()) {
    os << "  <line x1=\"0\" y1=\"" << m.y(y) << "\" x2=\"" << m.w()
       << "\" y2=\"" << m.y(y)
       << "\" stroke=\"#7788aa\" stroke-width=\"0.4\"/>\n";
  }
  draw_modules(os, m, netlist, placement, options);
  close_svg(os);
}

}  // namespace ficon
