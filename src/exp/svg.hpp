// SVG rendering of floorplans and congestion maps — the visual artifacts
// (cf. the paper's Figures 3-5) for reports and debugging.
#pragma once

#include <iosfwd>
#include <optional>

#include "circuit/netlist.hpp"
#include "congestion/congestion_map.hpp"
#include "congestion/irregular_grid.hpp"

namespace ficon {

struct SvgOptions {
  double canvas_px = 800.0;   ///< longer chip edge in pixels
  bool draw_module_names = true;
  bool draw_nets = false;     ///< routing-range outlines of 2-pin nets
  double heat_alpha = 0.65;   ///< opacity of the congestion overlay
};

/// Render the placement (module outlines + names) to SVG.
void write_svg(std::ostream& os, const Netlist& netlist,
               const Placement& placement, const SvgOptions& options = {});

/// Render the placement with a fixed-grid congestion heat overlay.
void write_svg(std::ostream& os, const Netlist& netlist,
               const Placement& placement, const CongestionMap& map,
               const SvgOptions& options = {});

/// Render the placement with the Irregular-Grid density overlay and its
/// cut lines — the Figure 5 picture for a real circuit.
void write_svg(std::ostream& os, const Netlist& netlist,
               const Placement& placement, const IrregularCongestionMap& map,
               const SvgOptions& options = {});

}  // namespace ficon
