#include "exp/experiment.hpp"

#include <iostream>

#include "route/two_pin.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace ficon {

const JudgedRun& SeedSweep::best() const {
  FICON_REQUIRE(!runs.empty(), "empty sweep");
  const JudgedRun* best = &runs.front();
  for (const JudgedRun& r : runs) {
    if (r.solution.metrics.cost < best->solution.metrics.cost) best = &r;
  }
  return *best;
}

namespace {
template <typename F>
double mean_over(const std::vector<JudgedRun>& runs, F&& get) {
  if (runs.empty()) return 0.0;
  double sum = 0.0;
  for (const JudgedRun& r : runs) sum += get(r);
  return sum / static_cast<double>(runs.size());
}
}  // namespace

double SeedSweep::mean_area() const {
  return mean_over(runs, [](const JudgedRun& r) { return r.solution.metrics.area; });
}
double SeedSweep::mean_wirelength() const {
  return mean_over(runs,
                   [](const JudgedRun& r) { return r.solution.metrics.wirelength; });
}
double SeedSweep::mean_congestion() const {
  return mean_over(runs,
                   [](const JudgedRun& r) { return r.solution.metrics.congestion; });
}
double SeedSweep::mean_seconds() const {
  return mean_over(runs, [](const JudgedRun& r) { return r.solution.seconds; });
}
double SeedSweep::mean_judging() const {
  return mean_over(runs, [](const JudgedRun& r) { return r.judging_cost; });
}

SeedSweep run_seed_sweep(const Netlist& netlist, const FloorplanOptions& base,
                         int seeds, const FixedGridModel& judge) {
  FICON_REQUIRE(seeds >= 1, "need at least one seed");
  SeedSweep sweep;
  sweep.runs.resize(static_cast<std::size_t>(seeds));
  // Independent annealing runs fan out across the pool, one block per
  // seed. Each run's RNG stream is derived from the seed index alone
  // (SplitMix64 expansion), each writes only its own slot, and each uses a
  // private copy of the judging model — so FICON_SEEDS=N produces the same
  // N solutions in the same order at every FICON_THREADS setting. Nested
  // model evaluations inside a run execute inline (see thread_pool.hpp).
  ThreadPool::global().run(seeds, [&](int s) {
    FloorplanOptions options = base;
    options.seed = SplitMix64(base.seed + static_cast<std::uint64_t>(s)).next();
    const Floorplanner planner(netlist, options);
    JudgedRun run;
    run.solution = planner.run();
    const auto nets = decompose_to_two_pin(netlist, run.solution.placement);
    const FixedGridModel local_judge(judge.params());
    run.judging_cost = local_judge.cost(nets, run.solution.placement.chip);
    sweep.runs[static_cast<std::size_t>(s)] = std::move(run);
  });
  return sweep;
}

ExperimentConfig experiment_config_from_env() {
  ExperimentConfig config;
  config.seeds = std::max(1, env_int("FICON_SEEDS", 3));
  config.scale = env_double("FICON_SCALE", 0.35);
  config.circuits = env_list(
      "FICON_CIRCUITS", {"apte", "xerox", "hp", "ami33", "ami49"});
  config.judging_pitch = env_double("FICON_JUDGING_PITCH", 10.0);
  return config;
}

void print_scale_banner(const ExperimentConfig& config) {
  std::cout << "# seeds=" << config.seeds << " (paper: 20), SA scale="
            << config.scale << " (paper ~1.0), threads="
            << ThreadPool::global().threads()
            << "; set FICON_SEEDS / FICON_SCALE / FICON_CIRCUITS / "
               "FICON_THREADS to rescale\n";
}

}  // namespace ficon
