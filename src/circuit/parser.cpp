#include "circuit/parser.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace ficon {
namespace {

[[noreturn]] void parse_error(int line, const std::string& what) {
  throw std::invalid_argument("parse error at line " + std::to_string(line) +
                              ": " + what);
}

/// Strip a trailing '#'-comment and surrounding whitespace.
std::string clean_line(std::string line) {
  if (const auto pos = line.find('#'); pos != std::string::npos) {
    line.erase(pos);
  }
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

/// Parse "<module>[@fx,fy]" or a bare terminal name.
Pin parse_pin_token(const std::string& token,
                    const std::map<std::string, int>& module_index,
                    const std::map<std::string, int>& terminal_index,
                    const std::vector<Terminal>& terminals, int line) {
  std::string pin_name = token;
  double fx = 0.5, fy = 0.5;
  bool has_offset = false;
  if (const auto at = token.find('@'); at != std::string::npos) {
    pin_name = token.substr(0, at);
    const std::string coords = token.substr(at + 1);
    const auto comma = coords.find(',');
    if (comma == std::string::npos) parse_error(line, "pin offset needs fx,fy");
    try {
      fx = std::stod(coords.substr(0, comma));
      fy = std::stod(coords.substr(comma + 1));
    } catch (const std::exception&) {
      parse_error(line, "bad pin offset '" + coords + "'");
    }
    has_offset = true;
  }
  if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) {
    parse_error(line, "pin offset outside [0,1]");
  }
  if (const auto it = module_index.find(pin_name); it != module_index.end()) {
    return Pin::on_module(it->second, fx, fy);
  }
  if (const auto it = terminal_index.find(pin_name);
      it != terminal_index.end()) {
    if (has_offset) {
      parse_error(line, "terminal pin '" + pin_name +
                            "' cannot carry an @offset (position is fixed "
                            "by the terminal declaration)");
    }
    return Pin::on_terminal(it->second,
                            terminals[static_cast<std::size_t>(it->second)]);
  }
  parse_error(line, "unknown module or terminal '" + pin_name + "' in net");
}

}  // namespace

Netlist parse_netlist(std::istream& in) {
  std::string circuit_name = "unnamed";
  std::vector<Module> modules;
  std::vector<Terminal> terminals;
  std::vector<Net> nets;
  std::map<std::string, int> module_index;
  std::map<std::string, int> terminal_index;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string keyword;
    is >> keyword;
    if (keyword == "circuit") {
      if (!(is >> circuit_name)) parse_error(line_no, "circuit needs a name");
    } else if (keyword == "module") {
      Module m;
      if (!(is >> m.name >> m.width >> m.height)) {
        parse_error(line_no, "module needs: name width height");
      }
      if (m.width <= 0.0 || m.height <= 0.0) {
        parse_error(line_no, "module dimensions must be positive");
      }
      if (terminal_index.count(m.name) != 0 ||
          !module_index.emplace(m.name, static_cast<int>(modules.size()))
               .second) {
        parse_error(line_no, "duplicate module '" + m.name + "'");
      }
      modules.push_back(std::move(m));
    } else if (keyword == "terminal") {
      Terminal t;
      if (!(is >> t.name >> t.fx >> t.fy)) {
        parse_error(line_no, "terminal needs: name fx fy");
      }
      if (t.fx < 0.0 || t.fx > 1.0 || t.fy < 0.0 || t.fy > 1.0) {
        parse_error(line_no, "terminal position outside [0,1]");
      }
      if (module_index.count(t.name) != 0 ||
          !terminal_index.emplace(t.name, static_cast<int>(terminals.size()))
               .second) {
        parse_error(line_no, "duplicate terminal '" + t.name + "'");
      }
      terminals.push_back(std::move(t));
    } else if (keyword == "net") {
      Net net;
      if (!(is >> net.name)) parse_error(line_no, "net needs a name");
      std::string token;
      while (is >> token) {
        net.pins.push_back(parse_pin_token(token, module_index,
                                           terminal_index, terminals,
                                           line_no));
      }
      if (net.pins.size() < 2) parse_error(line_no, "net needs >= 2 pins");
      nets.push_back(std::move(net));
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  return Netlist(circuit_name, std::move(modules), std::move(terminals),
                 std::move(nets));
}

Netlist load_netlist(const std::string& path) {
  std::ifstream in(path);
  FICON_REQUIRE(in.good(), "cannot open netlist file '" + path + "'");
  return parse_netlist(in);
}

void save_netlist(const Netlist& netlist, std::ostream& out) {
  out << "# ficon netlist, " << netlist.module_count() << " modules, "
      << netlist.terminal_count() << " terminals, " << netlist.net_count()
      << " nets\n";
  out << "circuit " << netlist.name() << '\n';
  out.precision(17);
  for (const Module& m : netlist.modules()) {
    out << "module " << m.name << ' ' << m.width << ' ' << m.height << '\n';
  }
  for (const Terminal& t : netlist.terminals()) {
    out << "terminal " << t.name << ' ' << t.fx << ' ' << t.fy << '\n';
  }
  for (const Net& net : netlist.nets()) {
    out << "net " << net.name;
    for (const Pin& pin : net.pins) {
      if (pin.is_terminal()) {
        out << ' '
            << netlist.terminals()[static_cast<std::size_t>(pin.terminal)].name;
      } else {
        out << ' '
            << netlist.modules()[static_cast<std::size_t>(pin.module)].name
            << '@' << pin.fx << ',' << pin.fy;
      }
    }
    out << '\n';
  }
}

// ---------------------------------------------------------------------------
// GSRC bookshelf format
// ---------------------------------------------------------------------------

Netlist parse_gsrc(std::istream& blocks, std::istream& nets,
                   const std::string& name) {
  return parse_gsrc(blocks, nets, nullptr, name);
}

Netlist parse_gsrc(std::istream& blocks, std::istream& nets, std::istream* pl,
                   const std::string& name) {
  std::vector<Module> modules;
  // Maps block name -> module index; kTerminalMark flags terminal pads,
  // which become Netlist terminals when a .pl stream supplies positions
  // and are dropped otherwise.
  constexpr int kTerminalMark = -1;
  std::map<std::string, int> module_index;
  std::vector<std::string> terminal_names;

  std::string raw;
  int line_no = 0;
  while (std::getline(blocks, raw)) {
    ++line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    // Skip headers and counters ("UCSC blocks 1.0", "NumTerminals : 42", ...).
    if (line.rfind("UCSC", 0) == 0 || line.rfind("UCLA", 0) == 0 ||
        line.find(':') != std::string::npos) {
      continue;
    }
    std::istringstream is(line);
    std::string block_name, kind;
    is >> block_name >> kind;
    if (kind == "terminal") {
      module_index[block_name] = kTerminalMark;
      terminal_names.push_back(block_name);
      continue;
    }
    if (kind == "hardrectilinear") {
      int corners = 0;
      is >> corners;
      if (corners != 4) {
        parse_error(line_no, "only 4-corner hardrectilinear blocks supported");
      }
      double xmin = 1e300, ymin = 1e300, xmax = -1e300, ymax = -1e300;
      // Corners look like "(0, 0)" possibly with internal spaces.
      std::string rest;
      std::getline(is, rest);
      std::string digits;
      std::vector<double> vals;
      for (const char c : rest) {
        if ((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
            c == 'e' || c == 'E') {
          digits += c;
        } else if (!digits.empty()) {
          vals.push_back(std::stod(digits));
          digits.clear();
        }
      }
      if (!digits.empty()) vals.push_back(std::stod(digits));
      if (vals.size() != 8) parse_error(line_no, "expected 4 corner points");
      for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
        xmin = std::min(xmin, vals[i]);
        xmax = std::max(xmax, vals[i]);
        ymin = std::min(ymin, vals[i + 1]);
        ymax = std::max(ymax, vals[i + 1]);
      }
      if (xmax <= xmin || ymax <= ymin) {
        parse_error(line_no, "degenerate block outline");
      }
      module_index[block_name] = static_cast<int>(modules.size());
      modules.push_back(Module{block_name, xmax - xmin, ymax - ymin});
      continue;
    }
    if (kind == "softrectangular") {
      // Soft blocks: area + aspect bounds; the slicing packer's shape
      // curves sample the allowed aspect range.
      double area = 0.0, lo = 1.0, hi = 1.0;
      is >> area >> lo >> hi;
      if (area <= 0.0) parse_error(line_no, "soft block needs positive area");
      if (lo <= 0.0 || lo > hi) {
        parse_error(line_no, "soft block needs 0 < min_aspect <= max_aspect");
      }
      module_index[block_name] = static_cast<int>(modules.size());
      modules.push_back(Module::make_soft(block_name, area, lo, hi));
      continue;
    }
    parse_error(line_no, "unknown block kind '" + kind + "'");
  }

  // --- Optional .pl stream: absolute pad coordinates, normalized into the
  // terminal bounding box so pad positions track the final chip outline.
  std::vector<Terminal> terminals;
  std::map<std::string, int> terminal_index;
  if (pl != nullptr) {
    std::map<std::string, Point> raw_positions;
    double xmin = 1e300, ymin = 1e300, xmax = -1e300, ymax = -1e300;
    line_no = 0;
    while (std::getline(*pl, raw)) {
      ++line_no;
      const std::string line = clean_line(raw);
      if (line.empty() || line.rfind("UCLA", 0) == 0 ||
          line.rfind("UCSC", 0) == 0 || line.find(':') != std::string::npos) {
        continue;
      }
      std::istringstream is(line);
      std::string entry;
      double x = 0.0, y = 0.0;
      if (!(is >> entry >> x >> y)) continue;
      const auto it = module_index.find(entry);
      if (it == module_index.end() || it->second != kTerminalMark) continue;
      raw_positions[entry] = Point{x, y};
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
    const double w = xmax > xmin ? xmax - xmin : 1.0;
    const double h = ymax > ymin ? ymax - ymin : 1.0;
    for (const std::string& t : terminal_names) {
      const auto it = raw_positions.find(t);
      if (it == raw_positions.end()) continue;  // pad without a placement
      terminal_index[t] = static_cast<int>(terminals.size());
      terminals.push_back(Terminal{t, (it->second.x - xmin) / w,
                                   (it->second.y - ymin) / h});
    }
  }

  std::vector<Net> net_list;
  line_no = 0;
  int net_counter = 0;
  Net current;
  int expected_degree = 0;
  const auto flush_net = [&]() {
    if (expected_degree == 0) return;
    if (current.pins.size() >= 2) {
      current.name = name + "_n" + std::to_string(net_counter);
      net_list.push_back(current);
    }
    ++net_counter;
    current = Net{};
    expected_degree = 0;
  };
  while (std::getline(nets, raw)) {
    ++line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    if (line.rfind("UCLA", 0) == 0 || line.rfind("UCSC", 0) == 0) continue;
    std::istringstream is(line);
    std::string first;
    is >> first;
    if (first == "NetDegree") {
      flush_net();
      std::string colon;
      is >> colon >> expected_degree;
      continue;
    }
    if (first == "NumNets" || first == "NumPins") continue;
    if (expected_degree == 0) continue;  // stray pin line before any net
    const auto it = module_index.find(first);
    if (it == module_index.end()) {
      parse_error(line_no, "pin references unknown block '" + first + "'");
    }
    if (it->second == kTerminalMark) {
      // Terminal pad: keep it when a .pl stream located it, drop otherwise.
      const auto tit = terminal_index.find(first);
      if (tit != terminal_index.end()) {
        current.pins.push_back(Pin::on_terminal(
            tit->second,
            terminals[static_cast<std::size_t>(tit->second)]));
      }
      continue;
    }
    // Optional "%x %y" offsets after the B flag are percentages of the
    // block half-dimensions; map to fractional offsets when present.
    std::string flag;
    is >> flag;
    double px = 0.0, py = 0.0;
    double fx = 0.5, fy = 0.5;
    if (is >> px >> py) {
      fx = std::clamp(0.5 + px / 100.0, 0.0, 1.0);
      fy = std::clamp(0.5 + py / 100.0, 0.0, 1.0);
    }
    current.pins.push_back(Pin::on_module(it->second, fx, fy));
  }
  flush_net();

  // Nets whose only module-side connection vanished (pads-only nets) were
  // already filtered by flush_net's degree check; the Netlist constructor
  // re-validates the rest.
  return Netlist(name, std::move(modules), std::move(terminals),
                 std::move(net_list));
}

Netlist load_gsrc(const std::string& blocks_path) {
  std::ifstream blocks(blocks_path);
  FICON_REQUIRE(blocks.good(), "cannot open '" + blocks_path + "'");
  std::string stem = blocks_path;
  if (const auto dot = stem.rfind(".blocks"); dot != std::string::npos) {
    stem.erase(dot);
  }
  const std::string nets_path = stem + ".nets";
  std::ifstream nets(nets_path);
  FICON_REQUIRE(nets.good(), "cannot open '" + nets_path + "'");
  std::string name = stem;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name.erase(0, slash + 1);
  }
  std::ifstream pl(stem + ".pl");
  if (pl.good()) {
    return parse_gsrc(blocks, nets, &pl, name);
  }
  return parse_gsrc(blocks, nets, nullptr, name);
}

}  // namespace ficon
