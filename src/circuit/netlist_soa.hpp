// Struct-of-arrays netlist view: the flat, index-based companion of
// Netlist for hot loops.
//
// Netlist is an array-of-structs (each Net owns a name and a pin vector) —
// convenient to build and validate, but walking it in the annealing inner
// loop chases one heap pointer per net and drags pin names/strings through
// the cache. NetlistSoA flattens the connectivity once per netlist into
// contiguous arrays addressed by CSR offsets, in the style of compact
// SAT-solver occurrence lists: nets index into one flat pin array, and an
// inverted module→net occurrence list lets a caller touch exactly the nets
// incident to a changed module instead of scanning every pin. The view is
// immutable after construction and safe to share across threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "geom/point.hpp"

namespace ficon {

/// @brief Flat, immutable connectivity view of one Netlist.
///
/// Indexing mirrors the source netlist exactly: module m, terminal t and
/// net n mean the same thing in both representations, and net n's pins
/// appear in the flat arrays in their original order, at
/// [pin_begin(n), pin_end(n)).
class NetlistSoA {
 public:
  explicit NetlistSoA(const Netlist& netlist);

  std::size_t module_count() const { return module_width_.size(); }
  std::size_t net_count() const { return pin_offset_.size() - 1; }
  std::size_t pin_count() const { return pin_module_.size(); }

  /// Canonical (unrotated) module dimensions, um.
  std::span<const double> module_widths() const { return module_width_; }
  std::span<const double> module_heights() const { return module_height_; }

  // --- CSR: net -> pins. ---
  std::size_t pin_begin(std::size_t net) const { return pin_offset_[net]; }
  std::size_t pin_end(std::size_t net) const { return pin_offset_[net + 1]; }
  std::size_t degree(std::size_t net) const {
    return pin_end(net) - pin_begin(net);
  }

  /// Module index of flat pin p, or -1 for a terminal pin.
  std::int32_t pin_module(std::size_t p) const { return pin_module_[p]; }
  /// Terminal index of flat pin p, or -1 for a module pin.
  std::int32_t pin_terminal(std::size_t p) const { return pin_terminal_[p]; }
  /// Fractional offsets — within the module outline for module pins,
  /// within the chip rectangle for terminal pins (same convention as Pin).
  double pin_fx(std::size_t p) const { return pin_fx_[p]; }
  double pin_fy(std::size_t p) const { return pin_fy_[p]; }

  /// True iff net n has at least one terminal pin (its pin positions then
  /// depend on the chip rectangle, not only on module geometry).
  bool net_has_terminal(std::size_t net) const {
    return net_has_terminal_[net] != 0;
  }

  // --- Occurrence lists: module -> nets (each net listed once). ---
  /// Distinct nets incident to `module`, ascending.
  std::span<const std::uint32_t> nets_of_module(std::size_t module) const {
    return std::span<const std::uint32_t>(occ_net_)
        .subspan(occ_offset_[module],
                 occ_offset_[module + 1] - occ_offset_[module]);
  }

  /// @brief Absolute position of flat pin p under `placement` —
  /// bit-identical to Placement::pin_position() on the corresponding Pin
  /// (same expressions over the same doubles).
  Point pin_position(std::size_t p, const Placement& placement) const {
    const std::int32_t m = pin_module_[p];
    const double fx = pin_fx_[p];
    const double fy = pin_fy_[p];
    if (m < 0) {
      const Rect& chip = placement.chip;
      return {chip.xlo + fx * chip.width(), chip.ylo + fy * chip.height()};
    }
    const Rect& r = placement.module_rects[static_cast<std::size_t>(m)];
    const bool rot = placement.rotated[static_cast<std::size_t>(m)];
    const double ex = rot ? fy : fx;
    const double ey = rot ? fx : fy;
    return {r.xlo + ex * r.width(), r.ylo + ey * r.height()};
  }

 private:
  std::vector<double> module_width_;
  std::vector<double> module_height_;
  // Net -> pin CSR (pin_offset_ has net_count()+1 entries).
  std::vector<std::uint32_t> pin_offset_;
  std::vector<std::int32_t> pin_module_;
  std::vector<std::int32_t> pin_terminal_;
  std::vector<double> pin_fx_;
  std::vector<double> pin_fy_;
  std::vector<std::uint8_t> net_has_terminal_;
  // Module -> net occurrence CSR (occ_offset_ has module_count()+1
  // entries; nets deduplicated and ascending within each module's slice).
  std::vector<std::uint32_t> occ_offset_;
  std::vector<std::uint32_t> occ_net_;
};

}  // namespace ficon
