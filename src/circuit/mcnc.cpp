#include "circuit/mcnc.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "util/rng.hpp"

namespace ficon {
namespace {

// Published aggregate statistics of the MCNC block benchmarks (module
// count / net count / pin count / total module area). These figures are
// widely reported in the floorplanning literature (e.g. Wong-Liu-era and
// B*-tree papers) and pin down the scale of every routing range.
const std::vector<McncSpec> kSpecs = {
    {"apte", 9, 97, 287, 46561628.0, 73},
    {"xerox", 10, 203, 698, 19350296.0, 2},
    {"hp", 11, 83, 309, 8830584.0, 45},
    {"ami33", 33, 123, 522, 1156449.0, 42},
    {"ami49", 49, 408, 953, 35445424.0, 22},
};

/// Fractional chip-outline position of pad t of T, walking the perimeter
/// counter-clockwise from the lower-left corner.
Terminal perimeter_terminal(const std::string& name, int t, int total) {
  const double u = (t + 0.5) / total;
  double fx = 0.0, fy = 0.0;
  if (u < 0.25) {
    fx = 4.0 * u;
  } else if (u < 0.5) {
    fx = 1.0;
    fy = 4.0 * (u - 0.25);
  } else if (u < 0.75) {
    fx = 1.0 - 4.0 * (u - 0.5);
    fy = 1.0;
  } else {
    fy = 1.0 - 4.0 * (u - 0.75);
  }
  return Terminal{name, fx, fy};
}

std::uint64_t name_seed(const std::string& name) {
  // FNV-1a, then SplitMix64 to spread the bits. Deterministic across
  // platforms, unlike std::hash.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return SplitMix64(h).next();
}

/// Draw module areas with a lognormal spread and renormalize so they sum
/// exactly to the target. Real macro suites mix a few large blocks with
/// many small ones; sigma = 0.8 reproduces an ami49-like spread (largest
/// block ~20x the smallest).
std::vector<double> draw_areas(int count, double total, Rng& rng) {
  std::lognormal_distribution<double> dist(0.0, 0.8);
  std::vector<double> areas(static_cast<std::size_t>(count));
  double sum = 0.0;
  for (double& a : areas) {
    a = dist(rng.engine());
    sum += a;
  }
  for (double& a : areas) a *= total / sum;
  return areas;
}

}  // namespace

const std::vector<McncSpec>& mcnc_specs() { return kSpecs; }

const McncSpec& mcnc_spec(const std::string& name) {
  for (const McncSpec& s : kSpecs) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown MCNC circuit '" + name + "'");
}

Netlist make_mcnc(const std::string& name) {
  return make_synthetic(mcnc_spec(name), name_seed(name));
}

Netlist make_synthetic(const McncSpec& spec, std::uint64_t seed) {
  FICON_REQUIRE(spec.modules >= 2, "need at least two modules");
  FICON_REQUIRE(spec.nets >= 1, "need at least one net");
  FICON_REQUIRE(spec.terminals >= 0, "negative terminal count");
  FICON_REQUIRE(spec.pins - spec.terminals >= 2 * spec.nets,
                "module-pin budget below two pins per net");
  FICON_REQUIRE(spec.total_area_um2 > 0.0, "non-positive total area");

  Rng rng(seed);

  // --- Modules: lognormal areas, aspect ratios in [1/3, 3], dimensions
  // rounded to whole micrometres (>= 1 um).
  std::vector<Module> modules;
  modules.reserve(static_cast<std::size_t>(spec.modules));
  const std::vector<double> areas =
      draw_areas(spec.modules, spec.total_area_um2, rng);
  for (int i = 0; i < spec.modules; ++i) {
    const double aspect = std::exp(rng.uniform(-std::log(3.0), std::log(3.0)));
    const double w = std::max(1.0, std::round(std::sqrt(areas[static_cast<std::size_t>(i)] * aspect)));
    const double h = std::max(1.0, std::round(areas[static_cast<std::size_t>(i)] / w));
    modules.push_back(Module{spec.name + "_m" + std::to_string(i), w, h});
  }

  // --- Connectivity clusters: modules are grouped so nets are locally
  // dense. Cluster count ~ sqrt(m) matches the community structure seen in
  // partitioned real netlists.
  const int cluster_count =
      std::max(2, static_cast<int>(std::lround(std::sqrt(spec.modules))));
  std::vector<int> cluster_of(static_cast<std::size_t>(spec.modules));
  for (int i = 0; i < spec.modules; ++i) {
    cluster_of[static_cast<std::size_t>(i)] = rng.uniform_int(0, cluster_count - 1);
  }
  std::vector<std::vector<int>> cluster_members(
      static_cast<std::size_t>(cluster_count));
  for (int i = 0; i < spec.modules; ++i) {
    cluster_members[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(i)])]
        .push_back(i);
  }
  // Guarantee no empty cluster (would make the weighted pick degenerate).
  for (std::size_t c = 0; c < cluster_members.size(); ++c) {
    if (cluster_members[c].empty()) {
      const int m = rng.uniform_int(0, spec.modules - 1);
      cluster_members[c].push_back(m);
    }
  }

  // --- Net degrees: start every net at 2 module pins, sprinkle the
  // remaining module-pin budget one pin at a time (capped at degree 8 —
  // MCNC nets are mostly 2-4 pins with a short tail). The terminal share
  // of the published pin total is added afterwards.
  std::vector<int> degree(static_cast<std::size_t>(spec.nets), 2);
  int remaining = (spec.pins - spec.terminals) - 2 * spec.nets;
  constexpr int kMaxDegree = 8;
  while (remaining > 0) {
    const std::size_t n = rng.index(degree.size());
    if (degree[n] < kMaxDegree) {
      ++degree[n];
      --remaining;
    }
  }

  // --- Nets: pick a home cluster, then draw pins mostly from it.
  constexpr double kHomeAffinity = 0.7;
  std::vector<Net> nets;
  nets.reserve(static_cast<std::size_t>(spec.nets));
  for (int n = 0; n < spec.nets; ++n) {
    Net net;
    net.name = spec.name + "_n" + std::to_string(n);
    const int home = rng.uniform_int(0, cluster_count - 1);
    const std::vector<int>& members =
        cluster_members[static_cast<std::size_t>(home)];
    std::vector<int> used;
    for (int p = 0; p < degree[static_cast<std::size_t>(n)]; ++p) {
      int module = -1;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const bool from_home = rng.chance(kHomeAffinity);
        module = from_home
                     ? members[rng.index(members.size())]
                     : rng.uniform_int(0, spec.modules - 1);
        if (std::find(used.begin(), used.end(), module) == used.end()) break;
      }
      // After 8 attempts accept a repeat only if the net already touches
      // every reachable module; a repeated pin is harmless (it collapses in
      // the MST decomposition).
      used.push_back(module);
      net.pins.push_back(
          Pin::on_module(module, rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)));
    }
    nets.push_back(std::move(net));
  }

  // --- Terminals: pads ring the chip outline; each connects to one net
  // (real MCNC pads are mostly single-net I/Os).
  std::vector<Terminal> terminals;
  terminals.reserve(static_cast<std::size_t>(spec.terminals));
  for (int t = 0; t < spec.terminals; ++t) {
    terminals.push_back(perimeter_terminal(
        spec.name + "_p" + std::to_string(t), t, spec.terminals));
    Net& net = nets[rng.index(nets.size())];
    net.pins.push_back(Pin::on_terminal(t, terminals.back()));
  }

  return Netlist(spec.name, std::move(modules), std::move(terminals),
                 std::move(nets));
}

Netlist make_scaling_circuit(int modules, std::uint64_t seed) {
  FICON_REQUIRE(modules >= 2, "need at least two modules");
  McncSpec spec;
  spec.name = "scale" + std::to_string(modules);
  spec.modules = modules;
  spec.nets = 3 * modules;
  spec.terminals = modules / 2;
  spec.pins = 8 * modules + spec.terminals;
  spec.total_area_um2 = 1.0e4 * modules;  // ~100x100 um average block
  const Netlist hard = make_synthetic(spec, seed);

  // Re-issue the modules as soft blocks of the same areas.
  std::vector<Module> soft;
  soft.reserve(hard.module_count());
  for (const Module& m : hard.modules()) {
    soft.push_back(Module::make_soft(m.name, m.area(), 1.0 / 3.0, 3.0));
  }
  return Netlist(hard.name(), std::move(soft),
                 std::vector<Terminal>(hard.terminals()),
                 std::vector<Net>(hard.nets()));
}

}  // namespace ficon
