// Deterministic MCNC-like benchmark substrate.
//
// The paper evaluates on five MCNC block-level benchmarks (apte, xerox, hp,
// ami33, ami49). The original .yal files are not redistributable here, so
// this module procedurally regenerates circuits whose *published aggregate
// statistics* match the originals: module count, total module area, net
// count and total pin count. Module areas follow a lognormal spread with
// bounded aspect ratios, and net connectivity is clustered (real netlists
// are locally dense), so routing-range size distributions — the quantity
// both congestion models actually consume — are realistic.
//
// Generation is fully deterministic per circuit name; the same name always
// yields bit-identical netlists across runs and platforms. Real MCNC/GSRC
// files can be substituted at any time via ficon::load_netlist() /
// ficon::load_gsrc() without touching the experiment code (see DESIGN.md,
// "Substitutions").
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace ficon {

/// Published aggregate statistics of one MCNC benchmark.
struct McncSpec {
  std::string name;
  int modules = 0;
  int nets = 0;
  int pins = 0;             ///< total pin count across all nets
  double total_area_um2 = 0.0;
  int terminals = 0;        ///< I/O pads, distributed on the chip outline
};

/// Specs for the five circuits used in the paper's experiments.
const std::vector<McncSpec>& mcnc_specs();

/// Look up a spec by name; throws std::invalid_argument for unknown names.
const McncSpec& mcnc_spec(const std::string& name);

/// Deterministically generate the MCNC-like circuit with the given name
/// ("apte", "xerox", "hp", "ami33", "ami49").
Netlist make_mcnc(const std::string& name);

/// Generate a fully synthetic circuit from explicit statistics; exposed for
/// tests and for scaling experiments beyond the MCNC suite.
Netlist make_synthetic(const McncSpec& spec, std::uint64_t seed);

/// Scaling ladder: a GSRC-flavoured synthetic circuit with `modules` soft
/// blocks (aspect range [1/3, 3]), ~3 nets and ~8 pins per module, and one
/// pad per two modules. Used by the complexity experiments (section 4.7:
/// the IR-grid count stays far below n^2). Deterministic per (modules,
/// seed).
Netlist make_scaling_circuit(int modules, std::uint64_t seed = 7);

}  // namespace ficon
