// Netlist file I/O.
//
// Two formats are supported so real benchmark data can replace the
// procedural MCNC substrate without code changes:
//
//  1. The native ficon text format (round-trippable, written by
//     save_netlist):
//
//        circuit ami33
//        module m0 420 252
//        net n0 m0@0.5,0.5 m3 m7@0.2,0.8
//
//     A pin is "<module>[@fx,fy]"; the offset defaults to the module
//     center. '#' starts a comment.
//
//  2. GSRC bookshelf floorplanning format (.blocks + .nets file pair,
//     "UCSC blocks 1.0" / "UCLA nets 1.0"). Hard rectilinear blocks with
//     4-corner outlines become modules; terminal (pad) pins are dropped
//     and nets whose degree falls below 2 are discarded, since this
//     floorplanner packs modules only (see DESIGN.md).
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace ficon {

/// Parse the native format from a stream. Throws std::invalid_argument on
/// malformed input (with a line number in the message).
Netlist parse_netlist(std::istream& in);

/// Load the native format from a file. Throws on I/O or parse errors.
Netlist load_netlist(const std::string& path);

/// Write the native format; parse_netlist(save) round-trips.
void save_netlist(const Netlist& netlist, std::ostream& out);

/// Parse a GSRC .blocks/.nets pair from streams. Terminal pads are dropped
/// (no placement information without a .pl file).
Netlist parse_gsrc(std::istream& blocks, std::istream& nets,
                   const std::string& name);

/// Parse a GSRC .blocks/.nets pair with an optional .pl stream. When `pl`
/// is non-null, terminal pads located there become Netlist terminals with
/// positions normalized into the pad bounding box (so they track the final
/// chip outline); pads absent from the .pl are dropped.
Netlist parse_gsrc(std::istream& blocks, std::istream& nets, std::istream* pl,
                   const std::string& name);

/// Load a GSRC benchmark given the path of its .blocks file; the .nets file
/// is expected next to it with the same stem, and a same-stem .pl file is
/// used for terminal positions when present.
Netlist load_gsrc(const std::string& blocks_path);

}  // namespace ficon
