// Circuit representation: hard rectangular modules and multi-pin nets.
//
// This is the input side of the floorplanning problem of section 2 of the
// paper: m modules to pack, n nets whose congestion the model estimates.
// Modules are hard macros (fixed width x height, 90-degree rotation
// allowed). Pins are attached to modules at fractional offsets so they
// travel with the module during packing; the paper's multi-pin nets are
// decomposed into 2-pin nets downstream (src/route).
#pragma once

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/check.hpp"

namespace ficon {

/// A rectangular module (macro). Dimensions in um, in the canonical
/// (unrotated) orientation.
///
/// Hard modules (the MCNC default) may only rotate by 90 degrees. Soft
/// modules (GSRC "softrectangular") keep their area but may take any
/// aspect ratio within [min_aspect, max_aspect]; width/height then hold
/// the nominal (aspect-1-ish) instantiation and the slicing packer's shape
/// curves sample the allowed range.
struct Module {
  std::string name;
  double width = 0.0;
  double height = 0.0;
  bool soft = false;
  double min_aspect = 1.0;  ///< lower bound on width/height (soft only)
  double max_aspect = 1.0;  ///< upper bound on width/height (soft only)

  double area() const { return width * height; }

  static Module make_soft(std::string name, double area, double min_aspect,
                          double max_aspect) {
    const double side = std::sqrt(area);
    return Module{std::move(name), side, side, true, min_aspect, max_aspect};
  }
};

/// An I/O terminal (pad): a pin location fixed to the chip outline. Its
/// position is fractional in the final chip rectangle, so pads track the
/// floorplan as it resizes — the same role the paper's
/// intersection-to-intersection I/O distribution plays.
struct Terminal {
  std::string name;
  double fx = 0.0;  ///< fractional x within the chip, in [0, 1]
  double fy = 0.0;  ///< fractional y within the chip, in [0, 1]
};

/// A pin: either an attachment to a module at a fractional offset within
/// the module outline ((0,0) = lower-left, (1,1) = upper-right of the
/// canonical orientation; transposed when the module is rotated), or a
/// reference to an I/O terminal (then fx/fy carry the terminal's chip
/// fraction). Exactly one of module/terminal is set.
struct Pin {
  int module = -1;    ///< index into Netlist::modules(), or -1
  int terminal = -1;  ///< index into Netlist::terminals(), or -1
  double fx = 0.5;    ///< fractional x offset in [0, 1]
  double fy = 0.5;    ///< fractional y offset in [0, 1]

  bool is_terminal() const { return terminal >= 0; }

  static Pin on_module(int module, double fx = 0.5, double fy = 0.5) {
    return Pin{module, -1, fx, fy};
  }
  static Pin on_terminal(int terminal, const Terminal& t) {
    return Pin{-1, terminal, t.fx, t.fy};
  }

  friend bool operator==(const Pin&, const Pin&) = default;
};

/// A (multi-pin) net connecting two or more pins.
struct Net {
  std::string name;
  std::vector<Pin> pins;

  std::size_t degree() const { return pins.size(); }
};

/// A netlist: the full circuit description consumed by the floorplanner.
///
/// Invariants (checked by validate()):
///  - every module has positive dimensions and a unique name,
///  - every pin references a valid module or terminal, offsets in [0, 1],
///  - every net has degree >= 2 and at least one module pin (a pad-only
///    net has no floorplanning degree of freedom).
class Netlist {
 public:
  Netlist() = default;
  Netlist(std::string name, std::vector<Module> modules, std::vector<Net> nets)
      : Netlist(std::move(name), std::move(modules), {}, std::move(nets)) {}
  Netlist(std::string name, std::vector<Module> modules,
          std::vector<Terminal> terminals, std::vector<Net> nets)
      : name_(std::move(name)),
        modules_(std::move(modules)),
        terminals_(std::move(terminals)),
        nets_(std::move(nets)) {
    validate();
  }

  const std::string& name() const { return name_; }
  const std::vector<Module>& modules() const { return modules_; }
  const std::vector<Terminal>& terminals() const { return terminals_; }
  const std::vector<Net>& nets() const { return nets_; }

  std::size_t module_count() const { return modules_.size(); }
  std::size_t terminal_count() const { return terminals_.size(); }
  std::size_t net_count() const { return nets_.size(); }

  /// Total number of pins over all nets.
  std::size_t pin_count() const;

  /// Sum of module areas (um^2) — lower bound on any packing's area.
  double total_module_area() const;

  /// Index of the module with the given name, or -1.
  int find_module(const std::string& name) const;

  /// Index of the terminal with the given name, or -1.
  int find_terminal(const std::string& name) const;

  /// Throws std::invalid_argument if any structural invariant is broken.
  void validate() const;

 private:
  std::string name_;
  std::vector<Module> modules_;
  std::vector<Terminal> terminals_;
  std::vector<Net> nets_;
};

/// Placement of every module of a netlist: the output of the slicing packer
/// and the input to wirelength / congestion evaluation.
struct Placement {
  Rect chip;                       ///< bounding box of the packing
  std::vector<Rect> module_rects;  ///< one per module, same indexing
  std::vector<bool> rotated;       ///< true if module placed transposed

  /// Absolute position (um) of a pin under this placement. Terminal pins
  /// sit at their fractional chip position (they track the chip outline as
  /// the floorplan resizes).
  Point pin_position(const Pin& pin) const {
    if (pin.is_terminal()) {
      return {chip.xlo + pin.fx * chip.width(),
              chip.ylo + pin.fy * chip.height()};
    }
    FICON_REQUIRE(pin.module >= 0 &&
                      static_cast<std::size_t>(pin.module) <
                          module_rects.size(),
                  "pin references module outside placement");
    const Rect& r = module_rects[static_cast<std::size_t>(pin.module)];
    const bool rot = rotated[static_cast<std::size_t>(pin.module)];
    const double fx = rot ? pin.fy : pin.fx;
    const double fy = rot ? pin.fx : pin.fy;
    return {r.xlo + fx * r.width(), r.ylo + fy * r.height()};
  }
};

}  // namespace ficon
