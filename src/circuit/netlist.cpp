#include "circuit/netlist.hpp"

#include <set>

namespace ficon {

std::size_t Netlist::pin_count() const {
  std::size_t total = 0;
  for (const Net& net : nets_) total += net.pins.size();
  return total;
}

double Netlist::total_module_area() const {
  double total = 0.0;
  for (const Module& m : modules_) total += m.area();
  return total;
}

int Netlist::find_module(const std::string& name) const {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Netlist::find_terminal(const std::string& name) const {
  for (std::size_t i = 0; i < terminals_.size(); ++i) {
    if (terminals_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Netlist::validate() const {
  std::set<std::string> names;
  for (const Module& m : modules_) {
    FICON_REQUIRE(m.width > 0.0 && m.height > 0.0,
                  "module '" + m.name + "' has non-positive dimensions");
    if (m.soft) {
      FICON_REQUIRE(m.min_aspect > 0.0 && m.min_aspect <= m.max_aspect,
                    "module '" + m.name + "' has an invalid aspect range");
    }
    FICON_REQUIRE(names.insert(m.name).second,
                  "duplicate module name '" + m.name + "'");
  }
  for (const Terminal& t : terminals_) {
    FICON_REQUIRE(t.fx >= 0.0 && t.fx <= 1.0 && t.fy >= 0.0 && t.fy <= 1.0,
                  "terminal '" + t.name + "' outside the chip fraction");
    FICON_REQUIRE(names.insert(t.name).second,
                  "duplicate terminal/module name '" + t.name + "'");
  }
  for (const Net& net : nets_) {
    FICON_REQUIRE(net.pins.size() >= 2,
                  "net '" + net.name + "' has degree < 2");
    bool has_module_pin = false;
    for (const Pin& pin : net.pins) {
      FICON_REQUIRE((pin.module >= 0) != (pin.terminal >= 0),
                    "net '" + net.name +
                        "' pin must reference exactly one of module/terminal");
      if (pin.is_terminal()) {
        FICON_REQUIRE(static_cast<std::size_t>(pin.terminal) <
                          terminals_.size(),
                      "net '" + net.name + "' references unknown terminal");
      } else {
        FICON_REQUIRE(static_cast<std::size_t>(pin.module) < modules_.size(),
                      "net '" + net.name + "' references unknown module");
        has_module_pin = true;
      }
      FICON_REQUIRE(pin.fx >= 0.0 && pin.fx <= 1.0 && pin.fy >= 0.0 &&
                        pin.fy <= 1.0,
                    "net '" + net.name + "' pin offset outside [0,1]");
    }
    FICON_REQUIRE(has_module_pin,
                  "net '" + net.name + "' connects only terminals");
  }
}

}  // namespace ficon
