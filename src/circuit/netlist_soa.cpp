#include "circuit/netlist_soa.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace ficon {

NetlistSoA::NetlistSoA(const Netlist& netlist) {
  const std::size_t modules = netlist.module_count();
  const std::size_t nets = netlist.net_count();
  const std::size_t pins = netlist.pin_count();
  FICON_REQUIRE(pins <= std::numeric_limits<std::uint32_t>::max() &&
                    nets < std::numeric_limits<std::uint32_t>::max(),
                "netlist exceeds 32-bit flat indexing");

  module_width_.reserve(modules);
  module_height_.reserve(modules);
  for (const Module& m : netlist.modules()) {
    module_width_.push_back(m.width);
    module_height_.push_back(m.height);
  }

  pin_offset_.reserve(nets + 1);
  pin_offset_.push_back(0);
  pin_module_.reserve(pins);
  pin_terminal_.reserve(pins);
  pin_fx_.reserve(pins);
  pin_fy_.reserve(pins);
  net_has_terminal_.reserve(nets);
  // First occurrence-counting pass shares the net flattening loop: count
  // each (module, net) incidence once so the CSR can be sized exactly.
  std::vector<std::uint32_t> occ_count(modules + 1, 0);
  for (std::size_t n = 0; n < nets; ++n) {
    const Net& net = netlist.nets()[n];
    std::uint8_t has_terminal = 0;
    const std::size_t first = pin_module_.size();
    for (const Pin& pin : net.pins) {
      pin_module_.push_back(pin.module);
      pin_terminal_.push_back(pin.terminal);
      pin_fx_.push_back(pin.fx);
      pin_fy_.push_back(pin.fy);
      if (pin.is_terminal()) {
        has_terminal = 1;
      } else {
        // Count this (module, net) pair unless an earlier pin of the same
        // net already referenced the module (net degrees are small, so the
        // backward scan is cheap and allocation-free).
        bool seen = false;
        for (std::size_t q = first; q + 1 < pin_module_.size(); ++q) {
          if (pin_module_[q] == pin.module) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          ++occ_count[static_cast<std::size_t>(pin.module) + 1];
        }
      }
    }
    pin_offset_.push_back(static_cast<std::uint32_t>(pin_module_.size()));
    net_has_terminal_.push_back(has_terminal);
  }

  // Prefix-sum the counts into offsets, then scatter net indices. Nets are
  // visited in ascending order, so each module's slice comes out sorted.
  occ_offset_.assign(modules + 1, 0);
  for (std::size_t m = 0; m < modules; ++m) {
    occ_offset_[m + 1] = occ_offset_[m] + occ_count[m + 1];
  }
  occ_net_.resize(occ_offset_[modules]);
  std::vector<std::uint32_t> cursor(occ_offset_.begin(),
                                    occ_offset_.end() - 1);
  for (std::size_t n = 0; n < nets; ++n) {
    const std::size_t begin = pin_offset_[n];
    const std::size_t end = pin_offset_[n + 1];
    for (std::size_t p = begin; p < end; ++p) {
      const std::int32_t m = pin_module_[p];
      if (m < 0) continue;
      bool seen = false;
      for (std::size_t q = begin; q < p; ++q) {
        if (pin_module_[q] == m) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        occ_net_[cursor[static_cast<std::size_t>(m)]++] =
            static_cast<std::uint32_t>(n);
      }
    }
  }
}

}  // namespace ficon
