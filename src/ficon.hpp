// Umbrella header for the FICON library.
//
// Pulls in the public surface in dependency order: geometry and circuit
// types, the floorplan representations, the congestion models behind the
// CongestionModel interface, the annealing-based Floorplanner facade, the
// experiment/reporting helpers, and the observability layer. Examples and
// downstream tools should include this instead of reaching into the
// per-subsystem headers; the internal headers remain available for code
// that wants a narrower include (e.g. translation-unit-heavy builds).
#pragma once

// Geometry primitives.
#include "geom/interval.hpp"   // IWYU pragma: export
#include "geom/point.hpp"      // IWYU pragma: export
#include "geom/rect.hpp"       // IWYU pragma: export

// Circuits: netlist model, flat SoA view, YAL parser, MCNC benchmark
// loader, and the scalable synthetic benchmark generator.
#include "circuit/mcnc.hpp"        // IWYU pragma: export
#include "circuit/netlist.hpp"     // IWYU pragma: export
#include "circuit/netlist_soa.hpp" // IWYU pragma: export
#include "circuit/parser.hpp"      // IWYU pragma: export
#include "gen/scale.hpp"           // IWYU pragma: export

// Floorplan representations and packing.
#include "floorplan/polish.hpp"         // IWYU pragma: export
#include "floorplan/sequence_pair.hpp"  // IWYU pragma: export
#include "floorplan/shape.hpp"          // IWYU pragma: export
#include "floorplan/slicing.hpp"        // IWYU pragma: export

// Net decomposition and the probabilistic global router.
#include "route/two_pin.hpp"          // IWYU pragma: export
#include "router/global_router.hpp"   // IWYU pragma: export

// Congestion models: shared flow-field base, the CongestionModel
// interface + factory, the two concrete models from the paper, and the
// probability-evaluation surface — the ProbabilityEvaluator facade plus
// the batched ProbKernel (which transitively expose the exact/approximate
// engine types). The deep per-pair headers (congestion/path_prob.hpp,
// congestion/approx.hpp) are internal outside src/congestion/ and the
// tests; ficon_lint rule F008 enforces the boundary.
#include "congestion/congestion_map.hpp"  // IWYU pragma: export
#include "congestion/field.hpp"           // IWYU pragma: export
#include "congestion/fixed_grid.hpp"      // IWYU pragma: export
#include "congestion/grid_spec.hpp"       // IWYU pragma: export
#include "congestion/irregular_grid.hpp"  // IWYU pragma: export
#include "congestion/model.hpp"           // IWYU pragma: export
#include "congestion/prob_eval.hpp"       // IWYU pragma: export
#include "congestion/prob_kernel.hpp"     // IWYU pragma: export
#include "numeric/kernel.hpp"             // IWYU pragma: export

// Annealing engine and the Floorplanner facade.
#include "anneal/annealer.hpp"    // IWYU pragma: export
#include "core/floorplanner.hpp"  // IWYU pragma: export

// Service layer: the EngineSession batch API and the ficond wire
// protocol (length-prefixed JSON frames).
#include "service/protocol.hpp"  // IWYU pragma: export
#include "service/session.hpp"   // IWYU pragma: export

// Experiments, SVG and heat-map output.
#include "exp/experiment.hpp"  // IWYU pragma: export
#include "exp/heatmap.hpp"     // IWYU pragma: export
#include "exp/svg.hpp"         // IWYU pragma: export

// Observability: counters, span timers, JSONL trace reports.
#include "obs/report.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"   // IWYU pragma: export

// Small utilities used throughout the public API.
#include "util/arena.hpp"        // IWYU pragma: export
#include "util/env.hpp"          // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/stats.hpp"        // IWYU pragma: export
#include "util/stopwatch.hpp"    // IWYU pragma: export
#include "util/table.hpp"        // IWYU pragma: export
#include "util/thread_pool.hpp"  // IWYU pragma: export
