// Axis-aligned rectangles.
//
// A Rect is the closed region [xlo, xhi] x [ylo, yhi]. Degenerate rects
// (zero width and/or height) are legal and important here: a 2-pin net whose
// pins share an x or y coordinate has a degenerate routing range (a segment
// or a point), which the congestion models treat specially (paper section 2).
#pragma once

#include <algorithm>
#include <cassert>
#include <ostream>

#include "geom/point.hpp"

namespace ficon {

/// Closed axis-aligned rectangle [xlo,xhi] x [ylo,yhi], coordinates in um.
struct Rect {
  double xlo = 0.0;
  double ylo = 0.0;
  double xhi = 0.0;
  double yhi = 0.0;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  /// Rect spanning two corner points given in any order.
  static Rect spanning(const Point& a, const Point& b) {
    return Rect{std::min(a.x, b.x), std::min(a.y, b.y),
                std::max(a.x, b.x), std::max(a.y, b.y)};
  }

  /// Rect from origin (lower-left) and size.
  static Rect from_size(const Point& origin, double w, double h) {
    return Rect{origin.x, origin.y, origin.x + w, origin.y + h};
  }

  double width() const { return xhi - xlo; }
  double height() const { return yhi - ylo; }
  double area() const { return width() * height(); }
  double half_perimeter() const { return width() + height(); }
  Point center() const { return {(xlo + xhi) * 0.5, (ylo + yhi) * 0.5}; }
  Point lower_left() const { return {xlo, ylo}; }
  Point upper_right() const { return {xhi, yhi}; }

  /// True iff the invariant xlo <= xhi && ylo <= yhi holds.
  bool valid() const { return xlo <= xhi && ylo <= yhi; }

  /// Zero width AND zero height (a point).
  bool is_point() const { return width() == 0.0 && height() == 0.0; }
  /// Zero width XOR zero height (a horizontal or vertical segment).
  bool is_segment() const { return (width() == 0.0) != (height() == 0.0); }
  /// Positive area.
  bool is_proper() const { return width() > 0.0 && height() > 0.0; }

  /// Closed-region containment (boundary counts as inside).
  bool contains(const Point& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }

  /// True iff `r` lies entirely within this rect (boundaries may touch).
  bool contains(const Rect& r) const {
    return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
  }

  /// Closed-region overlap test (shared boundary counts as overlap).
  bool overlaps(const Rect& r) const {
    return xlo <= r.xhi && r.xlo <= xhi && ylo <= r.yhi && r.ylo <= yhi;
  }

  /// Open-region overlap test: true only if the intersection has positive
  /// area. Used by packing validity checks, where modules may abut.
  bool overlaps_interior(const Rect& r) const {
    return xlo < r.xhi && r.xlo < xhi && ylo < r.yhi && r.ylo < yhi;
  }

  /// Intersection with `r`; result may be invalid() if disjoint.
  Rect intersection(const Rect& r) const {
    return Rect{std::max(xlo, r.xlo), std::max(ylo, r.ylo),
                std::min(xhi, r.xhi), std::min(yhi, r.yhi)};
  }

  /// Smallest rect containing both this and `r`.
  Rect united(const Rect& r) const {
    return Rect{std::min(xlo, r.xlo), std::min(ylo, r.ylo),
                std::max(xhi, r.xhi), std::max(yhi, r.yhi)};
  }

  /// Rect translated by (dx, dy).
  Rect translated(double dx, double dy) const {
    return Rect{xlo + dx, ylo + dy, xhi + dx, yhi + dy};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo << ", " << r.ylo << " .. " << r.xhi << ", "
            << r.yhi << ']';
}

/// Closed integer cell-index rectangle [xlo..xhi] x [ylo..yhi]; used for the
/// fine-grid index span of an IR-grid inside a net's routing range.
struct GridRect {
  int xlo = 0;
  int ylo = 0;
  int xhi = 0;
  int yhi = 0;

  friend constexpr bool operator==(const GridRect&, const GridRect&) = default;

  int nx() const { return xhi - xlo + 1; }
  int ny() const { return yhi - ylo + 1; }
  long long cell_count() const {
    return static_cast<long long>(nx()) * static_cast<long long>(ny());
  }
  bool valid() const { return xlo <= xhi && ylo <= yhi; }
  bool contains(int x, int y) const {
    return x >= xlo && x <= xhi && y >= ylo && y <= yhi;
  }
};

inline std::ostream& operator<<(std::ostream& os, const GridRect& r) {
  return os << '[' << r.xlo << ".." << r.xhi << "] x [" << r.ylo << ".."
            << r.yhi << ']';
}

}  // namespace ficon
