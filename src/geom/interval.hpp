// 1-D closed intervals, used by cut-line bookkeeping.
#pragma once

#include <algorithm>
#include <ostream>

namespace ficon {

/// Closed interval [lo, hi] on the real line.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  friend constexpr bool operator==(const Interval&, const Interval&) = default;

  static Interval spanning(double a, double b) {
    return Interval{std::min(a, b), std::max(a, b)};
  }

  double length() const { return hi - lo; }
  bool valid() const { return lo <= hi; }
  bool contains(double v) const { return v >= lo && v <= hi; }
  bool overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }

  Interval intersection(const Interval& o) const {
    return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.lo << ", " << iv.hi << ']';
}

}  // namespace ficon
