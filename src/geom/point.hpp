// Point types for floorplan geometry.
//
// Coordinates are in micrometres (um) throughout the library unless a
// function documents otherwise; MCNC-scale chips are a few millimetres, so
// doubles hold all coordinates exactly enough (values < 1e7, integer-ish).
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace ficon {

/// A 2-D point with real coordinates (um).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
};

/// Manhattan (L1) distance between two points.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean (L2) distance between two points.
inline double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

/// A 2-D point with integral grid coordinates (cell indices).
struct GridPoint {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(const GridPoint&, const GridPoint&) = default;
  friend constexpr auto operator<=>(const GridPoint&, const GridPoint&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const GridPoint& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace ficon
