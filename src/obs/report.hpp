/// \file
/// Trace export: JSON Lines for machines, a `TextTable` summary for
/// humans, and a validator for the JSONL schema.
///
/// JSONL schema (one object per line, discriminated by "type"):
///
///   {"type":"meta","version":2,"tool":"..."}
///   {"type":"counter","name":"...","value":N}
///   {"type":"phase","name":"pack|decompose|congestion",
///    "calls":N,"seconds":S}
///   {"type":"hist","name":"repack_latency_ns|decompose_latency_ns|
///    congestion_latency_ns|accept_ratio_ppm","count":N,"sum":S,
///    "buckets":[{"lo":L,"hi":H,"count":N},...]}
///     — log-bucketed distribution; only non-empty buckets are emitted,
///       "lo" strictly increasing, bucket counts sum to "count".
///   {"type":"cache","name":"score_memo|pack_cached|decomposer",
///    "hits":N,"misses":N,"evictions":N}
///   {"type":"strategy",
///    "name":"theorem1|exact_per_region|banded_exact|degenerate",
///    "regions":N,"exact_fallbacks":N}
///   {"type":"thread_pool","thread":"...","tasks":N,
///    "queue_wait_seconds":S}
///   {"type":"anneal_temperature","run":N,"step":N,"temperature":T,
///    "proposed":N,"accepted":N,"uphill_accepted":N,
///    "proposed_m1":N,...,"accepted_m3":N,"accepted_delta":D,
///    "current_cost":C,"best_cost":B,"stall":N}
///   {"type":"anneal_summary","runs":N,"temperatures":N,"proposed":N,
///    "accepted":N,"uphill_accepted":N,"stall_temperatures":N}
///   {"type":"solution","area":A,"wirelength":W,"congestion":C,
///    "cost":K,"seconds":S}   (appended by tools, optional)
///
/// Doubles are printed with %.17g so values round-trip bit-exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/schema.hpp"
#include "obs/trace.hpp"

namespace ficon::obs {

inline constexpr int kTraceSchemaVersion = schema::kVersion;

/// Write the full report as JSON Lines. `tool` goes into the meta line.
void write_jsonl(std::ostream& os, const TraceReport& report,
                 const std::string& tool);

/// Extra "solution" record appended by CLI tools after a run.
void write_solution_jsonl(std::ostream& os, double area, double wirelength,
                          double congestion, double cost, double seconds);

/// Human summary (cache hit ratios, strategy mix, phase timings,
/// annealer totals, per-thread pool activity) via `src/exp/table`.
void write_summary(std::ostream& os, const TraceReport& report);

/// Validate one JSONL line against the schema. Returns false and fills
/// `error` (if non-null) on unknown type, missing field, or wrong field
/// kind.
bool validate_trace_line(const std::string& line, std::string* error);

/// Validate a whole stream: every non-empty line must pass, and the
/// first line must be a meta record with the current schema version.
bool validate_trace(std::istream& is, std::string* error);

/// Outcome of linting one trace stream or file. Values double as
/// `tools/trace_lint` exit codes and are ordered by severity, so a run
/// over many files reduces with max(): an unreadable file is reported
/// even when another file merely violates the schema.
enum class TraceLintResult : int {
  kOk = 0,               ///< parsed and schema-clean
  kSchemaViolation = 1,  ///< JSON parsed, but a record violates the schema
  kIoError = 2,          ///< unreadable file, or text that is not JSON
};

/// Like `validate_trace`, but distinguishes text that fails to parse as
/// JSON (kIoError) from well-formed JSON that violates the schema
/// (kSchemaViolation). `error` gets a position-tagged message.
TraceLintResult lint_trace(std::istream& is, std::string* error);

/// Open and lint `path`; kIoError when the file cannot be opened/read.
TraceLintResult lint_trace_file(const std::string& path, std::string* error);

/// Print the human summary and, when `FICON_TRACE` names an output path,
/// also write the JSONL file there. Shared by the benches and the CLI's
/// no-path mode.
void emit_env_trace(std::ostream& os, const std::string& tool);

}  // namespace ficon::obs
