#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace ficon::obs {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(const char* literal) {
    const std::size_t start = pos_;
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        pos_ = start;
        return fail(std::string("invalid literal, expected ") + literal);
      }
      ++pos_;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += 10 + (h - 'a');
              } else if (h >= 'A' && h <= 'F') {
                code += 10 + (h - 'A');
              } else {
                return fail("invalid \\u escape");
              }
            }
            if (code >= 0xD800 && code <= 0xDFFF) {
              return fail("surrogate pairs unsupported");
            }
            // UTF-8 encode the code point.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return fail("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out.type = JsonValue::Type::kObject;
        skip_whitespace();
        if (consume('}')) return true;
        while (true) {
          skip_whitespace();
          std::string key;
          if (!parse_string(key)) return false;
          skip_whitespace();
          if (!consume(':')) return fail("expected ':'");
          JsonValue member;
          if (!parse_value(member)) return false;
          out.object.emplace(std::move(key), std::move(member));
          skip_whitespace();
          if (consume(',')) continue;
          if (consume('}')) return true;
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out.type = JsonValue::Type::kArray;
        skip_whitespace();
        if (consume(']')) return true;
        while (true) {
          JsonValue element;
          if (!parse_value(element)) return false;
          out.array.push_back(std::move(element));
          skip_whitespace();
          if (consume(',')) continue;
          if (consume(']')) return true;
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return parse_literal("null");
      default:
        return parse_number(out);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace ficon::obs
