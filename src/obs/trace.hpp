/// \file
/// Low-overhead, deterministic telemetry for the annealing/evaluation
/// pipeline.
///
/// Design goals, in priority order:
///
///  1. **Near-zero cost when disabled.** Every instrumentation site goes
///     through `trace_enabled()`, a single relaxed atomic load plus a
///     predictable branch. No allocation, no clock read, no lock is
///     reached unless tracing is on (`FICON_TRACE`).
///  2. **Never perturbs results.** Counters and timers are *observers*:
///     they read the pipeline, the pipeline never reads them. Each thread
///     writes to its own sink (registered once, on first use), so there is
///     no cross-thread contention that could reorder floating-point
///     reductions or change scheduling-visible behaviour. Aggregation
///     happens only in `capture()`, at a join point.
///  3. **Thread-safe under TSan.** Sinks are `std::atomic` counters with
///     relaxed ordering (they are statistics, not synchronization);
///     event vectors are mutex-guarded; the registry of sinks is
///     mutex-guarded and holds `shared_ptr`s so a sink outlives its
///     thread.
///
/// The `FICON_TRACE` environment variable controls the initial state:
/// unset/"0"/"false"/"off" leaves tracing disabled; "1"/"true"/"on"
/// enables it; any other value enables it *and* names a JSONL output
/// path that tools (`ficon_cli`, the benches) honour via
/// `trace_output_path()`. Tests flip the toggle at runtime with
/// `set_trace_enabled()`.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>

namespace ficon::obs {

/// Every typed counter in the system. Names (see `counter_name`) are
/// stable identifiers used in the JSONL export — extend at the end of a
/// section rather than reordering.
enum class Counter : int {
  // Annealer.
  kAnnealRuns = 0,
  kAnnealTemperatures,
  kAnnealMovesProposed,
  kAnnealMovesAccepted,
  kAnnealUphillAccepted,
  kAnnealStallTemperatures,
  // Incremental-pipeline caches.
  kScoreMemoHits,
  kScoreMemoMisses,
  kScoreMemoEvictions,
  kPackCacheIncremental,
  kPackCacheFullRebuilds,
  kPackCacheNodesRecomputed,
  kPackCacheNodesTotal,
  kDecomposeCalls,
  kDecomposeNetsReused,
  kDecomposeNetsRecomputed,
  // Irregular-grid congestion model.
  kIrEvaluations,
  kIrNetsScored,
  kIrNetsDegenerate,
  kIrRegionsTheorem1,
  kIrRegionsExact,
  kIrRegionsBanded,
  kIrRegionsCertain,
  kIrTheorem1ExactFallbacks,
  // Fixed-grid (judging) congestion model.
  kFixedEvaluations,
  kFixedNetsScored,
  // Thread pool.
  kPoolJobs,
  kPoolBlocks,
  kPoolInlineBlocks,
  kPoolTasks,
  kPoolQueueWaitNs,
  kCount,
};

inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);

/// Stable snake_case identifier for the JSONL export.
const char* counter_name(Counter c);

/// Facade phases timed by `ScopedPhase`.
enum class Phase : int {
  kPack = 0,
  kDecompose,
  kCongestion,
  kCount,
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

const char* phase_name(Phase p);

/// Log-bucketed distributions. The first three mirror `Phase` (per-call
/// latency in nanoseconds, recorded automatically by `ScopedPhase`); the
/// accept-ratio histogram samples each annealing temperature's
/// accepted/proposed ratio in parts per million. Same registry
/// discipline as counters: names live in `obs/schema.hpp::kHistNames`,
/// pinned by a static_assert in `obs/trace.cpp`.
enum class Hist : int {
  kRepackNs = 0,      ///< Per-move cached re-pack latency (= Phase::kPack).
  kDecomposeNs,       ///< Per-move decomposition latency.
  kCongestionNs,      ///< Per-evaluation congestion-model latency.
  kAcceptRatioPpm,    ///< Per-temperature accepted/proposed, in ppm.
  kCount,
};

inline constexpr int kHistCount = static_cast<int>(Hist::kCount);

/// Power-of-two buckets: index 0 holds values <= 0, index b >= 1 holds
/// [2^(b-1), 2^b). 64 buckets cover the full non-negative long long
/// range, so nanosecond latencies and ppm ratios share one shape.
inline constexpr int kHistBuckets = 64;

/// Stable snake_case identifier for the JSONL export.
const char* hist_name(Hist h);

/// Bucket index for a sample (pure; shared by recorder and tests).
inline int hist_bucket(long long v) {
  if (v <= 0) return 0;
  int b = 0;
  unsigned long long u = static_cast<unsigned long long>(v);
  while (u != 0) {
    u >>= 1;
    ++b;
  }
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

namespace detail {

extern std::atomic<bool> g_enabled;

void count_slow(Counter c, long long n);
void add_phase_slow(Phase p, long long ns);
void record_hist_slow(Hist h, long long v);

}  // namespace detail

/// One relaxed load + branch; the only cost paid when tracing is off.
inline bool trace_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime toggle (tests use this; tools inherit `FICON_TRACE`).
void set_trace_enabled(bool enabled);

/// JSONL output path named by `FICON_TRACE` (empty when the variable is
/// unset or a plain on/off token).
std::string trace_output_path();

/// Add `n` to counter `c` on the calling thread's sink. No-op (one load,
/// one branch) when tracing is disabled.
inline void count(Counter c, long long n = 1) {
  if (trace_enabled()) detail::count_slow(c, n);
}

/// Record one sample into histogram `h` on the calling thread's sink.
/// Same cost discipline as `count()`: one relaxed load plus a branch
/// when tracing is off.
inline void record_hist(Hist h, long long v) {
  if (trace_enabled()) detail::record_hist_slow(h, v);
}

/// RAII span timer for a facade phase. Reads the clock only when tracing
/// is enabled at construction.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase)
      : phase_(phase), active_(trace_enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (active_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      detail::add_phase_slow(phase_, ns);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// Move-kind side channel. The neighbour functors return the move kind
/// (1..3, 0 = none) from `random_move`, but the annealer's accept loop is
/// representation-agnostic; the functor deposits the kind here and the
/// annealer collects it with `take_move_kind()`. Thread-local, so
/// concurrent annealing runs (seed sweeps) do not interleave.
void note_move_kind(int kind);
int take_move_kind();

inline constexpr int kMoveKinds = 4;  // index 0 = unknown/none, 1..3 = M1..M3.

/// Per-temperature annealer record.
struct AnnealEvent {
  int run = 0;   ///< Which annealer run (monotonic id within a process).
  int step = 0;  ///< Temperature step within the run.
  double temperature = 0.0;
  long long proposed = 0;
  long long accepted = 0;
  long long uphill_accepted = 0;
  std::array<long long, kMoveKinds> proposed_by_kind{};
  std::array<long long, kMoveKinds> accepted_by_kind{};
  double accepted_delta_sum = 0.0;  ///< Sum of accepted cost deltas.
  double current_cost = 0.0;
  double best_cost = 0.0;
  int stall = 0;  ///< Stall counter after this temperature.
};

/// Monotonic id for the next annealer run (used as AnnealEvent::run).
int next_anneal_run();

/// Record a per-temperature event on the calling thread's sink.
void record_anneal(const AnnealEvent& event);

/// Label the calling thread in thread-pool samples ("main", "worker-0",
/// ...). Threads that never call this keep a registration-order label.
void set_thread_label(const std::string& label);

/// Per-thread activity attributed by the thread pool.
struct PoolThreadSample {
  std::string thread;
  long long tasks = 0;
  long long queue_wait_ns = 0;
};

/// Merged snapshot of one log-bucketed histogram.
struct HistSnapshot {
  std::array<long long, kHistBuckets> buckets{};
  long long count = 0;  ///< Total samples (== sum of bucket counts).
  long long sum = 0;    ///< Sum of raw sample values.

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Upper edge of the bucket where the cumulative count first reaches
  /// `fraction` of the total (a conservative quantile estimate).
  long long quantile_upper_bound(double fraction) const;
};

/// Aggregated snapshot of every sink, merged at a join point.
struct TraceReport {
  std::array<long long, kCounterCount> counters{};
  std::array<long long, kPhaseCount> phase_ns{};
  std::array<long long, kPhaseCount> phase_calls{};
  std::array<HistSnapshot, kHistCount> hists{};
  std::vector<PoolThreadSample> pool_threads;
  std::vector<AnnealEvent> anneal;  ///< Sorted by (run, step).

  long long counter(Counter c) const {
    return counters[static_cast<int>(c)];
  }
  double phase_seconds(Phase p) const {
    return static_cast<double>(phase_ns[static_cast<int>(p)]) * 1e-9;
  }
  long long phase_call_count(Phase p) const {
    return phase_calls[static_cast<int>(p)];
  }
  const HistSnapshot& hist(Hist h) const {
    return hists[static_cast<int>(h)];
  }
};

/// Merge every registered sink into one report. Safe to call while other
/// threads are idle (the pipeline's own join points); not intended to be
/// called concurrently with active instrumentation.
TraceReport capture();

/// Zero all sinks and the run-id counter (the registry itself persists —
/// thread sinks are registered once per thread).
void reset();

}  // namespace ficon::obs
