/// \file
/// Minimal JSON value + recursive-descent parser, just enough to validate
/// the trace JSONL schema (tests, `tools/trace_lint`) without an external
/// dependency. Supports the full JSON grammar except `\u` surrogate
/// pairs, which the trace writer never emits.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ficon::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  bool is_object() const { return type == Type::kObject; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parse a complete JSON document. Returns nullopt on any syntax error or
/// trailing garbage; fills `error` (if non-null) with a position-tagged
/// message.
std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace ficon::obs
