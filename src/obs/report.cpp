#include "obs/report.hpp"

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/table.hpp"
#include "obs/json.hpp"
#include "obs/schema.hpp"

namespace ficon::obs {
namespace {

/// %.17g: enough digits for a double to round-trip bit-exactly.
std::string fmt_double(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

struct CacheLine {
  const char* name;
  Counter hits;
  Counter misses;
  Counter evictions;
  bool has_evictions;
};

constexpr CacheLine kCacheLines[] = {
    {"score_memo", Counter::kScoreMemoHits, Counter::kScoreMemoMisses,
     Counter::kScoreMemoEvictions, true},
    {"pack_cached", Counter::kPackCacheIncremental,
     Counter::kPackCacheFullRebuilds, Counter::kScoreMemoEvictions, false},
    {"decomposer", Counter::kDecomposeNetsReused,
     Counter::kDecomposeNetsRecomputed, Counter::kScoreMemoEvictions,
     false},
};

struct StrategyLine {
  const char* name;
  Counter regions;
  Counter fallbacks;
  bool has_fallbacks;
};

constexpr StrategyLine kStrategyLines[] = {
    {"theorem1", Counter::kIrRegionsTheorem1,
     Counter::kIrTheorem1ExactFallbacks, true},
    {"exact_per_region", Counter::kIrRegionsExact,
     Counter::kIrTheorem1ExactFallbacks, false},
    {"banded_exact", Counter::kIrRegionsBanded,
     Counter::kIrTheorem1ExactFallbacks, false},
    {"degenerate", Counter::kIrNetsDegenerate,
     Counter::kIrTheorem1ExactFallbacks, false},
};

double ratio(long long part, long long whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0.0;
}

/// Inclusive lower edge of histogram bucket `b` (see `hist_bucket`).
long long bucket_lo(int b) { return b == 0 ? 0 : 1LL << (b - 1); }

/// Exclusive upper edge; the top bucket is clamped to LLONG_MAX.
long long bucket_hi(int b) {
  if (b == 0) return 1;
  if (b >= kHistBuckets - 1) return 9223372036854775807LL;
  return 1LL << b;
}

}  // namespace

void write_jsonl(std::ostream& os, const TraceReport& report,
                 const std::string& tool) {
  os << "{\"type\":\"meta\",\"version\":" << kTraceSchemaVersion
     << ",\"tool\":\"" << json_escape(tool) << "\"}\n";
  for (int i = 0; i < kCounterCount; ++i) {
    os << "{\"type\":\"counter\",\"name\":\""
       << counter_name(static_cast<Counter>(i))
       << "\",\"value\":" << report.counters[i] << "}\n";
  }
  for (int i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    os << "{\"type\":\"phase\",\"name\":\"" << phase_name(p)
       << "\",\"calls\":" << report.phase_call_count(p)
       << ",\"seconds\":" << fmt_double(report.phase_seconds(p)) << "}\n";
  }
  for (int i = 0; i < kHistCount; ++i) {
    const HistSnapshot& h = report.hists[i];
    os << "{\"type\":\"hist\",\"name\":\""
       << hist_name(static_cast<Hist>(i)) << "\",\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"lo\":" << bucket_lo(b) << ",\"hi\":" << bucket_hi(b)
         << ",\"count\":" << h.buckets[b] << "}";
    }
    os << "]}\n";
  }
  for (const CacheLine& c : kCacheLines) {
    os << "{\"type\":\"cache\",\"name\":\"" << c.name
       << "\",\"hits\":" << report.counter(c.hits)
       << ",\"misses\":" << report.counter(c.misses) << ",\"evictions\":"
       << (c.has_evictions ? report.counter(c.evictions) : 0) << "}\n";
  }
  for (const StrategyLine& s : kStrategyLines) {
    os << "{\"type\":\"strategy\",\"name\":\"" << s.name
       << "\",\"regions\":" << report.counter(s.regions)
       << ",\"exact_fallbacks\":"
       << (s.has_fallbacks ? report.counter(s.fallbacks) : 0) << "}\n";
  }
  for (const PoolThreadSample& t : report.pool_threads) {
    os << "{\"type\":\"thread_pool\",\"thread\":\""
       << json_escape(t.thread) << "\",\"tasks\":" << t.tasks
       << ",\"queue_wait_seconds\":"
       << fmt_double(static_cast<double>(t.queue_wait_ns) * 1e-9) << "}\n";
  }
  for (const AnnealEvent& e : report.anneal) {
    os << "{\"type\":\"anneal_temperature\",\"run\":" << e.run
       << ",\"step\":" << e.step
       << ",\"temperature\":" << fmt_double(e.temperature)
       << ",\"proposed\":" << e.proposed << ",\"accepted\":" << e.accepted
       << ",\"uphill_accepted\":" << e.uphill_accepted;
    for (int k = 1; k < kMoveKinds; ++k) {
      os << ",\"proposed_m" << k << "\":" << e.proposed_by_kind[k];
    }
    for (int k = 1; k < kMoveKinds; ++k) {
      os << ",\"accepted_m" << k << "\":" << e.accepted_by_kind[k];
    }
    os << ",\"accepted_delta\":" << fmt_double(e.accepted_delta_sum)
       << ",\"current_cost\":" << fmt_double(e.current_cost)
       << ",\"best_cost\":" << fmt_double(e.best_cost)
       << ",\"stall\":" << e.stall << "}\n";
  }
  os << "{\"type\":\"anneal_summary\",\"runs\":"
     << report.counter(Counter::kAnnealRuns) << ",\"temperatures\":"
     << report.counter(Counter::kAnnealTemperatures) << ",\"proposed\":"
     << report.counter(Counter::kAnnealMovesProposed) << ",\"accepted\":"
     << report.counter(Counter::kAnnealMovesAccepted)
     << ",\"uphill_accepted\":"
     << report.counter(Counter::kAnnealUphillAccepted)
     << ",\"stall_temperatures\":"
     << report.counter(Counter::kAnnealStallTemperatures) << "}\n";
}

void write_solution_jsonl(std::ostream& os, double area, double wirelength,
                          double congestion, double cost, double seconds) {
  os << "{\"type\":\"solution\",\"area\":" << fmt_double(area)
     << ",\"wirelength\":" << fmt_double(wirelength)
     << ",\"congestion\":" << fmt_double(congestion)
     << ",\"cost\":" << fmt_double(cost)
     << ",\"seconds\":" << fmt_double(seconds) << "}\n";
}

void write_summary(std::ostream& os, const TraceReport& report) {
  os << "telemetry summary\n";

  TextTable anneal({"annealer", "value"});
  anneal.add_row({"runs", std::to_string(
                              report.counter(Counter::kAnnealRuns))});
  anneal.add_row(
      {"temperatures",
       std::to_string(report.counter(Counter::kAnnealTemperatures))});
  anneal.add_row(
      {"moves proposed",
       std::to_string(report.counter(Counter::kAnnealMovesProposed))});
  anneal.add_row(
      {"moves accepted",
       std::to_string(report.counter(Counter::kAnnealMovesAccepted))});
  anneal.add_row({"accept rate %",
                  fmt_fixed(100.0 * ratio(report.counter(
                                              Counter::kAnnealMovesAccepted),
                                          report.counter(
                                              Counter::kAnnealMovesProposed)),
                            2)});
  anneal.add_row(
      {"uphill accepted",
       std::to_string(report.counter(Counter::kAnnealUphillAccepted))});
  anneal.add_row(
      {"stall temperatures",
       std::to_string(report.counter(Counter::kAnnealStallTemperatures))});
  anneal.print(os);
  os << "\n";

  TextTable caches({"cache", "hits", "misses", "evictions", "hit %"});
  for (const CacheLine& c : kCacheLines) {
    const long long hits = report.counter(c.hits);
    const long long misses = report.counter(c.misses);
    caches.add_row(
        {c.name, std::to_string(hits), std::to_string(misses),
         std::to_string(c.has_evictions ? report.counter(c.evictions) : 0),
         fmt_fixed(100.0 * ratio(hits, hits + misses), 2)});
  }
  caches.print(os);
  os << "\n";

  TextTable strategies({"strategy", "regions", "exact fallbacks"});
  for (const StrategyLine& s : kStrategyLines) {
    strategies.add_row(
        {s.name, std::to_string(report.counter(s.regions)),
         std::to_string(s.has_fallbacks ? report.counter(s.fallbacks)
                                        : 0)});
  }
  strategies.add_row(
      {"certain (pin/full-span)",
       std::to_string(report.counter(Counter::kIrRegionsCertain)), "0"});
  strategies.print(os);
  os << "\n";

  TextTable phases({"phase", "calls", "seconds"});
  for (int i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    phases.add_row({phase_name(p),
                    std::to_string(report.phase_call_count(p)),
                    fmt_fixed(report.phase_seconds(p), 3)});
  }
  phases.print(os);
  os << "\n";

  TextTable hists({"histogram", "count", "mean", "~p50", "~p90", "~p99"});
  for (int i = 0; i < kHistCount; ++i) {
    const HistSnapshot& h = report.hists[i];
    if (h.count == 0) continue;
    hists.add_row({hist_name(static_cast<Hist>(i)),
                   std::to_string(h.count), fmt_fixed(h.mean(), 1),
                   std::to_string(h.quantile_upper_bound(0.50)),
                   std::to_string(h.quantile_upper_bound(0.90)),
                   std::to_string(h.quantile_upper_bound(0.99))});
  }
  if (hists.row_count() > 0) {
    hists.print(os);
    os << "\n";
  }

  TextTable pool({"thread", "tasks", "queue wait s"});
  for (const PoolThreadSample& t : report.pool_threads) {
    pool.add_row({t.thread, std::to_string(t.tasks),
                  fmt_fixed(static_cast<double>(t.queue_wait_ns) * 1e-9,
                            3)});
  }
  if (pool.row_count() > 0) pool.print(os);
}

namespace {

struct Field {
  const char* name;
  JsonValue::Type type;
};

/// Registered values for one string field (e.g. a counter's "name" must
/// be a registered counter name). Empty = free-form.
struct NameTable {
  const char* field = nullptr;
  const char* const* names = nullptr;
  std::size_t count = 0;
};

struct RecordSchema {
  const char* type;
  std::vector<Field> fields;
  NameTable names{};
};

template <std::size_t N>
constexpr NameTable name_table(const char* field,
                               const char* const (&names)[N]) {
  return NameTable{field, names, N};
}

const std::vector<RecordSchema>& trace_schema() {
  using T = JsonValue::Type;
  static const std::vector<RecordSchema> schema = {
      {"meta", {{"version", T::kNumber}, {"tool", T::kString}}},
      {"counter",
       {{"name", T::kString}, {"value", T::kNumber}},
       name_table("name", schema::kCounterNames)},
      {"phase",
       {{"name", T::kString},
        {"calls", T::kNumber},
        {"seconds", T::kNumber}},
       name_table("name", schema::kPhaseNames)},
      {"hist",
       {{"name", T::kString},
        {"count", T::kNumber},
        {"sum", T::kNumber},
        {"buckets", T::kArray}},
       name_table("name", schema::kHistNames)},
      {"cache",
       {{"name", T::kString},
        {"hits", T::kNumber},
        {"misses", T::kNumber},
        {"evictions", T::kNumber}},
       name_table("name", schema::kCacheNames)},
      {"strategy",
       {{"name", T::kString},
        {"regions", T::kNumber},
        {"exact_fallbacks", T::kNumber}},
       name_table("name", schema::kStrategyNames)},
      {"thread_pool",
       {{"thread", T::kString},
        {"tasks", T::kNumber},
        {"queue_wait_seconds", T::kNumber}}},
      {"anneal_temperature",
       {{"run", T::kNumber},
        {"step", T::kNumber},
        {"temperature", T::kNumber},
        {"proposed", T::kNumber},
        {"accepted", T::kNumber},
        {"uphill_accepted", T::kNumber},
        {"proposed_m1", T::kNumber},
        {"proposed_m2", T::kNumber},
        {"proposed_m3", T::kNumber},
        {"accepted_m1", T::kNumber},
        {"accepted_m2", T::kNumber},
        {"accepted_m3", T::kNumber},
        {"accepted_delta", T::kNumber},
        {"current_cost", T::kNumber},
        {"best_cost", T::kNumber},
        {"stall", T::kNumber}}},
      {"anneal_summary",
       {{"runs", T::kNumber},
        {"temperatures", T::kNumber},
        {"proposed", T::kNumber},
        {"accepted", T::kNumber},
        {"uphill_accepted", T::kNumber},
        {"stall_temperatures", T::kNumber}}},
      {"solution",
       {{"area", T::kNumber},
        {"wirelength", T::kNumber},
        {"congestion", T::kNumber},
        {"cost", T::kNumber},
        {"seconds", T::kNumber}}},
  };
  return schema;
}

TraceLintResult lint_error(std::string* error, const std::string& message,
                           TraceLintResult result) {
  if (error != nullptr) *error = message;
  return result;
}

TraceLintResult schema_error(std::string* error,
                             const std::string& message) {
  return lint_error(error, message, TraceLintResult::kSchemaViolation);
}

bool known_name(const NameTable& table, const std::string& name) {
  for (std::size_t i = 0; i < table.count; ++i) {
    if (name == table.names[i]) return true;
  }
  return false;
}

/// "hist" bucket checks beyond the generic field pass: every bucket is an
/// object of numbers with lo < hi, the lo sequence is strictly
/// increasing, and the bucket counts sum to the record's "count".
TraceLintResult lint_hist_buckets(const JsonValue& record,
                                  std::string* error) {
  const JsonValue& buckets = *record.find("buckets");
  double previous_lo = -1.0;
  bool have_previous = false;
  double total = 0.0;
  for (const JsonValue& bucket : buckets.array) {
    if (!bucket.is_object()) {
      return schema_error(error, "hist bucket is not a JSON object");
    }
    const JsonValue* lo = bucket.find("lo");
    const JsonValue* hi = bucket.find("hi");
    const JsonValue* count = bucket.find("count");
    if (lo == nullptr || !lo->is_number() || hi == nullptr ||
        !hi->is_number() || count == nullptr || !count->is_number()) {
      return schema_error(error,
                          "hist bucket lacks numeric lo/hi/count fields");
    }
    if (!(lo->number < hi->number)) {
      return schema_error(error, "hist bucket has lo >= hi");
    }
    if (have_previous && !(lo->number > previous_lo)) {
      return schema_error(error,
                          "hist bucket lo values are not strictly "
                          "increasing");
    }
    previous_lo = lo->number;
    have_previous = true;
    if (count->number < 0) {
      return schema_error(error, "hist bucket has a negative count");
    }
    total += count->number;
  }
  const double declared = record.find("count")->number;
  if (total != declared) {
    return schema_error(error,
                        "hist bucket counts do not sum to \"count\"");
  }
  return TraceLintResult::kOk;
}

/// One line: kIoError when the text is not JSON at all, kSchemaViolation
/// when it parses but is not a valid schema-v1 record.
TraceLintResult lint_trace_line(const std::string& line,
                                std::string* error) {
  std::string parse_error;
  const std::optional<JsonValue> value = parse_json(line, &parse_error);
  if (!value.has_value()) {
    return lint_error(error, parse_error, TraceLintResult::kIoError);
  }
  if (!value->is_object()) {
    return schema_error(error, "trace record is not a JSON object");
  }
  const JsonValue* type = value->find("type");
  if (type == nullptr || !type->is_string()) {
    return schema_error(error, "trace record lacks a string \"type\" field");
  }
  for (const RecordSchema& record : trace_schema()) {
    if (type->string != record.type) continue;
    for (const Field& field : record.fields) {
      const JsonValue* member = value->find(field.name);
      if (member == nullptr) {
        return schema_error(error, "record \"" + type->string +
                                       "\" lacks field \"" + field.name +
                                       "\"");
      }
      if (member->type != field.type) {
        return schema_error(error, "record \"" + type->string +
                                       "\" field \"" + field.name +
                                       "\" has the wrong type");
      }
    }
    if (record.names.field != nullptr) {
      const JsonValue* member = value->find(record.names.field);
      if (member != nullptr && !known_name(record.names, member->string)) {
        return schema_error(error, "record \"" + type->string + "\" " +
                                       record.names.field + " \"" +
                                       member->string +
                                       "\" is not in the schema registry");
      }
    }
    if (type->string == "hist") {
      const TraceLintResult hist_result = lint_hist_buckets(*value, error);
      if (hist_result != TraceLintResult::kOk) return hist_result;
    }
    return TraceLintResult::kOk;
  }
  return schema_error(error,
                      "unknown record type \"" + type->string + "\"");
}

}  // namespace

bool validate_trace_line(const std::string& line, std::string* error) {
  return lint_trace_line(line, error) == TraceLintResult::kOk;
}

TraceLintResult lint_trace(std::istream& is, std::string* error) {
  std::string line;
  long long line_number = 0;
  long long records = 0;
  bool meta_seen = false;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string line_error;
    const TraceLintResult result = lint_trace_line(line, &line_error);
    if (result != TraceLintResult::kOk) {
      return lint_error(error,
                        "line " + std::to_string(line_number) + ": " +
                            line_error,
                        result);
    }
    ++records;
    if (records == 1) {
      const JsonValue value = *parse_json(line);
      const JsonValue* type = value.find("type");
      const JsonValue* version = value.find("version");
      if (type == nullptr || type->string != "meta") {
        return schema_error(error, "first record must be a meta line");
      }
      if (version == nullptr ||
          version->number !=
              static_cast<double>(kTraceSchemaVersion)) {
        return schema_error(error, "unsupported trace schema version");
      }
      meta_seen = true;
    }
  }
  if (is.bad()) {
    return lint_error(error, "read error", TraceLintResult::kIoError);
  }
  if (!meta_seen) {
    return schema_error(error, "trace contains no records");
  }
  return TraceLintResult::kOk;
}

bool validate_trace(std::istream& is, std::string* error) {
  return lint_trace(is, error) == TraceLintResult::kOk;
}

TraceLintResult lint_trace_file(const std::string& path,
                                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return lint_error(error, "cannot open", TraceLintResult::kIoError);
  }
  return lint_trace(in, error);
}

void emit_env_trace(std::ostream& os, const std::string& tool) {
  if (!trace_enabled()) return;
  const TraceReport report = capture();
  write_summary(os, report);
  const std::string path = trace_output_path();
  if (!path.empty()) {
    std::ofstream out(path);
    if (out) {
      write_jsonl(out, report, tool);
      os << "# trace written to " << path << "\n";
    } else {
      os << "# trace: could not open " << path << " for writing\n";
    }
  }
}

}  // namespace ficon::obs
