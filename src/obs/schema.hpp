/// \file
/// Schema-v2 name registry for the trace JSONL export.
///
/// Every name that can appear in a trace record — record "type"
/// discriminators, counter names, phase names, cache names, strategy
/// names — is declared here exactly once. The writer (`obs/trace.cpp`,
/// `obs/report.cpp`) draws display names from these tables, the
/// validator (`validate_trace_line`) rejects records whose names are not
/// registered, and `tools/ficon_lint` rule F002 cross-checks that every
/// name literal emitted from `src/obs/` is present in this file.
///
/// Extending the schema therefore always starts here: add the name to
/// the right table (append — the counter table is indexed by the
/// `Counter` enum), then use it from the writer. A name used anywhere
/// else first is a compile error (counters, via static_assert) or a
/// lint/validator failure (everything else).
///
/// This header is deliberately standalone (no includes) so the registry
/// can be consumed by constexpr contexts and parsed trivially by
/// `ficon_lint`.
#pragma once

namespace ficon::obs::schema {

/// Bump when a record shape or name table changes incompatibly.
/// v2: added the "hist" record type (log-bucketed latency / accept-ratio
/// histograms) and the `kHistNames` table.
inline constexpr int kVersion = 2;

/// Record "type" discriminators, in the order the writer emits them.
inline constexpr const char* kRecordTypes[] = {
    "meta",
    "counter",
    "phase",
    "hist",
    "cache",
    "strategy",
    "thread_pool",
    "anneal_temperature",
    "anneal_summary",
    "solution",
};

/// Counter names, indexed by `ficon::obs::Counter`. `obs/trace.cpp`
/// static_asserts that this table and the enum stay the same length.
inline constexpr const char* kCounterNames[] = {
    // Annealer.
    "anneal_runs",
    "anneal_temperatures",
    "anneal_moves_proposed",
    "anneal_moves_accepted",
    "anneal_uphill_accepted",
    "anneal_stall_temperatures",
    // Incremental-pipeline caches.
    "score_memo_hits",
    "score_memo_misses",
    "score_memo_evictions",
    "pack_cache_incremental",
    "pack_cache_full_rebuilds",
    "pack_cache_nodes_recomputed",
    "pack_cache_nodes_total",
    "decompose_calls",
    "decompose_nets_reused",
    "decompose_nets_recomputed",
    // Irregular-grid congestion model.
    "ir_evaluations",
    "ir_nets_scored",
    "ir_nets_degenerate",
    "ir_regions_theorem1",
    "ir_regions_exact",
    "ir_regions_banded",
    "ir_regions_certain",
    "ir_theorem1_exact_fallbacks",
    // Fixed-grid (judging) congestion model.
    "fixed_evaluations",
    "fixed_nets_scored",
    // Thread pool.
    "pool_jobs",
    "pool_blocks",
    "pool_inline_blocks",
    "pool_tasks",
    "pool_queue_wait_ns",
};

/// Facade phases, indexed by `ficon::obs::Phase`.
inline constexpr const char* kPhaseNames[] = {
    "pack",
    "decompose",
    "congestion",
};

/// Histogram names, indexed by `ficon::obs::Hist`. `obs/trace.cpp`
/// static_asserts that this table and the enum stay the same length.
/// The first three mirror the facade phases (per-call latency in ns);
/// `accept_ratio_ppm` samples each temperature's accepted/proposed ratio
/// in parts per million so the log buckets resolve [0, 1] usefully.
inline constexpr const char* kHistNames[] = {
    "repack_latency_ns",
    "decompose_latency_ns",
    "congestion_latency_ns",
    "accept_ratio_ppm",
};

/// Cache rows of the "cache" record.
inline constexpr const char* kCacheNames[] = {
    "score_memo",
    "pack_cached",
    "decomposer",
};

/// Region-strategy rows of the "strategy" record.
inline constexpr const char* kStrategyNames[] = {
    "theorem1",
    "exact_per_region",
    "banded_exact",
    "degenerate",
};

}  // namespace ficon::obs::schema
