#include "obs/trace.hpp"

#include <algorithm>
#include <iterator>
#include <memory>

#include "obs/schema.hpp"
#include "util/env.hpp"
#include "util/mutex.hpp"

namespace ficon::obs {
namespace {

/// One sink per thread. Counters are relaxed atomics: they are pure
/// statistics, never used for synchronization, and `capture()` runs at
/// join points where the producing threads are quiescent. The
/// variable-size members (events, label) are guarded by the sink's own
/// mutex; lock order is registry.mutex before sink.mutex.
/// Per-thread histogram storage: relaxed-atomic bucket counts plus a
/// running sum, merged into `HistSnapshot`s by `capture()`.
struct HistSink {
  std::array<std::atomic<long long>, kHistBuckets> buckets{};
  std::atomic<long long> count{0};
  std::atomic<long long> sum{0};
};

struct ThreadSink {
  std::array<std::atomic<long long>, kCounterCount> counters{};
  std::array<std::atomic<long long>, kPhaseCount> phase_ns{};
  std::array<std::atomic<long long>, kPhaseCount> phase_calls{};
  std::array<HistSink, kHistCount> hists{};
  Mutex mutex;
  std::vector<AnnealEvent> events FICON_GUARDED_BY(mutex);
  std::string label FICON_GUARDED_BY(mutex);
};

struct Registry {
  Mutex mutex;
  std::vector<std::shared_ptr<ThreadSink>> sinks FICON_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

ThreadSink& local_sink() {
  thread_local std::shared_ptr<ThreadSink> sink = [] {
    auto s = std::make_shared<ThreadSink>();
    Registry& r = registry();
    const MutexLock lock(r.mutex);
    {
      const MutexLock sink_lock(s->mutex);
      s->label = "thread-" + std::to_string(r.sinks.size());
    }
    r.sinks.push_back(s);
    return s;
  }();
  return *sink;
}

struct TraceConfig {
  bool enabled = false;
  std::string path;
};

const TraceConfig& trace_config() {
  static const TraceConfig config = [] {
    TraceConfig c;
    const std::string v = env_string("FICON_TRACE", "");
    if (!v.empty() && v != "0" && v != "false" && v != "off") {
      c.enabled = true;
      if (v != "1" && v != "true" && v != "on") c.path = v;
    }
    return c;
  }();
  return config;
}

std::atomic<int> g_next_run{0};

// Reads FICON_TRACE once at static-init time so instrumented code sees
// the right toggle before main() runs.
struct EnvInit {
  EnvInit() {
    detail::g_enabled.store(trace_config().enabled,
                            std::memory_order_relaxed);
  }
};
EnvInit g_env_init;

thread_local int g_move_kind = 0;

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

void count_slow(Counter c, long long n) {
  local_sink().counters[static_cast<int>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void add_phase_slow(Phase p, long long ns) {
  ThreadSink& sink = local_sink();
  sink.phase_ns[static_cast<int>(p)].fetch_add(ns,
                                               std::memory_order_relaxed);
  sink.phase_calls[static_cast<int>(p)].fetch_add(
      1, std::memory_order_relaxed);
  // Phases double as per-call latency distributions: Phase and the
  // leading Hist entries are index-aligned, so every ScopedPhase sample
  // also lands in the matching latency histogram for free.
  static_assert(static_cast<int>(Phase::kPack) ==
                    static_cast<int>(Hist::kRepackNs),
                "Phase/Hist latency indices out of sync");
  static_assert(static_cast<int>(Phase::kDecompose) ==
                    static_cast<int>(Hist::kDecomposeNs),
                "Phase/Hist latency indices out of sync");
  static_assert(static_cast<int>(Phase::kCongestion) ==
                    static_cast<int>(Hist::kCongestionNs),
                "Phase/Hist latency indices out of sync");
  record_hist_slow(static_cast<Hist>(p), ns);
}

void record_hist_slow(Hist h, long long v) {
  HistSink& hist = local_sink().hists[static_cast<int>(h)];
  hist.buckets[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum.fetch_add(v, std::memory_order_relaxed);
}

}  // namespace detail

// The schema registry is the single source of truth for export names;
// these asserts pin the tables to the enums so a counter added without a
// registered name (or vice versa) is a compile error.
static_assert(std::size(schema::kCounterNames) == kCounterCount,
              "obs/schema.hpp counter-name table out of sync with Counter");
static_assert(std::size(schema::kPhaseNames) == kPhaseCount,
              "obs/schema.hpp phase-name table out of sync with Phase");
static_assert(std::size(schema::kHistNames) == kHistCount,
              "obs/schema.hpp hist-name table out of sync with Hist");

const char* counter_name(Counter c) {
  const int i = static_cast<int>(c);
  if (i < 0 || i >= kCounterCount) return "unknown";
  return schema::kCounterNames[i];
}

const char* phase_name(Phase p) {
  const int i = static_cast<int>(p);
  if (i < 0 || i >= kPhaseCount) return "unknown";
  return schema::kPhaseNames[i];
}

const char* hist_name(Hist h) {
  const int i = static_cast<int>(h);
  if (i < 0 || i >= kHistCount) return "unknown";
  return schema::kHistNames[i];
}

long long HistSnapshot::quantile_upper_bound(double fraction) const {
  if (count <= 0) return 0;
  const double target = fraction * static_cast<double>(count);
  long long cumulative = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target) {
      // Upper edge of bucket b: 1 for the <=0 bucket, else 2^b.
      if (b == 0) return 1;
      if (b >= 62) return (1LL << 62);
      return 1LL << b;
    }
  }
  return (1LL << 62);
}

void set_trace_enabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

std::string trace_output_path() { return trace_config().path; }

void note_move_kind(int kind) { g_move_kind = kind; }

int take_move_kind() {
  const int kind = g_move_kind;
  g_move_kind = 0;
  return kind;
}

int next_anneal_run() {
  return g_next_run.fetch_add(1, std::memory_order_relaxed);
}

void record_anneal(const AnnealEvent& event) {
  ThreadSink& sink = local_sink();
  const MutexLock lock(sink.mutex);
  sink.events.push_back(event);
}

void set_thread_label(const std::string& label) {
  ThreadSink& sink = local_sink();
  const MutexLock lock(sink.mutex);
  sink.label = label;
}

TraceReport capture() {
  TraceReport report;
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  for (const std::shared_ptr<ThreadSink>& sink : r.sinks) {
    for (int i = 0; i < kCounterCount; ++i) {
      report.counters[i] +=
          sink->counters[i].load(std::memory_order_relaxed);
    }
    for (int i = 0; i < kPhaseCount; ++i) {
      report.phase_ns[i] +=
          sink->phase_ns[i].load(std::memory_order_relaxed);
      report.phase_calls[i] +=
          sink->phase_calls[i].load(std::memory_order_relaxed);
    }
    for (int i = 0; i < kHistCount; ++i) {
      HistSnapshot& merged = report.hists[i];
      const HistSink& hist = sink->hists[i];
      for (int b = 0; b < kHistBuckets; ++b) {
        merged.buckets[b] += hist.buckets[b].load(std::memory_order_relaxed);
      }
      merged.count += hist.count.load(std::memory_order_relaxed);
      merged.sum += hist.sum.load(std::memory_order_relaxed);
    }
    const long long tasks =
        sink->counters[static_cast<int>(Counter::kPoolTasks)].load(
            std::memory_order_relaxed);
    const long long wait_ns =
        sink->counters[static_cast<int>(Counter::kPoolQueueWaitNs)].load(
            std::memory_order_relaxed);
    {
      const MutexLock sink_lock(sink->mutex);
      if (tasks > 0 || wait_ns > 0) {
        report.pool_threads.push_back({sink->label, tasks, wait_ns});
      }
      report.anneal.insert(report.anneal.end(), sink->events.begin(),
                           sink->events.end());
    }
  }
  std::sort(report.pool_threads.begin(), report.pool_threads.end(),
            [](const PoolThreadSample& a, const PoolThreadSample& b) {
              return a.thread < b.thread;
            });
  std::stable_sort(report.anneal.begin(), report.anneal.end(),
                   [](const AnnealEvent& a, const AnnealEvent& b) {
                     return a.run != b.run ? a.run < b.run
                                           : a.step < b.step;
                   });
  return report;
}

void reset() {
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  for (const std::shared_ptr<ThreadSink>& sink : r.sinks) {
    for (auto& c : sink->counters) c.store(0, std::memory_order_relaxed);
    for (auto& p : sink->phase_ns) p.store(0, std::memory_order_relaxed);
    for (auto& p : sink->phase_calls) {
      p.store(0, std::memory_order_relaxed);
    }
    for (auto& h : sink->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
    }
    const MutexLock sink_lock(sink->mutex);
    sink->events.clear();
  }
  g_next_run.store(0, std::memory_order_relaxed);
}

}  // namespace ficon::obs
