#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace ficon::obs {
namespace {

/// One sink per thread. Counters are relaxed atomics: they are pure
/// statistics, never used for synchronization, and `capture()` runs at
/// join points where the producing threads are quiescent.
struct ThreadSink {
  std::array<std::atomic<long long>, kCounterCount> counters{};
  std::array<std::atomic<long long>, kPhaseCount> phase_ns{};
  std::array<std::atomic<long long>, kPhaseCount> phase_calls{};
  std::mutex events_mutex;
  std::vector<AnnealEvent> events;
  std::string label;  ///< Guarded by the registry mutex.
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadSink>> sinks;
};

Registry& registry() {
  static Registry r;
  return r;
}

ThreadSink& local_sink() {
  thread_local std::shared_ptr<ThreadSink> sink = [] {
    auto s = std::make_shared<ThreadSink>();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    s->label = "thread-" + std::to_string(r.sinks.size());
    r.sinks.push_back(s);
    return s;
  }();
  return *sink;
}

struct TraceConfig {
  bool enabled = false;
  std::string path;
};

const TraceConfig& trace_config() {
  static const TraceConfig config = [] {
    TraceConfig c;
    const char* value = std::getenv("FICON_TRACE");
    if (value != nullptr && *value != '\0') {
      const std::string v(value);
      if (v != "0" && v != "false" && v != "off") {
        c.enabled = true;
        if (v != "1" && v != "true" && v != "on") c.path = v;
      }
    }
    return c;
  }();
  return config;
}

std::atomic<int> g_next_run{0};

// Reads FICON_TRACE once at static-init time so instrumented code sees
// the right toggle before main() runs.
struct EnvInit {
  EnvInit() {
    detail::g_enabled.store(trace_config().enabled,
                            std::memory_order_relaxed);
  }
};
EnvInit g_env_init;

thread_local int g_move_kind = 0;

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

void count_slow(Counter c, long long n) {
  local_sink().counters[static_cast<int>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void add_phase_slow(Phase p, long long ns) {
  ThreadSink& sink = local_sink();
  sink.phase_ns[static_cast<int>(p)].fetch_add(ns,
                                               std::memory_order_relaxed);
  sink.phase_calls[static_cast<int>(p)].fetch_add(
      1, std::memory_order_relaxed);
}

}  // namespace detail

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kAnnealRuns: return "anneal_runs";
    case Counter::kAnnealTemperatures: return "anneal_temperatures";
    case Counter::kAnnealMovesProposed: return "anneal_moves_proposed";
    case Counter::kAnnealMovesAccepted: return "anneal_moves_accepted";
    case Counter::kAnnealUphillAccepted: return "anneal_uphill_accepted";
    case Counter::kAnnealStallTemperatures:
      return "anneal_stall_temperatures";
    case Counter::kScoreMemoHits: return "score_memo_hits";
    case Counter::kScoreMemoMisses: return "score_memo_misses";
    case Counter::kScoreMemoEvictions: return "score_memo_evictions";
    case Counter::kPackCacheIncremental: return "pack_cache_incremental";
    case Counter::kPackCacheFullRebuilds:
      return "pack_cache_full_rebuilds";
    case Counter::kPackCacheNodesRecomputed:
      return "pack_cache_nodes_recomputed";
    case Counter::kPackCacheNodesTotal: return "pack_cache_nodes_total";
    case Counter::kDecomposeCalls: return "decompose_calls";
    case Counter::kDecomposeNetsReused: return "decompose_nets_reused";
    case Counter::kDecomposeNetsRecomputed:
      return "decompose_nets_recomputed";
    case Counter::kIrEvaluations: return "ir_evaluations";
    case Counter::kIrNetsScored: return "ir_nets_scored";
    case Counter::kIrNetsDegenerate: return "ir_nets_degenerate";
    case Counter::kIrRegionsTheorem1: return "ir_regions_theorem1";
    case Counter::kIrRegionsExact: return "ir_regions_exact";
    case Counter::kIrRegionsBanded: return "ir_regions_banded";
    case Counter::kIrRegionsCertain: return "ir_regions_certain";
    case Counter::kIrTheorem1ExactFallbacks:
      return "ir_theorem1_exact_fallbacks";
    case Counter::kFixedEvaluations: return "fixed_evaluations";
    case Counter::kFixedNetsScored: return "fixed_nets_scored";
    case Counter::kPoolJobs: return "pool_jobs";
    case Counter::kPoolBlocks: return "pool_blocks";
    case Counter::kPoolInlineBlocks: return "pool_inline_blocks";
    case Counter::kPoolTasks: return "pool_tasks";
    case Counter::kPoolQueueWaitNs: return "pool_queue_wait_ns";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kPack: return "pack";
    case Phase::kDecompose: return "decompose";
    case Phase::kCongestion: return "congestion";
    case Phase::kCount: break;
  }
  return "unknown";
}

void set_trace_enabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

std::string trace_output_path() { return trace_config().path; }

void note_move_kind(int kind) { g_move_kind = kind; }

int take_move_kind() {
  const int kind = g_move_kind;
  g_move_kind = 0;
  return kind;
}

int next_anneal_run() {
  return g_next_run.fetch_add(1, std::memory_order_relaxed);
}

void record_anneal(const AnnealEvent& event) {
  ThreadSink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.events_mutex);
  sink.events.push_back(event);
}

void set_thread_label(const std::string& label) {
  ThreadSink& sink = local_sink();  // Register before taking the lock.
  const std::lock_guard<std::mutex> lock(registry().mutex);
  sink.label = label;
}

TraceReport capture() {
  TraceReport report;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const std::shared_ptr<ThreadSink>& sink : r.sinks) {
    for (int i = 0; i < kCounterCount; ++i) {
      report.counters[i] +=
          sink->counters[i].load(std::memory_order_relaxed);
    }
    for (int i = 0; i < kPhaseCount; ++i) {
      report.phase_ns[i] +=
          sink->phase_ns[i].load(std::memory_order_relaxed);
      report.phase_calls[i] +=
          sink->phase_calls[i].load(std::memory_order_relaxed);
    }
    const long long tasks =
        sink->counters[static_cast<int>(Counter::kPoolTasks)].load(
            std::memory_order_relaxed);
    const long long wait_ns =
        sink->counters[static_cast<int>(Counter::kPoolQueueWaitNs)].load(
            std::memory_order_relaxed);
    if (tasks > 0 || wait_ns > 0) {
      report.pool_threads.push_back({sink->label, tasks, wait_ns});
    }
    {
      const std::lock_guard<std::mutex> events_lock(sink->events_mutex);
      report.anneal.insert(report.anneal.end(), sink->events.begin(),
                           sink->events.end());
    }
  }
  std::sort(report.pool_threads.begin(), report.pool_threads.end(),
            [](const PoolThreadSample& a, const PoolThreadSample& b) {
              return a.thread < b.thread;
            });
  std::stable_sort(report.anneal.begin(), report.anneal.end(),
                   [](const AnnealEvent& a, const AnnealEvent& b) {
                     return a.run != b.run ? a.run < b.run
                                           : a.step < b.step;
                   });
  return report;
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const std::shared_ptr<ThreadSink>& sink : r.sinks) {
    for (auto& c : sink->counters) c.store(0, std::memory_order_relaxed);
    for (auto& p : sink->phase_ns) p.store(0, std::memory_order_relaxed);
    for (auto& p : sink->phase_calls) {
      p.store(0, std::memory_order_relaxed);
    }
    const std::lock_guard<std::mutex> events_lock(sink->events_mutex);
    sink->events.clear();
  }
  g_next_run.store(0, std::memory_order_relaxed);
}

}  // namespace ficon::obs
