#include "core/floorplanner.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "route/two_pin.hpp"
#include "util/stopwatch.hpp"

namespace ficon {

Floorplanner::Floorplanner(const Netlist& netlist, FloorplanOptions options)
    : netlist_(&netlist),
      options_(options),
      packer_(netlist),
      sp_packer_(netlist) {
  FICON_REQUIRE(options_.objective.alpha >= 0.0 &&
                    options_.objective.beta >= 0.0 &&
                    options_.objective.gamma >= 0.0,
                "objective weights must be non-negative");
  FICON_REQUIRE(options_.effort > 0.0, "effort must be positive");
  // The per-net scoring memo is part of the incremental pipeline; turning
  // the pipeline off must also turn the memo off so the baseline path
  // measured by bench_incremental is the genuine PR-1 evaluation.
  if (!options_.incremental) {
    options_.objective.irregular.score_cache_capacity = 0;
  }
  model_ = make_congestion_model(options_.objective.model,
                                 options_.objective.irregular,
                                 options_.objective.fixed);
  if (options_.anneal.moves_per_temperature <= 0) {
    options_.anneal.moves_per_temperature = std::max(
        10, static_cast<int>(10.0 * options_.effort *
                             static_cast<double>(netlist.module_count())));
  } else {
    options_.anneal.moves_per_temperature = std::max(
        1, static_cast<int>(options_.effort *
                            options_.anneal.moves_per_temperature));
  }

  // Normalization baselines from a short random walk over the active
  // representation (fixed derived seed so the objective itself is
  // deterministic and independent of run()).
  Rng rng(SplitMix64(options_.seed ^ 0xA5A5A5A5DEADBEEFull).next());
  const int samples =
      std::max(30, 2 * static_cast<int>(netlist.module_count()));
  const bool want_congestion =
      options_.objective.model != CongestionModelKind::kNone &&
      options_.objective.gamma > 0.0;
  double area_sum = 0.0, wire_sum = 0.0, cgt_sum = 0.0;
  const auto sample_placement = [&](const Placement& placement,
                                    double area) {
    area_sum += area;
    if (options_.incremental) {
      // Decompose once and share the nets between both terms; total_length
      // sums the same edges in the same order as mst_wirelength.
      const std::span<const TwoPinNet> nets =
          decomposer_.decompose(netlist, placement);
      wire_sum += total_length(nets);
      if (want_congestion) cgt_sum += congestion_of(nets, placement.chip);
    } else {
      wire_sum += mst_wirelength(netlist, placement);
      if (want_congestion) {
        const auto nets = decompose_to_two_pin(netlist, placement);
        cgt_sum += congestion_of(nets, placement.chip);
      }
    }
  };
  if (options_.engine == FloorplanEngine::kPolishExpression) {
    PolishExpression expr =
        PolishExpression::initial(static_cast<int>(netlist.module_count()));
    for (int i = 0; i < samples; ++i) {
      expr.random_move(rng);
      if (options_.incremental) {
        const SlicingResult& packed = packer_.pack_cached_ref(expr);
        sample_placement(packed.placement, packed.area);
      } else {
        const SlicingResult packed = packer_.pack(expr);
        sample_placement(packed.placement, packed.area);
      }
    }
  } else {
    SequencePair pair =
        SequencePair::initial(static_cast<int>(netlist.module_count()));
    for (int i = 0; i < samples; ++i) {
      pair.random_move(rng);
      const SequencePairPacker::Result packed = sp_packer_.pack(pair);
      sample_placement(packed.placement, packed.area);
    }
  }
  area_scale_ = std::max(area_sum / samples, 1e-12);
  wire_scale_ = std::max(wire_sum / samples, 1e-12);
  congestion_scale_ = std::max(cgt_sum / samples, 1e-12);
}

double Floorplanner::congestion_of(std::span<const TwoPinNet> nets,
                                   const Rect& chip) const {
  if (model_ == nullptr) return 0.0;
  const obs::ScopedPhase timer(obs::Phase::kCongestion);
  return model_->cost(nets, chip);
}

double Floorplanner::raw_cost(const FloorplanMetrics& m) const {
  const FloorplanObjective& o = options_.objective;
  const double weight_sum =
      o.alpha + o.beta +
      (o.model != CongestionModelKind::kNone ? o.gamma : 0.0);
  double cost = o.alpha * (m.area / area_scale_) +
                o.beta * (m.wirelength / wire_scale_);
  if (o.model != CongestionModelKind::kNone && o.gamma > 0.0) {
    cost += o.gamma * (m.congestion / congestion_scale_);
  }
  return weight_sum > 0.0 ? cost / weight_sum : cost;
}

FloorplanMetrics Floorplanner::evaluate_placement(
    const Placement& placement) const {
  FloorplanMetrics m;
  m.area = placement.chip.area();
  const bool want_congestion =
      options_.objective.model != CongestionModelKind::kNone &&
      options_.objective.gamma > 0.0;
  if (options_.incremental) {
    // One decomposition feeds both the wirelength and congestion terms
    // (the baseline path decomposes twice); edge order is identical, so
    // both terms are bit-identical to the baseline's.
    const std::span<const TwoPinNet> nets = [&] {
      const obs::ScopedPhase timer(obs::Phase::kDecompose);
      return decomposer_.decompose(*netlist_, placement);
    }();
    m.wirelength = total_length(nets);
    if (want_congestion) m.congestion = congestion_of(nets, placement.chip);
  } else {
    {
      const obs::ScopedPhase timer(obs::Phase::kDecompose);
      m.wirelength = mst_wirelength(*netlist_, placement);
    }
    if (want_congestion) {
      const auto nets = [&] {
        const obs::ScopedPhase timer(obs::Phase::kDecompose);
        return decompose_to_two_pin(*netlist_, placement);
      }();
      m.congestion = congestion_of(nets, placement.chip);
    }
  }
  m.cost = raw_cost(m);
  return m;
}

FloorplanMetrics Floorplanner::evaluate(const PolishExpression& expr) const {
  if (options_.incremental) {
    const SlicingResult* packed = nullptr;
    {
      const obs::ScopedPhase timer(obs::Phase::kPack);
      packed = &packer_.pack_cached_ref(expr);
    }
    return evaluate_placement(packed->placement);
  }
  const SlicingResult packed = [&] {
    const obs::ScopedPhase timer(obs::Phase::kPack);
    return packer_.pack(expr);
  }();
  return evaluate_placement(packed.placement);
}

FloorplanMetrics Floorplanner::evaluate(const SequencePair& pair) const {
  const SequencePairPacker::Result packed = [&] {
    const obs::ScopedPhase timer(obs::Phase::kPack);
    return sp_packer_.pack(pair);
  }();
  return evaluate_placement(packed.placement);
}

FloorplanSolution Floorplanner::run(const SnapshotFn& snapshot) const {
  return options_.engine == FloorplanEngine::kPolishExpression
             ? run_polish(snapshot)
             : run_sequence_pair(snapshot);
}

FloorplanSolution Floorplanner::run_polish(const SnapshotFn& snapshot) const {
  Stopwatch timer;
  Annealer<PolishExpression> annealer(
      [this](const PolishExpression& e) { return evaluate(e).cost; },
      [](const PolishExpression& e, Rng& rng) {
        PolishExpression next = e;
        const int kind = next.random_move(rng);
        if (obs::trace_enabled()) obs::note_move_kind(kind);
        return next;
      },
      options_.anneal);

  Annealer<PolishExpression>::SnapshotFn hook;
  if (snapshot) {
    hook = [this, &snapshot](int step, double temperature,
                             const PolishExpression& state, double) {
      TemperatureSnapshot snap;
      snap.step = step;
      snap.temperature = temperature;
      snap.placement = packer_.pack(state).placement;
      snap.metrics = evaluate_placement(snap.placement);
      snapshot(snap);
    };
  }

  Rng rng(options_.seed);
  auto result = annealer.run(
      PolishExpression::initial(static_cast<int>(netlist_->module_count())),
      rng, hook);

  FloorplanSolution solution;
  solution.expression = result.best;
  solution.representation = result.best.to_string();
  solution.placement = packer_.pack(result.best).placement;
  solution.metrics = evaluate_placement(solution.placement);
  solution.seconds = timer.seconds();
  solution.stats = result.stats;
  return solution;
}

FloorplanSolution Floorplanner::run_sequence_pair(
    const SnapshotFn& snapshot) const {
  Stopwatch timer;
  Annealer<SequencePair> annealer(
      [this](const SequencePair& p) { return evaluate(p).cost; },
      [](const SequencePair& p, Rng& rng) {
        SequencePair next = p;
        const int kind = next.random_move(rng);
        if (obs::trace_enabled()) obs::note_move_kind(kind);
        return next;
      },
      options_.anneal);

  Annealer<SequencePair>::SnapshotFn hook;
  if (snapshot) {
    hook = [this, &snapshot](int step, double temperature,
                             const SequencePair& state, double) {
      TemperatureSnapshot snap;
      snap.step = step;
      snap.temperature = temperature;
      snap.placement = sp_packer_.pack(state).placement;
      snap.metrics = evaluate_placement(snap.placement);
      snapshot(snap);
    };
  }

  Rng rng(options_.seed);
  auto result = annealer.run(
      SequencePair::initial(static_cast<int>(netlist_->module_count())), rng,
      hook);

  FloorplanSolution solution;
  solution.representation = result.best.to_string();
  solution.placement = sp_packer_.pack(result.best).placement;
  solution.metrics = evaluate_placement(solution.placement);
  solution.seconds = timer.seconds();
  solution.stats = result.stats;
  return solution;
}

}  // namespace ficon
