// Routability-driven floorplanner facade — the system the paper embeds its
// congestion model into.
//
// Cost function (paper section 5):
//     alpha * Area + beta * Wirelength + gamma * Congestion
// with each term normalized by its average over a warm-up random walk so
// the weights are scale-free across circuits. The congestion term is
// pluggable: none (Experiment 1 baseline), the Irregular-Grid model (the
// paper's contribution) or the fixed-size-grid model (the Experiment 3
// baseline). Multi-pin nets are decomposed by minimum spanning tree and the
// wirelength column reports the decomposed Manhattan length, as in the
// paper's tables.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "anneal/annealer.hpp"
#include "circuit/netlist.hpp"
#include "congestion/fixed_grid.hpp"
#include "congestion/irregular_grid.hpp"
#include "congestion/model.hpp"
#include "floorplan/polish.hpp"
#include "floorplan/sequence_pair.hpp"
#include "floorplan/slicing.hpp"
#include "route/two_pin.hpp"

namespace ficon {

/// Floorplan representation driving the annealer. The paper uses
/// normalized Polish expressions [7]; the sequence-pair engine exists to
/// demonstrate the congestion model is floorplanner-agnostic (section 4.6:
/// "can be embedded into any general floorplanners").
enum class FloorplanEngine {
  kPolishExpression,  ///< Wong-Liu slicing floorplans (the paper's host)
  kSequencePair,      ///< Murata et al. non-slicing floorplans
};

/// @brief The annealing objective: alpha*Area + beta*Wire +
/// gamma*Congestion, each term normalized by a random-walk baseline.
struct FloorplanObjective {
  double alpha = 1.0;  ///< area weight
  double beta = 1.0;   ///< wirelength weight
  double gamma = 0.0;  ///< congestion weight (ignored for kNone)
  CongestionModelKind model = CongestionModelKind::kNone;
  IrregularGridParams irregular{};  ///< params when model == kIrregularGrid
  FixedGridParams fixed{};          ///< params when model == kFixedGrid
};

/// @brief Everything a Floorplanner run depends on; two runs with equal
/// options produce identical solutions regardless of FICON_THREADS.
struct FloorplanOptions {
  FloorplanObjective objective{};
  FloorplanEngine engine = FloorplanEngine::kPolishExpression;
  AnnealOptions anneal{};
  /// Multiplies moves_per_temperature (which itself defaults to
  /// 10 * module_count when left at 0). FICON_SCALE maps here.
  double effort = 1.0;
  std::uint64_t seed = 1;  ///< root of every RNG stream of the run
  /// Use the incremental evaluation pipeline: cached slicing shape curves
  /// (SlicingPacker::pack_cached), buffer-reusing net decomposition with a
  /// single decomposition shared by the wirelength and congestion terms
  /// (TwoPinDecomposer), and the per-net scoring memo (score_cache.hpp).
  /// Every cached value is a pure function of its key, so solutions are
  /// bit-identical with this on or off — the switch exists for A/B
  /// benchmarking (bench_incremental) and debugging, not for correctness.
  bool incremental = true;
};

/// Metrics of one packed floorplan under a fixed objective.
struct FloorplanMetrics {
  double area = 0.0;        ///< chip area, um^2
  double wirelength = 0.0;  ///< MST-decomposed Manhattan length, um
  double congestion = 0.0;  ///< objective-model cost (0 for kNone)
  double cost = 0.0;        ///< normalized weighted cost
};

struct FloorplanSolution {
  /// Final Polish expression (kPolishExpression engine only; empty for the
  /// sequence-pair engine — see `representation` for either).
  PolishExpression expression;
  /// Human-readable final representation, engine-agnostic.
  std::string representation;
  Placement placement;
  FloorplanMetrics metrics;
  double seconds = 0.0;  ///< wall-clock annealing time
  AnnealStats stats;
};

/// Per-temperature intermediate solution (Experiment 2 / Figure 9 hook).
struct TemperatureSnapshot {
  int step = 0;
  double temperature = 0.0;
  Placement placement;
  FloorplanMetrics metrics;
};

/// @brief One simulated-annealing floorplanning engine bound to a netlist
/// and an objective.
///
/// Not internally synchronized — construct one instance per thread (the
/// seed sweep in exp/experiment.hpp does exactly that). The congestion
/// models it calls are themselves parallel over the global ThreadPool;
/// when the sweep already owns the pool those nested evaluations run
/// inline (see util/thread_pool.hpp).
class Floorplanner {
 public:
  /// @param netlist circuit to place; must outlive the Floorplanner.
  /// @param options objective, engine, schedule and seed (copied).
  Floorplanner(const Netlist& netlist, FloorplanOptions options);

  /// Per-temperature observer (Experiment 2 / Figure 9 hook).
  using SnapshotFn = std::function<void(const TemperatureSnapshot&)>;

  /// @brief Run one annealing optimization; deterministic in options.seed.
  /// @param snapshot optional per-temperature callback.
  /// @return best solution found, with metrics and annealing statistics.
  FloorplanSolution run(const SnapshotFn& snapshot = {}) const;

  /// @brief Pack and score a single expression under this objective
  /// (exposed for tests, examples and the snapshot path).
  FloorplanMetrics evaluate(const PolishExpression& expr) const;

  /// @brief Same for a sequence pair (kSequencePair engine).
  FloorplanMetrics evaluate(const SequencePair& pair) const;

  /// @brief Score an already-packed placement under this objective.
  FloorplanMetrics evaluate_placement(const Placement& placement) const;

  /// @brief Pack only (no congestion): cheap geometric evaluation.
  SlicingResult pack(const PolishExpression& expr) const {
    return packer_.pack(expr);
  }

  const Netlist& netlist() const { return *netlist_; }
  const FloorplanOptions& options() const { return options_; }

  /// @brief The congestion estimator behind the gamma term, dispatched
  /// through the unified CongestionModel interface (nullptr for kNone).
  const CongestionModel* congestion_model() const { return model_.get(); }

 private:
  FloorplanSolution run_polish(const SnapshotFn& snapshot) const;
  FloorplanSolution run_sequence_pair(const SnapshotFn& snapshot) const;
  double congestion_of(std::span<const TwoPinNet> nets,
                       const Rect& chip) const;
  double raw_cost(const FloorplanMetrics& m) const;

  const Netlist* netlist_;
  FloorplanOptions options_;
  // The packer and decomposer are mutable because the incremental pipeline
  // keeps per-instance caches/buffers warm across const evaluations. The
  // class is documented as not internally synchronized, so const methods
  // mutating instance-local caches do not widen the threading contract.
  mutable SlicingPacker packer_;
  mutable TwoPinDecomposer decomposer_;
  SequencePairPacker sp_packer_;
  /// Unified congestion estimator (nullptr for kNone); built once by
  /// make_congestion_model() from the objective's kind + params.
  std::unique_ptr<CongestionModel> model_;
  // Normalization baselines, estimated once in the constructor from a
  // seeded random walk (independent of run()'s RNG stream).
  double area_scale_ = 1.0;
  double wire_scale_ = 1.0;
  double congestion_scale_ = 1.0;
};

}  // namespace ficon
