// Theorem 1: constant-time approximation of the IR-grid crossing
// probability (paper section 4.4) plus the precision rules of section 4.5.
//
// The exact Formula 3 sums Ta*Tb products along the exit edges of an
// IR-grid, which costs O(edge length). The paper observes that each
// normalized exit term is a hypergeometric-like function h(x, r, R, Q) with
// Q = x + y2, R = g1+g2-3, r = g1-1, approximates it by a normal density
// (hypergeometric -> binomial -> normal), and integrates with Simpson's
// rule — making the per-region cost independent of region size.
//
// Section 4.5 identifies where the approximation breaks: whenever
// (x + y2)/(g1+g2-3) hits 0 or >= 1, i.e. exactly the four cells
// {(0,0), (g1-2,g2-1), (g1-1,g2-2), (g1-1,g2-1)} adjacent to the two pins
// of a type I net. The algorithm sidesteps them by assigning probability 1
// to IR-grids that cover a pin; any *other* invalid sample (possible only
// for very small ranges) falls back to the exact formula.
#pragma once

#include <optional>

#include "congestion/path_prob.hpp"
#include "geom/rect.hpp"
#include "numeric/kernel.hpp"
#include "util/check.hpp"

namespace ficon {

/// Tuning knobs for the Theorem 1 evaluation.
struct ApproxOptions {
  /// Approximate sum_{x1..x2} f(x) by the integral over
  /// [x1-1/2, x2+1/2] instead of the paper's literal [x1, x2]. Markedly
  /// more accurate (see bench_fig8_precision); on by default.
  bool continuity_correction = true;
  /// Simpson panels per integral; even, >= 2. Fixed => O(1) per region.
  int simpson_panels = 16;
  /// Ranges with g1+g2 below this use exact Formula 3 outright — the
  /// normal approximation needs a few cells of headroom and the exact sum
  /// is trivially cheap there anyway.
  int small_range_threshold = 8;
  /// Regions whose exit-edge length (x-span + y-span in cells) is at most
  /// this also use exact Formula 3: its cost is O(edge length), so for
  /// small regions exact is as fast as the fixed-panel Simpson evaluation
  /// and strictly more accurate. Theorem 1 earns its keep on LARGE
  /// regions, which is exactly where it is applied.
  int small_region_threshold = 12;
  /// Ranges narrower than this in their thin direction (min(g1,g2)) also
  /// use exact Formula 3: the hypergeometric-to-normal chain has too little
  /// support there (deviations up to ~0.12 on e.g. 6x40 ranges), and the
  /// exact sums are bounded by the thin dimension anyway.
  int narrow_range_threshold = 12;
  /// Which Theorem 1 implementation evaluates the approximation: the scalar
  /// libm reference, the batched/vectorized kernel, or (default) whatever
  /// the FICON_SIMD runtime knob resolves to. Fallback decisions (which
  /// regions drop to exact Formula 3) are identical in both; approximated
  /// values agree to the ulp-level bound pinned in prob_property_test.
  SimdMode simd = SimdMode::kAuto;

  /// Explicit construction-time validation: every evaluator that consumes
  /// these options (ApproxRegionProbability, ProbKernel,
  /// IrregularGridModel, ProbabilityEvaluator) calls this and surfaces a
  /// std::invalid_argument instead of silently misbehaving on odd Simpson
  /// panel counts or negative thresholds.
  void validate() const {
    FICON_REQUIRE(simpson_panels >= 2 && simpson_panels % 2 == 0,
                  "ApproxOptions: simpson_panels must be even and >= 2");
    FICON_REQUIRE(small_range_threshold >= 0,
                  "ApproxOptions: small_range_threshold must be >= 0");
    FICON_REQUIRE(small_region_threshold >= 0,
                  "ApproxOptions: small_region_threshold must be >= 0");
    FICON_REQUIRE(narrow_range_threshold >= 0,
                  "ApproxOptions: narrow_range_threshold must be >= 0");
  }
};

/// Theorem 1 evaluator — the scalar reference implementation.
///
/// INTERNAL: outside src/congestion/ and the tests, go through the
/// ProbabilityEvaluator facade (congestion/prob_eval.hpp) or the batched
/// ProbKernel (congestion/prob_kernel.hpp); ficon_lint rule F008 enforces
/// the include boundary. The exposed per-term functions exist so that the
/// Figure 8 precision experiment (exact-vs-approximated curves) and the
/// tests can probe the integrand pointwise.
class ApproxRegionProbability {
 public:
  ApproxRegionProbability(PathProbability exact, ApproxOptions options = {})
      : exact_(exact), options_(options) {
    options_.validate();
  }

  /// Exact value of Function (1): the normalized top-edge exit term
  ///   Ta(x, y2) * Tb(x, y2+1) / Ta(g1-1, g2-1)
  /// in the type I frame. Zero when the crossing is out of range.
  double top_exit_term_exact(int g1, int g2, int x, int y2) const;

  /// Normal-approximated Function (1) at (possibly fractional) x.
  /// nullopt where the approximation is invalid (mu ratio outside (0,1)
  /// or non-positive variance) — the gray cells of Figure 7.
  std::optional<double> top_exit_term_approx(int g1, int g2, double x,
                                             int y2) const;

  /// Exact value of Function (2): the normalized right-edge exit term
  ///   Ta(x2, y) * Tb(x2+1, y) / Ta(g1-1, g2-1), type I frame.
  double right_exit_term_exact(int g1, int g2, int x2, int y) const;

  /// Normal-approximated Function (2) at (possibly fractional) y.
  std::optional<double> right_exit_term_approx(int g1, int g2, int x2,
                                               double y) const;

  /// Theorem 1 as written: approximate crossing probability for a region
  /// in the type I frame. Returns nullopt if any Simpson sample hits an
  /// invalid integrand (caller falls back to exact).
  std::optional<double> theorem1(int g1, int g2, const GridRect& region) const;

  /// Full policy of the paper's algorithm (steps 3.1/3.2 + section 4.5):
  ///   - region covers a pin  -> probability 1,
  ///   - tiny range           -> exact Formula 3,
  ///   - otherwise Theorem 1, with exact fallback on invalid samples.
  /// Handles both net types (type II via the y-mirror) and degenerate
  /// ranges. Since the batched-kernel redesign this is a thin wrapper over
  /// ProbKernel::region_probability_batch with a batch of one; the
  /// IrregularGridModel calls the batch form directly.
  double region_probability(const NetGridShape& s, const GridRect& region) const;

  const ApproxOptions& options() const { return options_; }
  const PathProbability& exact() const { return exact_; }

 private:
  PathProbability exact_;
  ApproxOptions options_;
};

}  // namespace ficon
