// The Irregular-Grid congestion model — the paper's core contribution
// (section 4).
//
// Instead of scoring fixed-size cells everywhere, the chip is partitioned
// by the extended boundaries of every net's routing range ("cut lines");
// each resulting IR-grid is scored once with the constant-time Theorem 1
// approximation (or the exact Formula 3 in validation mode). Evaluation
// effort thus concentrates where routing ranges overlap — the places that
// can actually become congested — and the per-cell answer no longer depends
// on an arbitrary grid pitch.
//
// The fine-grid pitch parameter (grid_w/grid_h, e.g. 30x30 um^2 in the
// paper's experiments) only defines the lattice on which route probabilities
// are computed inside each routing range; it does not partition the chip.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>

#include "congestion/approx.hpp"
#include "congestion/cutlines.hpp"
#include "congestion/field.hpp"
#include "congestion/model.hpp"
#include "route/two_pin.hpp"

namespace ficon {

/// How per-IR-grid crossing probabilities are computed.
enum class IrEvalStrategy {
  /// The paper's algorithm: Theorem 1 normal approximation per IR-grid
  /// (with the section 4.5 pin rule and exact fallbacks). O(1) per region.
  kTheorem1,
  /// Exact Formula 3 per IR-grid. O(region edge length) per region;
  /// the validation reference.
  kExactPerRegion,
  /// Exact Formula 3 for ALL IR-grids of a net at once via per-cut-band
  /// prefix sums of the exit terms (multiplicative recurrences, no
  /// binomials in the inner loop). Same results as kExactPerRegion to
  /// floating-point accuracy but O(g1 + g2) per band instead of per cell —
  /// the fast path for annealing-embedded use. An engineering improvement
  /// over the paper; see DESIGN.md ("Key design decisions").
  kBandedExact,
};

struct IrregularGridParams {
  double grid_w = 30.0;        ///< fine lattice pitch in x (um)
  double grid_h = 30.0;        ///< fine lattice pitch in y (um)
  double top_fraction = 0.10;  ///< cost = mean density over this area share
  IrEvalStrategy strategy = IrEvalStrategy::kBandedExact;
  ApproxOptions approx{};      ///< knobs for kTheorem1
  /// Cut lines closer than merge_factor * pitch are merged (alg. step 2;
  /// the paper uses "double of the width/length of a grid", i.e. 2.0).
  double merge_factor = 2.0;
  /// Capacity (entries) of the per-thread LRU memo for per-net probability
  /// matrices (region strategies) and per-shape band start terms (banded
  /// strategy); 0 disables memoization. Hits and misses return
  /// bit-identical values, so this knob trades memory for speed without
  /// ever changing results. 4096 covers the live shape population of
  /// MCNC-scale anneals; larger capacities were measured slower (the
  /// working set outgrows the data caches faster than the hit rate rises).
  std::size_t score_cache_capacity = 4096;
};

/// Result of one Irregular-Grid evaluation: the cut lines plus the
/// accumulated crossing probability F(I) of every IR-cell.
///
/// Storage and the shared field queries come from FlowField; this class
/// binds them to the cut-line partition and keeps the section-4
/// vocabulary (flow, IR-cells).
class IrregularCongestionMap : public FlowField {
 public:
  /// @brief Empty map (all-zero flow) over the given cut lines.
  explicit IrregularCongestionMap(CutLines lines)
      : FlowField(lines.nx(), lines.ny()), lines_(std::move(lines)) {}

  /// @brief Adopt an already-accumulated flow vector (row-major, iy-major
  /// like flow()); used by the parallel evaluator's block reduction.
  IrregularCongestionMap(CutLines lines, std::vector<double> flow)
      : FlowField(lines.nx(), lines.ny(), std::move(flow)),
        lines_(std::move(lines)) {}

  const CutLines& lines() const { return lines_; }

  /// F(I): summed crossing probabilities of IR-cell (ix, iy).
  double flow(int ix, int iy) const { return value_at(ix, iy); }
  void add_flow(int ix, int iy, double p) { add_value(ix, iy, p); }

  /// Geometry of IR-cell (ix, iy), from the cut-line partition.
  Rect cell_rect(int ix, int iy) const override {
    return lines_.cell_rect(ix, iy);
  }

  /// Solution cost: area-weighted mean density over the `fraction` of chip
  /// area with the highest density ("average congestion cost of the top
  /// 10% most congested area units"). The marginal cell is taken
  /// fractionally so the cost is continuous in the cell layout.
  double top_fraction_cost(double fraction = 0.10) const {
    return top_area_fraction_density(fraction);
  }

  /// CSV dump: "xlo,ylo,xhi,yhi,flow,density" per IR-cell.
  void write_csv(std::ostream& os) const { write_density_csv(os); }

 private:
  CutLines lines_;
};

class IrregularGridModel : public CongestionModel {
 public:
  explicit IrregularGridModel(IrregularGridParams params = {})
      : params_(params) {
    FICON_REQUIRE(params.grid_w > 0.0 && params.grid_h > 0.0,
                  "fine pitch must be positive");
    FICON_REQUIRE(params.merge_factor >= 0.0, "negative merge factor");
    // Surface bad Theorem-1 knobs (odd Simpson panel counts, negative
    // thresholds) here, at model construction, not deep in a worker block.
    params.approx.validate();
  }

  const IrregularGridParams& params() const { return params_; }

  const char* name() const override { return "irregular_grid"; }
  CongestionModelKind kind() const override {
    return CongestionModelKind::kIrregularGrid;
  }

  /// @brief Run the full Congestion Information Computation algorithm
  /// (section 4.6) over the decomposed nets.
  ///
  /// Nets are scored in parallel on the global ThreadPool: they are split
  /// into blocks whose boundaries depend only on the net count, each block
  /// accumulates into its own partial flow grid, and the partials are
  /// reduced in block order — so the result is bit-identical for every
  /// `FICON_THREADS` value (see docs/ARCHITECTURE.md, "Threading model").
  /// Thread-safe: concurrent evaluate() calls on the same model are fine
  /// (log-factorial caches are thread_local).
  ///
  /// @param nets  decomposed 2-pin nets (see decompose_to_two_pin()).
  /// @param chip  chip rectangle; nets outside it are clipped/skipped.
  /// @return cut lines plus per-IR-cell accumulated crossing probability.
  IrregularCongestionMap evaluate(std::span<const TwoPinNet> nets,
                                  const Rect& chip) const;

  /// Algorithm step 5: top-10%-area mean density.
  double cost(std::span<const TwoPinNet> nets,
              const Rect& chip) const override {
    return evaluate(nets, chip).top_fraction_cost(params_.top_fraction);
  }

  /// Type-erased view of evaluate() for CongestionModel callers.
  std::unique_ptr<FlowField> evaluate_field(std::span<const TwoPinNet> nets,
                                            const Rect& chip) const override {
    return std::make_unique<IrregularCongestionMap>(evaluate(nets, chip));
  }

 private:
  IrregularGridParams params_;
};

}  // namespace ficon
