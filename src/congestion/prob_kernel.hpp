// Batched probability kernel: the contiguous-array evaluation surface for
// the Theorem 1 / Formula 3 hot loops (ROADMAP item 3).
//
// The historical API scored one (net, IR-cell) pair per call through
// scalar std::optional<double> methods. This kernel evaluates one net
// against MANY cells per call over flat arrays:
//
//   region_probability_batch()  — the paper's full per-region policy
//                                 (pin rule, structural certainty, exact
//                                 fallbacks, Theorem 1) for a batch of
//                                 rects; what IrregularGridModel's
//                                 kTheorem1 strategy runs per net,
//   region_probability_exact_batch() — the kExactPerRegion mirror,
//   theorem1_batch()            — raw Theorem 1 (NaN where invalid),
//   eval_top_exit_terms() /
//   eval_right_exit_terms()     — Function (1)/(2) integrand samples over
//                                 an array of abscissae (NaN = the section
//                                 4.5 invalid cells),
//   for_each_cell_row()         — the fixed-grid mirror: Formula 2 for one
//                                 net row by row via the multiplicative
//                                 recurrence (what FixedGridModel runs).
//
// Two implementations sit behind ApproxOptions::simd (see
// numeric/kernel.hpp for the dispatch rules):
//   * scalar — calls the ApproxRegionProbability reference per element;
//     bit-identical to the historical per-pair path, including obs
//     counters and fallback decisions;
//   * simd   — evaluates all Simpson samples of an integral through the
//     batched exp kernel. Fallback decisions (validity of samples) are
//     computed with the same IEEE predicates and remain bit-identical;
//     approximated values agree with the scalar path to the ulp-level
//     bound asserted in prob_property_test.
//
// A ProbKernel owns per-call scratch, so it is cheap to keep per
// block-scorer (as IrregularGridModel does) and safe to use from one
// thread at a time, like the rest of the scoring stack.
#pragma once

#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "congestion/approx.hpp"
#include "congestion/path_prob.hpp"
#include "geom/rect.hpp"
#include "numeric/kernel.hpp"

namespace ficon {

class ProbKernel {
 public:
  /// `exact` is copied (it is a cheap handle onto a shared log-factorial
  /// table; the table must outlive the kernel). Throws std::invalid_argument
  /// on invalid options (ApproxOptions::validate()).
  explicit ProbKernel(const PathProbability& exact, ApproxOptions options = {})
      : exact_(exact), scalar_(exact, options), options_(options),
        simd_(kernel_simd_active(options.simd)) {}

  /// True when this kernel resolved to the batched/vectorized path.
  bool simd() const { return simd_; }

  /// The paper's full per-region policy for a batch of regions of one net:
  /// out[i] = crossing probability of regions[i] (raw, possibly
  /// out-of-range rects are clamped exactly like the per-pair API).
  /// Requires regions.size() == out.size().
  void region_probability_batch(const NetGridShape& s,
                                std::span<const GridRect> regions,
                                std::span<double> out);

  /// The kExactPerRegion mirror: out[i] = 1 for pin-covering regions,
  /// exact Formula 3 otherwise.
  void region_probability_exact_batch(const NetGridShape& s,
                                      std::span<const GridRect> regions,
                                      std::span<double> out);

  /// Raw Theorem 1 in the canonical type I frame for a batch of regions;
  /// out[i] = NaN where any Simpson sample is invalid (the caller decides
  /// the fallback). No clamping, no pin rule — callers pass in-range rects.
  void theorem1_batch(int g1, int g2, std::span<const GridRect> regions,
                      std::span<double> out);

  /// Function (1) samples: out[i] = normal-approximated top-exit term at
  /// x = xs[i] for exit row y2 (type I frame); NaN where the approximation
  /// is invalid (exactly where the scalar probe returns nullopt).
  void eval_top_exit_terms(int g1, int g2, int y2, std::span<const double> xs,
                           std::span<double> out);

  /// Function (2) samples: the right-exit mirror at y = ys[i], exit
  /// column x2.
  void eval_right_exit_terms(int g1, int g2, int x2,
                             std::span<const double> ys,
                             std::span<double> out);

  /// Fixed-grid mirror: Formula 2 for one non-degenerate net, emitted row
  /// by row in the canonical type I frame. `emit(ly, row)` receives each
  /// fine row's g1 cell probabilities (the span is kernel scratch, valid
  /// only during the call). Bit-identical to the historical inline
  /// recurrence in fixed_grid.cpp.
  template <typename RowFn>
  void for_each_cell_row(const NetGridShape& s, RowFn&& emit) {
    const int g1 = s.g1;
    const int g2 = s.g2;
    LogFactorialTable& table = exact_.table();
    row_.resize(static_cast<std::size_t>(g1));
    const double log_total = exact_.log_total(s);
    for (int ly = 0; ly < g2; ++ly) {
      // P(0, ly) = Tb(0, ly) / Total, then advance along the row by the
      // exact ratio P(x+1,y)/P(x,y) = (x+y+1)/(x+1) * a/(a+b).
      double p = std::exp(table.log_choose(g1 - 1 + g2 - 1 - ly, g2 - 1 - ly) -
                          log_total);
      for (int lx = 0; lx < g1; ++lx) {
        row_[static_cast<std::size_t>(lx)] = p;
        if (lx < g1 - 1) {
          const double a = static_cast<double>(g1 - 1 - lx);
          const double b = static_cast<double>(g2 - 1 - ly);
          p *= (static_cast<double>(lx + ly) + 1.0) /
               (static_cast<double>(lx) + 1.0) * a / (a + b);
        }
      }
      emit(ly, std::span<const double>(row_.data(),
                                       static_cast<std::size_t>(g1)));
    }
  }

  const ApproxOptions& options() const { return options_; }
  const PathProbability& exact() const { return exact_; }

 private:
  /// Policy for one region (shared scalar/simd; only the Theorem 1 leaf
  /// differs between the modes).
  double region_probability_one(const NetGridShape& s, const GridRect& region);

  /// Theorem 1 for one canonical-frame region on the batched kernel path:
  /// both exit-edge integrals are planned up front and all of the region's
  /// Simpson samples flow through one setup/sqrt/pdf pipeline; nullopt on
  /// any invalid sample.
  std::optional<double> theorem1_simd(int g1, int g2, const GridRect& region);

  PathProbability exact_;
  ApproxRegionProbability scalar_;
  ApproxOptions options_;
  bool simd_;
  // Scratch reused across calls (one net's samples / rows at a time).
  std::vector<double> xs_, mus_, inv_sigmas_, terms_, row_;
};

}  // namespace ficon
