// Cut-line construction for the Irregular-Grid (paper section 4.2 and
// algorithm step 1-2).
//
// Every routing range contributes two vertical and two horizontal cutting
// lines (its boundary extensions); the chip boundary contributes the outer
// four. Lines closer together than twice the fine-grid pitch are merged
// (algorithm step 2) so that no IR-grid is thinner than the probability
// math can resolve, and the associated routing ranges are snapped to the
// merged representatives.
#pragma once

#include <span>
#include <vector>

#include "geom/rect.hpp"
#include "route/two_pin.hpp"
#include "util/check.hpp"

namespace ficon {

/// @brief The sorted cut-line coordinates of an Irregular-Grid.
///
/// xs/ys always include the chip boundaries as first and last entries, so
/// the grid has (xs.size()-1) x (ys.size()-1) IR-cells. Immutable after
/// construction and therefore safe to share across evaluation threads.
class CutLines {
 public:
  /// @param xs sorted vertical cut-line coordinates (um), >= 2 entries.
  /// @param ys sorted horizontal cut-line coordinates (um), >= 2 entries.
  CutLines(std::vector<double> xs, std::vector<double> ys);

  /// Sorted vertical cut-line coordinates, chip boundaries included.
  const std::vector<double>& xs() const { return xs_; }
  /// Sorted horizontal cut-line coordinates, chip boundaries included.
  const std::vector<double>& ys() const { return ys_; }

  /// Number of IR-cell columns (xs().size() - 1).
  int nx() const { return static_cast<int>(xs_.size()) - 1; }
  /// Number of IR-cell rows (ys().size() - 1).
  int ny() const { return static_cast<int>(ys_.size()) - 1; }
  /// Total IR-cells — the "# of IR-grid" quantity of Table 4.
  long long cell_count() const {
    return static_cast<long long>(nx()) * static_cast<long long>(ny());
  }

  /// @brief Index of the cut line nearest to coordinate `x` — how routing
  /// ranges are snapped onto the merged grid (algorithm step 2).
  int nearest_x(double x) const { return nearest(xs_, x); }
  /// @brief Index of the cut line nearest to coordinate `y`.
  int nearest_y(double y) const { return nearest(ys_, y); }

  /// @brief um rectangle of IR-cell (ix, iy).
  /// @param ix column index in [0, nx()).
  /// @param iy row index in [0, ny()).
  Rect cell_rect(int ix, int iy) const {
    FICON_REQUIRE(ix >= 0 && ix < nx() && iy >= 0 && iy < ny(),
                  "IR-cell index out of range");
    return Rect{xs_[static_cast<std::size_t>(ix)],
                ys_[static_cast<std::size_t>(iy)],
                xs_[static_cast<std::size_t>(ix) + 1],
                ys_[static_cast<std::size_t>(iy) + 1]};
  }

 private:
  static int nearest(const std::vector<double>& lines, double v);

  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// @brief Build the Irregular-Grid cut lines from the routing ranges of
/// the decomposed nets (algorithm steps 1-2).
///
/// Every net's routing range contributes its two vertical and two
/// horizontal boundary extensions; lines closer than min_dx (min_dy) are
/// merged into their cluster mean. The chip boundary lines are pinned and
/// never move.
///
/// @param nets   decomposed 2-pin nets whose ranges seed the lines.
/// @param chip   chip rectangle providing the outer, pinned boundaries.
/// @param min_dx merge threshold in x (um) — the paper uses 2x the pitch.
/// @param min_dy merge threshold in y (um).
/// @return merged, sorted cut lines covering the chip.
CutLines build_cutlines(std::span<const TwoPinNet> nets, const Rect& chip,
                        double min_dx, double min_dy);

/// @brief Merge one sorted axis worth of coordinates (exposed for tests).
///
/// @param coords candidate interior line coordinates (any order).
/// @param lo,hi  pinned chip boundaries; interior lines within min_gap of
///               a boundary collapse into the boundary.
/// @param min_gap interior clusters within this gap collapse to their
///               (weighted) mean; chained clusters whose means still land
///               closer than min_gap are pooled until the invariant holds.
/// @return sorted merged coordinates, lo and hi included; every
///         consecutive pair is at least min_gap apart, so no IR-cell is
///         narrower than the merge gap.
std::vector<double> merge_lines(std::vector<double> coords, double lo,
                                double hi, double min_gap);

}  // namespace ficon
