// Cut-line construction for the Irregular-Grid (paper section 4.2 and
// algorithm step 1-2).
//
// Every routing range contributes two vertical and two horizontal cutting
// lines (its boundary extensions); the chip boundary contributes the outer
// four. Lines closer together than twice the fine-grid pitch are merged
// (algorithm step 2) so that no IR-grid is thinner than the probability
// math can resolve, and the associated routing ranges are snapped to the
// merged representatives.
#pragma once

#include <span>
#include <vector>

#include "geom/rect.hpp"
#include "route/two_pin.hpp"
#include "util/check.hpp"

namespace ficon {

/// The sorted cut-line coordinates of an Irregular-Grid. xs/ys always
/// include the chip boundaries as first and last entries, so the grid has
/// (xs.size()-1) x (ys.size()-1) IR-cells.
class CutLines {
 public:
  CutLines(std::vector<double> xs, std::vector<double> ys);

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  int nx() const { return static_cast<int>(xs_.size()) - 1; }
  int ny() const { return static_cast<int>(ys_.size()) - 1; }
  long long cell_count() const {
    return static_cast<long long>(nx()) * static_cast<long long>(ny());
  }

  /// Index of the cut line nearest to the coordinate.
  int nearest_x(double x) const { return nearest(xs_, x); }
  int nearest_y(double y) const { return nearest(ys_, y); }

  /// um rectangle of IR-cell (ix, iy).
  Rect cell_rect(int ix, int iy) const {
    FICON_REQUIRE(ix >= 0 && ix < nx() && iy >= 0 && iy < ny(),
                  "IR-cell index out of range");
    return Rect{xs_[static_cast<std::size_t>(ix)],
                ys_[static_cast<std::size_t>(iy)],
                xs_[static_cast<std::size_t>(ix) + 1],
                ys_[static_cast<std::size_t>(iy) + 1]};
  }

 private:
  static int nearest(const std::vector<double>& lines, double v);

  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Build the Irregular-Grid cut lines from the routing ranges of the
/// decomposed nets. Lines closer than min_dx (min_dy) are merged into their
/// cluster mean; the chip boundary lines are pinned and never move.
CutLines build_cutlines(std::span<const TwoPinNet> nets, const Rect& chip,
                        double min_dx, double min_dy);

/// Exposed for tests: merge one sorted axis worth of coordinates. `lo`/`hi`
/// are the pinned chip boundaries; interior clusters within min_gap collapse
/// to their mean, and interior lines within min_gap of a boundary collapse
/// into the boundary.
std::vector<double> merge_lines(std::vector<double> coords, double lo,
                                double hi, double min_gap);

}  // namespace ficon
