// Fixed-size-grid probabilistic congestion model (paper section 3).
//
// This is the model of Sham & Young (ISPD'02, reference [4]) built on the
// probabilistic analysis of Lou et al. (ISPD'01, [3]): divide the chip into
// fixed-size cells, add up each net's cell-crossing probability (Formula 2)
// and score a floorplan by the mean congestion of the top 10% cells.
//
// Two roles in the reproduction:
//  * the baseline the Irregular-Grid model is compared against
//    (Experiment 3, Tables 4/5, grid sizes 100x100 and 50x50 um^2), and
//  * the *judging model* — the same estimator at a very fine 10x10 um^2
//    pitch, used as the ground-truth referee in all three experiments.
#pragma once

#include <memory>
#include <span>

#include "congestion/congestion_map.hpp"
#include "congestion/grid_spec.hpp"
#include "congestion/model.hpp"
#include "route/two_pin.hpp"

namespace ficon {

struct FixedGridParams {
  double grid_w = 100.0;       ///< cell width (um)
  double grid_h = 100.0;       ///< cell height (um)
  double top_fraction = 0.10;  ///< cost = mean of this fraction of cells
};

class FixedGridModel : public CongestionModel {
 public:
  explicit FixedGridModel(FixedGridParams params = {}) : params_(params) {
    FICON_REQUIRE(params.grid_w > 0.0 && params.grid_h > 0.0,
                  "grid pitch must be positive");
  }

  const FixedGridParams& params() const { return params_; }

  const char* name() const override { return "fixed_grid"; }
  CongestionModelKind kind() const override {
    return CongestionModelKind::kFixedGrid;
  }

  /// @brief Build the full congestion map f(x,y) for the decomposed nets.
  ///
  /// Nets are accumulated in parallel on the global ThreadPool: blocks of
  /// nets (boundaries a function of the net count only) fill per-block
  /// partial grids that are merged in block order, so the map is
  /// bit-identical for every `FICON_THREADS` value. Thread-safe —
  /// log-factorial caches are thread_local (see docs/ARCHITECTURE.md).
  ///
  /// @param nets  decomposed 2-pin nets.
  /// @param chip  chip rectangle; defines the grid via the params' pitch.
  CongestionMap evaluate(std::span<const TwoPinNet> nets,
                         const Rect& chip) const;

  /// @brief Solution cost: mean of the top `top_fraction` most congested
  /// cells (the paper's section 3 objective).
  double cost(std::span<const TwoPinNet> nets,
              const Rect& chip) const override {
    return evaluate(nets, chip).top_fraction_cost(params_.top_fraction);
  }

  /// Type-erased view of evaluate() for CongestionModel callers.
  std::unique_ptr<FlowField> evaluate_field(std::span<const TwoPinNet> nets,
                                            const Rect& chip) const override {
    return std::make_unique<CongestionMap>(evaluate(nets, chip));
  }

 private:
  FixedGridParams params_;
};

/// The paper's judging model: fixed-grid estimator at 10x10 um^2.
inline FixedGridModel make_judging_model(double pitch = 10.0) {
  return FixedGridModel(FixedGridParams{pitch, pitch, 0.10});
}

}  // namespace ficon
