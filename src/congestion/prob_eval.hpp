// ProbabilityEvaluator — the one documented front door for every
// probability query of the paper's math (Formulas 1–3, Theorem 1, and the
// batched kernel).
//
// Historically callers picked between three overlapping per-pair entry
// points (PathProbability::region_probability_exact / _oracle and
// ApproxRegionProbability::region_probability) and had to wire up the
// shared LogFactorialTable themselves. This facade owns the table and the
// three engines, exposes the per-pair reference surface AND the batched
// kernel surface, and is what examples, benches and downstream tools
// should construct. The deep headers (congestion/path_prob.hpp,
// congestion/approx.hpp) are internal outside src/congestion/ and the
// tests — ficon_lint rule F008 enforces that boundary.
//
// Threading: like the underlying engines, one evaluator is safe to use
// from one thread at a time (the batched methods mutate kernel scratch,
// and the log-factorial table grows unsynchronized). Use one instance per
// thread, exactly as IrregularGridModel does internally.
#pragma once

#include <optional>
#include <span>

#include "congestion/approx.hpp"
#include "congestion/path_prob.hpp"
#include "congestion/prob_kernel.hpp"
#include "geom/rect.hpp"
#include "numeric/factorial.hpp"

namespace ficon {

class ProbabilityEvaluator {
 public:
  /// Throws std::invalid_argument on invalid options
  /// (ApproxOptions::validate()).
  explicit ProbabilityEvaluator(ApproxOptions options = {})
      : exact_(table_), approx_(exact_, options), kernel_(exact_, options) {}

  // The engines hold pointers into the owned table; copying would dangle.
  ProbabilityEvaluator(const ProbabilityEvaluator&) = delete;
  ProbabilityEvaluator& operator=(const ProbabilityEvaluator&) = delete;

  // --- Per-pair reference surface (exact Formulas 1–3 and the oracles).

  /// Formula 2: probability that the net passes through cell (x, y).
  double cell_probability(const NetGridShape& s, int x, int y) const {
    return exact_.cell_probability(s, x, y);
  }

  /// Formula 3, exact: probability that the net crosses the region.
  double region_probability_exact(const NetGridShape& s,
                                  const GridRect& region) const {
    return exact_.region_probability_exact(s, region);
  }

  /// Brute-force DP oracle for region_probability_exact (validation).
  double region_probability_oracle(const NetGridShape& s,
                                   const GridRect& region) const {
    return exact_.region_probability_oracle(s, region);
  }

  /// Path-count DP oracle for cell_probability (validation).
  double cell_probability_oracle(const NetGridShape& s, int x, int y) const {
    return exact_.cell_probability_oracle(s, x, y);
  }

  /// True iff the clipped region covers a pin cell of the net.
  bool region_covers_pin(const NetGridShape& s, const GridRect& region) const {
    return exact_.region_covers_pin(s, region);
  }

  // --- The paper's per-region policy (pin rule + fallbacks + Theorem 1).

  /// Per-pair form; a batch-of-one over the kernel.
  double region_probability(const NetGridShape& s, const GridRect& region) {
    GridRect r = region;
    double out = 0.0;
    kernel_.region_probability_batch(s, std::span<const GridRect>(&r, 1),
                                     std::span<double>(&out, 1));
    return out;
  }

  /// Batched form: one net against many regions over flat arrays.
  void region_probability_batch(const NetGridShape& s,
                                std::span<const GridRect> regions,
                                std::span<double> out) {
    kernel_.region_probability_batch(s, regions, out);
  }

  // --- Raw Theorem 1 (type I canonical frame) and its integrand probes,
  //     used by the Figure 8 precision experiment and the tests.

  /// Scalar reference Theorem 1; nullopt on any invalid Simpson sample.
  std::optional<double> theorem1(int g1, int g2, const GridRect& region) const {
    return approx_.theorem1(g1, g2, region);
  }

  /// Batched Theorem 1 (mode per ApproxOptions::simd); NaN where invalid.
  void theorem1_batch(int g1, int g2, std::span<const GridRect> regions,
                      std::span<double> out) {
    kernel_.theorem1_batch(g1, g2, regions, out);
  }

  /// Function (1)/(2) integrand samples over an array of abscissae.
  void eval_top_exit_terms(int g1, int g2, int y2, std::span<const double> xs,
                           std::span<double> out) {
    kernel_.eval_top_exit_terms(g1, g2, y2, xs, out);
  }
  void eval_right_exit_terms(int g1, int g2, int x2,
                             std::span<const double> ys,
                             std::span<double> out) {
    kernel_.eval_right_exit_terms(g1, g2, x2, ys, out);
  }

  /// Pointwise exact/approximated exit terms (Figure 8 probes).
  double top_exit_term_exact(int g1, int g2, int x, int y2) const {
    return approx_.top_exit_term_exact(g1, g2, x, y2);
  }
  std::optional<double> top_exit_term_approx(int g1, int g2, double x,
                                             int y2) const {
    return approx_.top_exit_term_approx(g1, g2, x, y2);
  }
  double right_exit_term_exact(int g1, int g2, int x2, int y) const {
    return approx_.right_exit_term_exact(g1, g2, x2, y);
  }
  std::optional<double> right_exit_term_approx(int g1, int g2, int x2,
                                               double y) const {
    return approx_.right_exit_term_approx(g1, g2, x2, y);
  }

  // --- Plumbing.

  const ApproxOptions& options() const { return approx_.options(); }
  /// The owned log-factorial table (grows on demand; see factorial.hpp).
  LogFactorialTable& table() { return table_; }
  /// The batched kernel, for callers that drive it directly
  /// (e.g. for_each_cell_row, the fixed-grid Formula 2 mirror).
  ProbKernel& kernel() { return kernel_; }
  /// True when this evaluator resolved to the batched/vectorized path.
  bool simd() const { return kernel_.simd(); }

 private:
  LogFactorialTable table_;
  PathProbability exact_;
  ApproxRegionProbability approx_;
  ProbKernel kernel_;
};

}  // namespace ficon
