#include "congestion/fixed_grid.hpp"

#include <cmath>

#include "congestion/prob_kernel.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace ficon {

namespace {

/// Accumulate one net's cell-crossing probabilities (Formula 2) into a
/// partial grid (row-major like CongestionMap::values()).
void accumulate_net(const TwoPinNet& net, const GridSpec& grid,
                    ProbKernel& kernel, std::vector<double>& flow) {
  const auto add = [&](int cx, int cy, double p) {
    flow[static_cast<std::size_t>(cy) * static_cast<std::size_t>(grid.nx()) +
         static_cast<std::size_t>(cx)] += p;
  };
  const SpannedNet s = span_net(grid, net);
  const int g1 = s.shape.g1;
  const int g2 = s.shape.g2;

  if (s.shape.degenerate()) {
    // Point or line routing range: the single possible route crosses
    // every covered cell with probability 1.
    for (int ly = 0; ly < g2; ++ly) {
      for (int lx = 0; lx < g1; ++lx) {
        add(s.origin.x + lx, s.origin.y + ly, 1.0);
      }
    }
    return;
  }

  // Work in the canonical type I frame (source cell (0,0), sink
  // (g1-1,g2-1)); a type II net is accumulated with its y mirrored. The
  // kernel advances P(x,y) along each row by the exact multiplicative
  // recurrence (multiplication-only inner loop — this is what makes the
  // 10 um judging model affordable on mm-scale chips) and hands back one
  // contiguous row of Formula 2 values at a time.
  const NetGridShape canonical{g1, g2, false};
  kernel.for_each_cell_row(canonical, [&](int ly, std::span<const double> row) {
    const int gy = s.origin.y + (s.shape.type2 ? (g2 - 1 - ly) : ly);
    for (int lx = 0; lx < g1; ++lx) {
      add(s.origin.x + lx, gy, row[static_cast<std::size_t>(lx)]);
    }
  });
}

}  // namespace

CongestionMap FixedGridModel::evaluate(std::span<const TwoPinNet> nets,
                                       const Rect& chip) const {
  obs::count(obs::Counter::kFixedEvaluations);
  obs::count(obs::Counter::kFixedNetsScored,
             static_cast<long long>(nets.size()));
  const GridSpec grid =
      GridSpec::from_pitch(chip, params_.grid_w, params_.grid_h);
  CongestionMap map(grid);
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());

  // Parallel per-net accumulation: blocks of nets (boundaries depend only
  // on the net count) write into private partial grids, reduced in block
  // order — bit-identical for every FICON_THREADS setting.
  const int blocks = deterministic_block_count(nets.size());
  std::vector<std::vector<double>> partial(static_cast<std::size_t>(blocks));
  ThreadPool::global().run(blocks, [&](int b) {
    thread_local LogFactorialTable table;  // race-free per-thread cache
    ProbKernel kernel(PathProbability(table), {});
    std::vector<double>& flow = partial[static_cast<std::size_t>(b)];
    flow.assign(cells, 0.0);
    const BlockRange range = block_range(nets.size(), blocks, b);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      accumulate_net(nets[i], grid, kernel, flow);
    }
  });

  for (const std::vector<double>& p : partial) map.merge(p);
  return map;
}

}  // namespace ficon
