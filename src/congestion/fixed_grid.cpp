#include "congestion/fixed_grid.hpp"

#include <cmath>

namespace ficon {

CongestionMap FixedGridModel::evaluate(std::span<const TwoPinNet> nets,
                                       const Rect& chip) const {
  const GridSpec grid =
      GridSpec::from_pitch(chip, params_.grid_w, params_.grid_h);
  CongestionMap map(grid);
  PathProbability prob(table_);

  for (const TwoPinNet& net : nets) {
    const SpannedNet s = span_net(grid, net);
    const int g1 = s.shape.g1;
    const int g2 = s.shape.g2;

    if (s.shape.degenerate()) {
      // Point or line routing range: the single possible route crosses
      // every covered cell with probability 1.
      for (int ly = 0; ly < g2; ++ly) {
        for (int lx = 0; lx < g1; ++lx) {
          map.add(s.origin.x + lx, s.origin.y + ly, 1.0);
        }
      }
      continue;
    }

    // Work in the canonical type I frame (source cell (0,0), sink
    // (g1-1,g2-1)); a type II net is accumulated with its y mirrored.
    // Within a row, P(x,y) is advanced by the exact ratio
    //   P(x+1,y)/P(x,y) = (x+y+1)/(x+1) * (g1-1-x)/((g1-1-x)+(g2-1-y)),
    // so the inner loop is multiplication-only — this is what makes the
    // 10 um judging model affordable on mm-scale chips.
    const NetGridShape canonical{g1, g2, false};
    const double log_total = prob.log_total(canonical);
    for (int ly = 0; ly < g2; ++ly) {
      const int gy = s.origin.y + (s.shape.type2 ? (g2 - 1 - ly) : ly);
      // P(0, ly) = Tb(0, ly) / Total.
      double p = std::exp(table_.log_choose(g1 - 1 + g2 - 1 - ly, g2 - 1 - ly) -
                          log_total);
      for (int lx = 0; lx < g1; ++lx) {
        map.add(s.origin.x + lx, gy, p);
        if (lx < g1 - 1) {
          const double a = static_cast<double>(g1 - 1 - lx);
          const double b = static_cast<double>(g2 - 1 - ly);
          p *= (static_cast<double>(lx + ly) + 1.0) /
               (static_cast<double>(lx) + 1.0) * a / (a + b);
        }
      }
    }
  }
  return map;
}

}  // namespace ficon
