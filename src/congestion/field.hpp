/// \file
/// Common surface for per-cell flow/congestion fields.
///
/// Three classes accumulate a scalar per grid cell and answer the same
/// questions about it: `CongestionMap` (fixed grid, estimated crossing
/// probabilities), `IrregularCongestionMap` (IR-grid, same quantity on an
/// irregular partition) and `RoutedCongestion` (routing grid, realized
/// usage). `FlowField` holds the shared mechanics — row-major storage,
/// bounds-checked indexing, block-reduction merge, max/overflow queries,
/// density and the area-weighted top-fraction cost — while each derived
/// class keeps its domain vocabulary (`at`/`flow`/`usage`) and its own
/// cell geometry via the `cell_rect` override.
#pragma once

#include <iosfwd>
#include <vector>

#include "geom/rect.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace ficon {

/// Row-major per-cell scalar field over an `nx` x `ny` cell grid.
///
/// A plain value type apart from the virtual geometry hook: reads are
/// safe to share, concurrent writes are not (the parallel evaluators give
/// each block its own partial vector and `merge` them in order).
class FlowField {
 public:
  virtual ~FlowField() = default;

  int nx() const { return nx_; }
  int ny() const { return ny_; }

  /// Total number of cells.
  long long cell_count() const {
    return static_cast<long long>(nx_) * static_cast<long long>(ny_);
  }

  /// Geometry of cell (cx, cy) in chip coordinates (um).
  virtual Rect cell_rect(int cx, int cy) const = 0;

  /// Accumulated value of cell (cx, cy).
  double value_at(int cx, int cy) const { return values_[index(cx, cy)]; }

  /// Add `v` to cell (cx, cy).
  void add_value(int cx, int cy, double v) { values_[index(cx, cy)] += v; }

  /// Row-major cell values (y-major, same indexing as value_at()).
  const std::vector<double>& values() const { return values_; }

  double max_value() const {
    return values_.empty() ? 0.0 : max_of(values_);
  }

  /// @brief Element-wise add a partial grid (same layout as values()) —
  /// the ordered-reduction step of the parallel evaluators.
  void merge(const std::vector<double>& partial) {
    FICON_REQUIRE(partial.size() == values_.size(),
                  "partial grid size mismatch");
    for (std::size_t i = 0; i < values_.size(); ++i) {
      values_[i] += partial[i];
    }
  }

  /// Value density of a cell: value / area (um^-2). Cells of different
  /// sizes are only comparable after this normalization (section 4.3).
  /// A degenerate zero-area cell (possible on collapsed IR partitions)
  /// has density 0 by definition — it covers no routable area — instead
  /// of the inf/NaN a raw division would propagate into
  /// top_area_fraction_density(), the heat-map export and bench reports.
  double density(int cx, int cy) const {
    const double area = cell_rect(cx, cy).area();
    return area > 0.0 ? value_at(cx, cy) / area : 0.0;
  }

  /// Area-weighted mean density over the `fraction` of chip area with the
  /// highest density ("average congestion cost of the top 10% most
  /// congested area units"). The marginal cell is taken fractionally so
  /// the cost is continuous in the cell layout.
  double top_area_fraction_density(double fraction) const;

  /// Total overflow: sum over cells of max(0, value - capacity).
  double overflow(double capacity) const;

  /// Number of cells with value above capacity.
  long long overflowed_cells(double capacity) const;

  /// CSV dump: "xlo,ylo,xhi,yhi,flow,density" per cell.
  void write_density_csv(std::ostream& os) const;

 protected:
  FlowField(int nx, int ny)
      : nx_(nx),
        ny_(ny),
        values_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny),
                0.0) {}

  /// Adopt an already-accumulated value vector (row-major, y-major like
  /// values()); used by the parallel evaluators' block reduction.
  FlowField(int nx, int ny, std::vector<double> values)
      : nx_(nx), ny_(ny), values_(std::move(values)) {
    FICON_REQUIRE(values_.size() == static_cast<std::size_t>(cell_count()),
                  "value vector does not match the cell grid");
  }

  FlowField(const FlowField&) = default;
  FlowField(FlowField&&) = default;
  FlowField& operator=(const FlowField&) = default;
  FlowField& operator=(FlowField&&) = default;

  std::size_t index(int cx, int cy) const {
    FICON_REQUIRE(cx >= 0 && cx < nx_ && cy >= 0 && cy < ny_,
                  "cell index out of range");
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(cx);
  }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<double> values_;
};

}  // namespace ficon
