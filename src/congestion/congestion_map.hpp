// Congestion map over a uniform grid — the output of the fixed-grid model.
#pragma once

#include <iosfwd>
#include <vector>

#include "congestion/grid_spec.hpp"
#include "util/stats.hpp"

namespace ficon {

/// @brief Per-cell accumulated crossing probabilities f(x,y) =
/// sum_i P_i(x,y) (paper section 3) on a uniform grid.
///
/// A plain value type: reads are safe to share, concurrent writes are not
/// (the parallel evaluator gives each block its own partial and merges).
class CongestionMap {
 public:
  explicit CongestionMap(GridSpec grid)
      : grid_(grid),
        values_(static_cast<std::size_t>(grid.cell_count()), 0.0) {}

  const GridSpec& grid() const { return grid_; }

  /// @brief Accumulated crossing probability f(x,y) of cell (cx, cy).
  double at(int cx, int cy) const { return values_[index(cx, cy)]; }
  /// @brief Add probability mass `p` to cell (cx, cy).
  void add(int cx, int cy, double p) { values_[index(cx, cy)] += p; }

  /// @brief Element-wise add a partial grid (same layout as values()) —
  /// the ordered-reduction step of the parallel fixed-grid evaluator.
  void merge(const std::vector<double>& partial) {
    FICON_REQUIRE(partial.size() == values_.size(),
                  "partial grid size mismatch");
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += partial[i];
  }

  /// Row-major cell values (y-major, same indexing as at()).
  const std::vector<double>& values() const { return values_; }

  double max_value() const { return values_.empty() ? 0.0 : max_of(values_); }

  /// The paper's solution cost: mean of the `fraction` most congested cells.
  double top_fraction_cost(double fraction = 0.10) const {
    return top_fraction_mean(values_, fraction);
  }

  /// ASCII heat map (rows top-to-bottom), one shade character per cell;
  /// intended for the examples, not for parsing.
  void write_ascii(std::ostream& os, int max_width = 80) const;

  /// CSV dump: header "x,y,congestion", one row per cell.
  void write_csv(std::ostream& os) const;

 private:
  std::size_t index(int cx, int cy) const {
    FICON_REQUIRE(cx >= 0 && cx < grid_.nx() && cy >= 0 && cy < grid_.ny(),
                  "cell index out of range");
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(grid_.nx()) +
           static_cast<std::size_t>(cx);
  }

  GridSpec grid_;
  std::vector<double> values_;
};

}  // namespace ficon
