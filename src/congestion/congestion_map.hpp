// Congestion map over a uniform grid — the output of the fixed-grid model.
#pragma once

#include <iosfwd>

#include "congestion/field.hpp"
#include "congestion/grid_spec.hpp"

namespace ficon {

/// @brief Per-cell accumulated crossing probabilities f(x,y) =
/// sum_i P_i(x,y) (paper section 3) on a uniform grid.
///
/// Storage, merge and the shared field queries (max_value, density,
/// overflow, ...) come from FlowField; this class binds them to a
/// GridSpec and keeps the section-3 cost semantics (raw cell values, not
/// densities — on a uniform grid the two differ only by the constant
/// cell-area factor, and the paper's Tables use the raw form).
class CongestionMap : public FlowField {
 public:
  explicit CongestionMap(GridSpec grid)
      : FlowField(grid.nx(), grid.ny()), grid_(grid) {}

  const GridSpec& grid() const { return grid_; }

  /// @brief Accumulated crossing probability f(x,y) of cell (cx, cy).
  double at(int cx, int cy) const { return value_at(cx, cy); }
  /// @brief Add probability mass `p` to cell (cx, cy).
  void add(int cx, int cy, double p) { add_value(cx, cy, p); }

  Rect cell_rect(int cx, int cy) const override {
    return grid_.cell_rect(cx, cy);
  }

  /// The paper's solution cost: mean of the `fraction` most congested cells.
  double top_fraction_cost(double fraction = 0.10) const {
    return top_fraction_mean(values(), fraction);
  }

  /// ASCII heat map (rows top-to-bottom), one shade character per cell;
  /// intended for the examples, not for parsing.
  void write_ascii(std::ostream& os, int max_width = 80) const;

  /// CSV dump: header "x,y,congestion", one row per cell.
  void write_csv(std::ostream& os) const;

 private:
  GridSpec grid_;
};

}  // namespace ficon
