#include "congestion/model.hpp"

#include "congestion/fixed_grid.hpp"
#include "congestion/irregular_grid.hpp"

namespace ficon {

const char* to_string(CongestionModelKind kind) {
  switch (kind) {
    case CongestionModelKind::kNone: return "none";
    case CongestionModelKind::kIrregularGrid: return "irregular_grid";
    case CongestionModelKind::kFixedGrid: return "fixed_grid";
  }
  return "unknown";
}

std::unique_ptr<CongestionModel> make_congestion_model(
    CongestionModelKind kind, const IrregularGridParams& irregular,
    const FixedGridParams& fixed) {
  switch (kind) {
    case CongestionModelKind::kIrregularGrid:
      return std::make_unique<IrregularGridModel>(irregular);
    case CongestionModelKind::kFixedGrid:
      return std::make_unique<FixedGridModel>(fixed);
    case CongestionModelKind::kNone:
      break;
  }
  return nullptr;
}

}  // namespace ficon
