// Exact lattice-path probabilities (paper sections 3 and 4.3).
//
// A 2-pin net routed in multi-bend shortest Manhattan style over a routing
// range of g1 x g2 fine-grid cells follows a monotone lattice path. With
// the local convention of Definition 1 — cell (0,0) at the lower-left of
// the routing range — a *type I* net has its pins in cells (0,0) and
// (g1-1, g2-1); a *type II* net in (0, g2-1) and (g1-1, 0).
//
// This module computes, exactly and in log space:
//   * Formula 1/2 — the probability that the net passes through one cell,
//   * Formula 3  — the probability that the net passes through a
//     rectangular sub-region (an IR-grid), via exit-edge counting,
//   * a brute-force DP oracle used to validate both.
//
// Type II is handled by mirroring the y axis (y -> g2-1-y), which maps a
// type II net onto a type I net; the paper's explicit type II formulas are
// kept as independent references in the test suite.
#pragma once

#include <optional>

#include "geom/rect.hpp"
#include "numeric/factorial.hpp"

namespace ficon {

/// Shape of one 2-pin net's routing range on a fine grid.
/// g1/g2 are the cell counts in x/y (>= 1). type2 distinguishes the two
/// diagonal orientations of Figure 1; it is meaningless (and ignored) for
/// degenerate ranges (g1 == 1 or g2 == 1).
struct NetGridShape {
  int g1 = 1;
  int g2 = 1;
  bool type2 = false;

  bool degenerate() const { return g1 == 1 || g2 == 1; }
  friend bool operator==(const NetGridShape&, const NetGridShape&) = default;
};

/// Exact probability engine. Holds a reference to a shared log-factorial
/// table; cheap to copy construct per model instance.
class PathProbability {
 public:
  explicit PathProbability(LogFactorialTable& table) : table_(&table) {}

  /// Ta of Definition 1 (type I canonical frame): number of monotone routes
  /// from the source cell (0,0) to (x,y), as a natural log; returns nullopt
  /// outside [0,g1) x [0,g2) (the paper's "otherwise 0").
  std::optional<double> log_ta(const NetGridShape& s, int x, int y) const;

  /// Tb of Definition 1: routes from (x,y) to the sink cell (g1-1,g2-1).
  std::optional<double> log_tb(const NetGridShape& s, int x, int y) const;

  /// ln of the total number of routes of the net.
  double log_total(const NetGridShape& s) const;

  /// Formula 2: probability that the net passes through cell (x, y) in the
  /// net's local frame. Zero outside the routing range. Handles degenerate
  /// ranges (point / segment => probability 1 on the covered cells).
  double cell_probability(const NetGridShape& s, int x, int y) const;

  /// Formula 3 (exact): probability that the net passes through the closed
  /// cell region [region.xlo..xhi] x [region.ylo..yhi] (local frame). The
  /// region is clipped to the routing range; an empty intersection gives 0.
  /// Works for every region, including regions covering one or both pins.
  double region_probability_exact(const NetGridShape& s,
                                  const GridRect& region) const;

  /// True iff the clipped region covers a pin cell of the net.
  bool region_covers_pin(const NetGridShape& s, const GridRect& region) const;

  /// Brute-force oracle: same as region_probability_exact but computed via
  /// an avoidance DP (prob = 1 - [paths avoiding region] / [all paths]).
  /// O(g1*g2); used by tests and the full-exact validation mode.
  double region_probability_oracle(const NetGridShape& s,
                                   const GridRect& region) const;

  /// Oracle for cell_probability via path-count DP (no binomials).
  double cell_probability_oracle(const NetGridShape& s, int x, int y) const;

  LogFactorialTable& table() const { return *table_; }

 private:
  // Canonical (type I) implementations; callers have already mirrored y.
  double region_probability_exact_type1(int g1, int g2,
                                        const GridRect& region) const;

  LogFactorialTable* table_;
};

/// Mirror a y-coordinate for the type II -> type I transform.
inline int mirror_y(int g2, int y) { return g2 - 1 - y; }

/// Mirror a region's y-span for the type II -> type I transform.
inline GridRect mirror_region_y(int g2, const GridRect& r) {
  return GridRect{r.xlo, g2 - 1 - r.yhi, r.xhi, g2 - 1 - r.ylo};
}

}  // namespace ficon
