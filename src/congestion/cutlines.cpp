#include "congestion/cutlines.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/arena.hpp"

namespace ficon {

CutLines::CutLines(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  FICON_REQUIRE(xs_.size() >= 2 && ys_.size() >= 2,
                "need at least the chip boundary lines");
  FICON_REQUIRE(std::is_sorted(xs_.begin(), xs_.end()) &&
                    std::is_sorted(ys_.begin(), ys_.end()),
                "cut lines must be sorted");
}

int CutLines::nearest(const std::vector<double>& lines, double v) {
  const auto it = std::lower_bound(lines.begin(), lines.end(), v);
  if (it == lines.begin()) return 0;
  if (it == lines.end()) return static_cast<int>(lines.size()) - 1;
  const auto prev = it - 1;
  const bool take_prev = (v - *prev) <= (*it - v);
  return static_cast<int>((take_prev ? prev : it) - lines.begin());
}

namespace {

// Interior cluster: coordinate sum and count; its representative is the
// (weighted) mean of every coordinate merged into it.
struct Cluster {
  double sum = 0.0;
  double count = 0.0;
  double rep() const { return sum / count; }
};

/// Below this size a plain std::sort wins; above it, cache-blocked
/// bucketing keeps each comparison sort within L2.
constexpr std::size_t kBlockedSortThreshold = std::size_t{1} << 14;
/// Target elements per bucket: ~32 KiB of doubles, comfortably in-cache.
constexpr std::size_t kBlockedSortBucket = std::size_t{1} << 12;

/// @brief Sort `coords` ascending; all values must lie in [lo, hi].
///
/// Produces exactly the sequence std::sort would (doubles that compare
/// equal are interchangeable, so stability is moot): values are scattered
/// into equal-width buckets by a monotone linear map — so every element of
/// bucket b precedes every element of bucket b+1 — then each bucket is
/// comparison-sorted in cache and the buckets concatenated in place. At
/// the million-line scale of the synthetic tiers (src/gen) this trades the
/// O(n log n) full-array passes of introsort, whose working set falls out
/// of LLC, for one O(n) scatter plus in-cache sorts. Scratch comes from a
/// thread_local arena (util/arena.hpp), so steady state allocates nothing.
void sort_coords_blocked(std::vector<double>& coords, double lo, double hi) {
  if (coords.size() < kBlockedSortThreshold) {
    std::sort(coords.begin(), coords.end());
    return;
  }
  thread_local MonotonicArena arena;
  arena.reset();
  const std::size_t n = coords.size();
  const std::size_t buckets = (n + kBlockedSortBucket - 1) / kBlockedSortBucket;
  const double scale = static_cast<double>(buckets) / (hi - lo);
  const auto bucket_of = [&](double v) {
    // Monotone in v, clamped to [0, buckets): order across buckets is the
    // value order even for coordinates pinned to the boundaries.
    const double b = (v - lo) * scale;
    if (!(b > 0.0)) return std::size_t{0};
    const auto i = static_cast<std::size_t>(b);
    return i < buckets ? i : buckets - 1;
  };

  const std::span<std::uint32_t> offset =
      arena.alloc_span<std::uint32_t>(buckets + 1);
  const std::span<std::uint32_t> cursor =
      arena.alloc_span<std::uint32_t>(buckets);
  const std::span<double> scratch = arena.alloc_span<double>(n);
  std::fill(offset.begin(), offset.end(), 0u);
  for (const double v : coords) {
    ++offset[bucket_of(v) + 1];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    offset[b + 1] += offset[b];
    cursor[b] = offset[b];
  }
  for (const double v : coords) {
    scratch[cursor[bucket_of(v)]++] = v;
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    std::sort(scratch.begin() + offset[b], scratch.begin() + offset[b + 1]);
  }
  std::copy(scratch.begin(), scratch.end(), coords.begin());
}

/// merge_lines() with caller-owned scratch: sorts `coords` in place, uses
/// `kept` as the cluster buffer and writes the merged lines to `merged`.
/// build_cutlines() runs once per proposed annealing move, so it feeds
/// thread_local buffers here instead of allocating fresh ones per call.
void merge_lines_into(std::vector<double>& coords, double lo, double hi,
                      double min_gap, std::vector<Cluster>& kept,
                      std::vector<double>& merged) {
  FICON_REQUIRE(lo < hi, "degenerate axis");
  FICON_REQUIRE(min_gap >= 0.0, "negative merge gap");
  sort_coords_blocked(coords, lo, hi);

  kept.clear();
  std::size_t i = 0;
  while (i < coords.size()) {
    // Skip coordinates at/outside the pinned boundaries or hugging lo.
    if (coords[i] <= lo + min_gap) {
      ++i;
      continue;
    }
    if (coords[i] >= hi - min_gap) break;
    // Greedy cluster: everything within min_gap of the cluster start. The
    // first coordinate is always consumed, so the loop advances even for
    // min_gap == 0 (no merging).
    const double start = coords[i];
    Cluster cluster;
    do {
      cluster.sum += coords[i];
      cluster.count += 1.0;
      ++i;
    } while (i < coords.size() && coords[i] - start < min_gap &&
             coords[i] < hi - min_gap);
    // Chained clusters can still land representatives closer than min_gap
    // (cluster A ends where cluster B starts, but their means are nearer).
    // Pool backwards until the new representative clears the previous one
    // by at least min_gap, so every interior IR-cell is at least min_gap
    // wide. Duplicates (gap 0) pool even when min_gap == 0.
    while (!kept.empty()) {
      const double gap = cluster.rep() - kept.back().rep();
      if (gap >= min_gap && gap > 0.0) break;
      cluster.sum += kept.back().sum;
      cluster.count += kept.back().count;
      kept.pop_back();
    }
    kept.push_back(cluster);
  }

  merged.clear();
  merged.push_back(lo);
  for (const Cluster& c : kept) {
    // Pooling can drag a representative into a boundary's exclusion zone;
    // such lines are swallowed by the boundary like their raw coordinates.
    const double rep = c.rep();
    if (rep > lo + min_gap && rep < hi - min_gap) merged.push_back(rep);
  }
  merged.push_back(hi);
}

}  // namespace

std::vector<double> merge_lines(std::vector<double> coords, double lo,
                                double hi, double min_gap) {
  std::vector<Cluster> kept;
  std::vector<double> merged;
  merge_lines_into(coords, lo, hi, min_gap, kept, merged);
  return merged;
}

CutLines build_cutlines(std::span<const TwoPinNet> nets, const Rect& chip,
                        double min_dx, double min_dy) {
  FICON_REQUIRE(chip.is_proper(), "chip must have positive area");
  // Raw coordinate and cluster buffers are per-thread scratch: this runs
  // once per proposed annealing move, and the raw line count (2 per net
  // per axis) dwarfs the merged output that the CutLines object owns.
  thread_local std::vector<double> xs;
  thread_local std::vector<double> ys;
  thread_local std::vector<Cluster> kept;
  xs.clear();
  ys.clear();
  xs.reserve(nets.size() * 2);
  ys.reserve(nets.size() * 2);
  for (const TwoPinNet& net : nets) {
    const Rect r = net.routing_range();
    xs.push_back(std::clamp(r.xlo, chip.xlo, chip.xhi));
    xs.push_back(std::clamp(r.xhi, chip.xlo, chip.xhi));
    ys.push_back(std::clamp(r.ylo, chip.ylo, chip.yhi));
    ys.push_back(std::clamp(r.yhi, chip.ylo, chip.yhi));
  }
  std::vector<double> merged_x;
  std::vector<double> merged_y;
  merge_lines_into(xs, chip.xlo, chip.xhi, min_dx, kept, merged_x);
  merge_lines_into(ys, chip.ylo, chip.yhi, min_dy, kept, merged_y);
  return CutLines(std::move(merged_x), std::move(merged_y));
}

}  // namespace ficon
