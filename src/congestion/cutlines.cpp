#include "congestion/cutlines.hpp"

#include <algorithm>
#include <cmath>

namespace ficon {

CutLines::CutLines(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  FICON_REQUIRE(xs_.size() >= 2 && ys_.size() >= 2,
                "need at least the chip boundary lines");
  FICON_REQUIRE(std::is_sorted(xs_.begin(), xs_.end()) &&
                    std::is_sorted(ys_.begin(), ys_.end()),
                "cut lines must be sorted");
}

int CutLines::nearest(const std::vector<double>& lines, double v) {
  const auto it = std::lower_bound(lines.begin(), lines.end(), v);
  if (it == lines.begin()) return 0;
  if (it == lines.end()) return static_cast<int>(lines.size()) - 1;
  const auto prev = it - 1;
  const bool take_prev = (v - *prev) <= (*it - v);
  return static_cast<int>((take_prev ? prev : it) - lines.begin());
}

std::vector<double> merge_lines(std::vector<double> coords, double lo,
                                double hi, double min_gap) {
  FICON_REQUIRE(lo < hi, "degenerate axis");
  FICON_REQUIRE(min_gap >= 0.0, "negative merge gap");
  std::sort(coords.begin(), coords.end());

  std::vector<double> merged;
  merged.push_back(lo);
  std::size_t i = 0;
  while (i < coords.size()) {
    // Skip coordinates at/outside the pinned boundaries or hugging lo.
    if (coords[i] <= lo + min_gap) {
      ++i;
      continue;
    }
    if (coords[i] >= hi - min_gap) break;
    // Greedy cluster: everything within min_gap of the cluster start. The
    // first coordinate is always consumed, so the loop advances even for
    // min_gap == 0 (no merging).
    const double start = coords[i];
    double sum = 0.0;
    std::size_t count = 0;
    do {
      sum += coords[i];
      ++count;
      ++i;
    } while (i < coords.size() && coords[i] - start < min_gap &&
             coords[i] < hi - min_gap);
    const double rep = sum / static_cast<double>(count);
    // The previous representative is at least min_gap below `start` by
    // construction of the clusters, but guard against pathological input.
    if (rep - merged.back() > min_gap * 0.5) {
      merged.push_back(rep);
    }
  }
  merged.push_back(hi);
  return merged;
}

CutLines build_cutlines(std::span<const TwoPinNet> nets, const Rect& chip,
                        double min_dx, double min_dy) {
  FICON_REQUIRE(chip.is_proper(), "chip must have positive area");
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(nets.size() * 2);
  ys.reserve(nets.size() * 2);
  for (const TwoPinNet& net : nets) {
    const Rect r = net.routing_range();
    xs.push_back(std::clamp(r.xlo, chip.xlo, chip.xhi));
    xs.push_back(std::clamp(r.xhi, chip.xlo, chip.xhi));
    ys.push_back(std::clamp(r.ylo, chip.ylo, chip.yhi));
    ys.push_back(std::clamp(r.yhi, chip.ylo, chip.yhi));
  }
  return CutLines(merge_lines(std::move(xs), chip.xlo, chip.xhi, min_dx),
                  merge_lines(std::move(ys), chip.ylo, chip.yhi, min_dy));
}

}  // namespace ficon
