#include "congestion/path_prob.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace ficon {
namespace {

/// Clip a region to the routing range [0,g1) x [0,g2); result may be
/// invalid() when disjoint.
GridRect clip(const NetGridShape& s, const GridRect& r) {
  return GridRect{std::max(r.xlo, 0), std::max(r.ylo, 0),
                  std::min(r.xhi, s.g1 - 1), std::min(r.yhi, s.g2 - 1)};
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

std::optional<double> PathProbability::log_ta(const NetGridShape& s, int x,
                                              int y) const {
  if (x < 0 || x >= s.g1 || y < 0 || y >= s.g2) return std::nullopt;
  const int yy = s.type2 ? mirror_y(s.g2, y) : y;
  // Formula 1: type I Ta(x,y) = C(x+y, y); type II is the y-mirror.
  return table_->log_choose(x + yy, yy);
}

std::optional<double> PathProbability::log_tb(const NetGridShape& s, int x,
                                              int y) const {
  if (x < 0 || x >= s.g1 || y < 0 || y >= s.g2) return std::nullopt;
  const int yy = s.type2 ? mirror_y(s.g2, y) : y;
  // Tb(x,y) = Ta(g1-1-x, g2-1-y) in the type I frame.
  const int dx = s.g1 - 1 - x;
  const int dy = s.g2 - 1 - yy;
  return table_->log_choose(dx + dy, dy);
}

double PathProbability::log_total(const NetGridShape& s) const {
  // Total routes = C(g1+g2-2, g2-1) for both types.
  return table_->log_choose(s.g1 + s.g2 - 2, s.g2 - 1);
}

double PathProbability::cell_probability(const NetGridShape& s, int x,
                                         int y) const {
  FICON_REQUIRE(s.g1 >= 1 && s.g2 >= 1, "empty routing range");
  if (x < 0 || x >= s.g1 || y < 0 || y >= s.g2) return 0.0;
  // Degenerate ranges: the single possible route covers every cell.
  if (s.degenerate()) return 1.0;
  const auto ta = log_ta(s, x, y);
  const auto tb = log_tb(s, x, y);
  FICON_ASSERT(ta && tb, "in-range cell must have counts");
  return clamp01(std::exp(*ta + *tb - log_total(s)));
}

bool PathProbability::region_covers_pin(const NetGridShape& s,
                                        const GridRect& region) const {
  const GridRect r = clip(s, region);
  if (!r.valid()) return false;
  if (s.type2) {
    return r.contains(0, s.g2 - 1) || r.contains(s.g1 - 1, 0);
  }
  return r.contains(0, 0) || r.contains(s.g1 - 1, s.g2 - 1);
}

double PathProbability::region_probability_exact(const NetGridShape& s,
                                                 const GridRect& region) const {
  FICON_REQUIRE(s.g1 >= 1 && s.g2 >= 1, "empty routing range");
  const GridRect r = clip(s, region);
  if (!r.valid()) return 0.0;
  // Degenerate ranges: the unique route passes through every cell of the
  // range, so any non-empty intersection means probability 1.
  if (s.degenerate()) return 1.0;
  const GridRect canonical = s.type2 ? mirror_region_y(s.g2, r) : r;
  return region_probability_exact_type1(s.g1, s.g2, canonical);
}

double PathProbability::region_probability_exact_type1(
    int g1, int g2, const GridRect& r) const {
  // Frame: source pin cell (0,0), sink pin cell (g1-1, g2-1); monotone
  // up/right paths. Exit-edge counting (Formula 3) is valid whenever the
  // sink lies outside the region: each path touching the region leaves it
  // exactly once, through the top edge or the right edge.
  if (r.contains(g1 - 1, g2 - 1)) {
    if (r.contains(0, 0)) return 1.0;
    // Region covers the sink: rotate the frame 180 degrees so the covered
    // pin becomes the source, then exit-count in the rotated frame.
    const GridRect rotated{g1 - 1 - r.xhi, g2 - 1 - r.yhi, g1 - 1 - r.xlo,
                           g2 - 1 - r.ylo};
    return region_probability_exact_type1(g1, g2, rotated);
  }

  const NetGridShape s{g1, g2, false};
  const double total = log_total(s);
  double prob = 0.0;
  // Top-edge exits: (x, yhi) -> (x, yhi+1) for x in [xlo..xhi].
  if (r.yhi + 1 <= g2 - 1) {
    for (int x = r.xlo; x <= r.xhi; ++x) {
      const auto ta = log_ta(s, x, r.yhi);
      const auto tb = log_tb(s, x, r.yhi + 1);
      FICON_ASSERT(ta && tb, "edge terms must be in range");
      prob += std::exp(*ta + *tb - total);
    }
  }
  // Right-edge exits: (xhi, y) -> (xhi+1, y) for y in [ylo..yhi].
  if (r.xhi + 1 <= g1 - 1) {
    for (int y = r.ylo; y <= r.yhi; ++y) {
      const auto ta = log_ta(s, r.xhi, y);
      const auto tb = log_tb(s, r.xhi + 1, y);
      FICON_ASSERT(ta && tb, "edge terms must be in range");
      prob += std::exp(*ta + *tb - total);
    }
  }
  return clamp01(prob);
}

double PathProbability::region_probability_oracle(const NetGridShape& s,
                                                  const GridRect& region) const {
  FICON_REQUIRE(s.g1 >= 1 && s.g2 >= 1, "empty routing range");
  FICON_REQUIRE(s.g1 + s.g2 <= 2000,
                "oracle limited to small ranges (long double overflow)");
  const GridRect r = clip(s, region);
  if (!r.valid()) return 0.0;
  if (s.degenerate()) return 1.0;
  const GridRect c = s.type2 ? mirror_region_y(s.g2, r) : r;

  // Count paths (0,0) -> (g1-1,g2-1) that avoid the region entirely;
  // probability of touching = 1 - avoiding / total.
  const auto idx = [&](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(s.g1) +
           static_cast<std::size_t>(x);
  };
  std::vector<long double> avoid(
      static_cast<std::size_t>(s.g1) * static_cast<std::size_t>(s.g2), 0.0L);
  std::vector<long double> all(avoid.size(), 0.0L);
  for (int y = 0; y < s.g2; ++y) {
    for (int x = 0; x < s.g1; ++x) {
      const long double from_left = x > 0 ? all[idx(x - 1, y)] : 0.0L;
      const long double from_below = y > 0 ? all[idx(x, y - 1)] : 0.0L;
      all[idx(x, y)] = (x == 0 && y == 0) ? 1.0L : from_left + from_below;
      if (c.contains(x, y)) {
        avoid[idx(x, y)] = 0.0L;
      } else {
        const long double a_left = x > 0 ? avoid[idx(x - 1, y)] : 0.0L;
        const long double a_below = y > 0 ? avoid[idx(x, y - 1)] : 0.0L;
        avoid[idx(x, y)] = (x == 0 && y == 0) ? 1.0L : a_left + a_below;
      }
    }
  }
  const long double total = all[idx(s.g1 - 1, s.g2 - 1)];
  const long double avoiding = avoid[idx(s.g1 - 1, s.g2 - 1)];
  return clamp01(static_cast<double>(1.0L - avoiding / total));
}

double PathProbability::cell_probability_oracle(const NetGridShape& s, int x,
                                                int y) const {
  return region_probability_oracle(s, GridRect{x, y, x, y});
}

}  // namespace ficon
