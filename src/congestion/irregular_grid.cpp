#include "congestion/irregular_grid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>

#include "util/thread_pool.hpp"

namespace ficon {

double IrregularCongestionMap::top_fraction_cost(double fraction) const {
  FICON_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction out of (0,1]");
  struct CellScore {
    double density;
    double area;
  };
  std::vector<CellScore> cells;
  cells.reserve(flow_.size());
  double chip_area = 0.0;
  for (int iy = 0; iy < ny(); ++iy) {
    for (int ix = 0; ix < nx(); ++ix) {
      const double area = lines_.cell_rect(ix, iy).area();
      chip_area += area;
      cells.push_back(CellScore{density(ix, iy), area});
    }
  }
  if (cells.empty() || chip_area <= 0.0) return 0.0;
  std::sort(cells.begin(), cells.end(),
            [](const CellScore& a, const CellScore& b) {
              return a.density > b.density;
            });
  const double budget = fraction * chip_area;
  double used = 0.0;
  double weighted = 0.0;
  for (const CellScore& c : cells) {
    const double take = std::min(c.area, budget - used);
    if (take <= 0.0) break;
    weighted += c.density * take;
    used += take;
  }
  return used > 0.0 ? weighted / used : 0.0;
}

void IrregularCongestionMap::write_csv(std::ostream& os) const {
  os << "xlo,ylo,xhi,yhi,flow,density\n";
  for (int iy = 0; iy < ny(); ++iy) {
    for (int ix = 0; ix < nx(); ++ix) {
      const Rect r = lines_.cell_rect(ix, iy);
      os << r.xlo << ',' << r.ylo << ',' << r.xhi << ',' << r.yhi << ','
         << flow(ix, iy) << ',' << density(ix, iy) << '\n';
    }
  }
}

namespace {

/// Map an IR-cell's um extent onto the net's local fine-lattice cell span.
/// `origin` is the snapped range start, `pitch` the fine pitch, `g` the
/// lattice size along this axis.
int local_lo(double lo, double origin, double pitch, int g) {
  const double raw = (lo - origin) / pitch;
  return std::clamp(static_cast<int>(std::floor(raw + 1e-9)), 0, g - 1);
}

int local_hi(double hi, double origin, double pitch, int g) {
  const double raw = (hi - origin) / pitch;
  return std::clamp(static_cast<int>(std::ceil(raw - 1e-9)) - 1, 0, g - 1);
}

/// A partial flow grid: one block's accumulation target. Same row-major
/// layout as IrregularCongestionMap::flow(); partials from all blocks are
/// reduced in block order at the end of evaluate().
struct FlowGrid {
  std::vector<double>* flow;
  int nx;
  int ny;

  void add(int ix, int iy, double p) const {
    FICON_REQUIRE(ix >= 0 && ix < nx && iy >= 0 && iy < ny,
                  "IR-cell index out of range");
    (*flow)[static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx) +
            static_cast<std::size_t>(ix)] += p;
  }
};

/// One net's placement on the Irregular-Grid: covered IR-cell index window
/// plus the local fine lattice.
struct NetOnGrid {
  int ix1, ix2, iy1, iy2;  ///< covering cut-line indices (cells ix1..ix2-1)
  double sx1, sy1;         ///< snapped range origin (um)
  NetGridShape shape;
};

/// Banded exact evaluation (IrEvalStrategy::kBandedExact).
///
/// Works in the canonical type I frame (source cell (0,0), sink
/// (g1-1,g2-1); type II nets are y-mirrored). Formula 3 for an IR-cell is
///   P = sum_x in [lx1..lx2] T(x, Y)  +  sum_y in [cy1..cy2] R(X, y)
/// with T/R the normalized top/right exit terms, Y the cell's top fine row
/// and X its right fine column. Rather than evaluating each cell's sums
/// independently, build per-band prefix sums of T (one pass of length g1
/// per IR row) and of R (one pass of length g2 per IR column), advancing
/// the terms with exact multiplicative recurrences:
///   T(x+1,Y)/T(x,Y) = (x+1+Y)/(x+1) * (g1-1-x)/((g1-1-x)+(g2-2-Y))
///   R(X,y+1)/R(X,y) = (X+1+y)/(y+1) * (g2-1-y)/((g1-2-X)+(g2-1-y))
/// so the only transcendental call is one exp() per band. Cells covering a
/// pin are exactly 1 (every route passes a pin cell), which doubles as the
/// paper's step 3.1.
class BandedEvaluator {
 public:
  BandedEvaluator(LogFactorialTable& table, const IrregularGridParams& params)
      : table_(&table), params_(&params) {}

  void accumulate(const FlowGrid& out, const CutLines& cl,
                  const NetOnGrid& net) {
    const int g1 = net.shape.g1;
    const int g2 = net.shape.g2;
    const bool t2 = net.shape.type2;
    const int ncx = net.ix2 - net.ix1;  // covered IR columns
    const int ncy = net.iy2 - net.iy1;  // covered IR rows
    cell_flow_.assign(static_cast<std::size_t>(ncx) *
                          static_cast<std::size_t>(ncy),
                      0.0);

    // Local fine spans of every covered IR column/row (canonical frame).
    col_lx1_.resize(static_cast<std::size_t>(ncx));
    col_lx2_.resize(static_cast<std::size_t>(ncx));
    for (int cx = 0; cx < ncx; ++cx) {
      const Rect cell = cl.cell_rect(net.ix1 + cx, net.iy1);
      col_lx1_[static_cast<std::size_t>(cx)] =
          local_lo(cell.xlo, net.sx1, params_->grid_w, g1);
      col_lx2_[static_cast<std::size_t>(cx)] =
          local_hi(cell.xhi, net.sx1, params_->grid_w, g1);
    }
    row_cy1_.resize(static_cast<std::size_t>(ncy));
    row_cy2_.resize(static_cast<std::size_t>(ncy));
    for (int cy = 0; cy < ncy; ++cy) {
      const Rect cell = cl.cell_rect(net.ix1, net.iy1 + cy);
      const int ly1 = local_lo(cell.ylo, net.sy1, params_->grid_h, g2);
      const int ly2 = local_hi(cell.yhi, net.sy1, params_->grid_h, g2);
      // Canonical frame: mirror the y-span for type II nets.
      row_cy1_[static_cast<std::size_t>(cy)] = t2 ? g2 - 1 - ly2 : ly1;
      row_cy2_[static_cast<std::size_t>(cy)] = t2 ? g2 - 1 - ly1 : ly2;
    }

    const double log_total = table_->log_choose(g1 + g2 - 2, g2 - 1);

    // --- Top-exit pass: one prefix-sum row per covered IR row.
    prefix_.resize(static_cast<std::size_t>(g1));
    for (int cy = 0; cy < ncy; ++cy) {
      const int top = row_cy2_[static_cast<std::size_t>(cy)];
      if (top >= g2 - 1) continue;  // no cell above: no top exits
      double term = std::exp(
          table_->log_choose(g1 - 1 + g2 - 2 - top, g2 - 2 - top) - log_total);
      double running = 0.0;
      for (int x = 0; x < g1; ++x) {
        running += term;
        prefix_[static_cast<std::size_t>(x)] = running;
        if (x < g1 - 1) {
          term *= (static_cast<double>(x + 1 + top) / (x + 1)) *
                  (static_cast<double>(g1 - 1 - x) /
                   ((g1 - 1 - x) + (g2 - 2 - top)));
        }
      }
      for (int cx = 0; cx < ncx; ++cx) {
        const int lx1 = col_lx1_[static_cast<std::size_t>(cx)];
        const int lx2 = col_lx2_[static_cast<std::size_t>(cx)];
        const double sum = prefix_[static_cast<std::size_t>(lx2)] -
                           (lx1 > 0 ? prefix_[static_cast<std::size_t>(lx1 - 1)]
                                    : 0.0);
        cell_flow_[index(cx, cy, ncx)] += sum;
      }
    }

    // --- Right-exit pass: one prefix-sum column per covered IR column.
    prefix_.resize(static_cast<std::size_t>(std::max(g1, g2)));
    for (int cx = 0; cx < ncx; ++cx) {
      const int right = col_lx2_[static_cast<std::size_t>(cx)];
      if (right >= g1 - 1) continue;  // no cell to the right
      double term = std::exp(
          table_->log_choose(g1 - 2 - right + g2 - 1, g2 - 1) - log_total);
      double running = 0.0;
      for (int y = 0; y < g2; ++y) {
        running += term;
        prefix_[static_cast<std::size_t>(y)] = running;
        if (y < g2 - 1) {
          term *= (static_cast<double>(right + 1 + y) / (y + 1)) *
                  (static_cast<double>(g2 - 1 - y) /
                   ((g1 - 2 - right) + (g2 - 1 - y)));
        }
      }
      for (int cy = 0; cy < ncy; ++cy) {
        const int cy1 = row_cy1_[static_cast<std::size_t>(cy)];
        const int cy2 = row_cy2_[static_cast<std::size_t>(cy)];
        const double sum = prefix_[static_cast<std::size_t>(cy2)] -
                           (cy1 > 0 ? prefix_[static_cast<std::size_t>(cy1 - 1)]
                                    : 0.0);
        cell_flow_[index(cx, cy, ncx)] += sum;
      }
    }

    // --- Pin override + accumulation into the block's partial grid.
    for (int cy = 0; cy < ncy; ++cy) {
      const int cy1 = row_cy1_[static_cast<std::size_t>(cy)];
      const int cy2 = row_cy2_[static_cast<std::size_t>(cy)];
      for (int cx = 0; cx < ncx; ++cx) {
        const int lx1 = col_lx1_[static_cast<std::size_t>(cx)];
        const int lx2 = col_lx2_[static_cast<std::size_t>(cx)];
        double p = cell_flow_[index(cx, cy, ncx)];
        const bool covers_source = lx1 == 0 && cy1 == 0;
        const bool covers_sink = lx2 == g1 - 1 && cy2 == g2 - 1;
        if (covers_source || covers_sink) p = 1.0;
        out.add(net.ix1 + cx, net.iy1 + cy, std::clamp(p, 0.0, 1.0));
      }
    }
  }

 private:
  static std::size_t index(int cx, int cy, int ncx) {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(ncx) +
           static_cast<std::size_t>(cx);
  }

  LogFactorialTable* table_;
  const IrregularGridParams* params_;
  // Scratch buffers reused across the nets of one evaluation block (each
  // block has its own evaluator, so these are never shared between threads).
  std::vector<double> cell_flow_;
  std::vector<double> prefix_;
  std::vector<int> col_lx1_, col_lx2_, row_cy1_, row_cy2_;
};

/// Score one net (algorithm steps 3.1-3.3) into a partial flow grid.
void score_net(const TwoPinNet& net, const CutLines& cl, const Rect& chip,
               const IrregularGridParams& params, const FlowGrid& out,
               const PathProbability& exact,
               const ApproxRegionProbability& approx,
               BandedEvaluator& banded) {
  const Rect range = net.routing_range().intersection(chip);
  if (!range.valid()) return;  // net fully outside the chip window

  // Snap the routing range to the merged cut lines (step 2's "modify the
  // corresponding routing ranges").
  NetOnGrid on_grid;
  on_grid.ix1 = cl.nearest_x(range.xlo);
  on_grid.ix2 = cl.nearest_x(range.xhi);
  on_grid.iy1 = cl.nearest_y(range.ylo);
  on_grid.iy2 = cl.nearest_y(range.yhi);
  on_grid.sx1 = cl.xs()[static_cast<std::size_t>(on_grid.ix1)];
  on_grid.sy1 = cl.ys()[static_cast<std::size_t>(on_grid.iy1)];
  const double sx2 = cl.xs()[static_cast<std::size_t>(on_grid.ix2)];
  const double sy2 = cl.ys()[static_cast<std::size_t>(on_grid.iy2)];

  // Degenerate (line/point) ranges after snapping: the single route
  // covers its cells with probability 1.
  if (on_grid.ix1 == on_grid.ix2 || on_grid.iy1 == on_grid.iy2) {
    const int cx_lo = std::min(on_grid.ix1, cl.nx() - 1);
    const int cy_lo = std::min(on_grid.iy1, cl.ny() - 1);
    const int cx_hi =
        on_grid.ix1 == on_grid.ix2 ? cx_lo : std::max(0, on_grid.ix2 - 1);
    const int cy_hi =
        on_grid.iy1 == on_grid.iy2 ? cy_lo : std::max(0, on_grid.iy2 - 1);
    for (int iy = std::min(cy_lo, cy_hi); iy <= std::max(cy_lo, cy_hi);
         ++iy) {
      for (int ix = std::min(cx_lo, cx_hi); ix <= std::max(cx_lo, cx_hi);
           ++ix) {
        out.add(ix, iy, 1.0);
      }
    }
    return;
  }

  // Fine lattice of the snapped routing range.
  on_grid.shape.g1 = std::max(
      1, static_cast<int>(std::ceil((sx2 - on_grid.sx1) / params.grid_w - 1e-9)));
  on_grid.shape.g2 = std::max(
      1, static_cast<int>(std::ceil((sy2 - on_grid.sy1) / params.grid_h - 1e-9)));
  // Type II iff the left pin is the upper pin (Figure 1).
  const Point& left = net.a.x <= net.b.x ? net.a : net.b;
  const Point& right = net.a.x <= net.b.x ? net.b : net.a;
  on_grid.shape.type2 = !on_grid.shape.degenerate() && left.y > right.y;

  if (params.strategy == IrEvalStrategy::kBandedExact &&
      !on_grid.shape.degenerate()) {
    banded.accumulate(out, cl, on_grid);
    return;
  }

  // Steps 3.1-3.3: score every IR-cell covered by the snapped range.
  for (int iy = on_grid.iy1; iy < on_grid.iy2; ++iy) {
    for (int ix = on_grid.ix1; ix < on_grid.ix2; ++ix) {
      const Rect cell = cl.cell_rect(ix, iy);
      const GridRect region{
          local_lo(cell.xlo, on_grid.sx1, params.grid_w, on_grid.shape.g1),
          local_lo(cell.ylo, on_grid.sy1, params.grid_h, on_grid.shape.g2),
          local_hi(cell.xhi, on_grid.sx1, params.grid_w, on_grid.shape.g1),
          local_hi(cell.yhi, on_grid.sy1, params.grid_h, on_grid.shape.g2)};
      const double p =
          params.strategy == IrEvalStrategy::kTheorem1
              ? approx.region_probability(on_grid.shape, region)
              : (exact.region_covers_pin(on_grid.shape, region)
                     ? 1.0
                     : exact.region_probability_exact(on_grid.shape, region));
      out.add(ix, iy, p);
    }
  }
}

}  // namespace

IrregularCongestionMap IrregularGridModel::evaluate(
    std::span<const TwoPinNet> nets, const Rect& chip) const {
  // Algorithm steps 1-2: cut lines from routing ranges, then merge lines
  // closer than twice the fine pitch.
  CutLines lines =
      build_cutlines(nets, chip, params_.merge_factor * params_.grid_w,
                     params_.merge_factor * params_.grid_h);
  const std::size_t cells = static_cast<std::size_t>(lines.cell_count());

  // Steps 3-4, parallel: nets are partitioned into blocks (boundaries a
  // function of the net count only — NOT the thread count), every block
  // accumulates into a private partial grid, and the partials are reduced
  // in block order below. Fixed blocking + ordered reduction make the
  // result bit-identical for every FICON_THREADS setting.
  const int blocks = deterministic_block_count(nets.size());
  std::vector<std::vector<double>> partial(static_cast<std::size_t>(blocks));
  const CutLines& cl = lines;
  const IrregularGridParams& params = params_;
  ThreadPool::global().run(blocks, [&](int b) {
    // Per-thread log-factorial cache: amortized across calls like the old
    // single-threaded member table, but race-free.
    thread_local LogFactorialTable table;
    PathProbability exact(table);
    const ApproxRegionProbability approx(exact, params.approx);
    BandedEvaluator banded(table, params);
    std::vector<double>& flow = partial[static_cast<std::size_t>(b)];
    flow.assign(cells, 0.0);
    const FlowGrid out{&flow, cl.nx(), cl.ny()};
    const BlockRange range = block_range(nets.size(), blocks, b);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      score_net(nets[i], cl, chip, params, out, exact, approx, banded);
    }
  });

  // Ordered reduction (block 0 first, block N-1 last).
  std::vector<double> flow(cells, 0.0);
  for (const std::vector<double>& p : partial) {
    for (std::size_t i = 0; i < cells; ++i) flow[i] += p[i];
  }
  return IrregularCongestionMap(std::move(lines), std::move(flow));
}

}  // namespace ficon
