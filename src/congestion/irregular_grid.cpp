#include "congestion/irregular_grid.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <ostream>

#include "congestion/prob_kernel.hpp"
#include "congestion/score_cache.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace ficon {

namespace {

/// Map an IR-cell's um extent onto the net's local fine-lattice cell span.
/// `origin` is the snapped range start, `pitch` the fine pitch, `g` the
/// lattice size along this axis.
int local_lo(double lo, double origin, double pitch, int g) {
  const double raw = (lo - origin) / pitch;
  return std::clamp(static_cast<int>(std::floor(raw + 1e-9)), 0, g - 1);
}

int local_hi(double hi, double origin, double pitch, int g) {
  const double raw = (hi - origin) / pitch;
  return std::clamp(static_cast<int>(std::ceil(raw - 1e-9)) - 1, 0, g - 1);
}

/// A partial flow grid: one block's accumulation target. Same row-major
/// layout as IrregularCongestionMap::flow(); partials from all blocks are
/// reduced in block order at the end of evaluate().
struct FlowGrid {
  std::vector<double>* flow;
  int nx;
  int ny;

  void add(int ix, int iy, double p) const {
    FICON_REQUIRE(ix >= 0 && ix < nx && iy >= 0 && iy < ny,
                  "IR-cell index out of range");
    (*flow)[static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx) +
            static_cast<std::size_t>(ix)] += p;
  }
};

/// One net's placement on the Irregular-Grid: covered IR-cell index window
/// plus the local fine lattice.
struct NetOnGrid {
  int ix1, ix2, iy1, iy2;  ///< covering cut-line indices (cells ix1..ix2-1)
  double sx1, sy1;         ///< snapped range origin (um)
  NetGridShape shape;

  int ncx() const { return ix2 - ix1; }  ///< covered IR columns
  int ncy() const { return iy2 - iy1; }  ///< covered IR rows
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Fingerprint of every option that influences a memoized probability
/// matrix. The ScoreMemo clears itself when this changes, so cached values
/// can never leak across strategies or Theorem-1 knob settings.
std::uint64_t scoring_fingerprint(const IrregularGridParams& p) {
  std::uint64_t h = 0;
  h = mix(h, static_cast<std::uint64_t>(p.strategy));
  h = mix(h, std::bit_cast<std::uint64_t>(p.grid_w));
  h = mix(h, std::bit_cast<std::uint64_t>(p.grid_h));
  h = mix(h, static_cast<std::uint64_t>(p.approx.continuity_correction));
  h = mix(h, static_cast<std::uint64_t>(p.approx.simpson_panels));
  h = mix(h, static_cast<std::uint64_t>(p.approx.small_range_threshold));
  h = mix(h, static_cast<std::uint64_t>(p.approx.small_region_threshold));
  h = mix(h, static_cast<std::uint64_t>(p.approx.narrow_range_threshold));
  // The RESOLVED SIMD mode, not the enum: kAuto hashes like whichever
  // concrete mode it resolves to, so memoized matrices can never leak
  // between the scalar and batched-kernel evaluations while equal-result
  // configurations still share cache entries.
  h = mix(h, static_cast<std::uint64_t>(kernel_simd_active(p.approx.simd)));
  return h;
}

/// Per-block net scorer (algorithm steps 3.1-3.3).
///
/// For every net it derives the covered IR-cell window and each covered
/// column/row's local fine-lattice span, then computes the net's ncx x ncy
/// crossing-probability matrix and accumulates it into the block's partial
/// flow grid. The matrix is a pure function of the signature
/// (g1, g2, type2, ncx, ncy, spans), so it is memoized in a thread_local
/// ScoreMemo: during annealing, nets whose modules did not move re-present
/// identical signatures and skip straight to accumulation. Hit and miss
/// produce bit-identical matrices, so memoization cannot perturb results.
///
/// Banded exact evaluation (IrEvalStrategy::kBandedExact) works in the
/// canonical type I frame (source cell (0,0), sink (g1-1,g2-1); type II
/// nets are y-mirrored). Formula 3 for an IR-cell is
///   P = sum_x in [lx1..lx2] T(x, Y)  +  sum_y in [cy1..cy2] R(X, y)
/// with T/R the normalized top/right exit terms, Y the cell's top fine row
/// and X its right fine column. Rather than evaluating each cell's sums
/// independently, build per-band prefix sums of T (one pass of length g1
/// per IR row) and of R (one pass of length g2 per IR column), advancing
/// the terms with exact multiplicative recurrences:
///   T(x+1,Y)/T(x,Y) = (x+1+Y)/(x+1) * (g1-1-x)/((g1-1-x)+(g2-2-Y))
///   R(X,y+1)/R(X,y) = (X+1+y)/(y+1) * (g2-1-y)/((g1-2-X)+(g2-1-y))
/// so the only transcendental call is one exp() per band. Cells covering a
/// pin are exactly 1 (every route passes a pin cell), which doubles as the
/// paper's step 3.1.
class NetScorer {
 public:
  NetScorer(LogFactorialTable& table, const IrregularGridParams& params,
            ScoreMemo& memo)
      : table_(&table),
        params_(&params),
        memo_(&memo),
        kernel_(PathProbability(table), params.approx) {}

  void score(const TwoPinNet& net, const CutLines& cl, const Rect& chip,
             const FlowGrid& out) {
    obs::count(obs::Counter::kIrNetsScored);
    const Rect range = net.routing_range().intersection(chip);
    if (!range.valid()) return;  // net fully outside the chip window

    // Snap the routing range to the merged cut lines (step 2's "modify the
    // corresponding routing ranges").
    NetOnGrid on_grid;
    on_grid.ix1 = cl.nearest_x(range.xlo);
    on_grid.ix2 = cl.nearest_x(range.xhi);
    on_grid.iy1 = cl.nearest_y(range.ylo);
    on_grid.iy2 = cl.nearest_y(range.yhi);
    on_grid.sx1 = cl.xs()[static_cast<std::size_t>(on_grid.ix1)];
    on_grid.sy1 = cl.ys()[static_cast<std::size_t>(on_grid.iy1)];
    const double sx2 = cl.xs()[static_cast<std::size_t>(on_grid.ix2)];
    const double sy2 = cl.ys()[static_cast<std::size_t>(on_grid.iy2)];

    // Degenerate (line/point) snapped ranges: the single route runs exactly
    // ON a cut line, i.e. on the shared boundary of the two adjacent IR-cell
    // columns (rows). Charging only one side would systematically bias
    // congestion toward that side, so split the unit crossing probability
    // 0.5/0.5 across the two touching cells per collapsed axis — or give
    // the single neighbor weight 1.0 when the line is a chip boundary.
    // Weights multiply when both axes collapse (a point net on a cut-line
    // crossing charges its four corner cells 0.25 each).
    if (on_grid.ix1 == on_grid.ix2 || on_grid.iy1 == on_grid.iy2) {
      obs::count(obs::Counter::kIrNetsDegenerate);
      int cx_lo, cx_hi;
      double wx = 1.0;
      if (on_grid.ix1 == on_grid.ix2) {
        const bool left = on_grid.ix1 > 0;
        const bool right = on_grid.ix1 < cl.nx();
        cx_lo = left ? on_grid.ix1 - 1 : on_grid.ix1;
        cx_hi = right ? on_grid.ix1 : on_grid.ix1 - 1;
        if (left && right) wx = 0.5;
      } else {
        cx_lo = on_grid.ix1;
        cx_hi = on_grid.ix2 - 1;
      }
      int cy_lo, cy_hi;
      double wy = 1.0;
      if (on_grid.iy1 == on_grid.iy2) {
        const bool below = on_grid.iy1 > 0;
        const bool above = on_grid.iy1 < cl.ny();
        cy_lo = below ? on_grid.iy1 - 1 : on_grid.iy1;
        cy_hi = above ? on_grid.iy1 : on_grid.iy1 - 1;
        if (below && above) wy = 0.5;
      } else {
        cy_lo = on_grid.iy1;
        cy_hi = on_grid.iy2 - 1;
      }
      for (int iy = cy_lo; iy <= cy_hi; ++iy) {
        for (int ix = cx_lo; ix <= cx_hi; ++ix) {
          out.add(ix, iy, wx * wy);
        }
      }
      return;
    }

    // Fine lattice of the snapped routing range.
    on_grid.shape.g1 = std::max(
        1, static_cast<int>(
               std::ceil((sx2 - on_grid.sx1) / params_->grid_w - 1e-9)));
    on_grid.shape.g2 = std::max(
        1, static_cast<int>(
               std::ceil((sy2 - on_grid.sy1) / params_->grid_h - 1e-9)));
    // Type II iff the left pin is the upper pin (Figure 1).
    const Point& left = net.a.x <= net.b.x ? net.a : net.b;
    const Point& right = net.a.x <= net.b.x ? net.b : net.a;
    on_grid.shape.type2 = !on_grid.shape.degenerate() && left.y > right.y;

    // Unmirrored local fine spans of every covered IR column/row. They are
    // both the evaluation input and (with the shape) the memo signature.
    const int ncx = on_grid.ncx();
    const int ncy = on_grid.ncy();
    lx1_.resize(static_cast<std::size_t>(ncx));
    lx2_.resize(static_cast<std::size_t>(ncx));
    for (int cx = 0; cx < ncx; ++cx) {
      const Rect cell = cl.cell_rect(on_grid.ix1 + cx, on_grid.iy1);
      lx1_[static_cast<std::size_t>(cx)] =
          local_lo(cell.xlo, on_grid.sx1, params_->grid_w, on_grid.shape.g1);
      lx2_[static_cast<std::size_t>(cx)] =
          local_hi(cell.xhi, on_grid.sx1, params_->grid_w, on_grid.shape.g1);
    }
    ly1_.resize(static_cast<std::size_t>(ncy));
    ly2_.resize(static_cast<std::size_t>(ncy));
    for (int cy = 0; cy < ncy; ++cy) {
      const Rect cell = cl.cell_rect(on_grid.ix1, on_grid.iy1 + cy);
      ly1_[static_cast<std::size_t>(cy)] =
          local_lo(cell.ylo, on_grid.sy1, params_->grid_h, on_grid.shape.g2);
      ly2_[static_cast<std::size_t>(cy)] =
          local_hi(cell.yhi, on_grid.sy1, params_->grid_h, on_grid.shape.g2);
    }

    // Memoization split, driven by measurement: under the region
    // strategies a per-cell evaluation costs microseconds, so the matrix
    // memo pays for its lookup. Under kBandedExact a full recompute costs
    // a few hundred nanoseconds — cheaper than pulling a ~30-int key plus
    // matrix through the cache hierarchy — so the banded path always
    // recomputes (degenerate shapes fall back to fill_regions and stay
    // memoized). Hits and misses are bit-identical, so the split is
    // invisible in results.
    const bool banded = params_->strategy == IrEvalStrategy::kBandedExact &&
                        !on_grid.shape.degenerate();
    const std::vector<double>* probs = nullptr;
    if (memo_->enabled() && !banded) {
      build_key(on_grid);
      probs = memo_->find(key_);
    }
    if (probs == nullptr) {
      if (banded) {
        fill_banded(on_grid);
      } else {
        fill_regions(on_grid);
        if (memo_->enabled()) memo_->insert(key_, probs_);
      }
      probs = &probs_;
    }

    for (int cy = 0; cy < ncy; ++cy) {
      for (int cx = 0; cx < ncx; ++cx) {
        out.add(on_grid.ix1 + cx, on_grid.iy1 + cy,
                (*probs)[index(cx, cy, ncx)]);
      }
    }
  }

 private:
  static std::size_t index(int cx, int cy, int ncx) {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(ncx) +
           static_cast<std::size_t>(cx);
  }

  void build_key(const NetOnGrid& net) {
    key_.clear();
    key_.reserve(5 + lx1_.size() + lx2_.size() + ly1_.size() + ly2_.size());
    key_.push_back(net.shape.g1);
    key_.push_back(net.shape.g2);
    key_.push_back(net.shape.type2 ? 1 : 0);
    key_.push_back(net.ncx());
    key_.push_back(net.ncy());
    key_.insert(key_.end(), lx1_.begin(), lx1_.end());
    key_.insert(key_.end(), lx2_.begin(), lx2_.end());
    key_.insert(key_.end(), ly1_.begin(), ly1_.end());
    key_.insert(key_.end(), ly2_.begin(), ly2_.end());
  }

  /// Banded exact probabilities for all covered IR-cells of one net,
  /// pin-override and clamp applied (see the class comment for the math).
  void fill_banded(const NetOnGrid& net) {
    obs::count(obs::Counter::kIrRegionsBanded,
               static_cast<long long>(net.ncx()) * net.ncy());
    const int g1 = net.shape.g1;
    const int g2 = net.shape.g2;
    const bool t2 = net.shape.type2;
    const int ncx = net.ncx();
    const int ncy = net.ncy();
    probs_.assign(static_cast<std::size_t>(ncx) * static_cast<std::size_t>(ncy),
                  0.0);

    // Canonical frame: mirror the y-spans for type II nets.
    row_cy1_.resize(static_cast<std::size_t>(ncy));
    row_cy2_.resize(static_cast<std::size_t>(ncy));
    for (int cy = 0; cy < ncy; ++cy) {
      const int ly1 = ly1_[static_cast<std::size_t>(cy)];
      const int ly2 = ly2_[static_cast<std::size_t>(cy)];
      row_cy1_[static_cast<std::size_t>(cy)] = t2 ? g2 - 1 - ly2 : ly1;
      row_cy2_[static_cast<std::size_t>(cy)] = t2 ? g2 - 1 - ly1 : ly2;
    }

    const double log_total = table_->log_choose(g1 + g2 - 2, g2 - 1);

    // --- Top-exit pass: one prefix-sum row per covered IR row.
    prefix_.resize(static_cast<std::size_t>(g1));
    for (int cy = 0; cy < ncy; ++cy) {
      const int top = row_cy2_[static_cast<std::size_t>(cy)];
      if (top >= g2 - 1) continue;  // no cell above: no top exits
      double term = std::exp(
          table_->log_choose(g1 - 1 + g2 - 2 - top, g2 - 2 - top) - log_total);
      double running = 0.0;
      for (int x = 0; x < g1; ++x) {
        running += term;
        prefix_[static_cast<std::size_t>(x)] = running;
        if (x < g1 - 1) {
          term *= (static_cast<double>(x + 1 + top) / (x + 1)) *
                  (static_cast<double>(g1 - 1 - x) /
                   ((g1 - 1 - x) + (g2 - 2 - top)));
        }
      }
      for (int cx = 0; cx < ncx; ++cx) {
        const int lx1 = lx1_[static_cast<std::size_t>(cx)];
        const int lx2 = lx2_[static_cast<std::size_t>(cx)];
        const double sum = prefix_[static_cast<std::size_t>(lx2)] -
                           (lx1 > 0 ? prefix_[static_cast<std::size_t>(lx1 - 1)]
                                    : 0.0);
        probs_[index(cx, cy, ncx)] += sum;
      }
    }

    // --- Right-exit pass: one prefix-sum column per covered IR column.
    prefix_.resize(static_cast<std::size_t>(std::max(g1, g2)));
    for (int cx = 0; cx < ncx; ++cx) {
      const int right = lx2_[static_cast<std::size_t>(cx)];
      if (right >= g1 - 1) continue;  // no cell to the right
      double term = std::exp(
          table_->log_choose(g1 - 2 - right + g2 - 1, g2 - 1) - log_total);
      double running = 0.0;
      for (int y = 0; y < g2; ++y) {
        running += term;
        prefix_[static_cast<std::size_t>(y)] = running;
        if (y < g2 - 1) {
          term *= (static_cast<double>(right + 1 + y) / (y + 1)) *
                  (static_cast<double>(g2 - 1 - y) /
                   ((g1 - 2 - right) + (g2 - 1 - y)));
        }
      }
      for (int cy = 0; cy < ncy; ++cy) {
        const int cy1 = row_cy1_[static_cast<std::size_t>(cy)];
        const int cy2 = row_cy2_[static_cast<std::size_t>(cy)];
        const double sum = prefix_[static_cast<std::size_t>(cy2)] -
                           (cy1 > 0 ? prefix_[static_cast<std::size_t>(cy1 - 1)]
                                    : 0.0);
        probs_[index(cx, cy, ncx)] += sum;
      }
    }

    // --- Pin override + clamp.
    for (int cy = 0; cy < ncy; ++cy) {
      const int cy1 = row_cy1_[static_cast<std::size_t>(cy)];
      const int cy2 = row_cy2_[static_cast<std::size_t>(cy)];
      for (int cx = 0; cx < ncx; ++cx) {
        const int lx1 = lx1_[static_cast<std::size_t>(cx)];
        const int lx2 = lx2_[static_cast<std::size_t>(cx)];
        double& p = probs_[index(cx, cy, ncx)];
        const bool covers_source = lx1 == 0 && cy1 == 0;
        const bool covers_sink = lx2 == g1 - 1 && cy2 == g2 - 1;
        if (covers_source || covers_sink) p = 1.0;
        p = std::clamp(p, 0.0, 1.0);
      }
    }
  }

  /// Per-region probabilities (kTheorem1 / kExactPerRegion, and the
  /// degenerate-shape fallback of kBandedExact): steps 3.1-3.3, one
  /// batched kernel call for the net's whole ncx x ncy region matrix.
  void fill_regions(const NetOnGrid& net) {
    const int ncx = net.ncx();
    const int ncy = net.ncy();
    // Regions computed (memo hits skip this function entirely; they show
    // up as score_memo hits instead). The banded strategy's degenerate
    // shapes land here too and count as exact regions.
    obs::count(params_->strategy == IrEvalStrategy::kTheorem1
                   ? obs::Counter::kIrRegionsTheorem1
                   : obs::Counter::kIrRegionsExact,
               static_cast<long long>(ncx) * ncy);
    const std::size_t n =
        static_cast<std::size_t>(ncx) * static_cast<std::size_t>(ncy);
    regions_.resize(n);
    probs_.assign(n, 0.0);
    for (int cy = 0; cy < ncy; ++cy) {
      for (int cx = 0; cx < ncx; ++cx) {
        regions_[index(cx, cy, ncx)] =
            GridRect{lx1_[static_cast<std::size_t>(cx)],
                     ly1_[static_cast<std::size_t>(cy)],
                     lx2_[static_cast<std::size_t>(cx)],
                     ly2_[static_cast<std::size_t>(cy)]};
      }
    }
    if (params_->strategy == IrEvalStrategy::kTheorem1) {
      kernel_.region_probability_batch(net.shape, regions_, probs_);
    } else {
      kernel_.region_probability_exact_batch(net.shape, regions_, probs_);
    }
  }

  LogFactorialTable* table_;
  const IrregularGridParams* params_;
  ScoreMemo* memo_;
  ProbKernel kernel_;
  // Scratch buffers reused across the nets of one evaluation block (each
  // block has its own scorer, so these are never shared between threads).
  std::vector<GridRect> regions_;
  std::vector<double> probs_;
  std::vector<double> prefix_;
  std::vector<int> lx1_, lx2_, ly1_, ly2_;
  std::vector<int> row_cy1_, row_cy2_;
  ScoreMemo::Key key_;
};

/// Per-thread log-factorial and scoring caches: amortized across calls
/// like single-threaded member caches would be, but race-free. Cache hits
/// return bit-identical values to misses, so per-thread cache duplication
/// affects only the hit rate, never the result. Function-scoped accessors
/// (rather than thread_locals named inside the worker lambda) keep the
/// lazy-init semantics while giving diagnostics access to the calling
/// thread's instances.
LogFactorialTable& scoring_table() {
  thread_local LogFactorialTable table;
  return table;
}

ScoreMemo& scoring_memo() {
  thread_local ScoreMemo memo;
  return memo;
}

}  // namespace

IrregularCongestionMap IrregularGridModel::evaluate(
    std::span<const TwoPinNet> nets, const Rect& chip) const {
  obs::count(obs::Counter::kIrEvaluations);
  // Algorithm steps 1-2: cut lines from routing ranges, then merge lines
  // closer than twice the fine pitch.
  CutLines lines =
      build_cutlines(nets, chip, params_.merge_factor * params_.grid_w,
                     params_.merge_factor * params_.grid_h);
  const std::size_t cells = static_cast<std::size_t>(lines.cell_count());

  // Steps 3-4, parallel: nets are partitioned into blocks (boundaries a
  // function of the net count only — NOT the thread count), every block
  // accumulates into a private partial grid, and the partials are reduced
  // in block order below. Fixed blocking + ordered reduction make the
  // result bit-identical for every FICON_THREADS setting.
  const int blocks = deterministic_block_count(nets.size());
  // Per-caller-thread partial grids, reused across evaluate() calls (the
  // annealing loop calls this once per proposed move). Workers only write
  // the entry of their own block; the vector itself is sized before the
  // fork and reduced after the join, both on the calling thread. The
  // worker lambda must go through the local reference: naming the
  // thread_local directly inside it would resolve to the *worker's*
  // (empty) instance, not the caller's.
  thread_local std::vector<std::vector<double>> partial_tls;
  std::vector<std::vector<double>>& partial = partial_tls;
  if (partial.size() < static_cast<std::size_t>(blocks)) {
    partial.resize(static_cast<std::size_t>(blocks));
  }
  const CutLines& cl = lines;
  const IrregularGridParams& params = params_;
  const std::uint64_t fingerprint = scoring_fingerprint(params_);
  ThreadPool::global().run(blocks, [&](int b) {
    LogFactorialTable& table = scoring_table();
    ScoreMemo& memo = scoring_memo();
    memo.configure(params.score_cache_capacity, fingerprint);
    NetScorer scorer(table, params, memo);
    std::vector<double>& flow = partial[static_cast<std::size_t>(b)];
    flow.assign(cells, 0.0);
    const FlowGrid out{&flow, cl.nx(), cl.ny()};
    const BlockRange range = block_range(nets.size(), blocks, b);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      scorer.score(nets[i], cl, chip, out);
    }
  });

  // Ordered reduction (block 0 first, block N-1 last).
  std::vector<double> flow(cells, 0.0);
  for (int b = 0; b < blocks; ++b) {
    const std::vector<double>& p = partial[static_cast<std::size_t>(b)];
    for (std::size_t i = 0; i < cells; ++i) flow[i] += p[i];
  }
  return IrregularCongestionMap(std::move(lines), std::move(flow));
}

}  // namespace ficon
