/// \file
/// The unified congestion-model interface.
///
/// Both estimators — the paper's Irregular-Grid model (section 4) and the
/// fixed-grid ISPD'02 baseline (section 3) — score a set of decomposed
/// 2-pin nets against a chip rectangle and reduce the resulting field to
/// a scalar cost. `CongestionModel` captures that contract once, so the
/// `Floorplanner` (and any other caller) dispatches through one virtual
/// surface instead of switching on `CongestionModelKind` at every call
/// site. Concrete models keep their typed `evaluate()` returning the
/// concrete map class; `evaluate_field()` is the type-erased view.
#pragma once

#include <memory>
#include <span>

#include "congestion/field.hpp"
#include "route/two_pin.hpp"

namespace ficon {

/// Which congestion estimate drives the annealer's gamma term.
enum class CongestionModelKind {
  kNone,           ///< area + wirelength only
  kIrregularGrid,  ///< the paper's model (section 4)
  kFixedGrid,      ///< ISPD'02 fixed-grid baseline (section 3)
};

const char* to_string(CongestionModelKind kind);

struct IrregularGridParams;
struct FixedGridParams;

/// Abstract congestion estimator: field + scalar cost for one placement's
/// decomposed nets. Implementations are thread-safe for concurrent calls
/// (see the concrete models' evaluate() docs).
class CongestionModel {
 public:
  virtual ~CongestionModel() = default;

  /// Stable short name for diagnostics ("irregular_grid", "fixed_grid").
  virtual const char* name() const = 0;

  virtual CongestionModelKind kind() const = 0;

  /// Scalar solution cost (each model's top-fraction reduction).
  virtual double cost(std::span<const TwoPinNet> nets,
                      const Rect& chip) const = 0;

  /// Full per-cell field, type-erased. Callers that need the concrete map
  /// (cut lines, grid spec) keep using the concrete evaluate().
  virtual std::unique_ptr<FlowField> evaluate_field(
      std::span<const TwoPinNet> nets, const Rect& chip) const = 0;
};

/// Factory behind the one remaining `CongestionModelKind` switch: builds
/// the model for `kind` from the matching parameter struct, or nullptr
/// for `kNone`.
std::unique_ptr<CongestionModel> make_congestion_model(
    CongestionModelKind kind, const IrregularGridParams& irregular,
    const FixedGridParams& fixed);

}  // namespace ficon
