// Uniform-grid geometry for the fixed-size-grid congestion model.
//
// The fixed-grid model (Sham & Young, ISPD'02 — the paper's baseline [4]
// and also its "judging model" when the pitch is very small) divides the
// chip into an nx x ny array of equal cells. This header maps chip
// coordinates (um) to cell indices and back, and maps a 2-pin net onto its
// covered cell span with the type I / type II classification of Figure 1.
#pragma once

#include <algorithm>
#include <cmath>

#include "congestion/path_prob.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "route/two_pin.hpp"
#include "util/check.hpp"

namespace ficon {

/// @brief A uniform grid over a chip rectangle.
///
/// Maps chip coordinates (um) to cell indices and back. Immutable after
/// construction; safe to share across evaluation threads.
class GridSpec {
 public:
  /// @brief Build a grid with the requested pitch; the chip is covered by
  /// ceil(extent / pitch) cells per axis (the last row/column may hang
  /// over the chip edge, matching how fixed-grid estimators bin pins).
  /// @param chip    chip rectangle with positive area.
  /// @param pitch_x cell width (um), > 0.
  /// @param pitch_y cell height (um), > 0.
  static GridSpec from_pitch(const Rect& chip, double pitch_x,
                             double pitch_y) {
    FICON_REQUIRE(chip.is_proper(), "chip must have positive area");
    FICON_REQUIRE(pitch_x > 0.0 && pitch_y > 0.0, "pitch must be positive");
    GridSpec g;
    g.chip_ = chip;
    g.pitch_x_ = pitch_x;
    g.pitch_y_ = pitch_y;
    g.nx_ = std::max(1, static_cast<int>(std::ceil(chip.width() / pitch_x - 1e-9)));
    g.ny_ = std::max(1, static_cast<int>(std::ceil(chip.height() / pitch_y - 1e-9)));
    return g;
  }

  /// @brief Build a grid with exact cell counts (pitch derived from the
  /// chip) — the Figure 3 "4x4 vs 6x6 cut" configuration.
  /// @param nx,ny cell counts per axis, >= 1.
  static GridSpec from_counts(const Rect& chip, int nx, int ny) {
    FICON_REQUIRE(chip.is_proper(), "chip must have positive area");
    FICON_REQUIRE(nx >= 1 && ny >= 1, "cell counts must be positive");
    GridSpec g;
    g.chip_ = chip;
    g.nx_ = nx;
    g.ny_ = ny;
    g.pitch_x_ = chip.width() / nx;
    g.pitch_y_ = chip.height() / ny;
    return g;
  }

  /// Chip rectangle the grid covers.
  const Rect& chip() const { return chip_; }
  /// Number of cell columns.
  int nx() const { return nx_; }
  /// Number of cell rows.
  int ny() const { return ny_; }
  /// Cell width (um).
  double pitch_x() const { return pitch_x_; }
  /// Cell height (um).
  double pitch_y() const { return pitch_y_; }
  /// Total number of cells (nx * ny).
  long long cell_count() const {
    return static_cast<long long>(nx_) * static_cast<long long>(ny_);
  }

  /// @brief Cell column index containing coordinate x (clamped to the grid).
  int cell_x(double x) const {
    const int c = static_cast<int>(std::floor((x - chip_.xlo) / pitch_x_));
    return std::clamp(c, 0, nx_ - 1);
  }
  /// @brief Cell row index containing coordinate y (clamped to the grid).
  int cell_y(double y) const {
    const int c = static_cast<int>(std::floor((y - chip_.ylo) / pitch_y_));
    return std::clamp(c, 0, ny_ - 1);
  }

  /// @brief Cell containing point p (clamped to the grid) — how pins are
  /// binned.
  GridPoint cell_of(const Point& p) const {
    return GridPoint{cell_x(p.x), cell_y(p.y)};
  }

  /// @brief um rectangle of cell (cx, cy).
  Rect cell_rect(int cx, int cy) const {
    FICON_REQUIRE(cx >= 0 && cx < nx_ && cy >= 0 && cy < ny_,
                  "cell index out of range");
    return Rect{chip_.xlo + cx * pitch_x_, chip_.ylo + cy * pitch_y_,
                chip_.xlo + (cx + 1) * pitch_x_,
                chip_.ylo + (cy + 1) * pitch_y_};
  }

 private:
  Rect chip_;
  double pitch_x_ = 0.0;
  double pitch_y_ = 0.0;
  int nx_ = 0;
  int ny_ = 0;
};

/// @brief A 2-pin net mapped onto a grid: covered cell span +
/// probabilistic shape.
struct SpannedNet {
  GridPoint origin;    ///< global cell of the span's lower-left corner
  NetGridShape shape;  ///< g1 x g2 cells, type I/II
};

/// @brief Classify a 2-pin net on a grid (Figure 1).
///
/// Ties in x or y collapse to a degenerate (line/point) shape where the
/// type flag is irrelevant.
/// @param grid grid the pins are binned on.
/// @param net  the 2-pin net (pin coordinates in um).
/// @return covered cell window plus the g1 x g2 / type I-II shape.
inline SpannedNet span_net(const GridSpec& grid, const TwoPinNet& net) {
  const GridPoint ca = grid.cell_of(net.a);
  const GridPoint cb = grid.cell_of(net.b);
  SpannedNet s;
  s.origin = GridPoint{std::min(ca.x, cb.x), std::min(ca.y, cb.y)};
  s.shape.g1 = std::abs(ca.x - cb.x) + 1;
  s.shape.g2 = std::abs(ca.y - cb.y) + 1;
  // Type II iff the left pin is the upper pin.
  const GridPoint& left = ca.x <= cb.x ? ca : cb;
  const GridPoint& right = ca.x <= cb.x ? cb : ca;
  s.shape.type2 = !s.shape.degenerate() && left.y > right.y;
  return s;
}

}  // namespace ficon
