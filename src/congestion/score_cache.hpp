// Shape-keyed LRU memo for per-net IR-grid scoring.
//
// During annealing most modules do not move between consecutive
// evaluations, so most nets re-present the exact same snapped routing
// range to the Irregular-Grid model: same fine lattice (g1, g2), same
// type, same covered-cell spans. The per-cell crossing probabilities are
// a pure function of that signature (plus the fixed evaluation options),
// so they can be memoized: the cache maps
//
//   [g1, g2, type2, ncx, ncy, col spans..., row spans...]  (fine-lattice
//   integers, unmirrored)
//
// to the net's full ncx x ncy probability matrix. The banded-exact scorer
// additionally stores per-shape band start terms under the length-2 key
// [g1, g2] — key lengths cannot collide because matrix signatures are
// always at least 9 ints long. Like the log-factorial tables, instances
// are meant to be `thread_local` inside the evaluation workers: per-thread
// duplicates are harmless because hit and miss return bit-identical
// values, which is also why memoized and unmemoized runs (and runs at any
// FICON_THREADS) produce bit-identical congestion maps.
//
// Invalidation: values depend on the evaluation options (strategy,
// Theorem-1 knobs, fine pitch), so configure() takes a fingerprint of
// those options and clears the cache whenever it changes. Entries never
// go stale otherwise — a changed placement changes the *key*, not the
// value behind an existing key.
//
// The cache sits on the annealing inner loop (one lookup per net per
// proposed move), so the implementation is built to do zero heap
// allocation in steady state: entries live in a flat slot array whose
// key/value vectors keep their capacity when a slot is recycled, LRU
// order is an intrusive doubly-linked list of slot indices, and the hash
// index stores slot indices with C++20 heterogeneous lookup so probing
// never materializes a temporary key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "obs/trace.hpp"

namespace ficon {

class ScoreMemo {
 public:
  using Key = std::vector<int>;
  using Value = std::vector<double>;

  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
  };

  ScoreMemo() : index_(0, SlotHash{&slots_}, SlotEq{&slots_}) {}

  // The hash index functors point at this object's slot array.
  ScoreMemo(const ScoreMemo&) = delete;
  ScoreMemo& operator=(const ScoreMemo&) = delete;

  /// @brief Bind the cache to a capacity and an options fingerprint.
  /// Clears all entries when either changes; a capacity of 0 disables
  /// the cache (find() always misses, insert() is a no-op). Slot storage
  /// survives a clear, so rebinding is cheap.
  void configure(std::size_t capacity, std::uint64_t fingerprint) {
    if (capacity == capacity_ && fingerprint == fingerprint_) return;
    index_.clear();
    used_ = 0;
    head_ = -1;
    tail_ = -1;
    capacity_ = capacity;
    fingerprint_ = fingerprint;
    index_.reserve(capacity_);
  }

  bool enabled() const { return capacity_ > 0; }
  std::size_t size() const { return used_; }
  const Stats& stats() const { return stats_; }

  /// @brief Look up a signature; refreshes LRU order on hit.
  /// @return the cached matrix, or nullptr on miss. The pointer is valid
  /// until the next insert() (eviction / slot reuse) or configure().
  const Value* find(const Key& key) {
    if (capacity_ == 0) return nullptr;
    const auto it = index_.find(Probe{&key, hash_key(key)});
    if (it == index_.end()) {
      ++stats_.misses;
      obs::count(obs::Counter::kScoreMemoMisses);
      return nullptr;
    }
    touch(*it);
    ++stats_.hits;
    obs::count(obs::Counter::kScoreMemoHits);
    return &slots_[static_cast<std::size_t>(*it)].value;
  }

  /// @brief Insert a freshly computed matrix, evicting the least recently
  /// used entry when full. Overwrites an existing entry for the same key.
  void insert(const Key& key, const Value& value) {
    if (capacity_ == 0) return;
    const std::size_t h = hash_key(key);
    const auto it = index_.find(Probe{&key, h});
    if (it != index_.end()) {
      slots_[static_cast<std::size_t>(*it)].value = value;
      touch(*it);
      return;
    }
    int slot;
    if (used_ >= capacity_) {
      // Recycle the least recently used slot. Erase its index entry
      // first: the index hashes by the slot's *current* key.
      slot = tail_;
      index_.erase(slot);
      unlink(slot);
      ++stats_.evictions;
      obs::count(obs::Counter::kScoreMemoEvictions);
    } else {
      slot = static_cast<int>(used_);
      if (static_cast<std::size_t>(slot) >= slots_.size()) {
        slots_.emplace_back();
      }
      ++used_;
    }
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.key = key;      // assignments reuse the recycled slot's capacity
    s.value = value;
    s.hash = h;
    index_.insert(slot);
    push_front(slot);
  }

 private:
  struct Slot {
    Key key;
    Value value;
    std::size_t hash = 0;
    int prev = -1;  ///< intrusive LRU list, most recent at head_
    int next = -1;
  };

  /// Heterogeneous lookup token: a borrowed key plus its precomputed hash.
  struct Probe {
    const Key* key;
    std::size_t hash;
  };

  struct SlotHash {
    using is_transparent = void;
    const std::vector<Slot>* slots;
    std::size_t operator()(int i) const {
      return (*slots)[static_cast<std::size_t>(i)].hash;
    }
    std::size_t operator()(const Probe& p) const { return p.hash; }
  };

  struct SlotEq {
    using is_transparent = void;
    const std::vector<Slot>* slots;
    bool operator()(int a, int b) const { return a == b; }
    bool operator()(const Probe& p, int i) const {
      return *p.key == (*slots)[static_cast<std::size_t>(i)].key;
    }
    bool operator()(int i, const Probe& p) const {
      return *p.key == (*slots)[static_cast<std::size_t>(i)].key;
    }
  };

  static std::size_t hash_key(const Key& key) {
    // FNV-1a over the signature ints.
    std::uint64_t h = 1469598103934665603ull;
    for (int v : key) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }

  void unlink(int i) {
    Slot& s = slots_[static_cast<std::size_t>(i)];
    (s.prev >= 0 ? slots_[static_cast<std::size_t>(s.prev)].next : head_) =
        s.next;
    (s.next >= 0 ? slots_[static_cast<std::size_t>(s.next)].prev : tail_) =
        s.prev;
  }

  void push_front(int i) {
    Slot& s = slots_[static_cast<std::size_t>(i)];
    s.prev = -1;
    s.next = head_;
    if (head_ >= 0) slots_[static_cast<std::size_t>(head_)].prev = i;
    head_ = i;
    if (tail_ < 0) tail_ = i;
  }

  void touch(int i) {
    if (head_ == i) return;
    unlink(i);
    push_front(i);
  }

  std::size_t capacity_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<Slot> slots_;  ///< slots [0, used_) hold live entries
  std::size_t used_ = 0;
  int head_ = -1;
  int tail_ = -1;
  std::unordered_set<int, SlotHash, SlotEq> index_;
  Stats stats_;
};

}  // namespace ficon
