#include "congestion/approx.hpp"

#include <algorithm>
#include <cmath>

#include "congestion/prob_kernel.hpp"
#include "numeric/normal.hpp"
#include "util/check.hpp"

namespace ficon {
namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Composite Simpson over [a, b] of an optional-valued integrand; nullopt
/// if any sample is invalid.
template <typename F>
std::optional<double> simpson_optional(F&& f, double a, double b, int panels) {
  FICON_REQUIRE(panels >= 2 && panels % 2 == 0,
                "Simpson's rule needs an even panel count >= 2");
  if (!(a < b)) return 0.0;
  const double h = (b - a) / panels;
  double sum = 0.0;
  for (int i = 0; i <= panels; ++i) {
    const double x = a + h * i;
    const auto v = f(x);
    if (!v) return std::nullopt;
    const double w = (i == 0 || i == panels) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    sum += w * *v;
  }
  return sum * h / 3.0;
}

}  // namespace

double ApproxRegionProbability::top_exit_term_exact(int g1, int g2, int x,
                                                    int y2) const {
  const NetGridShape s{g1, g2, false};
  if (y2 + 1 > g2 - 1) return 0.0;  // no cell above: crossing impossible
  const auto ta = exact_.log_ta(s, x, y2);
  const auto tb = exact_.log_tb(s, x, y2 + 1);
  if (!ta || !tb) return 0.0;
  return std::exp(*ta + *tb - exact_.log_total(s));
}

double ApproxRegionProbability::right_exit_term_exact(int g1, int g2, int x2,
                                                      int y) const {
  const NetGridShape s{g1, g2, false};
  if (x2 + 1 > g1 - 1) return 0.0;
  const auto ta = exact_.log_ta(s, x2, y);
  const auto tb = exact_.log_tb(s, x2 + 1, y);
  if (!ta || !tb) return 0.0;
  return std::exp(*ta + *tb - exact_.log_total(s));
}

std::optional<double> ApproxRegionProbability::top_exit_term_approx(
    int g1, int g2, double x, int y2) const {
  // The binomial/normal chain needs R = g1+g2-3 >= 1 and R-1 = g1+g2-4 >= 1.
  if (g1 + g2 < 5) return std::nullopt;
  const double R = g1 + g2 - 3;
  const double p = (x + y2) / R;
  if (!(p > 0.0 && p < 1.0)) return std::nullopt;  // section 4.5 error cases
  const double var = (static_cast<double>(g2 - 2) / (g1 + g2 - 4)) *
                     (g1 - 1) * p * (1.0 - p);
  if (!(var > 0.0)) return std::nullopt;
  const double mu = (g1 - 1) * p;
  const double coeff = static_cast<double>(g2 - 1) / (g1 + g2 - 2);
  return coeff * normal_pdf(x, mu, std::sqrt(var));
}

std::optional<double> ApproxRegionProbability::right_exit_term_approx(
    int g1, int g2, int x2, double y) const {
  if (g1 + g2 < 5) return std::nullopt;
  const double R = g1 + g2 - 3;
  const double p = (x2 + y) / R;
  if (!(p > 0.0 && p < 1.0)) return std::nullopt;
  const double var = (static_cast<double>(g1 - 2) / (g1 + g2 - 4)) *
                     (g2 - 1) * p * (1.0 - p);
  if (!(var > 0.0)) return std::nullopt;
  const double mu = (g2 - 1) * p;
  const double coeff = static_cast<double>(g1 - 1) / (g1 + g2 - 2);
  return coeff * normal_pdf(y, mu, std::sqrt(var));
}

std::optional<double> ApproxRegionProbability::theorem1(
    int g1, int g2, const GridRect& region) const {
  const double delta = options_.continuity_correction ? 0.5 : 0.0;
  double prob = 0.0;
  if (region.yhi < g2 - 1) {
    // A zero-width span integrated over the literal [x1, x2] = [x, x] would
    // contribute nothing and silently drop the column's whole top-exit
    // mass; force the +-1/2 widening there (the unit-width integral around
    // x is exactly the continuity-corrected one-term sum).
    const double dx = region.xlo == region.xhi ? 0.5 : delta;
    const auto top = simpson_optional(
        [&](double x) { return top_exit_term_approx(g1, g2, x, region.yhi); },
        region.xlo - dx, region.xhi + dx, options_.simpson_panels);
    if (!top) return std::nullopt;
    prob += *top;
  }
  if (region.xhi < g1 - 1) {
    const double dy = region.ylo == region.yhi ? 0.5 : delta;
    const auto right = simpson_optional(
        [&](double y) { return right_exit_term_approx(g1, g2, region.xhi, y); },
        region.ylo - dy, region.yhi + dy, options_.simpson_panels);
    if (!right) return std::nullopt;
    prob += *right;
  }
  return clamp01(prob);
}

double ApproxRegionProbability::region_probability(
    const NetGridShape& s, const GridRect& region) const {
  // Batch-of-one over the kernel: the policy (clamp, pin rule, structural
  // certainty, exact fallbacks) lives in ProbKernel::region_probability_batch
  // since the batched-kernel redesign. The kernel is a cheap handle (two
  // copies of this evaluator's own members plus empty scratch), so
  // occasional per-pair callers pay no measurable setup; hot callers go
  // through the batch API directly.
  ProbKernel kernel(exact_, options_);
  double out = 0.0;
  kernel.region_probability_batch(s, std::span<const GridRect>(&region, 1),
                                  std::span<double>(&out, 1));
  return out;
}

}  // namespace ficon
