#include "congestion/prob_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace ficon {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// Per-sample setup for Function (1): mean and reciprocal stddev of the
// top-exit normal approximation, NaN inv_sigma marking invalid samples
// (1/sqrt(NaN) is NaN, so the select feeds sqrt/divide directly and the
// marker survives). p, var and the validity predicate are IDENTICAL IEEE
// expressions to the scalar probe (top_exit_term_approx), bit for bit, so
// which samples are invalid (and hence which regions fall back to exact
// Formula 3) never depends on the mode. Only the pdf evaluation differs.
// Both the public sampler and the fused Theorem 1 path below go through
// this one helper so the expressions cannot drift apart.
void setup_top_exit(int g1, int g2, int y2, std::span<const double> xs,
                    std::span<double> mus, std::span<double> inv_sigmas) {
  const double R = g1 + g2 - 3;
  const double c_var =
      (static_cast<double>(g2 - 2) / (g1 + g2 - 4)) * (g1 - 1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double p = (xs[i] + y2) / R;
    const double var = c_var * p * (1.0 - p);
    const bool valid = p > 0.0 && p < 1.0 && var > 0.0;
    mus[i] = (g1 - 1) * p;
    inv_sigmas[i] = 1.0 / std::sqrt(valid ? var : kNaN);
  }
}

// Function (2) mirror: right-exit setup, same bit-identity contract.
void setup_right_exit(int g1, int g2, int x2, std::span<const double> ys,
                      std::span<double> mus, std::span<double> inv_sigmas) {
  const double R = g1 + g2 - 3;
  const double c_var =
      (static_cast<double>(g1 - 2) / (g1 + g2 - 4)) * (g2 - 1);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double p = (x2 + ys[i]) / R;
    const double var = c_var * p * (1.0 - p);
    const bool valid = p > 0.0 && p < 1.0 && var > 0.0;
    mus[i] = (g2 - 1) * p;
    inv_sigmas[i] = 1.0 / std::sqrt(valid ? var : kNaN);
  }
}

// Composite-Simpson weighted sum over n = panels+1 samples, branchless:
// ends once, odd interior samples times 4, even interior times 2. Any NaN
// sample poisons the sum — the batched path's nullopt condition.
double simpson_weighted_sum(const double* t, std::size_t n) {
  double s4 = 0.0;
  double s2 = 0.0;
  for (std::size_t i = 1; i + 1 < n; i += 2) s4 += t[i];
  for (std::size_t i = 2; i + 1 < n; i += 2) s2 += t[i];
  return t[0] + t[n - 1] + 4.0 * s4 + 2.0 * s2;
}

}  // namespace

void ProbKernel::eval_top_exit_terms(int g1, int g2, int y2,
                                     std::span<const double> xs,
                                     std::span<double> out) {
  FICON_REQUIRE(xs.size() == out.size(),
                "eval_top_exit_terms: span size mismatch");
  if (!simd_) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto v = scalar_.top_exit_term_approx(g1, g2, xs[i], y2);
      out[i] = v ? *v : kNaN;
    }
    return;
  }
  if (g1 + g2 < 5) {
    std::fill(out.begin(), out.end(), kNaN);
    return;
  }
  const double coeff = static_cast<double>(g2 - 1) / (g1 + g2 - 2);
  mus_.resize(xs.size());
  inv_sigmas_.resize(xs.size());
  setup_top_exit(g1, g2, y2, xs, mus_, inv_sigmas_);
  kernel::normal_pdf_batch(xs, mus_, inv_sigmas_, coeff, out);
}

void ProbKernel::eval_right_exit_terms(int g1, int g2, int x2,
                                       std::span<const double> ys,
                                       std::span<double> out) {
  FICON_REQUIRE(ys.size() == out.size(),
                "eval_right_exit_terms: span size mismatch");
  if (!simd_) {
    for (std::size_t i = 0; i < ys.size(); ++i) {
      const auto v = scalar_.right_exit_term_approx(g1, g2, x2, ys[i]);
      out[i] = v ? *v : kNaN;
    }
    return;
  }
  if (g1 + g2 < 5) {
    std::fill(out.begin(), out.end(), kNaN);
    return;
  }
  const double coeff = static_cast<double>(g1 - 1) / (g1 + g2 - 2);
  mus_.resize(ys.size());
  inv_sigmas_.resize(ys.size());
  setup_right_exit(g1, g2, x2, ys, mus_, inv_sigmas_);
  kernel::normal_pdf_batch(ys, mus_, inv_sigmas_, coeff, out);
}

std::optional<double> ProbKernel::theorem1_simd(int g1, int g2,
                                                const GridRect& region) {
  const double delta = options_.continuity_correction ? 0.5 : 0.0;
  const int panels = options_.simpson_panels;
  const std::size_t n = static_cast<std::size_t>(panels) + 1;

  // Plan both exit-edge integrals up front so every Simpson sample of the
  // region flows through ONE setup / sqrt / pdf pipeline — at n = 17
  // samples per edge the per-call overhead of two separate pipelines is
  // comparable to the math itself. The per-edge coefficient is hoisted
  // from the integrand to the integral (terms are plain normal pdfs here,
  // scale 1), which is the algebraically identical sum in a slightly
  // different rounding order — covered by the 1e-12 equivalence bound, not
  // the bit-identity contract (that one applies to validity decisions,
  // which setup_*_exit keeps exact).
  struct EdgePlan {
    bool active = false;
    std::size_t off = 0;
    double a = 0.0, h = 0.0, coeff = 0.0;
  };
  EdgePlan top, right;
  std::size_t total = 0;
  if (region.yhi < g2 - 1) {
    // Zero-width spans force the +-1/2 widening (see the scalar theorem1).
    const double dx = region.xlo == region.xhi ? 0.5 : delta;
    const double a = region.xlo - dx;
    const double b = region.xhi + dx;
    if (a < b) {  // degenerate intervals contribute 0, as in the scalar
      top = {true, total, a, (b - a) / panels,
             static_cast<double>(g2 - 1) / (g1 + g2 - 2)};
      total += n;
    }
  }
  if (region.xhi < g1 - 1) {
    const double dy = region.ylo == region.yhi ? 0.5 : delta;
    const double a = region.ylo - dy;
    const double b = region.yhi + dy;
    if (a < b) {
      right = {true, total, a, (b - a) / panels,
               static_cast<double>(g1 - 1) / (g1 + g2 - 2)};
      total += n;
    }
  }
  if (total == 0) return clamp01(0.0);
  // Tiny ranges make every sample invalid (the scalar probes return
  // nullopt unconditionally), so the whole region falls back to exact.
  if (g1 + g2 < 5) return std::nullopt;

  xs_.resize(total);
  mus_.resize(total);
  inv_sigmas_.resize(total);
  terms_.resize(total);
  for (const EdgePlan* e : {&top, &right}) {
    if (!e->active) continue;
    for (std::size_t i = 0; i < n; ++i) {
      xs_[e->off + i] = e->a + e->h * static_cast<double>(i);
    }
  }
  if (top.active) {
    setup_top_exit(g1, g2, region.yhi,
                   std::span<const double>(xs_.data() + top.off, n),
                   std::span<double>(mus_.data() + top.off, n),
                   std::span<double>(inv_sigmas_.data() + top.off, n));
  }
  if (right.active) {
    setup_right_exit(g1, g2, region.xhi,
                     std::span<const double>(xs_.data() + right.off, n),
                     std::span<double>(mus_.data() + right.off, n),
                     std::span<double>(inv_sigmas_.data() + right.off, n));
  }
  // NaN inv_sigmas mark invalid samples; the pdf batch carries the marker
  // into the final terms.
  kernel::normal_pdf_batch(xs_, mus_, inv_sigmas_, 1.0, terms_);

  double prob = 0.0;
  for (const EdgePlan* e : {&top, &right}) {
    if (!e->active) continue;
    const double sum = simpson_weighted_sum(terms_.data() + e->off, n);
    // Any invalid sample surfaced as NaN; the weights are positive, so one
    // NaN poisons the sum — exactly the scalar path's nullopt condition.
    if (std::isnan(sum)) return std::nullopt;
    prob += e->coeff * (sum * e->h / 3.0);
  }
  return clamp01(prob);
}

double ProbKernel::region_probability_one(const NetGridShape& s,
                                          const GridRect& region) {
  FICON_REQUIRE(s.g1 >= 1 && s.g2 >= 1, "empty routing range");
  const GridRect r{std::max(region.xlo, 0), std::max(region.ylo, 0),
                   std::min(region.xhi, s.g1 - 1),
                   std::min(region.yhi, s.g2 - 1)};
  if (!r.valid()) return 0.0;
  if (s.degenerate()) return 1.0;
  // Algorithm step 3.1 + section 4.5: pin-covering IR-grids get 1, which
  // also swallows the four error-making cells adjacent to the pins.
  if (exact_.region_covers_pin(s, r)) {
    obs::count(obs::Counter::kIrRegionsCertain);
    return 1.0;
  }
  // Structural certainty: a monotone route visits every row and every
  // column of its range, so a region spanning the full width (or height)
  // is crossed by every route. Theorem 1 would lose tail mass near the
  // pins on such spans; the exact answer is free.
  if ((r.xlo == 0 && r.xhi == s.g1 - 1) ||
      (r.ylo == 0 && r.yhi == s.g2 - 1)) {
    obs::count(obs::Counter::kIrRegionsCertain);
    return 1.0;
  }
  const GridRect canonical = s.type2 ? mirror_region_y(s.g2, r) : r;
  // Every path below evaluates the clamped rect `r`. The exact fallback
  // re-clips and mirrors internally, so feeding it the raw `region` happens
  // to give the same answer today — but the contract here is that Theorem 1
  // and the fallback score the *same* rect, so pass `r` explicitly.
  if (s.g1 + s.g2 < options_.small_range_threshold ||
      std::min(s.g1, s.g2) < options_.narrow_range_threshold ||
      r.nx() + r.ny() <= options_.small_region_threshold) {
    obs::count(obs::Counter::kIrTheorem1ExactFallbacks);
    return exact_.region_probability_exact(s, r);
  }
  const std::optional<double> approx =
      simd_ ? theorem1_simd(s.g1, s.g2, canonical)
            : scalar_.theorem1(s.g1, s.g2, canonical);
  if (approx) return *approx;
  obs::count(obs::Counter::kIrTheorem1ExactFallbacks);
  return exact_.region_probability_exact(s, r);
}

void ProbKernel::region_probability_batch(const NetGridShape& s,
                                          std::span<const GridRect> regions,
                                          std::span<double> out) {
  FICON_REQUIRE(regions.size() == out.size(),
                "region_probability_batch: span size mismatch");
  for (std::size_t i = 0; i < regions.size(); ++i) {
    out[i] = region_probability_one(s, regions[i]);
  }
}

void ProbKernel::region_probability_exact_batch(
    const NetGridShape& s, std::span<const GridRect> regions,
    std::span<double> out) {
  FICON_REQUIRE(regions.size() == out.size(),
                "region_probability_exact_batch: span size mismatch");
  for (std::size_t i = 0; i < regions.size(); ++i) {
    out[i] = exact_.region_covers_pin(s, regions[i])
                 ? 1.0
                 : exact_.region_probability_exact(s, regions[i]);
  }
}

void ProbKernel::theorem1_batch(int g1, int g2,
                                std::span<const GridRect> regions,
                                std::span<double> out) {
  FICON_REQUIRE(regions.size() == out.size(),
                "theorem1_batch: span size mismatch");
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const std::optional<double> v =
        simd_ ? theorem1_simd(g1, g2, regions[i])
              : scalar_.theorem1(g1, g2, regions[i]);
    out[i] = v ? *v : kNaN;
  }
}

}  // namespace ficon
