#include "congestion/congestion_map.hpp"

#include <algorithm>
#include <ostream>

namespace ficon {

void CongestionMap::write_ascii(std::ostream& os, int max_width) const {
  static constexpr char kShades[] = " .:-=+*#%@";
  static constexpr int kLevels = static_cast<int>(sizeof(kShades)) - 2;
  const double peak = max_value();
  // Downsample by taking the max over blocks so hotspots survive.
  const int step_x = std::max(1, (grid_.nx() + max_width - 1) / max_width);
  const int step_y = std::max(1, 2 * step_x);  // terminal cells are ~2:1
  for (int cy = grid_.ny() - 1; cy >= 0; cy -= step_y) {
    for (int cx = 0; cx < grid_.nx(); cx += step_x) {
      double block = 0.0;
      for (int dy = 0; dy < step_y && cy - dy >= 0; ++dy) {
        for (int dx = 0; dx < step_x && cx + dx < grid_.nx(); ++dx) {
          block = std::max(block, at(cx + dx, cy - dy));
        }
      }
      const int level =
          peak > 0.0
              ? std::min(kLevels, static_cast<int>(block / peak * kLevels))
              : 0;
      os << kShades[level];
    }
    os << '\n';
  }
}

void CongestionMap::write_csv(std::ostream& os) const {
  os << "x,y,congestion\n";
  for (int cy = 0; cy < grid_.ny(); ++cy) {
    for (int cx = 0; cx < grid_.nx(); ++cx) {
      os << cx << ',' << cy << ',' << at(cx, cy) << '\n';
    }
  }
}

}  // namespace ficon
