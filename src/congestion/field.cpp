#include "congestion/field.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace ficon {

double FlowField::top_area_fraction_density(double fraction) const {
  FICON_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction out of (0,1]");
  struct CellScore {
    double density;
    double area;
  };
  std::vector<CellScore> cells;
  cells.reserve(values_.size());
  double chip_area = 0.0;
  for (int iy = 0; iy < ny(); ++iy) {
    for (int ix = 0; ix < nx(); ++ix) {
      const double area = cell_rect(ix, iy).area();
      chip_area += area;
      cells.push_back(CellScore{density(ix, iy), area});
    }
  }
  if (cells.empty() || chip_area <= 0.0) return 0.0;
  // Only the densest cells covering `fraction` of the chip area are ever
  // visited, so draw them from a max-heap instead of fully sorting: the
  // budget is typically a small fraction, making this O(n + k log n).
  // Cells of equal density may surface in a different order than a full
  // sort would give, but equal-density ties contribute density * (area
  // taken) regardless of order, so the cost is unaffected.
  const auto by_density = [](const CellScore& a, const CellScore& b) {
    return a.density < b.density;
  };
  std::make_heap(cells.begin(), cells.end(), by_density);
  auto heap_end = cells.end();
  const double budget = fraction * chip_area;
  double used = 0.0;
  double weighted = 0.0;
  while (heap_end != cells.begin()) {
    if (budget - used <= 0.0) break;
    std::pop_heap(cells.begin(), heap_end, by_density);
    --heap_end;
    const CellScore& c = *heap_end;
    const double take = std::min(c.area, budget - used);
    // A zero-area (degenerate) cell contributes neither cost nor area;
    // skip it rather than breaking so equal-density siblings with real
    // area still fill the budget.
    if (take <= 0.0) continue;
    weighted += c.density * take;
    used += take;
  }
  return used > 0.0 ? weighted / used : 0.0;
}

double FlowField::overflow(double capacity) const {
  double total = 0.0;
  for (const double u : values_) total += std::max(0.0, u - capacity);
  return total;
}

long long FlowField::overflowed_cells(double capacity) const {
  long long count = 0;
  for (const double u : values_) {
    if (u > capacity) ++count;
  }
  return count;
}

void FlowField::write_density_csv(std::ostream& os) const {
  os << "xlo,ylo,xhi,yhi,flow,density\n";
  for (int iy = 0; iy < ny(); ++iy) {
    for (int ix = 0; ix < nx(); ++ix) {
      const Rect r = cell_rect(ix, iy);
      os << r.xlo << ',' << r.ylo << ',' << r.xhi << ',' << r.yhi << ','
         << value_at(ix, iy) << ',' << density(ix, iy) << '\n';
    }
  }
}

}  // namespace ficon
