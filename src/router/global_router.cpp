#include "router/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.hpp"

namespace ficon {

GlobalRouter::GlobalRouter(RouterParams params) : params_(params) {
  FICON_REQUIRE(params.pitch > 0.0, "pitch must be positive");
  FICON_REQUIRE(params.capacity > 0.0, "capacity must be positive");
  FICON_REQUIRE(params.ripup_passes >= 0, "negative rip-up pass count");
}

namespace {

/// One net's chosen path, as global grid cells.
using Path = std::vector<GridPoint>;

/// Route one net with a min-congestion monotone DP inside its span.
/// `usage` is read for costs; the caller commits the returned path.
Path route_net(const RoutedCongestion& state, const SpannedNet& span,
               double capacity) {
  const int g1 = span.shape.g1;
  const int g2 = span.shape.g2;
  const auto global_cell = [&](int lx, int ly) {
    const int gy = span.shape.type2 ? (g2 - 1 - ly) : ly;
    return GridPoint{span.origin.x + lx, span.origin.y + gy};
  };
  const auto cell_cost = [&](int lx, int ly) {
    const GridPoint c = global_cell(lx, ly);
    return state.usage(c.x, c.y) / capacity;
  };

  // Degenerate ranges have a single possible path.
  Path path;
  if (span.shape.degenerate()) {
    for (int ly = 0; ly < g2; ++ly) {
      for (int lx = 0; lx < g1; ++lx) {
        path.push_back(global_cell(lx, ly));
      }
    }
    return path;
  }

  // DP over the canonical frame: source (0,0), sink (g1-1, g2-1), moves
  // +x / +y. All monotone paths share their length, so congestion is the
  // only cost term.
  std::vector<double> cost(static_cast<std::size_t>(g1) *
                           static_cast<std::size_t>(g2));
  const auto at = [&](int x, int y) -> double& {
    return cost[static_cast<std::size_t>(y) * static_cast<std::size_t>(g1) +
                static_cast<std::size_t>(x)];
  };
  for (int y = 0; y < g2; ++y) {
    for (int x = 0; x < g1; ++x) {
      double best = 0.0;
      if (x > 0 && y > 0) {
        best = std::min(at(x - 1, y), at(x, y - 1));
      } else if (x > 0) {
        best = at(x - 1, y);
      } else if (y > 0) {
        best = at(x, y - 1);
      }
      at(x, y) = best + cell_cost(x, y);
    }
  }

  // Backtrack, preferring the cheaper predecessor.
  int x = g1 - 1, y = g2 - 1;
  path.push_back(global_cell(x, y));
  while (x > 0 || y > 0) {
    if (x > 0 && (y == 0 || at(x - 1, y) <= at(x, y - 1))) {
      --x;
    } else {
      --y;
    }
    path.push_back(global_cell(x, y));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void commit(RoutedCongestion& state, const Path& path, double delta) {
  for (const GridPoint& c : path) {
    state.add_usage(c.x, c.y, delta);
  }
}

}  // namespace

RoutedCongestion GlobalRouter::route(std::span<const TwoPinNet> nets,
                                     const Rect& chip) const {
  const GridSpec grid =
      GridSpec::from_pitch(chip, params_.pitch, params_.pitch);
  RoutedCongestion state(grid);

  // Long nets first: they have the most freedom and create the global
  // congestion picture the short nets then dodge.
  std::vector<std::size_t> order(nets.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return nets[a].routing_range().half_perimeter() >
                            nets[b].routing_range().half_perimeter();
                   });

  std::vector<Path> paths(nets.size());
  for (const std::size_t i : order) {
    paths[i] = route_net(state, span_net(grid, nets[i]), params_.capacity);
    commit(state, paths[i], 1.0);
  }

  // Rip-up and re-route nets that cross overflowed cells.
  for (int pass = 0; pass < params_.ripup_passes; ++pass) {
    bool any = false;
    for (const std::size_t i : order) {
      const bool overflowed = std::any_of(
          paths[i].begin(), paths[i].end(), [&](const GridPoint& c) {
            return state.usage(c.x, c.y) > params_.capacity;
          });
      if (!overflowed) continue;
      any = true;
      commit(state, paths[i], -1.0);
      paths[i] = route_net(state, span_net(grid, nets[i]), params_.capacity);
      commit(state, paths[i], 1.0);
    }
    if (!any) break;
  }
  return state;
}

}  // namespace ficon
