// Grid-based global router substrate.
//
// The paper's whole premise is that probabilistic congestion estimates
// predict *post-routing* congestion; its experiments approximate "real"
// congestion with a fine fixed-grid estimator (the judging model). This
// router closes the loop further: it actually routes the decomposed 2-pin
// nets on a capacitated grid and reports realized usage, so the library
// can correlate BOTH estimators against routed congestion
// (bench_router_validation).
//
// Routing model (deliberately matched to the paper's assumption set):
//   * each 2-pin net takes one multi-bend monotone (staircase) path inside
//     its routing range — the same path family Formulas 1-3 count;
//   * the path is chosen by dynamic programming to minimize the sum of
//     current cell congestion (usage/capacity) along the way, so later
//     nets avoid hot cells;
//   * nets are routed in decreasing half-perimeter order (long nets first,
//     the common global-routing heuristic), then an optional rip-up phase
//     re-routes nets crossing overflowed cells.
//
// Degenerate nets (point/line ranges) occupy their cells directly.
#pragma once

#include <span>
#include <vector>

#include "congestion/field.hpp"
#include "congestion/grid_spec.hpp"
#include "route/two_pin.hpp"

namespace ficon {

struct RouterParams {
  double pitch = 10.0;      ///< routing-grid cell size (um)
  double capacity = 4.0;    ///< track capacity per cell
  int ripup_passes = 1;     ///< re-route rounds for overflowed nets
};

/// Result of routing one workload: per-cell usage plus summary metrics
/// (max, top-fraction, overflow — the latter two inherited from the
/// shared FlowField surface).
class RoutedCongestion : public FlowField {
 public:
  RoutedCongestion(GridSpec grid)
      : FlowField(grid.nx(), grid.ny()), grid_(grid) {}

  const GridSpec& grid() const { return grid_; }
  double usage(int cx, int cy) const { return value_at(cx, cy); }
  void add_usage(int cx, int cy, double u) { add_value(cx, cy, u); }
  const std::vector<double>& usage() const { return values(); }

  Rect cell_rect(int cx, int cy) const override {
    return grid_.cell_rect(cx, cy);
  }

  /// Max cell usage over the chip.
  double max_usage() const { return max_value(); }
  /// Mean usage of the top `fraction` most used cells (comparable to the
  /// estimators' top-10% cost).
  double top_fraction_usage(double fraction = 0.10) const {
    return top_fraction_mean(values(), fraction);
  }
  // overflow(capacity) / overflowed_cells(capacity) come from FlowField.

 private:
  GridSpec grid_;
};

class GlobalRouter {
 public:
  explicit GlobalRouter(RouterParams params = {});

  const RouterParams& params() const { return params_; }

  /// Route the workload and return realized per-cell usage.
  RoutedCongestion route(std::span<const TwoPinNet> nets,
                         const Rect& chip) const;

 private:
  RouterParams params_;
};

}  // namespace ficon
