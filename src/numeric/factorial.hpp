// Cached log-factorials and binomial coefficients.
//
// Routing ranges of millimetre-scale nets on a 10 um judging grid span
// hundreds of cells, so the lattice-path counts of Formula 1 reach
// C(1000, 500) ~ 2.7e299. All probability arithmetic therefore happens in
// log space; exact integer binomials are only used for small arguments
// (tests, the Figure 6 worked example).
//
// The table grows on demand with amortized doubling. It is NOT
// synchronized: the parallel evaluators give every worker thread its own
// thread_local table (values are pure functions of n, so duplication is
// harmless), which keeps the hot read path free of atomics.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ficon {

/// Lazily grown table of ln(n!) values.
class LogFactorialTable {
 public:
  LogFactorialTable() { values_.push_back(0.0); }  // ln(0!) = 0

  /// ln(n!); grows the cache as needed.
  double log_factorial(int n) {
    FICON_REQUIRE(n >= 0, "factorial of negative value");
    grow_to(n);
    return values_[static_cast<std::size_t>(n)];
  }

  /// ln C(n, k); 0 choose 0 is 1. Returns -infinity semantics via the
  /// is_zero convention of callers: this function REQUIRES 0 <= k <= n.
  double log_choose(int n, int k) {
    FICON_REQUIRE(n >= 0 && k >= 0 && k <= n, "invalid binomial arguments");
    grow_to(n);
    return values_[static_cast<std::size_t>(n)] -
           values_[static_cast<std::size_t>(k)] -
           values_[static_cast<std::size_t>(n - k)];
  }

  /// Number of monotonic lattice paths across a dx-by-dy step grid:
  /// ln C(dx+dy, dy). Requires dx, dy >= 0.
  double log_paths(int dx, int dy) { return log_choose(dx + dy, dy); }

  std::size_t cached_size() const { return values_.size(); }

 private:
  void grow_to(int n) {
    const auto need = static_cast<std::size_t>(n) + 1;
    if (values_.size() >= need) return;
    values_.reserve(need);
    while (values_.size() < need) {
      const auto m = static_cast<double>(values_.size());
      values_.push_back(values_.back() + std::log(m));
    }
  }

  std::vector<double> values_;
};

/// Exact binomial coefficient in unsigned 64-bit arithmetic.
/// Requires 0 <= k <= n and a result < 2^64 (n <= 62 is always safe).
std::uint64_t choose_exact(int n, int k);

/// Binomial coefficient as a double via the multiplicative formula;
/// accurate for moderate n (used by reference implementations in tests).
double choose_double(int n, int k);

}  // namespace ficon
