// Composite Simpson's-rule integration.
//
// Theorem 1 reduces an IR-grid's crossing probability to two definite
// integrals of normal-like integrands; the paper evaluates them "by
// Simpson's rule of integration in constant time". A fixed, even number of
// panels keeps the per-IR-grid cost independent of the grid span, which is
// exactly the complexity claim of section 4.4.
#pragma once

#include <concepts>

#include "util/check.hpp"

namespace ficon {

/// Integrate f over [a, b] with composite Simpson's rule using `panels`
/// sub-intervals (must be even and >= 2). Returns 0 for a >= b.
template <std::invocable<double> F>
double simpson(F&& f, double a, double b, int panels = 16) {
  FICON_REQUIRE(panels >= 2 && panels % 2 == 0,
                "Simpson's rule needs an even panel count >= 2");
  if (!(a < b)) return 0.0;
  const double h = (b - a) / panels;
  double sum = f(a) + f(b);
  for (int i = 1; i < panels; ++i) {
    const double x = a + h * i;
    sum += f(x) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace ficon
