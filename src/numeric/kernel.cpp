#include "numeric/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>
#include <string>

#include "numeric/normal.hpp"
#include "util/check.hpp"
#include "util/env.hpp"

// The vector path needs the GCC/Clang vector-extension syntax; FICON_SIMD=ON
// (CMake) defines FICON_KERNEL_SIMD=1. Everything below is arranged so that
// turning this off changes performance only, never results: the scalar
// exp_lane() is the exact per-lane algorithm of exp4().
#if defined(FICON_KERNEL_SIMD) && FICON_KERNEL_SIMD && \
    (defined(__GNUC__) || defined(__clang__))
#define FICON_KERNEL_VECTOR 1
#else
#define FICON_KERNEL_VECTOR 0
#endif

namespace ficon {
namespace {

// exp() via Cody–Waite argument reduction: x = n*ln2 + r with |r| <= ln2/2,
// e^x = 2^n * e^r, e^r by a degree-13 Taylor polynomial (truncation error
// ~4e-18, well under one ulp at |r| <= 0.347), 2^n by exponent-bit
// reconstruction. Inputs are clamped to +-708 so 2^n never leaves the
// normal range (exp(-708) ~ 3.3e-308); at probability scale the clamped
// tail is indistinguishable from 0.
//
// The polynomial is evaluated in Estrin form rather than Horner: Horner's
// 13 serial multiply-adds are latency-bound on 2-lane vectors, while the
// Estrin tree finishes in ~4 dependent levels after the r^2/r^4/r^8 powers
// and lets out-of-order cores overlap the independent pair terms. The
// scalar exp_lane() uses the identical expression tree so lanes stay
// bit-identical between the vector and tail paths.
constexpr double kExpLo = -708.0;
constexpr double kExpHi = 708.0;
constexpr double kLog2E = 1.4426950408889634074;
// ln2 split: the high part has its low 28 mantissa bits zero, so n*kLn2Hi
// is exact for the |n| <= 1022 this kernel produces.
constexpr double kLn2Hi = 6.93145751953125e-1;
constexpr double kLn2Lo = 1.42860682030941723212e-6;
// Adding 1.5*2^52 forces round-to-nearest-even integer extraction without
// a float->int->float round trip inside the polynomial path. A second
// payoff: t = kShift + n lands in [2^52, 2^53) where doubles have unit
// spacing, so bits(t) == kShiftBits + n as plain integer arithmetic — the
// integer n comes straight out of t's bit pattern with one subtract. That
// matters on baseline SSE2/NEON, which have no packed double->int64
// conversion (__builtin_convertvector would lower to per-lane scalar
// conversions).
constexpr double kShift = 6755399441055744.0;
constexpr std::int64_t kShiftBits = 0x4338000000000000;
constexpr double kTaylor[14] = {
    1.0,
    1.0,
    1.0 / 2,
    1.0 / 6,
    1.0 / 24,
    1.0 / 120,
    1.0 / 720,
    1.0 / 5040,
    1.0 / 40320,
    1.0 / 362880,
    1.0 / 3628800,
    1.0 / 39916800,
    1.0 / 479001600,
    1.0 / 6227020800.0,
};

// The degree-13 e^r Taylor polynomial in Estrin form. Instantiated with
// both double and vd2 below so the scalar lane and the vector path share
// ONE expression tree — GCC/Clang broadcast the scalar coefficients over
// vector operands, and identical expressions mean identical rounding.
template <typename V>
inline V exp_poly(V r) {
  const V r2 = r * r;
  const V r4 = r2 * r2;
  const V r8 = r4 * r4;
  const V q0 = kTaylor[0] + kTaylor[1] * r;
  const V q2 = kTaylor[2] + kTaylor[3] * r;
  const V q4 = kTaylor[4] + kTaylor[5] * r;
  const V q6 = kTaylor[6] + kTaylor[7] * r;
  const V q8 = kTaylor[8] + kTaylor[9] * r;
  const V q10 = kTaylor[10] + kTaylor[11] * r;
  const V q12 = kTaylor[12] + kTaylor[13] * r;
  const V lo = q0 + q2 * r2;              // degrees 0..3
  const V mid = q4 + q6 * r2;             // degrees 4..7
  const V top = q8 + q10 * r2 + q12 * r4;  // degrees 8..13, pre r^8
  return lo + mid * r4 + top * r8;
}

#if FICON_KERNEL_VECTOR

// 16-byte lanes: the baseline vector width on every x86-64 (SSE2) and
// aarch64 (NEON) target, so no -mavx flags or -Wpsabi ABI caveats are
// needed; the batch loop runs two of these per iteration to keep four
// independent dependency chains in flight.
using vd2 = double __attribute__((vector_size(16)));
using vi2 = std::int64_t __attribute__((vector_size(16)));

inline vd2 bcast(double v) { return vd2{v, v}; }

/// Two exp_lane() evaluations at once — same operations, same order.
inline vd2 exp2v(vd2 x) {
  const vd2 lo = bcast(kExpLo);
  const vd2 hi = bcast(kExpHi);
  x = x < lo ? lo : x;
  x = x > hi ? hi : x;
  const vd2 t = x * bcast(kLog2E) + bcast(kShift);
  const vd2 n = t - bcast(kShift);
  vd2 r = x - n * bcast(kLn2Hi);
  r = r - n * bcast(kLn2Lo);
  const vd2 p = exp_poly(r);
  vi2 e;
  std::memcpy(&e, &t, sizeof e);  // bits(t) = kShiftBits + n, exactly
  e -= kShiftBits;
  const vi2 bits = (e + 1023) << 52;
  vd2 s;
  std::memcpy(&s, &bits, sizeof s);
  return p * s;
}

#endif  // FICON_KERNEL_VECTOR

}  // namespace

bool kernel_simd_compiled() { return FICON_KERNEL_VECTOR != 0; }

bool kernel_simd_default() {
  static const bool enabled = [] {
    if (!kernel_simd_compiled()) return false;
    const std::string v = env_string("FICON_SIMD", "1");
    return !(v == "0" || v == "off" || v == "OFF" || v == "false");
  }();
  return enabled;
}

bool kernel_simd_active(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return false;
    case SimdMode::kSimd:
      return true;
    case SimdMode::kAuto:
    default:
      return kernel_simd_default();
  }
}

namespace kernel {

double exp_lane(double x) noexcept {
  x = x < kExpLo ? kExpLo : x;
  x = x > kExpHi ? kExpHi : x;
  const double t = x * kLog2E + kShift;
  const double n = t - kShift;
  double r = x - n * kLn2Hi;
  r = r - n * kLn2Lo;
  const double p = exp_poly(r);
  std::int64_t e;
  std::memcpy(&e, &t, sizeof e);  // bits(t) = kShiftBits + n, exactly
  e -= kShiftBits;
  const std::int64_t bits = (e + 1023) << 52;
  double s;
  std::memcpy(&s, &bits, sizeof s);
  return p * s;
}

void exp_batch(std::span<const double> xs, std::span<double> out) {
  FICON_ASSERT(xs.size() == out.size(), "exp_batch: span size mismatch");
  std::size_t i = 0;
#if FICON_KERNEL_VECTOR
  for (; i + 4 <= xs.size(); i += 4) {
    vd2 a;
    vd2 b;
    std::memcpy(&a, xs.data() + i, sizeof a);
    std::memcpy(&b, xs.data() + i + 2, sizeof b);
    a = exp2v(a);
    b = exp2v(b);
    std::memcpy(out.data() + i, &a, sizeof a);
    std::memcpy(out.data() + i + 2, &b, sizeof b);
  }
  for (; i + 2 <= xs.size(); i += 2) {
    vd2 v;
    std::memcpy(&v, xs.data() + i, sizeof v);
    v = exp2v(v);
    std::memcpy(out.data() + i, &v, sizeof v);
  }
#endif
  for (; i < xs.size(); ++i) out[i] = exp_lane(xs[i]);
}

void normal_pdf_batch(std::span<const double> xs, std::span<const double> mus,
                      std::span<const double> inv_sigmas, double scale,
                      std::span<double> out) {
  FICON_ASSERT(xs.size() == mus.size() && xs.size() == inv_sigmas.size() &&
                   xs.size() == out.size(),
               "normal_pdf_batch: span size mismatch");
  const double c = scale * std::numbers::inv_sqrtpi / std::numbers::sqrt2;
  std::size_t i = 0;
#if FICON_KERNEL_VECTOR
  // One fused pass: z, the exp argument, the NaN guard and the final
  // scaling all stay in registers instead of round-tripping through
  // intermediate arrays. Two vd2 chains per iteration keep independent
  // exp trees in flight.
  for (; i + 4 <= xs.size(); i += 4) {
    vd2 x0, x1, m0, m1, s0, s1;
    std::memcpy(&x0, xs.data() + i, sizeof x0);
    std::memcpy(&x1, xs.data() + i + 2, sizeof x1);
    std::memcpy(&m0, mus.data() + i, sizeof m0);
    std::memcpy(&m1, mus.data() + i + 2, sizeof m1);
    std::memcpy(&s0, inv_sigmas.data() + i, sizeof s0);
    std::memcpy(&s1, inv_sigmas.data() + i + 2, sizeof s1);
    const vd2 z0 = (x0 - m0) * s0;
    const vd2 z1 = (x1 - m1) * s1;
    vd2 a0 = bcast(-0.5) * z0 * z0;
    vd2 a1 = bcast(-0.5) * z1 * z1;
    // NaN inv_sigma marks an invalid sample; exp2v needs finite inputs,
    // so park a 0 there — the NaN re-enters via inv_sigma below.
    a0 = a0 == a0 ? a0 : bcast(0.0);
    a1 = a1 == a1 ? a1 : bcast(0.0);
    const vd2 o0 = bcast(c) * s0 * exp2v(a0);
    const vd2 o1 = bcast(c) * s1 * exp2v(a1);
    std::memcpy(out.data() + i, &o0, sizeof o0);
    std::memcpy(out.data() + i + 2, &o1, sizeof o1);
  }
  for (; i + 2 <= xs.size(); i += 2) {
    vd2 x0, m0, s0;
    std::memcpy(&x0, xs.data() + i, sizeof x0);
    std::memcpy(&m0, mus.data() + i, sizeof m0);
    std::memcpy(&s0, inv_sigmas.data() + i, sizeof s0);
    const vd2 z0 = (x0 - m0) * s0;
    vd2 a0 = bcast(-0.5) * z0 * z0;
    a0 = a0 == a0 ? a0 : bcast(0.0);
    const vd2 o0 = bcast(c) * s0 * exp2v(a0);
    std::memcpy(out.data() + i, &o0, sizeof o0);
  }
#endif
  for (; i < xs.size(); ++i) {
    const double z = (xs[i] - mus[i]) * inv_sigmas[i];
    const double a = -0.5 * z * z;
    // Same NaN-parking as the vector body; exp_lane is the same per-lane
    // algorithm, so the tail is bit-identical to the vector lanes.
    const double arg = a == a ? a : 0.0;
    out[i] = c * inv_sigmas[i] * exp_lane(arg);
  }
}

void normal_cdf_batch(std::span<const double> xs, double mu, double inv_sigma,
                      std::span<double> out) {
  FICON_ASSERT(xs.size() == out.size(), "normal_cdf_batch: span size mismatch");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = std_normal_cdf((xs[i] - mu) * inv_sigma);
  }
}

}  // namespace kernel
}  // namespace ficon
