// Batched numeric kernel for the Theorem 1 hot loop (ROADMAP item 3).
//
// The Theorem 1 integrand costs one exp() per Simpson sample, and libm's
// exp() does not vectorize without libmvec. This kernel provides the
// array-oriented primitives the batched probability API is built on:
//
//   * exp_batch()         — e^x over a contiguous array, evaluated with
//                           portable GCC/Clang vector extensions when the
//                           library is compiled with FICON_SIMD=ON,
//   * normal_pdf_batch()  — the normal density over an array of
//                           (x, mu, 1/sigma) triples,
//   * normal_cdf_batch()  — batched CDF counterpart (erfc-based; kept
//                           scalar inside, provided so callers can stay on
//                           the array API throughout).
//
// Equivalence contract: the vector path and the scalar tail use the SAME
// exp algorithm (Cody–Waite reduction + degree-13 Taylor + exponent
// reconstruction), so element i of a batch does not depend on the batch
// size or on whether vector extensions were compiled in. Relative error
// vs libm exp() is ~1 ulp; the probability-level equivalence bound against
// the scalar reference path is asserted in prob_property_test.
//
// Dispatch: SimdMode::kAuto resolves through the FICON_SIMD runtime knob
// (default on when compiled in); kScalar/kSimd force one path. The scalar
// reference path keeps calling libm via numeric/normal.hpp and is NOT
// affected by any of this.
#pragma once

#include <cstdint>
#include <span>

namespace ficon {

/// Which implementation a probability evaluator uses for Theorem 1 math.
enum class SimdMode {
  /// Follow the FICON_SIMD runtime knob (default: on when the library was
  /// compiled with vector extensions, off otherwise).
  kAuto,
  /// Force the scalar libm reference path (bit-identical to the historical
  /// per-pair evaluation).
  kScalar,
  /// Force the batched kernel path (vectorized when compiled in; the
  /// lane-exact scalar fallback otherwise — results are identical).
  kSimd,
};

/// True when the library was compiled with FICON_SIMD=ON and the compiler
/// supports the vector extensions (GCC/Clang).
bool kernel_simd_compiled();

/// Resolved default for SimdMode::kAuto: the FICON_SIMD environment knob
/// ("0"/"off"/"false" disable; anything else enables), read once, and
/// forced off when kernel_simd_compiled() is false.
bool kernel_simd_default();

/// Resolve a mode to "use the batched kernel path?".
bool kernel_simd_active(SimdMode mode);

namespace kernel {

/// Scalar lane of the kernel exp: identical operation sequence to one lane
/// of the vector path, used for batch tails and non-SIMD builds.
/// Precondition: x is finite (not NaN/inf); out-of-range x is clamped to
/// [-708, 708] (exp(-708) ~ 3.3e-308 is still a normal double).
double exp_lane(double x) noexcept;

/// out[i] = e^xs[i]. Vectorized in chunks of 4 lanes when compiled with
/// FICON_SIMD=ON; the tail (and non-SIMD builds) uses exp_lane(), so
/// results never depend on the batch size. Spans must have equal size.
void exp_batch(std::span<const double> xs, std::span<double> out);

/// out[i] = scale * inv_sigmas[i] * std_normal_pdf((xs[i]-mus[i]) *
/// inv_sigmas[i]). NaN entries in inv_sigmas propagate to out — callers
/// use that to mark invalid samples through the batch. Equal sizes.
void normal_pdf_batch(std::span<const double> xs, std::span<const double> mus,
                      std::span<const double> inv_sigmas, double scale,
                      std::span<double> out);

/// out[i] = Phi((xs[i]-mu) * inv_sigma), via erfc (numerically stable in
/// both tails). erfc has no portable vector form, so this loop is scalar
/// inside; it exists so CDF callers can stay on the array API.
void normal_cdf_batch(std::span<const double> xs, double mu, double inv_sigma,
                      std::span<double> out);

}  // namespace kernel
}  // namespace ficon
