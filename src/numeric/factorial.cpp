#include "numeric/factorial.hpp"

#include <cmath>
#include <numeric>

namespace ficon {

std::uint64_t choose_exact(int n, int k) {
  FICON_REQUIRE(n >= 0 && k >= 0 && k <= n, "invalid binomial arguments");
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is always integral at each step; divide by
    // gcd first to delay overflow as long as possible.
    const std::uint64_t num = static_cast<std::uint64_t>(n - k + i);
    const std::uint64_t den = static_cast<std::uint64_t>(i);
    const std::uint64_t g = std::gcd(result, den);
    const std::uint64_t r = result / g;
    const std::uint64_t d = den / g;
    FICON_REQUIRE(num % d == 0, "internal: non-integral intermediate");
    const std::uint64_t factor = num / d;
    FICON_REQUIRE(r <= UINT64_MAX / factor, "binomial overflows 64 bits");
    result = r * factor;
  }
  return result;
}

double choose_double(int n, int k) {
  FICON_REQUIRE(n >= 0 && k >= 0 && k <= n, "invalid binomial arguments");
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace ficon
