// Normal-distribution helpers for the Theorem 1 approximation.
#pragma once

#include <cmath>
#include <numbers>

namespace ficon {

/// Standard normal probability density.
inline double std_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

/// Normal pdf with mean mu and standard deviation sigma (> 0).
inline double normal_pdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return std_normal_pdf(z) / sigma;
}

/// Standard normal CDF via erfc (numerically stable in both tails).
inline double std_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

/// Normal CDF with mean mu and standard deviation sigma (> 0).
inline double normal_cdf(double x, double mu, double sigma) {
  return std_normal_cdf((x - mu) / sigma);
}

}  // namespace ficon
