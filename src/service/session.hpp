// Congestion-evaluation service layer (ROADMAP item 1): a long-lived
// engine session that amortizes circuit parsing and evaluator caches
// across many evaluate/anneal requests.
//
// The one-shot tools (ficon_cli, the experiment drivers) pay the full
// setup cost per invocation: parse the netlist, precompute the slicing
// shape curves, warm the decomposition caches — then throw it all away.
// An EngineSession owns one parsed netlist snapshot plus per-executor
// derived structures (SlicingPacker, TwoPinDecomposer) and serves
// requests from a bounded queue:
//
//   * **Sharding.** An anneal request with `seeds = N` fans out into N
//     independent single-seed jobs using exactly the seed-sweep
//     derivation (`SplitMix64(seed + s).next()`, see exp/experiment.cpp),
//     so a session sweep is bit-identical to `run_seed_sweep`. With
//     `seeds = 1` the request seed is used directly, matching
//     `ficon_cli --seed`.
//   * **Determinism.** Each executor wraps its work in a
//     `ThreadPool::InlineScope`: nested congestion-model parallelism
//     collapses inline on the executor (the request fan-out owns the
//     parallelism, exactly like the seed sweep's one-run-per-block), so
//     results are bit-identical to the serial one-shot path
//     (`run_oneshot`) at every worker count.
//   * **Backpressure.** The queue holds at most `queue_capacity` queued
//     shards; a submit that would overflow is rejected synchronously
//     (ticket 0, stats.rejected) instead of buffering unboundedly.
//   * **Cancellation.** `cancel(ticket)` sets a per-request flag: queued
//     shards complete immediately as cancelled, running anneals stop
//     cooperatively via `AnnealOptions::should_stop` and return their
//     best-so-far. The session stays serviceable afterwards.
//
// The ficond daemon (tools/ficond.cpp) exposes a session over the JSONL
// frame protocol in service/protocol.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuit/netlist.hpp"
#include "core/floorplanner.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace ficon::service {

/// What a request asks the engine to do.
enum class RequestKind {
  kEvaluate,  ///< pack + score one expression (cheap, no annealing)
  kAnneal,    ///< full simulated-annealing run (per-seed sharded)
};

const char* to_string(RequestKind kind);

/// Terminal state of a request.
enum class ReplyStatus {
  kOk,         ///< every shard completed
  kRejected,   ///< queue full (or session shutting down) at submit time
  kCancelled,  ///< cancel() fired before completion; partial results inside
  kError,      ///< a shard threw; `Reply::error` carries the first message
};

const char* to_string(ReplyStatus status);

/// @brief One unit of work against the session's netlist. Field defaults
/// mirror the engine defaults, not the ficon_cli defaults — the protocol
/// decoder (service/protocol.hpp) applies CLI-compatible defaults.
struct Request {
  RequestKind kind = RequestKind::kAnneal;
  FloorplanObjective objective{};
  FloorplanEngine engine = FloorplanEngine::kPolishExpression;
  AnnealOptions anneal{};
  double effort = 1.0;
  bool incremental = true;
  std::uint64_t seed = 1;
  /// Anneal fan-out: number of independent seeds (sharded one job each).
  /// Values < 1 clamp to 1. Evaluate requests always run one shard.
  int seeds = 1;
  /// Evaluate only: the Polish expression to score, in to_string() token
  /// format ("0 1 V 2 H"); empty scores PolishExpression::initial().
  std::string expression;
  /// Test hook: runs on the executor thread immediately before the shard
  /// executes (after the cancelled-while-queued check). Lets tests hold a
  /// worker busy deterministically; empty in production use.
  std::function<void()> on_start;
};

/// Outcome of one shard (one seed).
struct SeedResult {
  std::uint64_t seed = 0;
  FloorplanMetrics metrics{};
  /// Final representation (Polish expression / sequence pair). Empty when
  /// the shard was cancelled before it started.
  std::string representation;
  double seconds = 0.0;
  bool cancelled = false;  ///< stopped early; metrics are best-so-far
};

struct Reply {
  ReplyStatus status = ReplyStatus::kOk;
  std::string error;            ///< first shard error (kError only)
  std::vector<SeedResult> seeds;
  double seconds = 0.0;  ///< submit-to-completion wall clock
};

/// @brief The FloorplanOptions a given shard runs under. Shared by the
/// session executors and `run_oneshot` so the two paths are bit-identical
/// by construction.
FloorplanOptions to_floorplan_options(const Request& request,
                                      std::uint64_t shard_seed);

/// @brief Per-shard seeds of a request: `{seed}` for a single seed, else
/// the seed-sweep derivation `SplitMix64(seed + s).next()` for shard s —
/// the same stream `run_seed_sweep` uses (exp/experiment.cpp).
std::vector<std::uint64_t> shard_seeds(const Request& request);

/// @brief Parse a Polish expression from to_string() format: whitespace-
/// separated module indices and H/V operators. Throws std::invalid_argument
/// on unknown tokens or invalid/non-normalized expressions.
PolishExpression parse_polish_expression(const std::string& text);

/// @brief Load a circuit by built-in MCNC name ("ami33"), GSRC .blocks
/// path, or native .ficon path — the lookup ficon_cli, ficond and the
/// benches share.
Netlist load_circuit(const std::string& name_or_path);

/// @brief Serial reference path: execute one request start-to-finish on
/// the calling thread, shards in seed order. The session's concurrent
/// executors produce bit-identical SeedResults (same options via
/// to_floorplan_options, deterministic engine).
Reply run_oneshot(const Netlist& netlist, const Request& request);

struct SessionOptions {
  /// Executor threads; values < 1 resolve to ThreadPool::env_threads().
  int workers = 0;
  /// Maximum queued (not yet running) shards; submits that would exceed
  /// it are rejected with ticket 0.
  std::size_t queue_capacity = 64;
};

/// Monotonic counters; `submitted == accepted + rejected`, and every
/// accepted request ends in exactly one of completed/cancelled/failed.
struct SessionStats {
  long long submitted = 0;
  long long accepted = 0;
  long long rejected = 0;
  long long completed = 0;  ///< finished with status kOk
  long long cancelled = 0;  ///< finished with status kCancelled
  long long failed = 0;     ///< finished with status kError
};

/// @brief A parsed netlist snapshot plus a bounded request queue and a
/// fixed pool of executor threads. Thread-safe: submit/wait/cancel/stats
/// may be called concurrently from any number of threads.
class EngineSession {
 public:
  /// Opaque request handle; 0 is never a valid ticket (it means the
  /// submit was rejected).
  using Ticket = std::uint64_t;
  /// Completion callback, invoked once on an executor thread. A request
  /// submitted with a callback is self-collecting: the ticket is retired
  /// on completion and must not be passed to wait().
  using Callback = std::function<void(Ticket, const Reply&)>;

  explicit EngineSession(Netlist netlist, SessionOptions options = {});

  /// Cancels outstanding requests (queued shards finish as cancelled,
  /// running anneals stop cooperatively), fires their callbacks, joins
  /// the executors.
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  /// @brief Enqueue a request. Returns 0 — synchronously, without
  /// blocking — when the queued-shard budget is exhausted (backpressure)
  /// or the session is shutting down; the caller decides whether to
  /// retry, shed load, or fail upward.
  Ticket submit(Request request, Callback callback = {});

  /// @brief Block until the request finishes and return its Reply.
  /// Retires the ticket: a second wait() on it returns kError. Only for
  /// tickets submitted without a callback.
  Reply wait(Ticket ticket);

  /// @brief Request cooperative cancellation. Returns true if the ticket
  /// was outstanding (queued or running), false if unknown or already
  /// finished. Completion still arrives through wait()/the callback, with
  /// status kCancelled.
  bool cancel(Ticket ticket);

  /// Submit + wait convenience; a rejected submit returns kRejected.
  Reply run(Request request);

  SessionStats stats() const;
  const Netlist& netlist() const { return netlist_; }
  int workers() const { return static_cast<int>(executors_.size()); }
  std::size_t queue_capacity() const { return options_.queue_capacity; }

 private:
  struct Pending;  // per-request state, defined in session.cpp
  struct Shard {
    std::shared_ptr<Pending> pending;
    std::size_t index = 0;  ///< into Pending::seeds / Pending::results
  };

  void worker_loop(int worker_index);
  void execute_shard(const Shard& shard, SlicingPacker& packer,
                     TwoPinDecomposer& decomposer);

  const Netlist netlist_;
  const SessionOptions options_;

  mutable Mutex mu_;
  std::condition_variable_any queue_cv_;  ///< executors wait for work
  std::condition_variable_any done_cv_;   ///< wait() waits for completion
  Ticket next_ticket_ FICON_GUARDED_BY(mu_) = 0;
  std::deque<Shard> queue_ FICON_GUARDED_BY(mu_);
  std::map<Ticket, std::shared_ptr<Pending>> tickets_ FICON_GUARDED_BY(mu_);
  SessionStats stats_ FICON_GUARDED_BY(mu_);
  bool stopping_ FICON_GUARDED_BY(mu_) = false;

  std::vector<std::jthread> executors_;  ///< last member: joins first
};

}  // namespace ficon::service
