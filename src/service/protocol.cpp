#include "service/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FICON_HAVE_POSIX_FD 1
#endif

#include "obs/json.hpp"

namespace ficon::service {

namespace {

using ficon::obs::JsonValue;

/// %.17g: enough digits for a double to round-trip bit-exactly (the same
/// contract as obs/report.cpp and bench_common.hpp).
std::string json_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

bool parse_u64_text(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

std::string seed_results_json(const std::vector<SeedResult>& seeds,
                              bool with_seconds) {
  std::string out = "[";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const SeedResult& s = seeds[i];
    if (i > 0) out += ',';
    out += "{\"seed\":" + json_escape(std::to_string(s.seed)) +
           ",\"area\":" + json_double(s.metrics.area) +
           ",\"wirelength\":" + json_double(s.metrics.wirelength) +
           ",\"congestion\":" + json_double(s.metrics.congestion) +
           ",\"cost\":" + json_double(s.metrics.cost);
    if (with_seconds) out += ",\"seconds\":" + json_double(s.seconds);
    out += std::string(",\"cancelled\":") + (s.cancelled ? "true" : "false") +
           ",\"representation\":" + json_escape(s.representation) + "}";
  }
  out += ']';
  return out;
}

bool decode_seed_result(const JsonValue& v, SeedResult* out,
                        std::string* error) {
  const JsonValue* seed = v.find("seed");
  if (seed == nullptr ||
      !(seed->is_string() || seed->is_number())) {
    *error = "seed result missing \"seed\"";
    return false;
  }
  if (seed->is_string()) {
    if (!parse_u64_text(seed->string, &out->seed)) {
      *error = "bad seed string '" + seed->string + "'";
      return false;
    }
  } else {
    out->seed = static_cast<std::uint64_t>(seed->number);
  }
  const auto number = [&](const char* key, double* dst) {
    const JsonValue* field = v.find(key);
    if (field == nullptr || !field->is_number()) return false;
    *dst = field->number;
    return true;
  };
  if (!number("area", &out->metrics.area) ||
      !number("wirelength", &out->metrics.wirelength) ||
      !number("congestion", &out->metrics.congestion) ||
      !number("cost", &out->metrics.cost)) {
    *error = "seed result missing a metric";
    return false;
  }
  number("seconds", &out->seconds);  // optional (absent in result lines)
  if (const JsonValue* c = v.find("cancelled");
      c != nullptr && c->type == JsonValue::Type::kBool) {
    out->cancelled = c->boolean;
  }
  if (const JsonValue* r = v.find("representation");
      r != nullptr && r->is_string()) {
    out->representation = r->string;
  }
  return true;
}

}  // namespace

const char* to_string(ProtocolOp op) {
  switch (op) {
    case ProtocolOp::kEvaluate: return "evaluate";
    case ProtocolOp::kAnneal: return "anneal";
    case ProtocolOp::kCancel: return "cancel";
    case ProtocolOp::kPing: return "ping";
    case ProtocolOp::kStats: return "stats";
    case ProtocolOp::kShutdown: return "shutdown";
  }
  return "?";
}

// --- Framing ------------------------------------------------------------

FrameStatus read_frame(std::istream& in, std::string* payload) {
  std::string header;
  char c = 0;
  while (in.get(c)) {
    if (c == '\n') break;
    header += c;
    if (header.size() > 20) return FrameStatus::kMalformed;
  }
  if (!in) {
    return header.empty() ? FrameStatus::kEof : FrameStatus::kMalformed;
  }
  std::uint64_t length = 0;
  if (!parse_u64_text(header, &length) || length > kMaxFrameBytes) {
    return FrameStatus::kMalformed;
  }
  payload->resize(static_cast<std::size_t>(length));
  if (length > 0 &&
      !in.read(payload->data(), static_cast<std::streamsize>(length))) {
    return FrameStatus::kMalformed;
  }
  if (!in.get(c) || c != '\n') return FrameStatus::kMalformed;
  return FrameStatus::kOk;
}

void write_frame(std::ostream& out, std::string_view payload) {
  out << payload.size() << '\n';
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out << '\n';
  out.flush();
}

#if defined(FICON_HAVE_POSIX_FD)

namespace {

/// read() exactly n bytes; 1 = ok, 0 = clean EOF at offset 0, -1 = short.
int read_exact_fd(int fd, char* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, dst + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return got == 0 ? 0 : -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

FrameStatus read_frame_fd(int fd, std::string* payload) {
  std::string header;
  while (true) {
    char c = 0;
    const int r = read_exact_fd(fd, &c, 1);
    if (r == 0) {
      return header.empty() ? FrameStatus::kEof : FrameStatus::kMalformed;
    }
    if (r < 0) return FrameStatus::kMalformed;
    if (c == '\n') break;
    header += c;
    if (header.size() > 20) return FrameStatus::kMalformed;
  }
  std::uint64_t length = 0;
  if (!parse_u64_text(header, &length) || length > kMaxFrameBytes) {
    return FrameStatus::kMalformed;
  }
  payload->resize(static_cast<std::size_t>(length));
  if (length > 0 && read_exact_fd(fd, payload->data(),
                                  payload->size()) != 1) {
    return FrameStatus::kMalformed;
  }
  char trailer = 0;
  if (read_exact_fd(fd, &trailer, 1) != 1 || trailer != '\n') {
    return FrameStatus::kMalformed;
  }
  return FrameStatus::kOk;
}

bool write_frame_fd(int fd, std::string_view payload) {
  std::string frame = std::to_string(payload.size());
  frame += '\n';
  frame.append(payload.data(), payload.size());
  frame += '\n';
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

#else  // !FICON_HAVE_POSIX_FD

FrameStatus read_frame_fd(int, std::string*) {
  return FrameStatus::kMalformed;
}
bool write_frame_fd(int, std::string_view) { return false; }

#endif

// --- Requests -----------------------------------------------------------

bool decode_request(const std::string& payload, ProtocolRequest* out,
                    std::string* error) {
  *out = ProtocolRequest{};
  const std::optional<JsonValue> doc = obs::parse_json(payload, error);
  if (!doc) return false;
  if (!doc->is_object()) {
    *error = "request must be a JSON object";
    return false;
  }

  // Pull "id" first so even a rejected payload has an addressable reply.
  if (const JsonValue* id = doc->find("id"); id != nullptr && id->is_number()) {
    out->id = static_cast<std::int64_t>(id->number);
  }

  const JsonValue* op = doc->find("op");
  if (op == nullptr || !op->is_string()) {
    *error = "missing \"op\"";
    return false;
  }
  if (op->string == "evaluate") {
    out->op = ProtocolOp::kEvaluate;
  } else if (op->string == "anneal") {
    out->op = ProtocolOp::kAnneal;
  } else if (op->string == "cancel") {
    out->op = ProtocolOp::kCancel;
  } else if (op->string == "ping") {
    out->op = ProtocolOp::kPing;
  } else if (op->string == "stats") {
    out->op = ProtocolOp::kStats;
  } else if (op->string == "shutdown") {
    out->op = ProtocolOp::kShutdown;
  } else {
    *error = "unknown op '" + op->string + "'";
    return false;
  }

  // CLI-compatible defaults; "grid" resolves against the chosen model.
  Request& request = out->request;
  request.kind = out->op == ProtocolOp::kEvaluate ? RequestKind::kEvaluate
                                                  : RequestKind::kAnneal;
  std::string model = "ir";
  double grid = -1.0;  // sentinel: per-model default
  request.objective.alpha = 1.0;
  request.objective.beta = 1.0;
  request.objective.gamma = 0.4;

  for (const auto& [key, value] : doc->object) {
    const auto need_number = [&]() {
      if (value.is_number()) return true;
      *error = "\"" + key + "\" must be a number";
      return false;
    };
    if (key == "id" || key == "op") {
      continue;  // handled above
    } else if (key == "alpha") {
      if (!need_number()) return false;
      request.objective.alpha = value.number;
    } else if (key == "beta") {
      if (!need_number()) return false;
      request.objective.beta = value.number;
    } else if (key == "gamma") {
      if (!need_number()) return false;
      request.objective.gamma = value.number;
    } else if (key == "grid") {
      if (!need_number()) return false;
      if (value.number <= 0.0) {
        *error = "\"grid\" must be positive";
        return false;
      }
      grid = value.number;
    } else if (key == "model") {
      if (!value.is_string()) {
        *error = "\"model\" must be a string";
        return false;
      }
      model = value.string;
    } else if (key == "engine") {
      if (!value.is_string() ||
          (value.string != "polish" && value.string != "sp")) {
        *error = "\"engine\" must be \"polish\" or \"sp\"";
        return false;
      }
      request.engine = value.string == "sp"
                           ? FloorplanEngine::kSequencePair
                           : FloorplanEngine::kPolishExpression;
    } else if (key == "effort") {
      if (!need_number()) return false;
      if (value.number <= 0.0) {
        *error = "\"effort\" must be positive";
        return false;
      }
      request.effort = value.number;
    } else if (key == "seed") {
      if (value.is_string()) {
        if (!parse_u64_text(value.string, &request.seed)) {
          *error = "bad seed '" + value.string + "'";
          return false;
        }
      } else if (value.is_number() && value.number >= 0.0) {
        request.seed = static_cast<std::uint64_t>(value.number);
      } else {
        *error = "\"seed\" must be a decimal string or number";
        return false;
      }
    } else if (key == "seeds") {
      if (!need_number()) return false;
      if (value.number < 1.0 || value.number > 4096.0) {
        *error = "\"seeds\" must be in [1, 4096]";
        return false;
      }
      request.seeds = static_cast<int>(value.number);
    } else if (key == "expression") {
      if (!value.is_string()) {
        *error = "\"expression\" must be a string";
        return false;
      }
      request.expression = value.string;
    } else if (key == "target") {
      if (!need_number()) return false;
      out->target = static_cast<std::int64_t>(value.number);
    } else {
      *error = "unknown key \"" + key + "\"";
      return false;
    }
  }

  if (model == "ir") {
    request.objective.model = CongestionModelKind::kIrregularGrid;
    request.objective.irregular.grid_w = grid > 0.0 ? grid : 30.0;
    request.objective.irregular.grid_h = request.objective.irregular.grid_w;
  } else if (model == "fixed") {
    request.objective.model = CongestionModelKind::kFixedGrid;
    request.objective.fixed.grid_w = grid > 0.0 ? grid : 100.0;
    request.objective.fixed.grid_h = request.objective.fixed.grid_w;
  } else if (model == "none") {
    request.objective.model = CongestionModelKind::kNone;
    request.objective.gamma = 0.0;
  } else {
    *error = "unknown model '" + model + "'";
    return false;
  }
  if (out->op == ProtocolOp::kCancel && out->target == 0) {
    *error = "cancel needs a non-zero \"target\"";
    return false;
  }
  return true;
}

std::string encode_request(std::int64_t id, const Request& request) {
  const char* model = "none";
  double grid = 0.0;
  if (request.objective.model == CongestionModelKind::kIrregularGrid) {
    model = "ir";
    grid = request.objective.irregular.grid_w;
  } else if (request.objective.model == CongestionModelKind::kFixedGrid) {
    model = "fixed";
    grid = request.objective.fixed.grid_w;
  }
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"op\":" + json_escape(to_string(request.kind)) +
                    ",\"alpha\":" + json_double(request.objective.alpha) +
                    ",\"beta\":" + json_double(request.objective.beta) +
                    ",\"gamma\":" + json_double(request.objective.gamma) +
                    ",\"model\":" + json_escape(model);
  if (grid > 0.0) out += ",\"grid\":" + json_double(grid);
  out += std::string(",\"engine\":") +
         (request.engine == FloorplanEngine::kSequencePair ? "\"sp\""
                                                           : "\"polish\"") +
         ",\"seed\":" + json_escape(std::to_string(request.seed)) +
         ",\"seeds\":" + std::to_string(request.seeds) +
         ",\"effort\":" + json_double(request.effort);
  if (!request.expression.empty()) {
    out += ",\"expression\":" + json_escape(request.expression);
  }
  out += '}';
  return out;
}

std::string encode_cancel(std::int64_t id, std::int64_t target) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"cancel\",\"target\":" + std::to_string(target) + "}";
}

std::string encode_control(std::int64_t id, ProtocolOp op) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":" +
         json_escape(to_string(op)) + "}";
}

// --- Replies ------------------------------------------------------------

std::string encode_reply(std::int64_t id, const Reply& reply) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"status\":" +
                    json_escape(to_string(reply.status));
  if (!reply.error.empty()) out += ",\"error\":" + json_escape(reply.error);
  out += ",\"seconds\":" + json_double(reply.seconds) +
         ",\"seeds\":" + seed_results_json(reply.seeds, true) + "}";
  return out;
}

std::string encode_error_reply(std::int64_t id, const std::string& message) {
  return "{\"id\":" + std::to_string(id) +
         ",\"status\":\"error\",\"error\":" + json_escape(message) + "}";
}

std::string encode_ok_reply(std::int64_t id) {
  return "{\"id\":" + std::to_string(id) + ",\"status\":\"ok\"}";
}

std::string encode_stats_reply(std::int64_t id, const SessionStats& stats) {
  return "{\"id\":" + std::to_string(id) +
         ",\"status\":\"ok\",\"stats\":{\"submitted\":" +
         std::to_string(stats.submitted) +
         ",\"accepted\":" + std::to_string(stats.accepted) +
         ",\"rejected\":" + std::to_string(stats.rejected) +
         ",\"completed\":" + std::to_string(stats.completed) +
         ",\"cancelled\":" + std::to_string(stats.cancelled) +
         ",\"failed\":" + std::to_string(stats.failed) + "}}";
}

bool decode_reply(const std::string& payload, DecodedReply* out,
                  std::string* error) {
  *out = DecodedReply{};
  const std::optional<JsonValue> doc = obs::parse_json(payload, error);
  if (!doc) return false;
  if (!doc->is_object()) {
    *error = "reply must be a JSON object";
    return false;
  }
  if (const JsonValue* id = doc->find("id"); id != nullptr && id->is_number()) {
    out->id = static_cast<std::int64_t>(id->number);
  }
  const JsonValue* status = doc->find("status");
  if (status == nullptr || !status->is_string()) {
    *error = "missing \"status\"";
    return false;
  }
  out->status = status->string;
  if (const JsonValue* e = doc->find("error"); e != nullptr && e->is_string()) {
    out->error = e->string;
  }
  if (const JsonValue* s = doc->find("seconds");
      s != nullptr && s->is_number()) {
    out->seconds = s->number;
  }
  if (const JsonValue* seeds = doc->find("seeds");
      seeds != nullptr && seeds->type == JsonValue::Type::kArray) {
    for (const JsonValue& entry : seeds->array) {
      SeedResult result;
      if (!decode_seed_result(entry, &result, error)) return false;
      out->seeds.push_back(std::move(result));
    }
  }
  if (const JsonValue* stats = doc->find("stats");
      stats != nullptr && stats->is_object()) {
    const auto counter = [&](const char* key, long long* dst) {
      if (const JsonValue* v = stats->find(key);
          v != nullptr && v->is_number()) {
        *dst = static_cast<long long>(v->number);
      }
    };
    counter("submitted", &out->stats.submitted);
    counter("accepted", &out->stats.accepted);
    counter("rejected", &out->stats.rejected);
    counter("completed", &out->stats.completed);
    counter("cancelled", &out->stats.cancelled);
    counter("failed", &out->stats.failed);
  }
  return true;
}

std::string encode_result_line(const std::string& op,
                               const std::string& circuit,
                               const std::string& status,
                               const std::vector<SeedResult>& seeds) {
  return "{\"op\":" + json_escape(op) + ",\"circuit\":" +
         json_escape(circuit) + ",\"status\":" + json_escape(status) +
         ",\"seeds\":" + seed_results_json(seeds, false) + "}";
}

}  // namespace ficon::service
