#include "service/session.hpp"

#include <algorithm>
#include <cctype>
#include <exception>
#include <sstream>
#include <utility>

#include "circuit/mcnc.hpp"
#include "circuit/parser.hpp"
#include "congestion/model.hpp"
#include "obs/trace.hpp"
#include "route/two_pin.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ficon::service {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kEvaluate: return "evaluate";
    case RequestKind::kAnneal: return "anneal";
  }
  return "?";
}

const char* to_string(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk: return "ok";
    case ReplyStatus::kRejected: return "rejected";
    case ReplyStatus::kCancelled: return "cancelled";
    case ReplyStatus::kError: return "error";
  }
  return "?";
}

FloorplanOptions to_floorplan_options(const Request& request,
                                      std::uint64_t shard_seed) {
  FloorplanOptions options;
  options.objective = request.objective;
  options.engine = request.engine;
  options.anneal = request.anneal;
  options.effort = request.effort;
  options.incremental = request.incremental;
  options.seed = shard_seed;
  return options;
}

std::vector<std::uint64_t> shard_seeds(const Request& request) {
  // A single seed runs under the request seed directly — the contract of
  // `ficon_cli --seed N`. A sweep expands through SplitMix64 exactly like
  // run_seed_sweep (exp/experiment.cpp), so session sweeps reproduce the
  // experiment drivers bit for bit.
  if (request.kind == RequestKind::kEvaluate || request.seeds <= 1) {
    return {request.seed};
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(request.seeds));
  for (int s = 0; s < request.seeds; ++s) {
    seeds.push_back(
        SplitMix64(request.seed + static_cast<std::uint64_t>(s)).next());
  }
  return seeds;
}

PolishExpression parse_polish_expression(const std::string& text) {
  std::istringstream in(text);
  std::vector<PolishToken> tokens;
  std::string token;
  while (in >> token) {
    if (token == "H") {
      tokens.push_back(PolishToken{PolishToken::kH});
    } else if (token == "V") {
      tokens.push_back(PolishToken{PolishToken::kV});
    } else {
      std::size_t used = 0;
      int value = -1;
      try {
        value = std::stoi(token, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      FICON_REQUIRE(used == token.size() && value >= 0,
                    "bad Polish token '" + token + "'");
      tokens.push_back(PolishToken{value});
    }
  }
  // The PolishExpression constructor rejects invalid / non-normalized
  // token streams with std::invalid_argument.
  return PolishExpression(std::move(tokens));
}

Netlist load_circuit(const std::string& name_or_path) {
  for (const McncSpec& spec : mcnc_specs()) {
    if (spec.name == name_or_path) return make_mcnc(name_or_path);
  }
  if (name_or_path.size() > 7 &&
      name_or_path.compare(name_or_path.size() - 7, 7, ".blocks") == 0) {
    return load_gsrc(name_or_path);
  }
  return load_netlist(name_or_path);
}

namespace {

/// Score one expression against the netlist: pack, decompose, model cost.
/// The reported cost is the *raw* weighted objective
/// alpha*area + beta*wire + gamma*congestion — evaluate has no annealing
/// warm-up walk, so the walk-normalized cost of a Floorplanner run is
/// not defined here (docs/SERVICE.md spells out the difference).
SeedResult evaluate_once(const Netlist& netlist, SlicingPacker& packer,
                         TwoPinDecomposer& decomposer, const Request& request,
                         std::uint64_t seed) {
  FICON_REQUIRE(request.engine == FloorplanEngine::kPolishExpression,
                "evaluate supports the polish engine only");
  Stopwatch watch;
  const PolishExpression expr =
      request.expression.empty()
          ? PolishExpression::initial(
                static_cast<int>(netlist.module_count()))
          : parse_polish_expression(request.expression);
  FICON_REQUIRE(
      expr.module_count() == static_cast<int>(netlist.module_count()),
      "expression module count does not match the session circuit");
  const SlicingResult packed = packer.pack(expr);
  const std::span<const TwoPinNet> nets =
      decomposer.decompose(netlist, packed.placement);

  SeedResult result;
  result.seed = seed;
  result.metrics.area = packed.area;
  result.metrics.wirelength = total_length(nets);
  const std::unique_ptr<CongestionModel> model = make_congestion_model(
      request.objective.model, request.objective.irregular,
      request.objective.fixed);
  result.metrics.congestion =
      model ? model->cost(nets, packed.placement.chip) : 0.0;
  result.metrics.cost = request.objective.alpha * result.metrics.area +
                        request.objective.beta * result.metrics.wirelength +
                        request.objective.gamma * result.metrics.congestion;
  result.representation = expr.to_string();
  result.seconds = watch.seconds();
  return result;
}

/// One full annealing run under one shard seed. `cancel` (may be null)
/// is polled through AnnealOptions::should_stop; a pure read, so the run
/// is bit-identical to an uncancelled one for as long as it stays false.
SeedResult anneal_once(const Netlist& netlist, const Request& request,
                       std::uint64_t shard_seed,
                       const std::atomic<bool>* cancel) {
  FloorplanOptions options = to_floorplan_options(request, shard_seed);
  if (cancel != nullptr) {
    options.anneal.should_stop = [cancel] {
      return cancel->load(std::memory_order_relaxed);
    };
  }
  const Floorplanner planner(netlist, options);
  const FloorplanSolution solution = planner.run();

  SeedResult result;
  result.seed = shard_seed;
  result.metrics = solution.metrics;
  result.representation = solution.representation;
  result.seconds = solution.seconds;
  result.cancelled = solution.stats.cancelled;
  return result;
}

SeedResult run_shard(const Netlist& netlist, SlicingPacker& packer,
                     TwoPinDecomposer& decomposer, const Request& request,
                     std::uint64_t shard_seed,
                     const std::atomic<bool>* cancel) {
  return request.kind == RequestKind::kEvaluate
             ? evaluate_once(netlist, packer, decomposer, request, shard_seed)
             : anneal_once(netlist, request, shard_seed, cancel);
}

}  // namespace

Reply run_oneshot(const Netlist& netlist, const Request& request) {
  Stopwatch watch;
  Reply reply;
  SlicingPacker packer(netlist);
  TwoPinDecomposer decomposer;
  for (const std::uint64_t seed : shard_seeds(request)) {
    try {
      reply.seeds.push_back(
          run_shard(netlist, packer, decomposer, request, seed, nullptr));
    } catch (const std::exception& e) {
      reply.status = ReplyStatus::kError;
      reply.error = e.what();
      break;
    }
  }
  reply.seconds = watch.seconds();
  return reply;
}

/// Per-request bookkeeping. `cancel` is lock-free (polled from inside
/// annealing runs); every other mutable field is guarded by the owning
/// session's mu_ (shared with the queue, so shard completion and wait()
/// wake-ups are one lock).
struct EngineSession::Pending {
  Ticket ticket = 0;
  Request request;
  std::vector<std::uint64_t> seeds;
  Callback callback;
  Stopwatch watch;  ///< started at submit
  std::atomic<bool> cancel{false};

  std::vector<SeedResult> results;  ///< slot per shard
  std::size_t remaining = 0;
  bool failed = false;
  bool any_cancelled = false;
  std::string error;
  bool done = false;
  Reply reply;  ///< built once when remaining hits 0
};

EngineSession::EngineSession(Netlist netlist, SessionOptions options)
    : netlist_(std::move(netlist)), options_(options) {
  const int workers =
      options_.workers >= 1 ? options_.workers : ThreadPool::env_threads();
  executors_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    executors_.emplace_back([this, i] { worker_loop(i); });
  }
}

EngineSession::~EngineSession() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
    // Outstanding work drains as cancelled: queued shards observe the
    // flag when popped, running anneals stop at the next poll. Executors
    // exit once the queue is empty, so every callback still fires.
    for (auto& [ticket, pending] : tickets_) {
      pending->cancel.store(true, std::memory_order_release);
    }
  }
  queue_cv_.notify_all();
  executors_.clear();  // std::jthread joins on destruction
  done_cv_.notify_all();
}

EngineSession::Ticket EngineSession::submit(Request request,
                                            Callback callback) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->seeds = shard_seeds(pending->request);
  pending->results.resize(pending->seeds.size());
  pending->remaining = pending->seeds.size();
  pending->callback = std::move(callback);

  {
    const MutexLock lock(mu_);
    ++stats_.submitted;
    if (stopping_ ||
        queue_.size() + pending->seeds.size() > options_.queue_capacity) {
      ++stats_.rejected;
      return 0;
    }
    ++stats_.accepted;
    pending->ticket = ++next_ticket_;
    tickets_.emplace(pending->ticket, pending);
    for (std::size_t i = 0; i < pending->seeds.size(); ++i) {
      queue_.push_back(Shard{pending, i});
    }
  }
  queue_cv_.notify_all();
  return pending->ticket;
}

Reply EngineSession::wait(Ticket ticket) {
  std::shared_ptr<Pending> pending;
  {
    std::unique_lock<Mutex> lock(mu_);
    const auto it = tickets_.find(ticket);
    if (it == tickets_.end()) {
      Reply reply;
      reply.status = ReplyStatus::kError;
      reply.error = "unknown ticket " + std::to_string(ticket);
      return reply;
    }
    pending = it->second;
    done_cv_.wait(lock, [&] {
      mu_.AssertHeld();  // wait predicates run with the lock held
      return pending->done;
    });
    mu_.AssertHeld();  // unique_lock is invisible to -Wthread-safety
    tickets_.erase(ticket);
  }
  return pending->reply;
}

bool EngineSession::cancel(Ticket ticket) {
  const MutexLock lock(mu_);
  const auto it = tickets_.find(ticket);
  if (it == tickets_.end() || it->second->done) return false;
  it->second->cancel.store(true, std::memory_order_release);
  return true;
}

Reply EngineSession::run(Request request) {
  const Ticket ticket = submit(std::move(request));
  if (ticket == 0) {
    Reply reply;
    reply.status = ReplyStatus::kRejected;
    reply.error = "queue full";
    return reply;
  }
  return wait(ticket);
}

SessionStats EngineSession::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

void EngineSession::worker_loop(int worker_index) {
  obs::set_thread_label("svc-" + std::to_string(worker_index));
  // Executor-local derived structures, warm across requests. Every cached
  // value is a pure function of its inputs, so reuse cannot perturb
  // results (the same argument the incremental pipeline rests on).
  SlicingPacker packer(netlist_);
  TwoPinDecomposer decomposer;
  while (true) {
    Shard shard;
    {
      std::unique_lock<Mutex> lock(mu_);
      queue_cv_.wait(lock, [&] {
        mu_.AssertHeld();
        return stopping_ || !queue_.empty();
      });
      mu_.AssertHeld();
      if (queue_.empty()) return;  // stopping_ and fully drained
      shard = std::move(queue_.front());
      queue_.pop_front();
    }
    execute_shard(shard, packer, decomposer);
  }
}

void EngineSession::execute_shard(const Shard& shard, SlicingPacker& packer,
                                  TwoPinDecomposer& decomposer) {
  Pending& pending = *shard.pending;
  SeedResult result;
  result.seed = pending.seeds[shard.index];
  std::string error;

  if (pending.cancel.load(std::memory_order_acquire)) {
    result.cancelled = true;  // cancelled while queued: never ran
  } else {
    if (pending.request.on_start) pending.request.on_start();
    try {
      // The request fan-out owns the parallelism: nested congestion-model
      // run() calls collapse inline on this executor, the seed-sweep
      // pattern (see util/thread_pool.hpp, InlineScope).
      const ThreadPool::InlineScope inline_scope;
      result = run_shard(netlist_, packer, decomposer, pending.request,
                         result.seed, &pending.cancel);
    } catch (const std::exception& e) {
      error = e.what();
    }
  }

  Callback callback;
  Reply reply;
  Ticket ticket = 0;
  {
    const MutexLock lock(mu_);
    pending.results[shard.index] = std::move(result);
    if (!error.empty()) {
      pending.failed = true;
      if (pending.error.empty()) pending.error = error;
    }
    if (pending.results[shard.index].cancelled) pending.any_cancelled = true;
    if (--pending.remaining > 0) return;

    pending.done = true;
    pending.reply.status = pending.failed        ? ReplyStatus::kError
                           : pending.any_cancelled ? ReplyStatus::kCancelled
                                                   : ReplyStatus::kOk;
    pending.reply.error = pending.error;
    pending.reply.seeds = pending.results;
    pending.reply.seconds = pending.watch.seconds();
    switch (pending.reply.status) {
      case ReplyStatus::kError: ++stats_.failed; break;
      case ReplyStatus::kCancelled: ++stats_.cancelled; break;
      default: ++stats_.completed; break;
    }
    ticket = pending.ticket;
    callback = std::move(pending.callback);
    if (callback) {
      // Self-collecting: nobody will wait() on this ticket.
      tickets_.erase(pending.ticket);
      reply = pending.reply;
    }
  }
  done_cv_.notify_all();
  if (callback) callback(ticket, reply);
}

}  // namespace ficon::service
