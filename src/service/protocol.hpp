// Wire protocol of the ficond daemon: length-prefixed JSON frames over a
// byte stream (Unix socket or stdin/stdout pipe).
//
// Frame format (both directions):
//
//   <payload-byte-count, decimal ASCII>\n
//   <payload, exactly that many bytes>\n
//
// The length prefix makes framing independent of payload content (a JSON
// string may contain newlines only as \n escapes, but the reader never
// needs to know); the trailing newline keeps frames greppable and lets a
// human drive the stdio mode from a terminal. Payloads above
// kMaxFrameBytes are malformed — a desynchronized or hostile peer must
// not make the daemon buffer unboundedly.
//
// Request payload (one JSON object; unknown keys are errors, missing keys
// take the ficon_cli defaults so the same knobs mean the same thing):
//
//   {"id": 1, "op": "evaluate|anneal|cancel|ping|stats|shutdown",
//    "circuit"-independent engine knobs:
//    "alpha": 1, "beta": 1, "gamma": 0.4, "model": "ir|fixed|none",
//    "grid": 30, "engine": "polish|sp", "effort": 1.0,
//    "seed": "1", "seeds": 1, "expression": "0 1 V",
//    "target": 2}              // cancel only: id of the request to cancel
//
// "seed" is a decimal string (also accepted as a number): JSON numbers
// are doubles and cannot carry a full uint64 exactly.
//
// Reply payload:
//
//   {"id": 1, "status": "ok|rejected|cancelled|error",
//    "error": "...",           // status "error" only
//    "seconds": 0.25,          // evaluate/anneal only
//    "seeds": [{"seed": "42", "area": A, "wirelength": W,
//               "congestion": C, "cost": K, "seconds": S,
//               "cancelled": false, "representation": "0 1 V"}, ...],
//    "stats": {...}}           // op "stats" only
//
// Replies may arrive out of submission order (the session executors run
// concurrently); clients match on "id". Doubles are printed with %.17g so
// metrics round-trip bit-exactly — the e2e tests compare daemon replies
// against in-process runs with operator==.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "service/session.hpp"

namespace ficon::service {

/// Frames larger than this are malformed (16 MiB).
constexpr std::size_t kMaxFrameBytes = std::size_t{16} << 20;

enum class FrameStatus {
  kOk,
  kEof,        ///< clean end of stream before any frame byte
  kMalformed,  ///< bad length prefix, oversized, or truncated frame
};

/// Read one frame; on kOk `payload` holds the payload bytes.
FrameStatus read_frame(std::istream& in, std::string* payload);
void write_frame(std::ostream& out, std::string_view payload);

/// POSIX-fd flavors for socket transports (loop over partial reads and
/// writes; EINTR-safe). write_frame_fd returns false on write failure.
FrameStatus read_frame_fd(int fd, std::string* payload);
bool write_frame_fd(int fd, std::string_view payload);

enum class ProtocolOp { kEvaluate, kAnneal, kCancel, kPing, kStats,
                        kShutdown };

const char* to_string(ProtocolOp op);

/// One decoded request frame.
struct ProtocolRequest {
  std::int64_t id = 0;
  ProtocolOp op = ProtocolOp::kPing;
  Request request;          ///< evaluate/anneal payload
  std::int64_t target = 0;  ///< cancel: id of the request to cancel
};

/// @brief Decode a request payload. Returns false (and sets `error`) on
/// syntax errors, unknown keys/ops, or out-of-domain values; `out->id`
/// is still filled when the payload carried one, so the caller can
/// address the error reply.
bool decode_request(const std::string& payload, ProtocolRequest* out,
                    std::string* error);

std::string encode_request(std::int64_t id, const Request& request);
std::string encode_cancel(std::int64_t id, std::int64_t target);
std::string encode_control(std::int64_t id, ProtocolOp op);

std::string encode_reply(std::int64_t id, const Reply& reply);
std::string encode_error_reply(std::int64_t id, const std::string& message);
std::string encode_ok_reply(std::int64_t id);
std::string encode_stats_reply(std::int64_t id, const SessionStats& stats);

/// Client-side view of a reply frame.
struct DecodedReply {
  std::int64_t id = 0;
  std::string status;  ///< "ok|rejected|cancelled|error"
  std::string error;
  double seconds = 0.0;
  std::vector<SeedResult> seeds;
  SessionStats stats;  ///< op "stats" replies only
};

bool decode_reply(const std::string& payload, DecodedReply* out,
                  std::string* error);

/// @brief Canonical one-line result for CI diffing: op + circuit +
/// status + per-seed metrics, *excluding* wall-clock times and ids. The
/// one-shot `ficon_cli --json` path and the `--connect` client path both
/// print exactly this line, so `diff` proves bit-identity end to end.
std::string encode_result_line(const std::string& op,
                               const std::string& circuit,
                               const std::string& status,
                               const std::vector<SeedResult>& seeds);

}  // namespace ficon::service
