// Shape curves for slicing floorplans (Stockmeyer's algorithm).
//
// A shape curve is the set of non-dominated (width, height) realizations of
// a subtree: sorted by strictly increasing width and strictly decreasing
// height. Leaves (hard modules) have up to two points — the canonical
// orientation and its 90-degree rotation. Internal nodes combine children
// in O(|a| + |b|) with the classic two-pointer merge, so one slicing-tree
// evaluation costs O(m log m)-ish in practice — cheap enough to sit inside
// every annealing move, as the paper's floorplanner requires.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "util/check.hpp"

namespace ficon {

/// One realizable (w, h) of a subtree plus the child choices producing it.
struct ShapePoint {
  double w = 0.0;
  double h = 0.0;
  // For an internal node: indices into the left/right child curves.
  // For a leaf: a == 1 means the module is rotated (b unused).
  int a = -1;
  int b = -1;
};

class ShapeCurve {
 public:
  ShapeCurve() = default;

  /// Leaf curve for a hard module: {(w,h), (h,w)} pruned and sorted.
  static ShapeCurve for_module(const Module& module);

  /// Combine children under a vertical cut: widths add, heights max
  /// (left child placed left of right child).
  static ShapeCurve combine_vertical(const ShapeCurve& left,
                                     const ShapeCurve& right);

  /// Combine children under a horizontal cut: heights add, widths max
  /// (left child placed below right child).
  static ShapeCurve combine_horizontal(const ShapeCurve& left,
                                       const ShapeCurve& right);

  const std::vector<ShapePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const ShapePoint& operator[](std::size_t i) const { return points_[i]; }

  /// Index of the minimum-area point.
  std::size_t min_area_index() const;

  /// True iff points are sorted by strictly increasing w and strictly
  /// decreasing h (the non-dominance invariant); exposed for tests.
  bool invariant_holds() const;

 private:
  explicit ShapeCurve(std::vector<ShapePoint> pts) : points_(std::move(pts)) {}

  std::vector<ShapePoint> points_;
};

}  // namespace ficon
