// Slicing-tree packer: Polish expression -> concrete module placement.
//
// Bottom-up pass builds the shape curve of every node of the slicing tree
// encoded by the postfix expression; the minimum-area root realization is
// selected and a top-down pass assigns module rectangles (V-cut children
// bottom-aligned left/right; H-cut children left-aligned below/above).
#pragma once

#include "circuit/netlist.hpp"
#include "floorplan/polish.hpp"
#include "floorplan/shape.hpp"

namespace ficon {

/// Result of packing one Polish expression.
struct SlicingResult {
  Placement placement;  ///< chip rect at origin (0,0) + module rects
  double width = 0.0;
  double height = 0.0;
  double area = 0.0;
};

/// Packs Polish expressions for one netlist. Leaf shape curves are
/// precomputed once; pack() is called per annealing move.
class SlicingPacker {
 public:
  explicit SlicingPacker(const Netlist& netlist);

  /// Pack the expression; throws if it does not cover exactly the
  /// netlist's modules.
  SlicingResult pack(const PolishExpression& expr) const;

  std::size_t module_count() const { return leaf_curves_.size(); }

 private:
  std::vector<ShapeCurve> leaf_curves_;
};

/// True iff no two module rects overlap with positive area and all lie
/// within the chip; used by tests and debug assertions.
bool placement_is_legal(const Placement& placement);

}  // namespace ficon
