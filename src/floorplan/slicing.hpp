// Slicing-tree packer: Polish expression -> concrete module placement.
//
// Bottom-up pass builds the shape curve of every node of the slicing tree
// encoded by the postfix expression; the minimum-area root realization is
// selected and a top-down pass assigns module rectangles (V-cut children
// bottom-aligned left/right; H-cut children left-aligned below/above).
#pragma once

#include "circuit/netlist.hpp"
#include "floorplan/polish.hpp"
#include "floorplan/shape.hpp"

namespace ficon {

/// Result of packing one Polish expression.
struct SlicingResult {
  Placement placement;  ///< chip rect at origin (0,0) + module rects
  double width = 0.0;
  double height = 0.0;
  double area = 0.0;
};

/// Packs Polish expressions for one netlist. Leaf shape curves are
/// precomputed once; pack() / pack_cached() are called per annealing move.
class SlicingPacker {
 public:
  /// One node of the slicing tree in postfix order (node i corresponds to
  /// token i; children indices are determined by the operand/operator kind
  /// pattern alone). Public only so pack() and pack_cached() can share it.
  struct TreeNode {
    PolishToken token;
    int left = -1;  ///< node index, -1 for leaves
    int right = -1;
    ShapeCurve curve;
  };

  /// Counters of the incremental pack_cached() path.
  struct CacheStats {
    long long full_rebuilds = 0;      ///< structure changed (or cold cache)
    long long incremental_packs = 0;  ///< dirty-path recompute sufficed
    long long nodes_recomputed = 0;   ///< curves recombined incrementally
    long long nodes_total = 0;        ///< nodes seen by incremental packs
  };

  explicit SlicingPacker(const Netlist& netlist);

  /// Pack the expression; throws if it does not cover exactly the
  /// netlist's modules. Stateless and const — the reference evaluator.
  SlicingResult pack(const PolishExpression& expr) const;

  /// @brief Incremental pack: bit-identical to pack(), but reuses the
  /// shape curves computed for the previously packed expression.
  ///
  /// Wong-Liu moves perturb the expression locally: M1/M2 change tokens
  /// without changing the tree structure, so only the curves on the paths
  /// from the changed tokens to the root need recombining (the dominant
  /// cost of packing). The cache keys node identity on the postfix
  /// operand/operator kind pattern; when a move changes that pattern (M3)
  /// the whole tree is rebuilt, which is exactly what pack() does anyway.
  /// Curves of clean nodes are reused verbatim and dirty nodes recombine
  /// deterministic pure functions of their children, so cached and
  /// from-scratch packs are bit-identical (asserted by slicing_test).
  SlicingResult pack_cached(const PolishExpression& expr);

  /// @brief pack_cached() without materializing a fresh result: assembles
  /// into an internal buffer reused across calls and returns a reference
  /// to it — the annealing inner loop's zero-allocation variant.
  /// @return reference valid until the next pack_cached()/
  ///         pack_cached_ref() call on this packer.
  const SlicingResult& pack_cached_ref(const PolishExpression& expr);

  /// Drop the cached tree; the next pack_cached() rebuilds from scratch.
  void invalidate_cache() { cache_valid_ = false; }

  const CacheStats& cache_stats() const { return cache_stats_; }

  std::size_t module_count() const { return leaf_curves_.size(); }

 private:
  void build_nodes(const std::vector<PolishToken>& tokens,
                   std::vector<TreeNode>& nodes, int& root) const;
  void assemble_into(const std::vector<TreeNode>& nodes, int root,
                     SlicingResult& result) const;
  SlicingResult assemble(const std::vector<TreeNode>& nodes, int root) const;

  std::vector<ShapeCurve> leaf_curves_;
  // pack_cached() state: the previous expression's tree and curves.
  bool cache_valid_ = false;
  std::vector<TreeNode> cache_nodes_;
  int cache_root_ = -1;
  std::vector<char> dirty_;  ///< per-node scratch for the diff pass
  SlicingResult cache_result_;  ///< pack_cached_ref() output buffer
  CacheStats cache_stats_;
};

/// True iff no two module rects overlap with positive area and all lie
/// within the chip; used by tests and debug assertions.
bool placement_is_legal(const Placement& placement);

}  // namespace ficon
