#include "floorplan/shape.hpp"

#include <algorithm>
#include <cmath>

namespace ficon {

ShapeCurve ShapeCurve::for_module(const Module& module) {
  std::vector<ShapePoint> pts;
  if (module.soft) {
    // Soft module: constant area, aspect within [min, max]. Sample the
    // range geometrically — the packer interpolates the rest by choosing
    // among samples. All samples are mutually non-dominated (equal area).
    constexpr int kSamples = 9;
    const double area = module.area();
    const double lo = std::log(module.min_aspect);
    const double hi = std::log(module.max_aspect);
    const int n = module.min_aspect == module.max_aspect ? 1 : kSamples;
    for (int i = 0; i < n; ++i) {
      const double t = n == 1 ? 0.5 : static_cast<double>(i) / (n - 1);
      const double aspect = std::exp(lo + t * (hi - lo));
      const double w = std::sqrt(area * aspect);
      // a == 0: soft realizations never transpose pin offsets.
      pts.push_back(ShapePoint{w, area / w, 0, -1});
    }
  } else if (module.width == module.height) {
    pts.push_back(ShapePoint{module.width, module.height, 0, -1});
  } else {
    const double lo = std::min(module.width, module.height);
    const double hi = std::max(module.width, module.height);
    // Sorted by increasing width: (lo, hi) first. a == 1 marks rotation.
    pts.push_back(ShapePoint{lo, hi, module.width == lo ? 0 : 1, -1});
    pts.push_back(ShapePoint{hi, lo, module.width == hi ? 0 : 1, -1});
  }
  return ShapeCurve(std::move(pts));
}

ShapeCurve ShapeCurve::combine_vertical(const ShapeCurve& left,
                                        const ShapeCurve& right) {
  FICON_REQUIRE(!left.empty() && !right.empty(), "empty child curve");
  std::vector<ShapePoint> pts;
  pts.reserve(left.size() + right.size());
  std::size_t i = 0, j = 0;
  while (true) {
    const ShapePoint& a = left[i];
    const ShapePoint& b = right[j];
    pts.push_back(ShapePoint{a.w + b.w, std::max(a.h, b.h),
                             static_cast<int>(i), static_cast<int>(j)});
    // Advance the taller (binding) side; a tie advances both. Stop when the
    // binding side has no taller-to-shorter step left.
    const bool advance_left = a.h >= b.h;
    const bool advance_right = b.h >= a.h;
    if ((advance_left && i + 1 >= left.size()) ||
        (advance_right && j + 1 >= right.size())) {
      break;
    }
    if (advance_left) ++i;
    if (advance_right) ++j;
  }
  return ShapeCurve(std::move(pts));
}

ShapeCurve ShapeCurve::combine_horizontal(const ShapeCurve& left,
                                          const ShapeCurve& right) {
  FICON_REQUIRE(!left.empty() && !right.empty(), "empty child curve");
  // Symmetric to the vertical merge with the roles of w and h exchanged:
  // curves are sorted by increasing w (decreasing h), so we walk from the
  // END (largest h / smallest w) toward the front, adding heights and
  // maxing widths, and emit in order of increasing combined width.
  std::vector<ShapePoint> pts;
  pts.reserve(left.size() + right.size());
  std::size_t i = left.size() - 1, j = right.size() - 1;
  while (true) {
    const ShapePoint& a = left[i];
    const ShapePoint& b = right[j];
    pts.push_back(ShapePoint{std::max(a.w, b.w), a.h + b.h,
                             static_cast<int>(i), static_cast<int>(j)});
    const bool advance_left = a.w >= b.w;    // binding (wider) side
    const bool advance_right = b.w >= a.w;
    if ((advance_left && i == 0) || (advance_right && j == 0)) break;
    if (advance_left) --i;
    if (advance_right) --j;
  }
  // Emitted with decreasing width; restore the increasing-width invariant.
  std::reverse(pts.begin(), pts.end());
  return ShapeCurve(std::move(pts));
}

std::size_t ShapeCurve::min_area_index() const {
  FICON_REQUIRE(!points_.empty(), "empty curve");
  std::size_t best = 0;
  double best_area = points_[0].w * points_[0].h;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double area = points_[i].w * points_[i].h;
    if (area < best_area) {
      best_area = area;
      best = i;
    }
  }
  return best;
}

bool ShapeCurve::invariant_holds() const {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (!(points_[i].w > points_[i - 1].w && points_[i].h < points_[i - 1].h)) {
      return false;
    }
  }
  return true;
}

}  // namespace ficon
