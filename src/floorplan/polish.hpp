// Normalized Polish expressions (Wong & Liu, DAC'86) — the floorplan
// representation used by the paper's host simulated-annealing floorplanner.
//
// A slicing floorplan of m modules is a postfix expression over operand
// tokens 0..m-1 and the cut operators H and V:
//   * V ("vertical cut")  : left child placed left of right child —
//                           widths add, heights max,
//   * H ("horizontal cut"): left child placed below right child —
//                           heights add, widths max.
//
// An expression is *normalized* iff no two consecutive operators are equal
// (skewed slicing tree), which makes the representation of each slicing
// structure unique. Validity additionally requires the balloting property:
// every prefix contains strictly more operands than operators.
//
// The three neighbourhood moves of Wong-Liu:
//   M1 — swap two operands adjacent in the operand subsequence,
//   M2 — complement every operator in a maximal operator chain,
//   M3 — swap an adjacent operand/operator pair (kept only if the result
//        is still a valid normalized expression).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ficon {

/// One token of a Polish expression.
struct PolishToken {
  // value >= 0: operand (module index). kH / kV: operators.
  static constexpr int kH = -1;
  static constexpr int kV = -2;
  int value = 0;

  bool is_operand() const { return value >= 0; }
  bool is_operator() const { return value < 0; }
  friend bool operator==(const PolishToken&, const PolishToken&) = default;
};

class PolishExpression {
 public:
  PolishExpression() = default;

  /// Initial expression for m modules: modules joined by alternating V/H
  /// operators ("0 1 V 2 H 3 V ...") — a roughly square spiral packing.
  static PolishExpression initial(int module_count);

  /// Build from explicit tokens; throws if invalid or non-normalized.
  explicit PolishExpression(std::vector<PolishToken> tokens);

  const std::vector<PolishToken>& tokens() const { return tokens_; }
  int module_count() const { return operand_count_; }

  /// True iff tokens form a valid postfix expression (balloting property,
  /// exactly n-1 operators for n operands) over each module exactly once.
  static bool is_valid(const std::vector<PolishToken>& tokens);

  /// True iff additionally no two consecutive operators are equal.
  static bool is_normalized(const std::vector<PolishToken>& tokens);

  /// Apply a uniformly chosen M1/M2/M3 move. M3 candidates that would break
  /// validity are rejected and resampled (bounded retries); returns the
  /// move kind applied (1..3) or 0 if no move was possible.
  int random_move(Rng& rng);

  /// Individual moves, exposed for tests. Each returns false (and leaves
  /// the expression unchanged) if the specific candidate is inapplicable.
  bool move_swap_operands(std::size_t operand_pos, Rng* = nullptr);
  bool move_complement_chain(std::size_t chain_index);
  bool move_swap_operand_operator(std::size_t token_index);

  /// Number of maximal operator chains (M2 candidates).
  std::size_t chain_count() const;

  std::string to_string() const;

  friend bool operator==(const PolishExpression&,
                         const PolishExpression&) = default;

 private:
  void rebuild_index();

  std::vector<PolishToken> tokens_;
  std::vector<std::size_t> operand_positions_;
  int operand_count_ = 0;
};

}  // namespace ficon
