#include "floorplan/polish.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ficon {

PolishExpression PolishExpression::initial(int module_count) {
  FICON_REQUIRE(module_count >= 1, "need at least one module");
  std::vector<PolishToken> tokens;
  tokens.reserve(static_cast<std::size_t>(2 * module_count - 1));
  tokens.push_back(PolishToken{0});
  for (int m = 1; m < module_count; ++m) {
    tokens.push_back(PolishToken{m});
    tokens.push_back(PolishToken{m % 2 == 1 ? PolishToken::kV : PolishToken::kH});
  }
  return PolishExpression(std::move(tokens));
}

PolishExpression::PolishExpression(std::vector<PolishToken> tokens)
    : tokens_(std::move(tokens)) {
  FICON_REQUIRE(is_valid(tokens_), "invalid Polish expression");
  FICON_REQUIRE(is_normalized(tokens_), "expression not normalized");
  rebuild_index();
}

void PolishExpression::rebuild_index() {
  operand_positions_.clear();
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].is_operand()) operand_positions_.push_back(i);
  }
  operand_count_ = static_cast<int>(operand_positions_.size());
}

bool PolishExpression::is_valid(const std::vector<PolishToken>& tokens) {
  if (tokens.empty()) return false;
  int operands = 0;
  int operators = 0;
  std::vector<bool> seen;
  for (const PolishToken& t : tokens) {
    if (t.is_operand()) {
      // A valid expression uses each module index 0..n-1 exactly once, so
      // any operand >= the token count is invalid. Rejecting it *before*
      // the resize keeps hostile inputs (e.g. a fuzzer feeding INT_MAX)
      // from requesting a gigabyte-sized scratch vector.
      if (static_cast<std::size_t>(t.value) >= tokens.size()) return false;
      if (t.value >= static_cast<int>(seen.size())) {
        seen.resize(static_cast<std::size_t>(t.value) + 1, false);
      }
      if (seen[static_cast<std::size_t>(t.value)]) return false;  // repeat
      seen[static_cast<std::size_t>(t.value)] = true;
      ++operands;
    } else {
      if (t.value != PolishToken::kH && t.value != PolishToken::kV) return false;
      ++operators;
      // Balloting property: operators < operands at every prefix.
      if (operators >= operands) return false;
    }
  }
  if (operators != operands - 1) return false;
  // Every module index 0..n-1 must appear exactly once.
  return static_cast<int>(seen.size()) == operands &&
         std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

bool PolishExpression::is_normalized(const std::vector<PolishToken>& tokens) {
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i].is_operator() && tokens[i - 1].is_operator() &&
        tokens[i].value == tokens[i - 1].value) {
      return false;
    }
  }
  return true;
}

bool PolishExpression::move_swap_operands(std::size_t operand_pos, Rng*) {
  if (operand_pos + 1 >= operand_positions_.size()) return false;
  std::swap(tokens_[operand_positions_[operand_pos]],
            tokens_[operand_positions_[operand_pos + 1]]);
  return true;  // M1 preserves structure: always valid and normalized
}

std::size_t PolishExpression::chain_count() const {
  std::size_t chains = 0;
  bool in_chain = false;
  for (const PolishToken& t : tokens_) {
    if (t.is_operator()) {
      if (!in_chain) ++chains;
      in_chain = true;
    } else {
      in_chain = false;
    }
  }
  return chains;
}

bool PolishExpression::move_complement_chain(std::size_t chain_index) {
  std::size_t chains = 0;
  bool in_chain = false;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].is_operator()) {
      if (!in_chain) {
        if (chains == chain_index) {
          // Complement the maximal chain starting here. A normalized chain
          // alternates H/V, so its complement alternates too.
          for (std::size_t j = i; j < tokens_.size() && tokens_[j].is_operator();
               ++j) {
            tokens_[j].value = tokens_[j].value == PolishToken::kH
                                   ? PolishToken::kV
                                   : PolishToken::kH;
          }
          return true;
        }
        ++chains;
      }
      in_chain = true;
    } else {
      in_chain = false;
    }
  }
  return false;
}

bool PolishExpression::move_swap_operand_operator(std::size_t token_index) {
  if (token_index + 1 >= tokens_.size()) return false;
  const bool pair_mixed = tokens_[token_index].is_operand() !=
                          tokens_[token_index + 1].is_operand();
  if (!pair_mixed) return false;
  std::swap(tokens_[token_index], tokens_[token_index + 1]);
  if (is_valid(tokens_) && is_normalized(tokens_)) {
    rebuild_index();
    return true;
  }
  std::swap(tokens_[token_index], tokens_[token_index + 1]);  // undo
  return false;
}

int PolishExpression::random_move(Rng& rng) {
  FICON_ASSERT(operand_count_ >= 1, "empty expression");
  if (operand_count_ == 1) return 0;  // single module: no moves exist
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int kind = rng.uniform_int(1, 3);
    switch (kind) {
      case 1: {
        const std::size_t pos = rng.index(operand_positions_.size() - 1);
        if (move_swap_operands(pos)) return 1;
        break;
      }
      case 2: {
        const std::size_t chains = chain_count();
        if (chains > 0 && move_complement_chain(rng.index(chains))) return 2;
        break;
      }
      case 3: {
        const std::size_t idx = rng.index(tokens_.size() - 1);
        if (move_swap_operand_operator(idx)) return 3;
        break;
      }
      default:
        break;
    }
  }
  // Fall back to the always-applicable M1 so SA never stalls.
  const std::size_t pos = rng.index(operand_positions_.size() - 1);
  move_swap_operands(pos);
  return 1;
}

std::string PolishExpression::to_string() const {
  std::string out;
  out.reserve(tokens_.size() * 3);
  for (const PolishToken& t : tokens_) {
    if (!out.empty()) out += ' ';
    if (t.is_operand()) {
      out += std::to_string(t.value);
    } else {
      out += t.value == PolishToken::kH ? 'H' : 'V';
    }
  }
  return out;
}

}  // namespace ficon
