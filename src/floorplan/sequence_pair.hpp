// Sequence-pair floorplan representation (Murata et al., ICCAD'95).
//
// The paper positions its congestion model as embeddable "into any general
// floorplanners"; this second, non-slicing representation demonstrates
// that. A sequence pair (G+, G-) of module permutations encodes relative
// positions: module b is RIGHT of a iff a precedes b in both sequences,
// and ABOVE a iff a follows b... more precisely, with pa/na the positions
// of a in G+/G-:
//   pa < pb and na < nb  =>  a left of b,
//   pa > pb and na < nb  =>  a below b.
// Coordinates follow from longest weighted paths in the implied constraint
// graphs (computed here with the O(n^2) DP — n <= 50 for MCNC).
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace ficon {

/// The annealing state: two permutations plus per-module rotation flags.
class SequencePair {
 public:
  /// Identity pair: both sequences 0..n-1 (a single row), nothing rotated.
  static SequencePair initial(int module_count);

  SequencePair(std::vector<int> positive, std::vector<int> negative,
               std::vector<bool> rotated);

  const std::vector<int>& positive() const { return positive_; }
  const std::vector<int>& negative() const { return negative_; }
  const std::vector<bool>& rotated() const { return rotated_; }
  int module_count() const { return static_cast<int>(positive_.size()); }

  /// Apply a random move: 1 = swap two modules in G+ only, 2 = swap two
  /// modules in both sequences, 3 = toggle a module's rotation. Returns the
  /// move kind, or 0 for a single-module pair.
  int random_move(Rng& rng);

  /// True iff both sequences are permutations of 0..n-1 of equal length.
  static bool is_valid(const std::vector<int>& positive,
                       const std::vector<int>& negative);

  std::string to_string() const;

  friend bool operator==(const SequencePair&, const SequencePair&) = default;

 private:
  std::vector<int> positive_;
  std::vector<int> negative_;
  std::vector<bool> rotated_;
};

/// Packs sequence pairs for one netlist; pack() is called per SA move.
class SequencePairPacker {
 public:
  explicit SequencePairPacker(const Netlist& netlist);

  /// Compute the placement implied by the pair (lower-left compaction).
  /// Returns the same result type as the slicing packer so downstream
  /// evaluation is representation-agnostic.
  struct Result {
    Placement placement;
    double width = 0.0;
    double height = 0.0;
    double area = 0.0;
  };
  Result pack(const SequencePair& pair) const;

  std::size_t module_count() const { return widths_.size(); }

 private:
  std::vector<double> widths_;
  std::vector<double> heights_;
};

}  // namespace ficon
