#include "floorplan/slicing.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace ficon {

SlicingPacker::SlicingPacker(const Netlist& netlist) {
  leaf_curves_.reserve(netlist.module_count());
  for (const Module& m : netlist.modules()) {
    leaf_curves_.push_back(ShapeCurve::for_module(m));
  }
  FICON_REQUIRE(!leaf_curves_.empty(), "netlist has no modules");
}

void SlicingPacker::build_nodes(const std::vector<PolishToken>& tokens,
                                std::vector<TreeNode>& nodes,
                                int& root) const {
  // Bottom-up: build nodes and shape curves with an explicit stack.
  nodes.clear();
  nodes.reserve(tokens.size());
  std::vector<int> stack;
  stack.reserve(tokens.size());
  for (const PolishToken& t : tokens) {
    TreeNode node;
    node.token = t;
    if (t.is_operand()) {
      node.curve = leaf_curves_[static_cast<std::size_t>(t.value)];
    } else {
      FICON_ASSERT(stack.size() >= 2, "malformed expression");
      node.right = stack.back();
      stack.pop_back();
      node.left = stack.back();
      stack.pop_back();
      const ShapeCurve& lc =
          nodes[static_cast<std::size_t>(node.left)].curve;
      const ShapeCurve& rc =
          nodes[static_cast<std::size_t>(node.right)].curve;
      node.curve = t.value == PolishToken::kV
                       ? ShapeCurve::combine_vertical(lc, rc)
                       : ShapeCurve::combine_horizontal(lc, rc);
    }
    stack.push_back(static_cast<int>(nodes.size()));
    nodes.push_back(std::move(node));
  }
  FICON_ASSERT(stack.size() == 1, "malformed expression");
  root = stack.back();
}

SlicingResult SlicingPacker::assemble(const std::vector<TreeNode>& nodes,
                                      int root) const {
  SlicingResult result;
  assemble_into(nodes, root, result);
  return result;
}

/// Assembles into `result`, reusing its vectors' capacity. Every module
/// rect and rotation flag is assigned exactly once (the expression covers
/// every module), so stale contents of a reused result never survive.
void SlicingPacker::assemble_into(const std::vector<TreeNode>& nodes, int root,
                                  SlicingResult& result) const {
  const ShapeCurve& root_curve = nodes[static_cast<std::size_t>(root)].curve;
  const std::size_t root_choice = root_curve.min_area_index();
  result.width = root_curve[root_choice].w;
  result.height = root_curve[root_choice].h;
  result.area = result.width * result.height;
  result.placement.chip = Rect{0.0, 0.0, result.width, result.height};
  result.placement.module_rects.resize(leaf_curves_.size());
  result.placement.rotated.resize(leaf_curves_.size(), false);

  // Top-down: assign each node its chosen realization and position.
  struct Assignment {
    int node;
    std::size_t choice;
    double x, y;
  };
  std::vector<Assignment> todo;
  todo.push_back(Assignment{root, root_choice, 0.0, 0.0});
  while (!todo.empty()) {
    const Assignment a = todo.back();
    todo.pop_back();
    const TreeNode& node = nodes[static_cast<std::size_t>(a.node)];
    const ShapePoint& pt = node.curve[a.choice];
    if (node.token.is_operand()) {
      const auto m = static_cast<std::size_t>(node.token.value);
      result.placement.module_rects[m] =
          Rect::from_size(Point{a.x, a.y}, pt.w, pt.h);
      result.placement.rotated[m] = pt.a == 1;
      continue;
    }
    const auto lc = static_cast<std::size_t>(pt.a);
    const auto rc = static_cast<std::size_t>(pt.b);
    const ShapePoint& lp =
        nodes[static_cast<std::size_t>(node.left)].curve[lc];
    if (node.token.value == PolishToken::kV) {
      // Left child at (x, y), right child to its right; bottom-aligned.
      todo.push_back(Assignment{node.left, lc, a.x, a.y});
      todo.push_back(Assignment{node.right, rc, a.x + lp.w, a.y});
    } else {
      // Left child at (x, y), right child above it; left-aligned.
      todo.push_back(Assignment{node.left, lc, a.x, a.y});
      todo.push_back(Assignment{node.right, rc, a.x, a.y + lp.h});
    }
  }
}

SlicingResult SlicingPacker::pack(const PolishExpression& expr) const {
  FICON_REQUIRE(static_cast<std::size_t>(expr.module_count()) ==
                    leaf_curves_.size(),
                "expression does not match netlist module count");
  std::vector<TreeNode> nodes;
  int root = -1;
  build_nodes(expr.tokens(), nodes, root);
  return assemble(nodes, root);
}

SlicingResult SlicingPacker::pack_cached(const PolishExpression& expr) {
  return pack_cached_ref(expr);
}

const SlicingResult& SlicingPacker::pack_cached_ref(
    const PolishExpression& expr) {
  FICON_REQUIRE(static_cast<std::size_t>(expr.module_count()) ==
                    leaf_curves_.size(),
                "expression does not match netlist module count");
  const std::vector<PolishToken>& tokens = expr.tokens();

  // The cached tree is reusable iff the operand/operator *kind pattern*
  // is unchanged: child indices in postfix order depend on that pattern
  // alone, never on which operand or which operator sits at a position.
  bool same_structure = cache_valid_ && cache_nodes_.size() == tokens.size();
  if (same_structure) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (cache_nodes_[i].token.is_operand() != tokens[i].is_operand()) {
        same_structure = false;
        break;
      }
    }
  }

  if (!same_structure) {
    build_nodes(tokens, cache_nodes_, cache_root_);
    cache_valid_ = true;
    ++cache_stats_.full_rebuilds;
    obs::count(obs::Counter::kPackCacheFullRebuilds);
    assemble_into(cache_nodes_, cache_root_, cache_result_);
    return cache_result_;
  }

  // Diff pass in postfix order: a node is dirty iff its own token changed
  // or either child is dirty; only dirty curves are recombined. Clean
  // curves are reused bit-for-bit and recombination is a pure function of
  // the children, so the result is identical to a full rebuild.
  ++cache_stats_.incremental_packs;
  cache_stats_.nodes_total += static_cast<long long>(tokens.size());
  obs::count(obs::Counter::kPackCacheIncremental);
  obs::count(obs::Counter::kPackCacheNodesTotal,
             static_cast<long long>(tokens.size()));
  const long long recomputed_before = cache_stats_.nodes_recomputed;
  dirty_.assign(tokens.size(), 0);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const PolishToken& t = tokens[i];
    TreeNode& node = cache_nodes_[i];
    bool d = !(node.token == t);
    if (t.is_operator()) {
      d = d || dirty_[static_cast<std::size_t>(node.left)] != 0 ||
          dirty_[static_cast<std::size_t>(node.right)] != 0;
    }
    if (d) {
      if (t.is_operand()) {
        node.curve = leaf_curves_[static_cast<std::size_t>(t.value)];
      } else {
        const ShapeCurve& lc =
            cache_nodes_[static_cast<std::size_t>(node.left)].curve;
        const ShapeCurve& rc =
            cache_nodes_[static_cast<std::size_t>(node.right)].curve;
        node.curve = t.value == PolishToken::kV
                         ? ShapeCurve::combine_vertical(lc, rc)
                         : ShapeCurve::combine_horizontal(lc, rc);
      }
      node.token = t;
      ++cache_stats_.nodes_recomputed;
    }
    dirty_[i] = d ? 1 : 0;
  }
  obs::count(obs::Counter::kPackCacheNodesRecomputed,
             cache_stats_.nodes_recomputed - recomputed_before);
  assemble_into(cache_nodes_, cache_root_, cache_result_);
  return cache_result_;
}

bool placement_is_legal(const Placement& placement) {
  const std::size_t n = placement.module_rects.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Rect& a = placement.module_rects[i];
    if (!a.valid() || !placement.chip.contains(a)) return false;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (a.overlaps_interior(placement.module_rects[j])) return false;
    }
  }
  return true;
}

}  // namespace ficon
