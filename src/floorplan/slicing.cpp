#include "floorplan/slicing.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ficon {
namespace {

/// One node of the slicing tree in postfix order.
struct Node {
  PolishToken token;
  int left = -1;   ///< node index, -1 for leaves
  int right = -1;
  ShapeCurve curve;
};

}  // namespace

SlicingPacker::SlicingPacker(const Netlist& netlist) {
  leaf_curves_.reserve(netlist.module_count());
  for (const Module& m : netlist.modules()) {
    leaf_curves_.push_back(ShapeCurve::for_module(m));
  }
  FICON_REQUIRE(!leaf_curves_.empty(), "netlist has no modules");
}

SlicingResult SlicingPacker::pack(const PolishExpression& expr) const {
  FICON_REQUIRE(static_cast<std::size_t>(expr.module_count()) ==
                    leaf_curves_.size(),
                "expression does not match netlist module count");

  // Bottom-up: build nodes and shape curves with an explicit stack.
  std::vector<Node> nodes;
  nodes.reserve(expr.tokens().size());
  std::vector<int> stack;
  stack.reserve(expr.tokens().size());
  for (const PolishToken& t : expr.tokens()) {
    Node node;
    node.token = t;
    if (t.is_operand()) {
      node.curve = leaf_curves_[static_cast<std::size_t>(t.value)];
    } else {
      FICON_ASSERT(stack.size() >= 2, "malformed expression");
      node.right = stack.back();
      stack.pop_back();
      node.left = stack.back();
      stack.pop_back();
      const ShapeCurve& lc = nodes[static_cast<std::size_t>(node.left)].curve;
      const ShapeCurve& rc = nodes[static_cast<std::size_t>(node.right)].curve;
      node.curve = t.value == PolishToken::kV
                       ? ShapeCurve::combine_vertical(lc, rc)
                       : ShapeCurve::combine_horizontal(lc, rc);
    }
    stack.push_back(static_cast<int>(nodes.size()));
    nodes.push_back(std::move(node));
  }
  FICON_ASSERT(stack.size() == 1, "malformed expression");
  const int root = stack.back();

  SlicingResult result;
  const ShapeCurve& root_curve = nodes[static_cast<std::size_t>(root)].curve;
  const std::size_t root_choice = root_curve.min_area_index();
  result.width = root_curve[root_choice].w;
  result.height = root_curve[root_choice].h;
  result.area = result.width * result.height;
  result.placement.chip = Rect{0.0, 0.0, result.width, result.height};
  result.placement.module_rects.resize(leaf_curves_.size());
  result.placement.rotated.resize(leaf_curves_.size(), false);

  // Top-down: assign each node its chosen realization and position.
  struct Assignment {
    int node;
    std::size_t choice;
    double x, y;
  };
  std::vector<Assignment> todo;
  todo.push_back(Assignment{root, root_choice, 0.0, 0.0});
  while (!todo.empty()) {
    const Assignment a = todo.back();
    todo.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(a.node)];
    const ShapePoint& pt = node.curve[a.choice];
    if (node.token.is_operand()) {
      const auto m = static_cast<std::size_t>(node.token.value);
      result.placement.module_rects[m] =
          Rect::from_size(Point{a.x, a.y}, pt.w, pt.h);
      result.placement.rotated[m] = pt.a == 1;
      continue;
    }
    const auto lc = static_cast<std::size_t>(pt.a);
    const auto rc = static_cast<std::size_t>(pt.b);
    const ShapePoint& lp =
        nodes[static_cast<std::size_t>(node.left)].curve[lc];
    if (node.token.value == PolishToken::kV) {
      // Left child at (x, y), right child to its right; bottom-aligned.
      todo.push_back(Assignment{node.left, lc, a.x, a.y});
      todo.push_back(Assignment{node.right, rc, a.x + lp.w, a.y});
    } else {
      // Left child at (x, y), right child above it; left-aligned.
      todo.push_back(Assignment{node.left, lc, a.x, a.y});
      todo.push_back(Assignment{node.right, rc, a.x, a.y + lp.h});
    }
  }
  return result;
}

bool placement_is_legal(const Placement& placement) {
  const std::size_t n = placement.module_rects.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Rect& a = placement.module_rects[i];
    if (!a.valid() || !placement.chip.contains(a)) return false;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (a.overlaps_interior(placement.module_rects[j])) return false;
    }
  }
  return true;
}

}  // namespace ficon
