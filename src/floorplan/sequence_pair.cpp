#include "floorplan/sequence_pair.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace ficon {

SequencePair SequencePair::initial(int module_count) {
  FICON_REQUIRE(module_count >= 1, "need at least one module");
  std::vector<int> seq(static_cast<std::size_t>(module_count));
  std::iota(seq.begin(), seq.end(), 0);
  return SequencePair(seq, seq,
                      std::vector<bool>(static_cast<std::size_t>(module_count),
                                        false));
}

SequencePair::SequencePair(std::vector<int> positive, std::vector<int> negative,
                           std::vector<bool> rotated)
    : positive_(std::move(positive)),
      negative_(std::move(negative)),
      rotated_(std::move(rotated)) {
  FICON_REQUIRE(is_valid(positive_, negative_), "invalid sequence pair");
  FICON_REQUIRE(rotated_.size() == positive_.size(),
                "rotation flags do not match module count");
}

bool SequencePair::is_valid(const std::vector<int>& positive,
                            const std::vector<int>& negative) {
  if (positive.empty() || positive.size() != negative.size()) return false;
  const auto is_permutation = [](const std::vector<int>& seq) {
    std::vector<bool> seen(seq.size(), false);
    for (const int m : seq) {
      if (m < 0 || static_cast<std::size_t>(m) >= seq.size() ||
          seen[static_cast<std::size_t>(m)]) {
        return false;
      }
      seen[static_cast<std::size_t>(m)] = true;
    }
    return true;
  };
  return is_permutation(positive) && is_permutation(negative);
}

int SequencePair::random_move(Rng& rng) {
  const std::size_t n = positive_.size();
  if (n == 1) return 0;
  const int kind = rng.uniform_int(1, 3);
  switch (kind) {
    case 1: {
      const std::size_t i = rng.index(n);
      std::size_t j = rng.index(n - 1);
      if (j >= i) ++j;
      std::swap(positive_[i], positive_[j]);
      return 1;
    }
    case 2: {
      // Swap the same two MODULES in both sequences (positions differ).
      const int a = static_cast<int>(rng.index(n));
      int b = static_cast<int>(rng.index(n - 1));
      if (b >= a) ++b;
      const auto swap_in = [&](std::vector<int>& seq) {
        const auto ia = std::find(seq.begin(), seq.end(), a);
        const auto ib = std::find(seq.begin(), seq.end(), b);
        std::iter_swap(ia, ib);
      };
      swap_in(positive_);
      swap_in(negative_);
      return 2;
    }
    default: {
      const std::size_t m = rng.index(n);
      rotated_[m] = !rotated_[m];
      return 3;
    }
  }
}

std::string SequencePair::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < positive_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(positive_[i]);
  }
  out += " | ";
  for (std::size_t i = 0; i < negative_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(negative_[i]);
  }
  out += " | ";
  for (std::size_t i = 0; i < rotated_.size(); ++i) {
    out += rotated_[i] ? 'R' : '.';
  }
  out += ')';
  return out;
}

SequencePairPacker::SequencePairPacker(const Netlist& netlist) {
  widths_.reserve(netlist.module_count());
  heights_.reserve(netlist.module_count());
  for (const Module& m : netlist.modules()) {
    widths_.push_back(m.width);
    heights_.push_back(m.height);
  }
  FICON_REQUIRE(!widths_.empty(), "netlist has no modules");
}

SequencePairPacker::Result SequencePairPacker::pack(
    const SequencePair& pair) const {
  const std::size_t n = widths_.size();
  FICON_REQUIRE(static_cast<std::size_t>(pair.module_count()) == n,
                "sequence pair does not match netlist module count");

  // Position of each module in each sequence.
  std::vector<int> pos_p(n), pos_n(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos_p[static_cast<std::size_t>(pair.positive()[i])] = static_cast<int>(i);
    pos_n[static_cast<std::size_t>(pair.negative()[i])] = static_cast<int>(i);
  }
  const auto dim = [&](std::size_t m, bool height) {
    const bool rot = pair.rotated()[m];
    return height == rot ? widths_[m] : heights_[m];
  };

  // Longest-path DP in G- order. For x: module a is left of b iff a
  // precedes b in BOTH sequences; processing in G- order guarantees all
  // left-neighbours are placed. For y: a is below b iff a follows b in G+
  // but precedes it in G-.
  Result result;
  result.placement.module_rects.resize(n);
  result.placement.rotated.assign(pair.rotated().begin(),
                                  pair.rotated().end());
  std::vector<double> x(n, 0.0), y(n, 0.0);
  for (const int bi : pair.negative()) {
    const auto b = static_cast<std::size_t>(bi);
    double bx = 0.0, by = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == b || pos_n[a] > pos_n[b]) continue;  // a must precede in G-
      if (pos_p[a] < pos_p[b]) {
        bx = std::max(bx, x[a] + dim(a, false));  // a left of b
      } else {
        by = std::max(by, y[a] + dim(a, true));   // a below b
      }
    }
    x[b] = bx;
    y[b] = by;
    result.placement.module_rects[b] =
        Rect::from_size(Point{bx, by}, dim(b, false), dim(b, true));
    result.width = std::max(result.width, bx + dim(b, false));
    result.height = std::max(result.height, by + dim(b, true));
  }
  result.area = result.width * result.height;
  result.placement.chip = Rect{0.0, 0.0, result.width, result.height};
  return result;
}

}  // namespace ficon
