// Plain-text table formatting, shared by the experiment benches (rows in
// the same layout as the paper's Tables 1-5) and the obs/ trace
// summaries. Lives in util/ — the bottom layer — because both the
// observability layer and the experiment harness render through it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ficon {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal (e.g. fmt_fixed(1.2345, 2) == "1.23").
std::string fmt_fixed(double v, int precision);

/// Compact general formatting with `significant` digits.
std::string fmt_general(double v, int significant = 6);

/// Signed percentage with two decimals, e.g. "-4.68".
std::string fmt_percent(double fraction);

}  // namespace ficon
