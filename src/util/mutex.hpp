// Capability-annotated mutex primitives.
//
// `std::mutex` is invisible to clang's `-Wthread-safety` analysis (the
// standard library carries no capability attributes), so state guarded by
// a raw `std::mutex` is never actually checked. `ficon::Mutex` is a
// zero-overhead wrapper that *is* a capability: members declared
// `FICON_GUARDED_BY(mu_)` on a `ficon::Mutex mu_` get compile-time
// checking under the clang `analysis` CI job and compile identically
// everywhere else.
//
// Two locking idioms:
//  * `MutexLock lock(mu);` — RAII scope lock, fully tracked by the
//    analysis. Use it everywhere a plain critical section is enough.
//  * `std::unique_lock<Mutex> lock(mu);` — needed for condition-variable
//    waits (`std::condition_variable_any` works with any BasicLockable).
//    The analysis cannot see unique_lock's acquire/release (they happen
//    inside system headers), so follow the construction with
//    `mu.AssertHeld()` before touching guarded state, including inside
//    wait predicates (the predicate runs with the lock held).
#pragma once

#include <mutex>

#include "util/annotations.hpp"

namespace ficon {

/// Capability-annotated wrapper over std::mutex. BasicLockable, so it
/// composes with std::unique_lock and std::condition_variable_any.
class FICON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FICON_ACQUIRE() { mu_.lock(); }
  void unlock() FICON_RELEASE() { mu_.unlock(); }
  bool try_lock() FICON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declares to the analysis that this thread holds the mutex — the
  /// escape hatch for acquisitions made through std::unique_lock, which
  /// the analysis cannot observe. Purely a compile-time fact; generates
  /// no code.
  void AssertHeld() const FICON_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// RAII scope lock over `Mutex`, tracked by the thread-safety analysis.
class FICON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FICON_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FICON_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace ficon
