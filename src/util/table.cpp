#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace ficon {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FICON_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  FICON_REQUIRE(cells.size() == headers_.size(),
                "row width does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  const auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
  };
  rule();
  print_row(headers_);
  rule();
  for (const auto& row : rows_) print_row(row);
  rule();
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_general(double v, int significant) {
  std::ostringstream os;
  os.precision(significant);
  os << v;
  return os.str();
}

std::string fmt_percent(double fraction) {
  return fmt_fixed(fraction * 100.0, 2);
}

}  // namespace ficon
