// Small descriptive-statistics helpers used by experiment reporting and by
// the congestion cost extraction (top-k selection).
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace ficon {

/// Running mean / min / max / stddev accumulator.
class RunningStats {
 public:
  void add(double v) {
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    min_ = n_ == 1 ? v : std::min(min_, v);
    max_ = n_ == 1 ? v : std::max(max_, v);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

inline double mean_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

inline double min_of(std::span<const double> v) {
  FICON_REQUIRE(!v.empty(), "min_of over empty span");
  return *std::min_element(v.begin(), v.end());
}

inline double max_of(std::span<const double> v) {
  FICON_REQUIRE(!v.empty(), "max_of over empty span");
  return *std::max_element(v.begin(), v.end());
}

/// Mean of the `fraction` largest values (e.g. fraction = 0.10 gives the
/// paper's "average of the top 10% most congested grids"). At least one
/// element is always taken from a non-empty input.
inline double top_fraction_mean(std::vector<double> values, double fraction) {
  FICON_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction out of (0,1]");
  if (values.empty()) return 0.0;
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(fraction * static_cast<double>(values.size()))));
  std::nth_element(values.begin(), values.begin() + (k - 1), values.end(),
                   std::greater<>());
  return std::accumulate(values.begin(), values.begin() + k, 0.0) /
         static_cast<double>(k);
}

/// Pearson correlation of two equal-length series; 0 if either is constant.
inline double pearson(std::span<const double> a, std::span<const double> b) {
  FICON_REQUIRE(a.size() == b.size(), "series length mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace ficon
