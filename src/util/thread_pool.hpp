// Deterministic fork-join thread pool for the evaluation hot paths.
//
// Design constraints, in priority order:
//
//  1. **Bit-exact determinism across thread counts.** Every parallel
//     computation in ficon is expressed as a fixed set of independent
//     *blocks* whose count and boundaries depend only on the problem size
//     (never on the thread count), and whose results are reduced in block
//     order on the calling thread. Which worker executes which block is
//     scheduling noise; the reduced result is identical from
//     `FICON_THREADS=1` to `FICON_THREADS=64`.
//  2. **Cheap dispatch.** Congestion evaluation runs inside the annealing
//     inner loop, so a fork-join must not spawn threads. Workers are
//     long-lived `std::jthread`s parked on a condition variable; a
//     dispatch is one notify_all plus one atomic per block.
//  3. **Safe nesting.** The seed-sweep fans annealing runs out across the
//     pool, and each run calls the (also parallel) congestion models.
//     A `run()` issued from inside a pool task executes inline on the
//     calling thread instead of deadlocking on the pool — the outer
//     fan-out already owns all the parallelism.
//
// Sizing: `FICON_THREADS` (or `ThreadPool::set_global_threads()`), default
// `std::thread::hardware_concurrency()`. A pool of size 1 has no worker
// threads at all; every block runs inline on the caller.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/mutex.hpp"

namespace ficon {

/// @brief Fixed-size fork-join pool. One job at a time; blocks are handed
/// to workers through an atomic counter (dynamic load balancing), and the
/// caller participates in the work.
class ThreadPool {
 public:
  /// @param threads total worker count including the calling thread;
  ///   values < 1 are clamped to 1 (purely inline execution).
  explicit ThreadPool(int threads) : thread_count_(threads < 1 ? 1 : threads) {
    workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
    for (int i = 0; i < thread_count_ - 1; ++i) {
      workers_.emplace_back([this, i](std::stop_token stop) {
        obs::set_thread_label("worker-" + std::to_string(i));
        worker_loop(stop);
      });
    }
  }

  ~ThreadPool() {
    for (std::jthread& w : workers_) w.request_stop();
    cv_.notify_all();
    // std::jthread joins on destruction.
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a run (workers + caller).
  int threads() const { return thread_count_; }

  /// @brief Execute `fn(b)` for every block b in [0, blocks) and wait for
  /// completion. Blocks must be independent; any deterministic reduction
  /// over their results is the caller's job (do it in block order).
  ///
  /// Runs inline — preserving block order 0..blocks-1 — when the pool has
  /// one thread, when there is a single block, or when called from inside
  /// another run() (nested parallelism collapses to the outer level).
  /// The first exception thrown by a block is rethrown on the caller after
  /// all blocks finished.
  void run(int blocks, const std::function<void(int)>& fn) {
    FICON_REQUIRE(blocks >= 0, "negative block count");
    if (blocks == 0) return;
    if (blocks == 1 || thread_count_ == 1 || inside_run()) {
      obs::count(obs::Counter::kPoolInlineBlocks, blocks);
      for (int b = 0; b < blocks; ++b) fn(b);
      return;
    }

    obs::count(obs::Counter::kPoolJobs);
    obs::count(obs::Counter::kPoolBlocks, blocks);
    Job job;
    job.fn = &fn;
    job.blocks = blocks;
    if (obs::trace_enabled()) job.dispatch_ns = steady_now_ns();
    {
      const MutexLock lock(mu_);
      job_ = &job;
      ++epoch_;
    }
    cv_.notify_all();

    {
      const InsideRunGuard guard;
      drain(job);  // the caller is a full participant
    }
    {
      // Wait until every block finished AND every worker that picked this
      // job up has left drain() — only then is the stack-allocated Job
      // safe to destroy.
      std::unique_lock<Mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return job.done.load() == blocks && job.active.load() == 0;
      });
      mu_.AssertHeld();  // unique_lock acquisitions are invisible to -Wthread-safety
      job_ = nullptr;
    }
    {
      const MutexLock lock(job.error_mu);
      if (job.error) std::rethrow_exception(job.error);
    }
  }

  /// @brief Process-wide pool, lazily sized from `FICON_THREADS` (default:
  /// hardware_concurrency) on first use.
  static ThreadPool& global() {
    const MutexLock lock(global_mu());
    std::unique_ptr<ThreadPool>& pool = global_slot();
    if (!pool) pool = std::make_unique<ThreadPool>(env_threads());
    return *pool;
  }

  /// @brief Rebuild the global pool with an explicit size (benches and the
  /// determinism tests sweep 1/2/4/8). Must not race with a concurrent
  /// global() run; call it from the main thread between evaluations.
  static void set_global_threads(int threads) {
    const MutexLock lock(global_mu());
    global_slot() = std::make_unique<ThreadPool>(threads);
  }

  /// Thread count `FICON_THREADS` resolves to (without touching the pool).
  static int env_threads() {
    const int requested = env_int("FICON_THREADS", 0);
    if (requested >= 1) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  /// @brief RAII scope that routes every run() issued from this thread to
  /// the inline path — exactly what happens to nested run() calls inside
  /// a pool task.
  ///
  /// For threads the pool does not know about (the service layer's
  /// request executors) this is the safe way to coexist with the global
  /// pool: the pool runs one fork-join job at a time, so dispatching from
  /// several independent threads concurrently is not part of its
  /// contract. An executor that owns its level of parallelism (one
  /// request per executor, like the seed sweep's one-run-per-block)
  /// wraps its work in an InlineScope and nested evaluations run inline,
  /// deterministically, on the executor itself. Restores the previous
  /// state, so nesting is safe.
  class InlineScope {
   public:
    InlineScope() : previous_(inside_run()) { inside_run() = true; }
    ~InlineScope() { inside_run() = previous_; }
    InlineScope(const InlineScope&) = delete;
    InlineScope& operator=(const InlineScope&) = delete;

   private:
    const bool previous_;
  };

 private:
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int blocks = 0;
    long long dispatch_ns = 0;   ///< dispatch time (telemetry; 0 = untraced)
    std::atomic<int> next{0};    ///< next block to claim
    std::atomic<int> done{0};    ///< blocks finished
    std::atomic<int> active{0};  ///< workers currently inside drain()
    Mutex error_mu;
    std::exception_ptr error FICON_GUARDED_BY(error_mu);
  };

  static long long steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// True while this thread executes blocks of some run() — used to route
  /// nested run() calls to the inline path.
  static bool& inside_run() {
    thread_local bool inside = false;
    return inside;
  }

  struct InsideRunGuard {
    InsideRunGuard() { inside_run() = true; }
    ~InsideRunGuard() { inside_run() = false; }
  };

  void drain(Job& job) {
    while (true) {
      const int b = job.next.fetch_add(1, std::memory_order_relaxed);
      if (b >= job.blocks) return;
      obs::count(obs::Counter::kPoolTasks);
      try {
        (*job.fn)(b);
      } catch (...) {
        const MutexLock lock(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.blocks) {
        const MutexLock lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop(std::stop_token stop) {
    const InsideRunGuard guard;  // nested run() inside a task stays inline
    std::uint64_t seen = 0;
    while (true) {
      Job* job = nullptr;
      {
        std::unique_lock<Mutex> lock(mu_);
        cv_.wait(lock, stop, [&] {
          mu_.AssertHeld();  // wait predicates run with the lock held
          return epoch_ != seen;
        });
        if (stop.stop_requested()) return;
        mu_.AssertHeld();  // unique_lock is invisible to -Wthread-safety
        seen = epoch_;
        job = job_;
        // Register while holding mu_, i.e. while job_ is provably alive:
        // run() cannot clear job_ (and destroy the Job) until active
        // returns to zero.
        if (job != nullptr) job->active.fetch_add(1, std::memory_order_relaxed);
      }
      if (job != nullptr) {
        // Queue wait: dispatch-to-pickup latency, attributed to this
        // worker's sink (dispatch_ns is only stamped while tracing).
        if (job->dispatch_ns != 0 && obs::trace_enabled()) {
          const long long wait = steady_now_ns() - job->dispatch_ns;
          obs::count(obs::Counter::kPoolQueueWaitNs,
                     wait > 0 ? wait : 0);
        }
        drain(*job);
        const MutexLock lock(mu_);
        job->active.fetch_sub(1, std::memory_order_relaxed);
        done_cv_.notify_all();
      }
    }
  }

  static Mutex& global_mu() {
    static Mutex mu;
    return mu;
  }
  static std::unique_ptr<ThreadPool>& global_slot() {
    static std::unique_ptr<ThreadPool> pool;
    return pool;
  }

  const int thread_count_;
  Mutex mu_;
  std::condition_variable_any cv_;
  std::condition_variable_any done_cv_;
  std::uint64_t epoch_ FICON_GUARDED_BY(mu_) = 0;
  Job* job_ FICON_GUARDED_BY(mu_) = nullptr;
  std::vector<std::jthread> workers_;
};

/// @brief Number of work blocks for `items` independent work units.
///
/// Deterministic in the problem size ONLY — this is what makes parallel
/// reductions reproducible across thread counts (see the file comment).
/// 16 blocks saturate an 8-way pool under dynamic scheduling while keeping
/// per-block partial buffers (the memory cost of deterministic reduction)
/// bounded.
inline int deterministic_block_count(std::size_t items, int max_blocks = 16) {
  if (items == 0) return 0;
  const std::size_t cap = static_cast<std::size_t>(max_blocks < 1 ? 1 : max_blocks);
  return static_cast<int>(items < cap ? items : cap);
}

/// Half-open index range of block `b` out of `blocks` over `items` units.
/// Blocks partition [0, items) contiguously and in order.
struct BlockRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

inline BlockRange block_range(std::size_t items, int blocks, int b) {
  FICON_REQUIRE(blocks > 0 && b >= 0 && b < blocks, "block index out of range");
  const std::size_t n = static_cast<std::size_t>(blocks);
  const std::size_t i = static_cast<std::size_t>(b);
  return BlockRange{items * i / n, items * (i + 1) / n};
}

}  // namespace ficon
