// Environment-variable knobs for experiment scaling.
//
// The paper ran 20 annealing seeds per table cell on a 2.4 GHz P4; the
// default bench configuration here is scaled down so the whole harness runs
// in minutes. FICON_SEEDS / FICON_SCALE / FICON_CIRCUITS restore paper-scale
// runs without recompiling.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace ficon {

inline std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<int>(parsed) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Comma-separated list (e.g. FICON_CIRCUITS=apte,ami33).
inline std::vector<std::string> env_list(const char* name,
                                         const std::vector<std::string>& fb) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fb;
  std::vector<std::string> out;
  std::istringstream is(v);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out.empty() ? fb : out;
}

}  // namespace ficon
