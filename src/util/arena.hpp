// Monotonic arena for per-move scratch allocation.
//
// The annealing inner loop re-runs the same pipeline (re-pack, decompose,
// cut-line construction, scoring) once per proposed move; its transient
// buffers are identical in shape from move to move. A MonotonicArena turns
// those per-move allocations into pointer bumps over a small set of
// retained blocks: allocation is O(1), reset() recycles every block without
// releasing memory, and all scratch of one move stays contiguous — the
// cache-blocked cut-line sort (src/congestion/cutlines.cpp) and the scale
// benchmark generator draw their scratch from one of these.
//
// Not internally synchronized: one arena per thread (the users keep a
// thread_local instance, mirroring the per-thread scratch convention used
// throughout the evaluators).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace ficon {

/// @brief Bump allocator over a chain of retained blocks.
///
/// alloc_span<T>() returns uninitialized storage for trivially destructible
/// T; nothing is ever destroyed, so reset() simply rewinds to the first
/// block. Blocks grow to fit the largest single request and are retained
/// across reset(), so a steady-state caller stops allocating entirely.
class MonotonicArena {
 public:
  /// @param min_block_bytes size of newly created blocks (grown to fit
  ///        larger single requests).
  explicit MonotonicArena(std::size_t min_block_bytes = std::size_t{1} << 20)
      : min_block_bytes_(min_block_bytes) {
    FICON_REQUIRE(min_block_bytes > 0, "arena block size must be positive");
  }

  /// Rewind to empty, retaining every block for reuse. Invalidates all
  /// spans handed out since construction / the previous reset().
  void reset() {
    block_ = 0;
    offset_ = 0;
  }

  /// @brief Uninitialized storage for `count` objects of T.
  ///
  /// Valid until the next reset(); never individually freed. T must be
  /// trivially destructible (nothing runs destructors) and trivially
  /// default-constructible (the storage is not value-initialized).
  template <typename T>
  std::span<T> alloc_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_default_constructible_v<T>,
                  "arena storage is raw memory: T must be trivial");
    if (count == 0) return {};
    const std::size_t bytes = count * sizeof(T);
    std::byte* p = allocate(bytes, alignof(T));
    return std::span<T>(reinterpret_cast<T*>(p), count);
  }

  /// Total bytes held across all blocks (diagnostics / tests).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::byte* allocate(std::size_t bytes, std::size_t alignment) {
    // Advance through retained blocks until one fits the aligned request;
    // append a fresh block (sized to fit) when none does.
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t aligned =
          (offset_ + alignment - 1) / alignment * alignment;
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++block_;
      offset_ = 0;
    }
    const std::size_t size = bytes > min_block_bytes_ ? bytes
                                                      : min_block_bytes_;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_ = blocks_.size() - 1;
    // operator new guarantees alignment for any fundamental type; the
    // block start is therefore aligned for every T alloc_span accepts.
    offset_ = bytes;
    return blocks_.back().data.get();
  }

  std::size_t min_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< index of the block currently bumped
  std::size_t offset_ = 0;  ///< bump offset within blocks_[block_]
};

}  // namespace ficon
