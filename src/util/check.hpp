// Precondition / invariant checking helpers.
//
// Public API entry points validate their arguments with FICON_REQUIRE,
// which throws std::invalid_argument — callers get a diagnosable error
// instead of UB. Internal invariants use FICON_ASSERT (std::logic_error),
// kept on in all build types: this library's correctness claims are the
// whole point of the reproduction, and the checks are cheap relative to
// the math around them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ficon::detail {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assertion(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ficon::detail

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define FICON_REQUIRE(expr, msg)                                       \
  do {                                                                 \
    if (!(expr))                                                       \
      ::ficon::detail::throw_requirement(#expr, __FILE__, __LINE__,    \
                                         std::string(msg));            \
  } while (false)

/// Validate an internal invariant; throws std::logic_error.
#define FICON_ASSERT(expr, msg)                                        \
  do {                                                                 \
    if (!(expr))                                                       \
      ::ficon::detail::throw_assertion(#expr, __FILE__, __LINE__,      \
                                       std::string(msg));              \
  } while (false)
