// Deterministic pseudo-random number generation.
//
// The floorplanner's experiments average over seeds (the paper uses 20
// seeds per cell); reproducibility across platforms therefore matters more
// than raw speed. std::mt19937_64 semantics are pinned by the standard, so
// we wrap it rather than hand-rolling, and add the convenience draws the
// annealer needs. SplitMix64 is provided to derive independent streams from
// a single experiment seed.
#pragma once

#include <cstdint>
#include <random>

#include "util/check.hpp"

namespace ficon {

/// SplitMix64 — tiny, well-mixed 64-bit generator used to expand one seed
/// into per-run / per-purpose seeds (Steele et al., "Fast splittable
/// pseudorandom number generators").
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Seedable RNG facade used by the annealer and workload generators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    FICON_REQUIRE(lo <= hi, "empty range");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    FICON_REQUIRE(lo <= hi, "empty range");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    FICON_REQUIRE(n > 0, "index() over empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ficon
