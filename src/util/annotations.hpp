// Portable Clang thread-safety annotation macros.
//
// Clang's `-Wthread-safety` analysis is a compile-time race detector: it
// checks, per function, that every access to a `FICON_GUARDED_BY(mu)`
// member happens while `mu` is held, and that functions declared
// `FICON_REQUIRES(mu)` are only called with `mu` held. The attributes are
// advisory on every other compiler — each macro expands to nothing unless
// the compiler understands `__attribute__((capability))` — so annotated
// code builds identically under gcc; only the clang `analysis` CI job
// enforces them (with `-Wthread-safety -Werror`).
//
// The macro set mirrors the LLVM documentation's canonical spelling
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed to
// stay out of other libraries' namespaces. Annotate with the FICON_*
// forms only; never use the raw attributes directly, so a compiler bump
// needs exactly one file to change.
//
// The analysis only tracks capability-annotated types: `std::mutex` is
// opaque to it. Use `ficon::Mutex` / `ficon::MutexLock`
// (`util/mutex.hpp`) for any lock that guards annotated state.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FICON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FICON_THREAD_ANNOTATION
#define FICON_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define FICON_CAPABILITY(x) FICON_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define FICON_SCOPED_CAPABILITY FICON_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define FICON_GUARDED_BY(x) FICON_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define FICON_PT_GUARDED_BY(x) FICON_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define FICON_ACQUIRE(...) \
  FICON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define FICON_RELEASE(...) \
  FICON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define FICON_TRY_ACQUIRE(result, ...) \
  FICON_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must hold the capability across the call.
#define FICON_REQUIRES(...) \
  FICON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard).
#define FICON_EXCLUDES(...) FICON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held; teaches the analysis
/// that it is from this point on (used under `std::unique_lock`, whose
/// acquire/release live in system headers the analysis does not see).
#define FICON_ASSERT_CAPABILITY(x) \
  FICON_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define FICON_RETURN_CAPABILITY(x) FICON_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment explaining why the analysis cannot see the invariant.
#define FICON_NO_THREAD_SAFETY_ANALYSIS \
  FICON_THREAD_ANNOTATION(no_thread_safety_analysis)
