// Generic simulated-annealing engine.
//
// The paper's floorplanner is "based on simulated annealing algorithm with
// normalized Polish expression [7]". The engine is kept generic over the
// state type so the floorplanner, tests and ablation experiments can reuse
// it. Classic geometric schedule:
//   * T0 calibrated from the average uphill move of a warm-up random walk
//     so the initial acceptance probability is `initial_accept`,
//   * T <- cooling * T after `moves_per_temperature` proposed moves,
//   * stop when T drops below stop_temperature_ratio * T0 or when
//     `max_stall_temperatures` consecutive temperatures made no progress.
//
// "Progress" for the stall counter means the temperature either produced a
// new global best *or* left `current_cost` strictly below where the
// temperature started. The second clause matters: after a large uphill
// excursion the walk can spend many temperatures descending back toward
// (but not yet beating) the global best — that descent is productive search
// and must not trip the early stop. Only temperatures where the walk is
// genuinely treading water count toward the stall limit.
//
// A per-temperature snapshot hook exposes the locally-optimized
// intermediate solutions — Experiment 2 (Figure 9) plots exactly these.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ficon {

struct AnnealOptions {
  double initial_accept = 0.90;       ///< target P(accept) at T0
  double cooling = 0.90;              ///< geometric temperature factor
  int moves_per_temperature = 100;
  double stop_temperature_ratio = 1e-4;
  int max_stall_temperatures = 8;
  int warmup_samples = 60;            ///< random walk length for T0
  /// Cooperative cancellation hook (empty = never cancel). Polled at
  /// every temperature step and every 64 proposed moves; when it returns
  /// true the run stops early and returns the best state found so far
  /// with stats.cancelled set. The poll is a pure read — as long as it
  /// keeps returning false the run is bit-identical to one with no hook
  /// installed (the service layer's determinism rests on this).
  std::function<bool()> should_stop;
};

struct AnnealStats {
  int temperature_steps = 0;
  long long moves_proposed = 0;
  long long moves_accepted = 0;
  double initial_temperature = 0.0;
  double final_temperature = 0.0;
  bool cancelled = false;  ///< should_stop() fired before convergence
};

template <typename State>
class Annealer {
 public:
  using CostFn = std::function<double(const State&)>;
  using NeighborFn = std::function<State(const State&, Rng&)>;
  /// step (0-based temperature index), temperature, current state, its cost.
  using SnapshotFn =
      std::function<void(int, double, const State&, double)>;

  struct Result {
    State best;
    double best_cost = 0.0;
    AnnealStats stats;
  };

  Annealer(CostFn cost, NeighborFn neighbor, AnnealOptions options)
      : cost_(std::move(cost)),
        neighbor_(std::move(neighbor)),
        options_(options) {
    FICON_REQUIRE(options.cooling > 0.0 && options.cooling < 1.0,
                  "cooling factor must be in (0,1)");
    FICON_REQUIRE(options.initial_accept > 0.0 &&
                      options.initial_accept < 1.0,
                  "initial acceptance must be in (0,1)");
    FICON_REQUIRE(options.moves_per_temperature > 0, "no moves per level");
  }

  Result run(State initial, Rng& rng, SnapshotFn snapshot = {}) const {
    Result result{initial, cost_(initial), {}};
    State current = std::move(initial);
    double current_cost = result.best_cost;

    double t = initial_temperature(current, rng);
    result.stats.initial_temperature = t;
    const double t_stop = t * options_.stop_temperature_ratio;

    // Telemetry is a pure observer: when tracing is off this is one
    // relaxed load; when on, tallies go to the calling thread's sink and
    // nothing here touches the RNG stream or the accept decisions.
    const bool tracing = obs::trace_enabled();
    const int trace_run = tracing ? obs::next_anneal_run() : 0;
    if (tracing) obs::count(obs::Counter::kAnnealRuns);

    const auto cancel_requested = [this] {
      return options_.should_stop && options_.should_stop();
    };

    int stall = 0;
    for (int step = 0; t > t_stop && stall < options_.max_stall_temperatures;
         ++step) {
      if (cancel_requested()) {
        result.stats.cancelled = true;
        break;
      }
      bool improved = false;
      const double cost_at_start = current_cost;
      obs::AnnealEvent event;
      for (int mv = 0; mv < options_.moves_per_temperature; ++mv) {
        if ((mv & 63) == 0 && mv != 0 && cancel_requested()) {
          result.stats.cancelled = true;
          break;
        }
        State candidate = neighbor_(current, rng);
        const double candidate_cost = cost_(candidate);
        ++result.stats.moves_proposed;
        const double delta = candidate_cost - current_cost;
        // The neighbour functor deposits its move kind (1..3, 0 when it
        // does not report one) in a thread-local side channel.
        const int kind =
            tracing ? std::clamp(obs::take_move_kind(), 0,
                                 obs::kMoveKinds - 1)
                    : 0;
        if (tracing) {
          ++event.proposed;
          ++event.proposed_by_kind[static_cast<std::size_t>(kind)];
        }
        if (delta <= 0.0 || rng.uniform() < std::exp(-delta / t)) {
          current = std::move(candidate);
          current_cost = candidate_cost;
          ++result.stats.moves_accepted;
          if (tracing) {
            ++event.accepted;
            ++event.accepted_by_kind[static_cast<std::size_t>(kind)];
            if (delta > 0.0) ++event.uphill_accepted;
            event.accepted_delta_sum += delta;
          }
          if (current_cost < result.best_cost) {
            result.best = current;
            result.best_cost = current_cost;
            improved = true;
          }
        }
      }
      // A cancelled temperature is partial work: stop before counting it
      // or feeding it to the snapshot/trace consumers.
      if (result.stats.cancelled) break;
      ++result.stats.temperature_steps;
      if (snapshot) snapshot(step, t, current, current_cost);
      // See the header comment: descending back from an uphill excursion
      // (current_cost < cost_at_start) resets the stall counter even when
      // the global best did not move.
      stall = (improved || current_cost < cost_at_start) ? 0 : stall + 1;
      if (tracing) {
        event.run = trace_run;
        event.step = step;
        event.temperature = t;
        event.current_cost = current_cost;
        event.best_cost = result.best_cost;
        event.stall = stall;
        obs::record_anneal(event);
        obs::count(obs::Counter::kAnnealTemperatures);
        obs::count(obs::Counter::kAnnealMovesProposed, event.proposed);
        obs::count(obs::Counter::kAnnealMovesAccepted, event.accepted);
        obs::count(obs::Counter::kAnnealUphillAccepted,
                   event.uphill_accepted);
        if (stall > 0) obs::count(obs::Counter::kAnnealStallTemperatures);
        if (event.proposed > 0) {
          // Accept-ratio distribution, in ppm so the log buckets resolve
          // [0, 1] (1.0 -> 1e6, ~20 buckets of dynamic range).
          const double accept_ratio =
              static_cast<double>(event.accepted) /
              static_cast<double>(event.proposed);
          obs::record_hist(obs::Hist::kAcceptRatioPpm,
                           std::llround(1e6 * accept_ratio));
        }
      }
      t *= options_.cooling;
    }
    result.stats.final_temperature = t;
    return result;
  }

 private:
  /// T0 = -avg_uphill / ln(p0), from a short random walk; falls back to a
  /// cost-scale heuristic if the walk saw no uphill move.
  double initial_temperature(const State& start, Rng& rng) const {
    State walker = start;
    double walker_cost = cost_(walker);
    double uphill_sum = 0.0;
    int uphill_count = 0;
    for (int i = 0; i < options_.warmup_samples; ++i) {
      State next = neighbor_(walker, rng);
      const double next_cost = cost_(next);
      if (next_cost > walker_cost) {
        uphill_sum += next_cost - walker_cost;
        ++uphill_count;
      }
      walker = std::move(next);
      walker_cost = next_cost;
    }
    if (uphill_count == 0) {
      return std::max(1e-12, std::abs(walker_cost)) * 0.1;
    }
    const double avg_uphill = uphill_sum / uphill_count;
    return -avg_uphill / std::log(options_.initial_accept);
  }

  CostFn cost_;
  NeighborFn neighbor_;
  AnnealOptions options_;
};

}  // namespace ficon
