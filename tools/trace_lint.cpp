// trace_lint — validate a FICON JSONL trace file against the schema.
//
// Usage:
//   trace_lint FILE...
//
// For each file: parses every line as JSON, checks the per-record schema
// (known "type", required fields, correct field kinds) and that the first
// record is a meta record carrying the current schema version. Exits 0
// when every file passes, 1 otherwise — CI runs it over the traces the
// instrumented test job produces.
#include <fstream>
#include <iostream>
#include <string>

#include "ficon.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_lint FILE...\n";
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      ok = false;
      continue;
    }
    std::string error;
    if (ficon::obs::validate_trace(in, &error)) {
      std::cout << path << ": ok\n";
    } else {
      std::cerr << path << ": " << error << '\n';
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
