// trace_lint — validate a FICON JSONL trace file against the schema.
//
// Usage:
//   trace_lint FILE...
//
// For each file: parses every line as JSON, checks the per-record schema
// (known "type", required fields, correct field kinds, registered
// counter/phase/cache/strategy names) and that the first record is a
// meta record carrying the current schema version.
//
// Exit codes (see obs::TraceLintResult) let CI tell a malformed trace
// from an unreadable one:
//   0 — every file parsed and passed the schema
//   1 — at least one schema violation (well-formed JSON, bad record)
//   2 — at least one I/O or JSON parse error (unreadable file, not
//       JSON), or a usage error; takes precedence over 1
#include <algorithm>
#include <iostream>
#include <string>

#include "ficon.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_lint FILE...\n";
    return static_cast<int>(ficon::obs::TraceLintResult::kIoError);
  }
  ficon::obs::TraceLintResult worst = ficon::obs::TraceLintResult::kOk;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::string error;
    const ficon::obs::TraceLintResult result =
        ficon::obs::lint_trace_file(path, &error);
    if (result == ficon::obs::TraceLintResult::kOk) {
      std::cout << path << ": ok\n";
    } else {
      std::cerr << path << ": " << error << '\n';
      worst = std::max(worst, result);
    }
  }
  return static_cast<int>(worst);
}
