// bench_lint — structural validator for BENCH_*.json bench reports.
//
// The benches emit machine-readable results through one shared path
// (bench/bench_common.hpp, BenchReport) in the "ficon-bench-v1" schema
// documented in docs/BENCHMARKS.md:
//
//   {"schema": "ficon-bench-v1", "bench": "<name>",
//    "meta": {<scalar>...}, "rows": [{<scalar>...}, ...]}
//
// where every scalar is a JSON number, string, or null (a non-finite
// measurement). This tool checks that structure — and, with --require,
// that every row carries the given keys — so CI can gate on the files
// without knowing each bench's metrics. Rows must agree on their key set:
// a row that silently drops a metric is how trend dashboards rot. The
// one exception is the optional-metric list (peak_rss_mib): platform
// measurements a run may legitimately lack, allowed to be absent as long
// as absence is all-or-none across rows.
//
// Usage: bench_lint [--require key[,key...]] FILE...
// Exit codes mirror trace_lint: 0 clean, 1 schema violation, 2 unreadable
// or unparsable file.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using ficon::obs::JsonValue;

// Metrics a bench may legitimately omit on platforms that cannot measure
// them (all-or-none per report: either every row carries the key or no
// row does). peak_rss_mib reads Linux /proc VmHWM, which sandboxed or
// non-Linux runs do not have — omitting it beats baking a fake 0.0 MiB
// into a baseline. `--require` on such a key passes when it is absent
// from every row.
bool is_optional_metric(const std::string& key) {
  return key == "peak_rss_mib";
}

int check_scalars(const JsonValue& object, const std::string& where) {
  int rc = 0;
  for (const auto& [key, value] : object.object) {
    if (value.type != JsonValue::Type::kNumber &&
        value.type != JsonValue::Type::kString &&
        value.type != JsonValue::Type::kNull) {
      std::cerr << where << ": key \"" << key
                << "\" must be a number, string, or null\n";
      rc = 1;
    }
  }
  return rc;
}

int lint_file(const std::string& path,
              const std::vector<std::string>& required) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << path << ": cannot open\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  const auto doc = ficon::obs::parse_json(buffer.str(), &error);
  if (!doc) {
    std::cerr << path << ": not JSON: " << error << "\n";
    return 2;
  }

  int rc = 0;
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    rc = std::max(rc, 1);
  };
  if (!doc->is_object()) {
    fail("top level must be an object");
    return rc;
  }
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "ficon-bench-v1") {
    fail("\"schema\" must be the string \"ficon-bench-v1\"");
  }
  const JsonValue* bench = doc->find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string.empty()) {
    fail("\"bench\" must be a non-empty string");
  }
  const JsonValue* meta = doc->find("meta");
  if (meta == nullptr || !meta->is_object()) {
    fail("\"meta\" must be an object");
  } else {
    rc = std::max(rc, check_scalars(*meta, path + ": meta"));
  }
  // Optional machine-provenance block (git sha, compiler, thread count,
  // workload fingerprints) — same scalar discipline as meta.
  const JsonValue* manifest = doc->find("manifest");
  if (manifest != nullptr) {
    if (!manifest->is_object()) {
      fail("\"manifest\" must be an object when present");
    } else {
      rc = std::max(rc, check_scalars(*manifest, path + ": manifest"));
    }
  }
  const JsonValue* rows = doc->find("rows");
  if (rows == nullptr || rows->type != JsonValue::Type::kArray) {
    fail("\"rows\" must be an array");
    return rc;
  }
  if (rows->array.empty()) fail("\"rows\" must not be empty");

  std::vector<std::string> row0_keys;
  std::map<std::string, std::size_t> optional_counts;
  for (std::size_t i = 0; i < rows->array.size(); ++i) {
    const JsonValue& row = rows->array[i];
    const std::string where = path + ": rows[" + std::to_string(i) + "]";
    if (!row.is_object()) {
      fail("rows[" + std::to_string(i) + "] must be an object");
      continue;
    }
    rc = std::max(rc, check_scalars(row, where));
    // Optional metrics are exempt from the key-set agreement check but
    // must still be all-or-none across rows (counted below).
    std::vector<std::string> keys;
    for (const auto& [key, value] : row.object) {
      if (is_optional_metric(key)) {
        ++optional_counts[key];
      } else {
        keys.push_back(key);
      }
    }
    if (i == 0) {
      row0_keys = keys;
    } else if (keys != row0_keys) {
      fail("rows[" + std::to_string(i) +
           "] key set differs from rows[0] (every row must report the "
           "same metrics)");
    }
    for (const std::string& key : required) {
      if (row.find(key) == nullptr && !is_optional_metric(key)) {
        fail("rows[" + std::to_string(i) + "] missing required key \"" +
             key + "\"");
      }
    }
  }
  for (const auto& [key, count] : optional_counts) {
    if (count != rows->array.size()) {
      fail("optional metric \"" + key + "\" appears in " +
           std::to_string(count) + " of " +
           std::to_string(rows->array.size()) +
           " rows (must be all rows or none)");
    }
  }
  // A --require on an optional metric passes only when the key is either
  // everywhere (counted above) or nowhere.
  for (const std::string& key : required) {
    if (is_optional_metric(key)) {
      const auto it = optional_counts.find(key);
      if (it != optional_counts.end() && it->second != rows->array.size()) {
        fail("required optional metric \"" + key +
             "\" present in only some rows");
      }
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require" && i + 1 < argc) {
      std::istringstream keys(argv[++i]);
      std::string key;
      while (std::getline(keys, key, ',')) {
        if (!key.empty()) required.push_back(key);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_lint [--require key[,key...]] FILE...\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: bench_lint [--require key[,key...]] FILE...\n";
    return 2;
  }
  int rc = 0;
  for (const std::string& path : paths) {
    rc = std::max(rc, lint_file(path, required));
  }
  if (rc == 0) {
    std::cout << "bench_lint: " << paths.size() << " file(s) clean\n";
  }
  return rc;
}
