// ficon_lint — project-specific static analysis for the FICON tree.
//
// The congestion model's correctness rests on conventions the compiler
// cannot check: env knobs must be documented, trace names must be
// registered, public consumers must stay behind the umbrella header,
// floating-point equality is forbidden near the numeric core, RNG use
// must flow through the per-seed streams, results must not depend on
// hash-table iteration order or the wall clock, and the module layering
// must match the declared DAG. This tool turns those conventions into
// machine-checked rules with stable IDs (run --list-rules, or see
// docs/STATIC_ANALYSIS.md for the full table):
//
//   F001-F008  convention rules carried over from v1
//   D001-D003  determinism rules (containers, clocks, pool reductions)
//   L001-L002  layering rules against the .ficon-layers module DAG
//
// v2 replaced the line-regex scanner core with tools/lint/: a
// comment/string-aware tokenizer builds the code/text views and the
// token stream the D-rules walk, and quoted includes are resolved
// per TU against compile_commands.json for the layering checks.
//
// Findings can be suppressed through a committed baseline
// (.ficon-lint-baseline.json). Every baseline entry must carry a
// non-empty "reason"; --update-baseline rewrites the file from the
// current findings, preserving reasons for entries that persist.
//
// Flags beyond the v1 set:
//   --sarif PATH             write a SARIF 2.1.0 log of every finding
//                            (baselined ones carry suppressions)
//   --compile-commands PATH  compile database for include resolution;
//                            defaults to <repo>/build/compile_commands.json
//                            when present
//   --cache PATH             per-file result cache keyed by content hash;
//                            safe because global checks (README, schema,
//                            layering) re-run at aggregation every time
//
// Exit codes: 0 clean (all findings baselined), 1 findings, 2 usage or
// I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/include_graph.hpp"
#include "lint/report.hpp"
#include "lint/rules.hpp"
#include "lint/tokenizer.hpp"

namespace fs = std::filesystem;
using namespace ficon::lint;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void list_rules() {
  for (const RuleInfo& r : rule_registry()) {
    std::cout << r.id << "  " << r.summary << "\n";
  }
}

int usage() {
  std::cerr << "usage: ficon_lint [--repo DIR] [--baseline FILE] "
               "[--update-baseline] [--list-rules]\n"
               "                  [--sarif FILE] [--compile-commands FILE] "
               "[--cache FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path repo = fs::current_path();
  std::optional<fs::path> baseline_path, sarif_path, cc_path, cache_path;
  bool update_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo" && i + 1 < argc) {
      repo = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = fs::path(argv[++i]);
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = fs::path(argv[++i]);
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      cc_path = fs::path(argv[++i]);
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = fs::path(argv[++i]);
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else {
      return usage();
    }
  }
  if (!fs::exists(repo)) {
    std::cerr << "ficon_lint: no such directory: " << repo.string() << "\n";
    return 2;
  }
  if (!baseline_path.has_value()) {
    baseline_path = repo / ".ficon-lint-baseline.json";
  }

  // Gather sources.
  struct Source {
    std::string rel;
    std::string content;
  };
  std::vector<Source> sources;
  static const char* kTopDirs[] = {"src",   "tools", "examples",
                                   "bench", "tests", "fuzz"};
  for (const char* dir : kTopDirs) {
    const fs::path root = repo / dir;
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      sources.push_back({fs::relative(entry.path(), repo).generic_string(),
                         read_file(entry.path())});
    }
  }
  std::sort(sources.begin(), sources.end(),
            [](const Source& a, const Source& b) { return a.rel < b.rel; });
  if (sources.empty()) {
    std::cerr << "ficon_lint: no sources found under " << repo.string()
              << "\n";
    return 2;
  }

  // Per-file analysis, through the cache when one is configured.
  std::map<std::string, FileAnalysis> cached;
  if (cache_path.has_value()) cached = load_cache(*cache_path);
  std::map<std::string, FileAnalysis> analyses;
  for (const Source& s : sources) {
    const std::uint64_t hash = content_hash(s.content);
    const auto it = cached.find(s.rel);
    if (it != cached.end() && it->second.hash == hash) {
      analyses.emplace(s.rel, std::move(it->second));
    } else {
      analyses.emplace(s.rel, analyze_file(s.rel, s.content));
    }
  }

  // Aggregation: global F-rule halves over the per-file extractions.
  std::vector<Finding> findings;
  std::vector<std::pair<std::string, const FileAnalysis*>> ordered;
  for (const Source& s : sources) {
    const FileAnalysis& fa = analyses.at(s.rel);
    ordered.emplace_back(s.rel, &fa);
    findings.insert(findings.end(), fa.findings.begin(), fa.findings.end());
  }
  const fs::path schema_path = repo / "src" / "obs" / "schema.hpp";
  const bool schema_exists = fs::exists(schema_path);
  const std::vector<Finding> global = aggregate_findings(
      ordered, read_file(repo / "README.md"), schema_exists,
      schema_exists ? read_file(schema_path) : std::string());
  findings.insert(findings.end(), global.begin(), global.end());

  // Layering: resolve the include graph, check it against .ficon-layers.
  std::string error;
  const fs::path cc_file =
      cc_path.value_or(repo / "build" / "compile_commands.json");
  const auto compile = load_compile_commands(cc_file, &error);
  if (!compile.has_value()) {
    std::cerr << "ficon_lint: " << error << "\n";
    return 2;
  }
  if (cc_path.has_value() && !compile->loaded) {
    std::cerr << "ficon_lint: cannot read compile database "
              << cc_path->string() << "\n";
    return 2;
  }
  const fs::path layers_path = repo / ".ficon-layers";
  if (fs::exists(layers_path)) {
    const auto groups = parse_layers(read_file(layers_path), &error);
    if (!groups.has_value()) {
      std::cerr << "ficon_lint: " << error << "\n";
      return 2;
    }
    std::set<std::string> known;
    for (const Source& s : sources) known.insert(s.rel);
    std::map<std::string, std::vector<std::pair<std::string, int>>> resolved;
    for (const auto& [rel, fa] : ordered) {
      if (rel.rfind("src/", 0) != 0) continue;
      auto& edges = resolved[rel];
      for (const IncludeRef& inc : fa->includes) {
        const auto target =
            resolve_include(rel, inc.path, known, repo, *compile);
        if (target.has_value() && *target != rel) {
          edges.emplace_back(*target, inc.line);
        }
      }
    }
    const std::vector<Finding> layer =
        layering_findings(resolved, *groups);
    findings.insert(findings.end(), layer.begin(), layer.end());
  }

  sort_findings(findings);

  const auto suppressions = load_baseline(*baseline_path, &error);
  if (!suppressions.has_value()) {
    std::cerr << "ficon_lint: " << error << "\n";
    return 2;
  }

  if (cache_path.has_value() && !save_cache(*cache_path, analyses)) {
    std::cerr << "ficon_lint: cannot write cache " << cache_path->string()
              << "\n";
    return 2;
  }

  if (update_baseline) {
    write_baseline(*baseline_path, findings, *suppressions);
    std::cout << "ficon_lint: wrote " << findings.size()
              << " suppression(s) to " << baseline_path->string() << "\n";
    return 0;
  }

  if (sarif_path.has_value() &&
      !write_sarif(*sarif_path, repo, findings, *suppressions)) {
    std::cerr << "ficon_lint: cannot write SARIF log "
              << sarif_path->string() << "\n";
    return 2;
  }

  int reported = 0;
  for (const Finding& f : findings) {
    const Suppression* match = match_suppression(*suppressions, f);
    if (match != nullptr && !match->reason.empty() &&
        match->reason.rfind("UNREVIEWED", 0) != 0) {
      match->used = true;
      continue;
    }
    std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
              << f.message;
    if (match != nullptr) std::cout << " [baselined without justification]";
    std::cout << "\n";
    ++reported;
  }
  for (const Suppression& s : *suppressions) {
    if (!s.used) {
      std::cout << "note: stale baseline entry " << s.rule << " in "
                << s.file << " (" << s.token << ")\n";
    }
  }
  if (reported > 0) {
    std::cout << "ficon_lint: " << reported << " finding(s)\n";
    return 1;
  }
  std::cout << "ficon_lint: clean (" << findings.size()
            << " baselined suppression(s))\n";
  return 0;
}
