// ficon_lint — project-specific static analysis for the FICON tree.
//
// The congestion model's correctness rests on conventions the compiler
// cannot check: env knobs must be documented, trace names must be
// registered, public consumers must stay behind the umbrella header,
// floating-point equality is forbidden near the numeric core, RNG use
// must flow through the per-seed streams, and overrides must say so.
// This tool turns those conventions into machine-checked rules with
// stable IDs:
//
//   F001  env discipline — no raw getenv(); every FICON_* knob read via
//         util/env.hpp must appear in the README knob table
//   F002  trace-schema registry — every record type / counter / cache /
//         strategy name emitted from src/obs/ must exist in
//         src/obs/schema.hpp
//   F003  umbrella includes — examples/, bench/ and tools/ include
//         "ficon.hpp" (and bench_common.hpp), never deep src/... headers;
//         tools may also include "obs/json.hpp" (JSON-only linters)
//   F004  no floating-point == / != against float literals (outside the
//         Simpson internals and test assertion macros)
//   F005  no std::rand / srand / random_device / raw mt19937 outside
//         util/rng.hpp — all randomness comes from seeded Rng streams
//   F006  derived-class members spelled `virtual` must say `override`
//         (and `virtual` + `override` together is redundant)
//   F007  SVG emission stays in src/exp/ — heat-map and feature-dump
//         writers go through the HeatMapSource / write_svg APIs instead
//         of hand-rolling "<svg" markup elsewhere (tests/ excepted:
//         they assert on the emitted markup)
//   F008  probability-engine boundary — the deep per-pair headers
//         congestion/path_prob.hpp and congestion/approx.hpp are internal:
//         outside src/congestion/ and tests/, go through the
//         ProbabilityEvaluator facade (congestion/prob_eval.hpp) or the
//         batched ProbKernel (congestion/prob_kernel.hpp)
//
// Findings can be suppressed through a committed baseline
// (.ficon-lint-baseline.json). Every baseline entry must carry a
// non-empty "reason"; --update-baseline rewrites the file from the
// current findings, preserving reasons for entries that persist.
//
// Exit codes: 0 clean (all findings baselined), 1 findings, 2 usage or
// I/O error.
//
// Scanner notes: rules run over a "code view" of each file with comments
// and string/char literal *contents* blanked, so names inside strings or
// docs never trip code rules; F001 knob names and F002 schema names are
// extracted from a "text view" that keeps literal contents but drops
// comments.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string rule;     // "F001".."F006"
  std::string file;     // repo-relative path
  int line = 0;         // 1-based
  std::string message;
  std::string token;    // baseline-matching key (knob name or line text)
};

struct Suppression {
  std::string rule;
  std::string file;
  std::string token;
  std::string reason;
  mutable bool used = false;
};

/// Both views of one source file, line-aligned with the original.
struct SourceViews {
  std::vector<std::string> code;  // comments + literal contents blanked
  std::vector<std::string> text;  // comments blanked, literals kept
};

std::string collapse_whitespace(const std::string& s) {
  std::string out;
  bool in_space = true;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

/// Build the code/text views. A small state machine over the whole file:
/// tracks //, /*...*/, "...", '...' and raw strings R"delim(...)delim".
SourceViews build_views(const std::vector<std::string>& lines) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  SourceViews views;
  views.code.reserve(lines.size());
  views.text.reserve(lines.size());
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the ")delim" terminator

  for (const std::string& line : lines) {
    std::string code(line.size(), ' ');
    std::string text(line.size(), ' ');
    if (state == State::kLineComment) state = State::kCode;

    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            i = line.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (std::isalnum(static_cast<unsigned char>(
                                     line[i - 1])) == 0 &&
                                 line[i - 1] != '_'))) {
            // R"delim( — find the delimiter.
            std::size_t open = line.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim = ")" + line.substr(i + 2, open - i - 2) + "\"";
              code[i] = 'R';
              code[i + 1] = '"';
              state = State::kRawString;
              // keep literal contents in the text view
              for (std::size_t j = i; j <= open; ++j) text[j] = line[j];
              i = open;
            } else {
              code[i] = c;
              text[i] = c;
            }
          } else if (c == '"') {
            code[i] = '"';
            text[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            code[i] = '\'';
            text[i] = '\'';
            state = State::kChar;
          } else {
            code[i] = c;
            text[i] = c;
          }
          break;
        case State::kString:
          text[i] = c;
          if (c == '\\') {
            if (i + 1 < line.size()) text[i + 1] = next;
            ++i;
          } else if (c == '"') {
            code[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          text[i] = c;
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            code[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kRawString: {
          const std::size_t end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            for (std::size_t j = i; j < line.size(); ++j) text[j] = line[j];
            i = line.size();
          } else {
            for (std::size_t j = i; j < end + raw_delim.size(); ++j) {
              text[j] = line[j];
            }
            code[end + raw_delim.size() - 1] = '"';
            i = end + raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
        }
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kLineComment:
          break;  // unreachable (handled above)
      }
    }
    views.code.push_back(std::move(code));
    views.text.push_back(std::move(text));
  }
  return views;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Parse every quoted string inside the brace block that follows the
/// first occurrence of `array_marker` (e.g. "kCounterNames[]").
std::set<std::string> registry_array(const std::string& text,
                                     const std::string& array_marker) {
  std::set<std::string> names;
  const std::size_t at = text.find(array_marker);
  if (at == std::string::npos) return names;
  const std::size_t open = text.find('{', at);
  const std::size_t close = text.find("};", at);
  if (open == std::string::npos || close == std::string::npos) return names;
  const std::string block = text.substr(open, close - open);
  static const std::regex quoted("\"([^\"]*)\"");
  for (auto it = std::sregex_iterator(block.begin(), block.end(), quoted);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

struct RepoFile {
  fs::path path;      // absolute
  std::string rel;    // repo-relative, '/'-separated
  std::vector<std::string> raw;
  SourceViews views;
};

class Linter {
 public:
  explicit Linter(fs::path repo) : repo_(std::move(repo)) {}

  bool load() {
    static const char* kTopDirs[] = {"src",  "tools", "examples",
                                     "bench", "tests", "fuzz"};
    for (const char* dir : kTopDirs) {
      const fs::path root = repo_ / dir;
      if (!fs::exists(root)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cpp" && ext != ".hpp") continue;
        RepoFile f;
        f.path = entry.path();
        f.rel = fs::relative(entry.path(), repo_).generic_string();
        f.raw = read_lines(f.path);
        f.views = build_views(f.raw);
        files_.push_back(std::move(f));
      }
    }
    std::sort(files_.begin(), files_.end(),
              [](const RepoFile& a, const RepoFile& b) {
                return a.rel < b.rel;
              });
    readme_ = read_file(repo_ / "README.md");
    return !files_.empty();
  }

  std::vector<Finding> run() {
    rule_env_discipline();
    rule_trace_schema_registry();
    rule_umbrella_includes();
    rule_float_equality();
    rule_rng_discipline();
    rule_missing_override();
    rule_svg_emission();
    rule_probability_internal_headers();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.rule, a.file, a.line) <
                       std::tie(b.rule, b.file, b.line);
              });
    return findings_;
  }

 private:
  void add(const std::string& rule, const RepoFile& f, std::size_t index,
           const std::string& message, std::string token = "") {
    if (token.empty()) token = collapse_whitespace(f.raw[index]);
    findings_.push_back(
        {rule, f.rel, static_cast<int>(index + 1), message, token});
  }

  // F001 — env knobs: no raw getenv(); every FICON_* knob documented.
  void rule_env_discipline() {
    static const std::regex raw_getenv("\\bgetenv\\s*\\(");
    static const std::regex knob_read(
        "\\benv_(?:string|int|double|list)\\s*\\(\\s*\"([A-Za-z0-9_]+)\"");
    std::set<std::string> reported_knobs;
    for (const RepoFile& f : files_) {
      const bool is_env_hpp = f.rel == "src/util/env.hpp";
      for (std::size_t i = 0; i < f.views.code.size(); ++i) {
        if (!is_env_hpp &&
            std::regex_search(f.views.code[i], raw_getenv)) {
          add("F001", f, i,
              "raw getenv(): read knobs through the env_* helpers in "
              "util/env.hpp");
        }
        const std::string& text = f.views.text[i];
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            knob_read);
             it != std::sregex_iterator(); ++it) {
          const std::string knob = (*it)[1].str();
          if (knob.rfind("FICON_", 0) != 0) continue;
          if (readme_.find(knob) != std::string::npos) continue;
          if (!reported_knobs.insert(knob).second) continue;
          add("F001", f, i,
              "knob " + knob + " is not documented in the README knob table",
              knob);
        }
      }
    }
  }

  // F002 — every name emitted by the trace writer exists in the
  // schema-v1 registry (src/obs/schema.hpp).
  void rule_trace_schema_registry() {
    const fs::path schema_path = repo_ / "src" / "obs" / "schema.hpp";
    if (!fs::exists(schema_path)) {
      findings_.push_back({"F002", "src/obs/schema.hpp", 1,
                           "schema registry header is missing", "missing"});
      return;
    }
    const std::string schema = read_file(schema_path);
    const std::set<std::string> record_types =
        registry_array(schema, "kRecordTypes[]");
    std::set<std::string> value_names;  // counter/phase/cache/strategy
    for (const char* marker : {"kCounterNames[]", "kPhaseNames[]",
                               "kCacheNames[]", "kStrategyNames[]"}) {
      for (const std::string& n : registry_array(schema, marker)) {
        value_names.insert(n);
      }
    }
    std::set<std::string> row_names;  // cache/strategy display rows
    for (const char* marker : {"kCacheNames[]", "kStrategyNames[]"}) {
      for (const std::string& n : registry_array(schema, marker)) {
        row_names.insert(n);
      }
    }

    // Emitted record types appear as {\"type\":\"NAME\" inside string
    // literals of the writer; schema-table rows as {"NAME", ...} — but
    // only inside trace_schema() itself, so display-table rows elsewhere
    // (TextTable::add_row) don't false-positive.
    static const std::regex emitted_type(
        "\\{\\\\\"type\\\\\":\\\\\"(\\w+)\\\\\"");
    static const std::regex schema_row("\\{\"(\\w+)\",(\\s*$|\\s*\\{\\{)");
    static const std::regex counter_row("\\{\"(\\w+)\",\\s*Counter::");
    static const std::regex schema_fn("\\btrace_schema\\s*\\(\\s*\\)");
    for (const RepoFile& f : files_) {
      if (f.rel.rfind("src/obs/", 0) != 0 || f.rel == "src/obs/schema.hpp") {
        continue;
      }
      bool in_schema_fn = false;
      for (std::size_t i = 0; i < f.views.text.size(); ++i) {
        const std::string& text = f.views.text[i];
        if (std::regex_search(f.views.code[i], schema_fn)) {
          in_schema_fn = true;
        } else if (in_schema_fn && !f.views.code[i].empty() &&
                   f.views.code[i][0] == '}') {
          in_schema_fn = false;  // function body closed at column 0
        }
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            emitted_type);
             it != std::sregex_iterator(); ++it) {
          const std::string type = (*it)[1].str();
          if (record_types.count(type) == 0) {
            add("F002", f, i,
                "record type \"" + type +
                    "\" is not registered in obs/schema.hpp",
                type);
          }
        }
        std::smatch m;
        if (std::regex_search(text, m, counter_row)) {
          if (row_names.count(m[1].str()) == 0) {
            add("F002", f, i,
                "cache/strategy row \"" + m[1].str() +
                    "\" is not registered in obs/schema.hpp",
                m[1].str());
          }
        } else if (in_schema_fn && std::regex_search(text, m, schema_row)) {
          if (record_types.count(m[1].str()) == 0) {
            add("F002", f, i,
                "validator record type \"" + m[1].str() +
                    "\" is not registered in obs/schema.hpp",
                m[1].str());
          }
        }
      }
    }
  }

  // F003 — examples/, bench/ and tools/ stay behind the umbrella header.
  // Tools may additionally include "obs/json.hpp": the JSON-only linters
  // (ficon_lint, bench_lint, bench_diff) deliberately avoid linking the
  // whole library.
  void rule_umbrella_includes() {
    static const std::regex deep_include(
        "#include\\s*\"(?:src/)?(?:geom|circuit|floorplan|route|router|"
        "congestion|anneal|core|exp|gen|obs|util|numeric|service)/[^\"]+\"");
    static const std::regex json_include(
        "#include\\s*\"(?:src/)?obs/json\\.hpp\"");
    for (const RepoFile& f : files_) {
      const bool tool = f.rel.rfind("tools/", 0) == 0;
      if (f.rel.rfind("examples/", 0) != 0 && f.rel.rfind("bench/", 0) != 0 &&
          !tool) {
        continue;
      }
      for (std::size_t i = 0; i < f.views.code.size(); ++i) {
        // The include path itself is a string literal — use the text view.
        if (std::regex_search(f.views.text[i], deep_include)) {
          if (tool && std::regex_search(f.views.text[i], json_include)) {
            continue;
          }
          add("F003", f, i,
              tool ? "deep src/ include; tools include \"ficon.hpp\" or "
                     "\"obs/json.hpp\" only"
                   : "deep src/ include; examples and benches include "
                     "\"ficon.hpp\" only");
        }
      }
    }
  }

  // F004 — no ==/!= against floating-point literals.
  void rule_float_equality() {
    static const std::regex float_eq(
        "(?:[=!]=\\s*[-+]?(?:\\d+\\.\\d*|\\.\\d+|"
        "\\d+(?:\\.\\d*)?[eE][-+]?\\d+)[fFlL]?)|"
        "(?:(?:\\d+\\.\\d*|\\.\\d+|\\d+(?:\\.\\d*)?[eE][-+]?\\d+)[fFlL]?"
        "\\s*[=!]=)");
    // Simpson integrators compare interval endpoints exactly on purpose.
    static const std::set<std::string> file_allowlist = {
        "src/congestion/approx.cpp", "src/numeric/simpson.hpp"};
    static const std::regex assertion_macro(
        "\\b(?:EXPECT_|ASSERT_|static_assert)");
    for (const RepoFile& f : files_) {
      if (file_allowlist.count(f.rel) != 0) continue;
      for (std::size_t i = 0; i < f.views.code.size(); ++i) {
        const std::string& code = f.views.code[i];
        if (!std::regex_search(code, float_eq)) continue;
        if (std::regex_search(code, assertion_macro)) continue;
        add("F004", f, i,
            "floating-point ==/!= against a literal; use an epsilon or an "
            "integer representation");
      }
    }
  }

  // F005 — randomness flows through util/rng.hpp seeded streams only.
  void rule_rng_discipline() {
    static const std::regex raw_rng(
        "\\bstd::rand\\b|\\bsrand\\s*\\(|\\brandom_device\\b|"
        "\\bmt19937(?:_64)?\\b");
    for (const RepoFile& f : files_) {
      if (f.rel == "src/util/rng.hpp") continue;
      for (std::size_t i = 0; i < f.views.code.size(); ++i) {
        if (std::regex_search(f.views.code[i], raw_rng)) {
          add("F005", f, i,
              "raw RNG primitive; use the seeded Rng streams from "
              "util/rng.hpp");
        }
      }
    }
  }

  // F006 — in a class with a base list, `virtual` members must say
  // `override` (and `virtual` together with `override` is redundant).
  void rule_missing_override() {
    static const std::regex derived_head(
        "\\b(?:class|struct)\\s+\\w+[^;{=]*:\\s*"
        "(?:public|protected|private|virtual)\\b");
    static const std::regex enum_head("\\benum\\s+(?:class|struct)\\b");
    static const std::regex any_head("\\b(?:class|struct)\\s+\\w+");
    static const std::regex virtual_kw("\\bvirtual\\b");
    static const std::regex override_kw("\\boverride\\b|\\bfinal\\b");
    for (const RepoFile& f : files_) {
      // Stack of (brace depth at class open, class has a base list).
      std::vector<std::pair<int, bool>> classes;
      int depth = 0;
      bool pending = false;          // class head seen, '{' not yet
      bool pending_derived = false;  // ... and it has a base list
      for (std::size_t i = 0; i < f.views.code.size(); ++i) {
        const std::string& code = f.views.code[i];
        if (!pending && !std::regex_search(code, enum_head) &&
            std::regex_search(code, any_head) &&
            code.find(';') == std::string::npos) {
          pending = true;
          pending_derived = std::regex_search(code, derived_head);
        } else if (pending && std::regex_search(code, derived_head)) {
          pending_derived = true;  // base list on a continuation line
        }
        const bool in_derived = !classes.empty() && classes.back().second;
        if (in_derived && std::regex_search(code, virtual_kw)) {
          if (std::regex_search(code, override_kw)) {
            add("F006", f, i,
                "redundant `virtual` on an override (override implies "
                "virtual)");
          } else {
            add("F006", f, i,
                "virtual member in a derived class must say `override` "
                "(or `final`)");
          }
        }
        for (const char c : code) {
          if (c == '{') {
            if (pending) {
              classes.emplace_back(depth, pending_derived);
              pending = false;
            }
            ++depth;
          } else if (c == '}') {
            --depth;
            if (!classes.empty() && classes.back().first == depth) {
              classes.pop_back();
            }
          }
        }
      }
    }
  }

  // F007 — no ad-hoc SVG emission outside src/exp/: anything writing
  // "<svg" markup must go through the HeatMapSource / write_svg APIs so
  // every rendered artifact inherits their determinism contract.
  // tests/ may quote the markup to assert on it.
  void rule_svg_emission() {
    for (const RepoFile& f : files_) {
      // The linter's own needle literal would match itself.
      if (f.rel.rfind("src/exp/", 0) == 0 || f.rel.rfind("tests/", 0) == 0 ||
          f.rel == "tools/ficon_lint.cpp") {
        continue;
      }
      for (std::size_t i = 0; i < f.views.text.size(); ++i) {
        // The marker lives inside a string literal — use the text view.
        if (f.views.text[i].find("<svg") != std::string::npos) {
          add("F007", f, i,
              "ad-hoc SVG emission; render through HeatMapSource / "
              "write_svg in src/exp/");
        }
      }
    }
  }

  // F008 — the per-pair probability engines are internal: only
  // src/congestion/ itself and the tests may include path_prob.hpp /
  // approx.hpp directly; everyone else (src/ficon.hpp included) goes
  // through the ProbabilityEvaluator facade or the batched ProbKernel.
  // This keeps the batched kernel the one evaluation surface the rest of
  // the tree can depend on.
  void rule_probability_internal_headers() {
    static const std::regex deep_prob_include(
        "#include\\s*\"(?:src/)?congestion/(?:path_prob|approx)\\.hpp\"");
    for (const RepoFile& f : files_) {
      // The linter's own needle regex would match itself.
      if (f.rel.rfind("src/congestion/", 0) == 0 ||
          f.rel.rfind("tests/", 0) == 0 || f.rel == "tools/ficon_lint.cpp") {
        continue;
      }
      for (std::size_t i = 0; i < f.views.text.size(); ++i) {
        // The include path itself is a string literal — use the text view.
        if (std::regex_search(f.views.text[i], deep_prob_include)) {
          add("F008", f, i,
              "internal probability header; include "
              "\"congestion/prob_eval.hpp\" (ProbabilityEvaluator) or "
              "\"congestion/prob_kernel.hpp\" instead");
        }
      }
    }
  }

  fs::path repo_;
  std::vector<RepoFile> files_;
  std::string readme_;
  std::vector<Finding> findings_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::optional<std::vector<Suppression>> load_baseline(
    const fs::path& path, std::string* error) {
  std::vector<Suppression> suppressions;
  if (!fs::exists(path)) return suppressions;  // empty baseline is fine
  const std::string text = read_file(path);
  std::string parse_error;
  const auto value = ficon::obs::parse_json(text, &parse_error);
  if (!value.has_value() || !value->is_object()) {
    *error = path.string() + ": " + parse_error;
    return std::nullopt;
  }
  const ficon::obs::JsonValue* list = value->find("suppressions");
  if (list == nullptr ||
      list->type != ficon::obs::JsonValue::Type::kArray) {
    *error = path.string() + ": missing \"suppressions\" array";
    return std::nullopt;
  }
  for (const ficon::obs::JsonValue& entry : list->array) {
    Suppression s;
    for (const auto& [key, member] :
         std::initializer_list<std::pair<const char*, std::string*>>{
             {"rule", &s.rule},
             {"file", &s.file},
             {"token", &s.token},
             {"reason", &s.reason}}) {
      const ficon::obs::JsonValue* v = entry.find(key);
      if (v == nullptr || !v->is_string()) {
        *error = path.string() + ": suppression lacks string \"" +
                 std::string(key) + "\"";
        return std::nullopt;
      }
      *member = v->string;
    }
    suppressions.push_back(std::move(s));
  }
  return suppressions;
}

void write_baseline(const fs::path& path,
                    const std::vector<Finding>& findings,
                    const std::vector<Suppression>& old) {
  std::ofstream out(path);
  out << "{\n  \"suppressions\": [";
  bool first = true;
  for (const Finding& f : findings) {
    std::string reason = "UNREVIEWED: justify or fix";
    for (const Suppression& s : old) {
      if (s.rule == f.rule && s.file == f.file && s.token == f.token) {
        reason = s.reason;
        break;
      }
    }
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"rule\": \"" << f.rule << "\", \"file\": \""
        << json_escape(f.file) << "\",\n     \"token\": \""
        << json_escape(f.token) << "\",\n     \"reason\": \""
        << json_escape(reason) << "\"}";
  }
  out << "\n  ]\n}\n";
}

void list_rules() {
  std::cout
      << "F001  env discipline: no raw getenv(); FICON_* knobs documented "
         "in README\n"
      << "F002  trace names registered in src/obs/schema.hpp\n"
      << "F003  examples/, bench/ and tools/ include \"ficon.hpp\" only "
         "(tools may also use \"obs/json.hpp\")\n"
      << "F004  no floating-point ==/!= against float literals\n"
      << "F005  no raw RNG primitives outside util/rng.hpp\n"
      << "F006  derived-class virtual members must say override\n"
      << "F007  SVG emission goes through src/exp/ "
         "(HeatMapSource/write_svg)\n"
      << "F008  congestion/path_prob.hpp and congestion/approx.hpp are "
         "internal outside src/congestion/ and tests/ (use "
         "congestion/prob_eval.hpp)\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path repo = fs::current_path();
  std::optional<fs::path> baseline_path;
  bool update_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo" && i + 1 < argc) {
      repo = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = fs::path(argv[++i]);
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else {
      std::cerr << "usage: ficon_lint [--repo DIR] [--baseline FILE] "
                   "[--update-baseline] [--list-rules]\n";
      return 2;
    }
  }
  if (!fs::exists(repo)) {
    std::cerr << "ficon_lint: no such directory: " << repo.string() << "\n";
    return 2;
  }
  if (!baseline_path.has_value()) {
    baseline_path = repo / ".ficon-lint-baseline.json";
  }

  Linter linter(repo);
  if (!linter.load()) {
    std::cerr << "ficon_lint: no sources found under " << repo.string()
              << "\n";
    return 2;
  }
  const std::vector<Finding> findings = linter.run();

  std::string error;
  const auto suppressions = load_baseline(*baseline_path, &error);
  if (!suppressions.has_value()) {
    std::cerr << "ficon_lint: " << error << "\n";
    return 2;
  }

  if (update_baseline) {
    write_baseline(*baseline_path, findings, *suppressions);
    std::cout << "ficon_lint: wrote " << findings.size()
              << " suppression(s) to " << baseline_path->string() << "\n";
    return 0;
  }

  int reported = 0;
  for (const Finding& f : findings) {
    const Suppression* match = nullptr;
    for (const Suppression& s : *suppressions) {
      if (s.rule == f.rule && s.file == f.file && s.token == f.token) {
        match = &s;
        break;
      }
    }
    if (match != nullptr && !match->reason.empty() &&
        match->reason.rfind("UNREVIEWED", 0) != 0) {
      match->used = true;
      continue;
    }
    std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
              << f.message;
    if (match != nullptr) std::cout << " [baselined without justification]";
    std::cout << "\n";
    ++reported;
  }
  for (const Suppression& s : *suppressions) {
    if (!s.used) {
      std::cout << "note: stale baseline entry " << s.rule << " in "
                << s.file << " (" << s.token << ")\n";
    }
  }
  if (reported > 0) {
    std::cout << "ficon_lint: " << reported << " finding(s)\n";
    return 1;
  }
  std::cout << "ficon_lint: clean (" << findings.size()
            << " baselined suppression(s))\n";
  return 0;
}
