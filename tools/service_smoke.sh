#!/usr/bin/env bash
# service_smoke.sh BUILD_DIR — end-to-end smoke of the service layer
# (ROADMAP item 1), run by the CI service-smoke job:
#
#   1. boot ficond on a Unix socket,
#   2. fire a batch of concurrent mixed requests at it through
#      `ficon_cli --connect` (xargs -P drives real client processes),
#   3. diff every client result line against the one-shot
#      `ficon_cli --json` line for the same request — the two paths must
#      be bit-identical,
#   4. shut the daemon down cleanly,
#   5. run bench_service and validate BENCH_service.json with bench_lint.
#
# Exits non-zero on the first divergence, daemon crash, or schema
# violation.
set -euo pipefail

BUILD_DIR=${1:?usage: service_smoke.sh BUILD_DIR}
FICOND="$BUILD_DIR/tools/ficond"
CLI="$BUILD_DIR/examples/ficon_cli"
BENCH="$BUILD_DIR/bench/bench_service"
LINT="$BUILD_DIR/tools/bench_lint"
SOCK="${TMPDIR:-/tmp}/ficon_service_smoke_$$.sock"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ficon_service_smoke_$$.XXXXXX")"

cleanup() {
  [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK" "$SOCK"
}
trap cleanup EXIT

echo "== booting ficond on $SOCK"
"$FICOND" --circuit apte --socket "$SOCK" --workers 4 &
DAEMON_PID=$!
for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || { echo "ficond died at boot"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "ficond never created $SOCK"; exit 1; }

# The request mix: cheap evaluates across models/weights plus low-effort
# anneals across seeds — ~100 requests total, one arg-line each.
MIX="$WORK/requests.txt"
: > "$MIX"
for i in $(seq 0 79); do
  case $((i % 4)) in
    0) echo "--op evaluate --model ir --gamma 0.4" ;;
    1) echo "--op evaluate --model fixed --grid 120" ;;
    2) echo "--op evaluate --model none" ;;
    3) echo "--op evaluate --model ir --alpha 2 --beta 0.5" ;;
  esac >> "$MIX"
done
for i in $(seq 1 20); do
  echo "--op anneal --effort 0.05 --seed $i" >> "$MIX"
done
TOTAL=$(wc -l < "$MIX")

echo "== firing $TOTAL concurrent requests through ficon_cli --connect"
# Each line becomes one client process; -P 16 keeps the daemon's queue
# and executors genuinely concurrent. Output order is per-file, so the
# diff below is stable.
run_batch() { # $1 = extra args, $2 = out dir
  mkdir -p "$2"
  nl -ba "$MIX" | xargs -P 16 -I{} bash -c '
    set -euo pipefail
    line="{}"
    n="${line%%	*}"; args="${line#*	}"
    # shellcheck disable=SC2086
    '"$CLI"' --circuit apte '"$1"' $args > "'"$2"'/$(printf %03d "$n").json"
  '
}
run_batch "--connect $SOCK" "$WORK/client"
echo "== re-running the same mix one-shot (--json)"
run_batch "--json" "$WORK/oneshot"

echo "== diffing client vs one-shot result lines"
cat "$WORK"/client/*.json > "$WORK/client.jsonl"
cat "$WORK"/oneshot/*.json > "$WORK/oneshot.jsonl"
diff -u "$WORK/oneshot.jsonl" "$WORK/client.jsonl"
echo "   $TOTAL/$TOTAL bit-identical"

echo "== shutting ficond down"
kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== bench_service + bench_lint"
FICON_SERVICE_REQUESTS=${FICON_SERVICE_REQUESTS:-16} \
FICON_SERVICE_ANNEALS=${FICON_SERVICE_ANNEALS:-4} \
FICON_BENCH_OUT="$WORK" "$BENCH"
"$LINT" "$WORK/BENCH_service.json" \
  --require mode,op,requests,total_ms,requests_per_s

echo "service smoke: OK"
