// ficond — congestion-evaluation daemon over one EngineSession.
//
// Loads a circuit once, then serves evaluate/anneal requests through the
// length-prefixed JSON frame protocol (src/service/protocol.hpp) on
// either a Unix-domain socket (one thread per connection, replies may
// interleave out of submission order) or stdin/stdout (single
// connection). The session amortizes netlist parsing and the evaluator
// caches across every request — the point of ROADMAP item 1; see
// docs/SERVICE.md and bench/bench_service.cpp for the numbers.
//
// Usage:
//   ficond --circuit NAME|PATH (--socket PATH | --stdio)
//          [--workers N] [--queue N]
//     --circuit NAME|PATH  built-in MCNC name, .blocks, or .ficon file
//     --socket PATH        listen on a Unix-domain socket at PATH (the
//                          path is unlinked first; removed on exit)
//     --stdio              serve one connection on stdin/stdout
//     --workers N          executor threads (default FICON_THREADS)
//     --queue N            queued-shard capacity (default 64); overflow
//                          submits are rejected with status "rejected"
//
// Ops beyond evaluate/anneal: "cancel" (by request id), "ping", "stats",
// and "shutdown" (acknowledges, then stops the daemon; outstanding
// requests complete as cancelled). A malformed frame is unrecoverable on
// that connection: one error reply, then the connection closes.
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 socket/circuit failure.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define FICOND_HAVE_SOCKETS 1
#endif

#include "ficon.hpp"

namespace {

using ficon::service::DecodedReply;
using ficon::service::EngineSession;
using ficon::service::FrameStatus;
using ficon::service::ProtocolOp;
using ficon::service::ProtocolRequest;
using ficon::service::Reply;

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "ficond: " << message << "\n"
            << "usage: ficond --circuit NAME|PATH (--socket PATH | --stdio)"
               " [--workers N] [--queue N]\n";
  std::exit(2);
}

int parse_int_arg(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || v < 1 ||
      v > 1 << 20) {
    usage_error("option '" + flag + "' needs a positive integer, got '" +
                text + "'");
  }
  return static_cast<int>(v);
}

/// One frame transport: the stdio pair or a socket fd.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual FrameStatus read(std::string* payload) = 0;
  /// Thread-safe (replies come from executor callbacks concurrently).
  virtual bool write(const std::string& payload) = 0;
};

class StdioTransport : public Transport {
 public:
  FrameStatus read(std::string* payload) override {
    return ficon::service::read_frame(std::cin, payload);
  }
  bool write(const std::string& payload) override {
    const std::lock_guard<std::mutex> lock(mu_);
    ficon::service::write_frame(std::cout, payload);
    return static_cast<bool>(std::cout);
  }

 private:
  std::mutex mu_;
};

#if defined(FICOND_HAVE_SOCKETS)
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override { ::close(fd_); }
  FrameStatus read(std::string* payload) override {
    return ficon::service::read_frame_fd(fd_, payload);
  }
  bool write(const std::string& payload) override {
    const std::lock_guard<std::mutex> lock(mu_);
    return ficon::service::write_frame_fd(fd_, payload);
  }

 private:
  int fd_;
  std::mutex mu_;
};
#endif

/// @brief Serve one connection until EOF, a malformed frame, or a
/// shutdown op. Returns true iff the peer requested daemon shutdown.
///
/// `transport` is shared with the in-flight completion callbacks, which
/// is why it rides in a shared_ptr: a callback may fire after the read
/// loop (and this frame) are long gone.
bool serve_connection(EngineSession& session,
                      const std::shared_ptr<Transport>& transport) {
  // id -> session ticket of in-flight requests, for "cancel".
  auto inflight = std::make_shared<std::mutex>();
  auto tickets = std::make_shared<std::map<std::int64_t, EngineSession::Ticket>>();

  std::string payload;
  while (true) {
    const FrameStatus status = transport->read(&payload);
    if (status == FrameStatus::kEof) return false;
    if (status == FrameStatus::kMalformed) {
      // Framing is lost; nothing after this byte can be trusted.
      transport->write(ficon::service::encode_error_reply(
          0, "malformed frame; closing connection"));
      return false;
    }
    ProtocolRequest request;
    std::string error;
    if (!ficon::service::decode_request(payload, &request, &error)) {
      transport->write(
          ficon::service::encode_error_reply(request.id, error));
      continue;
    }
    switch (request.op) {
      case ProtocolOp::kPing:
        transport->write(ficon::service::encode_ok_reply(request.id));
        break;
      case ProtocolOp::kStats:
        transport->write(ficon::service::encode_stats_reply(
            request.id, session.stats()));
        break;
      case ProtocolOp::kShutdown:
        transport->write(ficon::service::encode_ok_reply(request.id));
        return true;
      case ProtocolOp::kCancel: {
        EngineSession::Ticket ticket = 0;
        {
          const std::lock_guard<std::mutex> lock(*inflight);
          const auto it = tickets->find(request.target);
          if (it != tickets->end()) ticket = it->second;
        }
        if (ticket != 0 && session.cancel(ticket)) {
          transport->write(ficon::service::encode_ok_reply(request.id));
        } else {
          transport->write(ficon::service::encode_error_reply(
              request.id,
              "no cancellable request with id " +
                  std::to_string(request.target)));
        }
        break;
      }
      case ProtocolOp::kEvaluate:
      case ProtocolOp::kAnneal: {
        const std::int64_t id = request.id;
        const EngineSession::Ticket ticket = session.submit(
            std::move(request.request),
            [transport, inflight, tickets, id](EngineSession::Ticket,
                                               const Reply& reply) {
              transport->write(ficon::service::encode_reply(id, reply));
              const std::lock_guard<std::mutex> lock(*inflight);
              tickets->erase(id);
            });
        if (ticket == 0) {
          Reply rejected;
          rejected.status = ficon::service::ReplyStatus::kRejected;
          rejected.error = "queue full";
          transport->write(ficon::service::encode_reply(id, rejected));
        } else {
          const std::lock_guard<std::mutex> lock(*inflight);
          (*tickets)[id] = ticket;
        }
        break;
      }
    }
  }
}

#if defined(FICOND_HAVE_SOCKETS)
int serve_socket(EngineSession& session, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "ficond: socket: " << std::strerror(errno) << "\n";
    return 3;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "ficond: socket path too long: " << path << "\n";
    return 3;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // a previous run's stale socket
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    std::cerr << "ficond: bind/listen " << path << ": "
              << std::strerror(errno) << "\n";
    ::close(listener);
    return 3;
  }
  std::cout << "ficond: listening on " << path << "\n" << std::flush;

  std::atomic<bool> stopping{false};
  std::vector<std::jthread> connections;
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by the shutdown path (or fatal error)
    }
    if (stopping.load()) {
      ::close(fd);
      continue;
    }
    connections.emplace_back([&session, &stopping, listener, fd] {
      const auto transport = std::make_shared<FdTransport>(fd);
      if (serve_connection(session, transport) &&
          !stopping.exchange(true)) {
        // First shutdown request wins: closing the listener pops the
        // accept loop; ::shutdown also wakes an accept blocked in older
        // kernels.
        ::shutdown(listener, SHUT_RDWR);
        ::close(listener);
      }
    });
  }
  stopping.store(true);
  connections.clear();  // join every connection thread
  ::unlink(path.c_str());
  std::cout << "ficond: shut down\n";
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  std::string circuit;
  std::string socket_path;
  bool stdio = false;
  ficon::service::SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("option '" + arg + "' requires a value");
      return argv[++i];
    };
    if (arg == "--circuit") {
      circuit = value();
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--workers") {
      options.workers = parse_int_arg(arg, value());
    } else if (arg == "--queue") {
      options.queue_capacity =
          static_cast<std::size_t>(parse_int_arg(arg, value()));
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (circuit.empty()) usage_error("--circuit is required");
  if (stdio == !socket_path.empty()) {
    usage_error("pick exactly one of --socket PATH or --stdio");
  }

#if defined(FICOND_HAVE_SOCKETS)
  // A peer that disconnects mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  try {
    ficon::Netlist netlist = ficon::service::load_circuit(circuit);
    std::cerr << "ficond: circuit " << netlist.name() << ": "
              << netlist.module_count() << " modules, "
              << netlist.net_count() << " nets\n";
    EngineSession session(std::move(netlist), options);
    if (stdio) {
      const auto transport = std::make_shared<StdioTransport>();
      serve_connection(session, transport);
      return 0;
    }
#if defined(FICOND_HAVE_SOCKETS)
    return serve_socket(session, socket_path);
#else
    std::cerr << "ficond: --socket needs POSIX sockets; use --stdio\n";
    return 3;
#endif
  } catch (const std::exception& e) {
    std::cerr << "ficond: " << e.what() << "\n";
    return 3;
  }
}
