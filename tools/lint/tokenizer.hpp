// ficon_lint v2 tokenizer — a comment/string-aware C++ lexer.
//
// This replaces the v1 line-regex scanner core. One pass over a source
// file produces:
//
//  * a token stream (identifiers, numbers, string/char literals,
//    punctuators, comments) with 1-based physical line numbers — the
//    input for the token-level rules (D001-D003, include extraction);
//  * two line-aligned "views" of the file, byte-for-byte positioned like
//    the original, that the pattern rules (F001-F008) match against:
//      - code view: comments and string/char literal *contents* blanked
//        (quote characters kept), so names inside strings or docs never
//        trip code rules;
//      - text view: comments blanked, literal contents kept — used where
//        the needle itself lives inside a literal (include paths, knob
//        names, emitted trace types).
//
// Lexing handles the cases the v1 state machine missed:
//  * backslash-newline line continuations are spliced inside any token
//    (including // comments, which legally continue onto the next line);
//  * raw strings R"delim(...)delim" with arbitrary delimiters, spanning
//    lines, never terminated by an escaped quote;
//  * multi-character punctuators (+=, ::, ->, ...) lex as one token so
//    rules can match on operator identity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ficon::lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-numbers (1, 0x3f, 1.5e-3, 1'000)
  kString,   // "..." and R"(...)" — text holds the *contents*
  kChar,     // '...' — text holds the contents
  kPunct,    // operators and punctuation, multi-char ops combined
  kComment,  // // and /* */ — text holds the contents
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;  // see per-kind notes above
  int line = 0;      // 1-based physical line where the token starts
};

/// Both views of one source file, line-aligned with the original.
struct SourceViews {
  std::vector<std::string> code;
  std::vector<std::string> text;
};

struct TokenizedSource {
  std::vector<Token> tokens;
  SourceViews views;
};

/// Lex a whole file. Never fails: unterminated literals lex to
/// end-of-file, bogus bytes become single-char punctuators.
TokenizedSource tokenize(const std::string& source);

/// Split raw file content into physical lines (no trailing '\n').
std::vector<std::string> split_lines(const std::string& source);

/// FNV-1a over the raw bytes — the cache key for per-file results.
std::uint64_t content_hash(const std::string& source);

}  // namespace ficon::lint
