// ficon_lint v2 reporting — findings, the suppression baseline, text
// output, and the SARIF 2.1.0 writer.
//
// The baseline file format is unchanged from v1
// (.ficon-lint-baseline.json): a "suppressions" array of
// {rule, file, token, reason} entries, every reason non-empty and not
// starting with "UNREVIEWED". --update-baseline rewrites the file from
// the current findings and preserves reasons for entries that persist.
//
// SARIF output targets GitHub code scanning: one run, driver
// "ficon_lint", a rules array from the registry, one result per finding
// with a repo-relative artifact URI. Baselined findings are emitted with
// an external suppression carrying the baseline reason, so the upload
// shows them as suppressed instead of open.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace ficon::lint {

struct Finding {
  std::string rule;     // "F001".."F008", "D001".."D003", "L001"/"L002"
  std::string file;     // repo-relative path
  int line = 0;         // 1-based
  std::string message;
  std::string token;    // baseline-matching key (knob name or line text)
};

struct Suppression {
  std::string rule;
  std::string file;
  std::string token;
  std::string reason;
  mutable bool used = false;
};

struct RuleInfo {
  const char* id;
  const char* summary;  // one-line description for --list-rules and SARIF
};

/// Every rule the analyzer knows, in report order.
const std::vector<RuleInfo>& rule_registry();

/// Stable finding order: (rule, file, line).
void sort_findings(std::vector<Finding>& findings);

/// Collapse runs of whitespace to single spaces (the default token).
std::string collapse_whitespace(const std::string& s);

/// Escape for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Load the baseline; a missing file is an empty baseline. Returns
/// nullopt and fills `error` on parse problems.
std::optional<std::vector<Suppression>> load_baseline(
    const std::filesystem::path& path, std::string* error);

/// Rewrite the baseline from `findings`, keeping reasons from `old`.
void write_baseline(const std::filesystem::path& path,
                    const std::vector<Finding>& findings,
                    const std::vector<Suppression>& old);

/// Find the baseline entry matching a finding, or nullptr.
const Suppression* match_suppression(
    const std::vector<Suppression>& suppressions, const Finding& f);

/// Write a SARIF 2.1.0 log of every finding. `suppressions` supplies the
/// justification for baselined results. Returns false on I/O failure.
bool write_sarif(const std::filesystem::path& path,
                 const std::filesystem::path& repo,
                 const std::vector<Finding>& findings,
                 const std::vector<Suppression>& suppressions);

}  // namespace ficon::lint
