#include "lint/report.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <tuple>

#include "obs/json.hpp"

namespace fs = std::filesystem;

namespace ficon::lint {
namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"F001",
       "env discipline: no raw getenv(); FICON_* knobs documented in "
       "README"},
      {"F002", "trace names registered in src/obs/schema.hpp"},
      {"F003",
       "examples/, bench/ and tools/ include \"ficon.hpp\" only (tools may "
       "also use \"obs/json.hpp\")"},
      {"F004", "no floating-point ==/!= against float literals"},
      {"F005", "no raw RNG primitives outside util/rng.hpp"},
      {"F006", "derived-class virtual members must say override"},
      {"F007",
       "SVG emission goes through src/exp/ (HeatMapSource/write_svg)"},
      {"F008",
       "congestion/path_prob.hpp and congestion/approx.hpp are internal "
       "outside src/congestion/ and tests/ (use congestion/prob_eval.hpp)"},
      {"D001",
       "no std::unordered_{map,set} in result-affecting src/ code: "
       "iteration order is unspecified across libstdc++ versions"},
      {"D002",
       "no wall-clock (system_clock, time(), localtime) in src/ result "
       "paths; steady_clock is fine for telemetry"},
      {"D003",
       "no compound assignment to shared variables inside ThreadPool task "
       "lambdas; reduce per block and combine in block order"},
      {"L001",
       "include edge crosses module groups without a matching dep in "
       ".ficon-layers"},
      {"L002", "include graph and .ficon-layers dep graph must be acyclic"},
  };
  return kRules;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.rule, a.file, a.line, a.token) <
                     std::tie(b.rule, b.file, b.line, b.token);
            });
}

std::string collapse_whitespace(const std::string& s) {
  std::string out;
  bool in_space = true;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::optional<std::vector<Suppression>> load_baseline(const fs::path& path,
                                                     std::string* error) {
  std::vector<Suppression> suppressions;
  if (!fs::exists(path)) return suppressions;  // empty baseline is fine
  const std::string text = read_file(path);
  std::string parse_error;
  const auto value = ficon::obs::parse_json(text, &parse_error);
  if (!value.has_value() || !value->is_object()) {
    *error = path.string() + ": " + parse_error;
    return std::nullopt;
  }
  const ficon::obs::JsonValue* list = value->find("suppressions");
  if (list == nullptr || list->type != ficon::obs::JsonValue::Type::kArray) {
    *error = path.string() + ": missing \"suppressions\" array";
    return std::nullopt;
  }
  for (const ficon::obs::JsonValue& entry : list->array) {
    Suppression s;
    for (const auto& [key, member] :
         std::initializer_list<std::pair<const char*, std::string*>>{
             {"rule", &s.rule},
             {"file", &s.file},
             {"token", &s.token},
             {"reason", &s.reason}}) {
      const ficon::obs::JsonValue* v = entry.find(key);
      if (v == nullptr || !v->is_string()) {
        *error = path.string() + ": suppression lacks string \"" +
                 std::string(key) + "\"";
        return std::nullopt;
      }
      *member = v->string;
    }
    suppressions.push_back(std::move(s));
  }
  return suppressions;
}

void write_baseline(const fs::path& path, const std::vector<Finding>& findings,
                    const std::vector<Suppression>& old) {
  std::ofstream out(path);
  out << "{\n  \"suppressions\": [";
  bool first = true;
  for (const Finding& f : findings) {
    std::string reason = "UNREVIEWED: justify or fix";
    for (const Suppression& s : old) {
      if (s.rule == f.rule && s.file == f.file && s.token == f.token) {
        reason = s.reason;
        break;
      }
    }
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"rule\": \"" << f.rule << "\", \"file\": \""
        << json_escape(f.file) << "\",\n     \"token\": \""
        << json_escape(f.token) << "\",\n     \"reason\": \""
        << json_escape(reason) << "\"}";
  }
  out << "\n  ]\n}\n";
}

const Suppression* match_suppression(
    const std::vector<Suppression>& suppressions, const Finding& f) {
  for (const Suppression& s : suppressions) {
    if (s.rule == f.rule && s.file == f.file && s.token == f.token) {
      return &s;
    }
  }
  return nullptr;
}

bool write_sarif(const fs::path& path, const fs::path& repo,
                 const std::vector<Finding>& findings,
                 const std::vector<Suppression>& suppressions) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"ficon_lint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [\n";
  bool first = true;
  for (const RuleInfo& r : rule_registry()) {
    out << (first ? "" : ",\n");
    first = false;
    out << "            {\"id\": \"" << r.id
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(r.summary)
        << "\"}}";
  }
  out << "\n          ]\n        }\n      },\n"
      << "      \"originalUriBaseIds\": {\n"
      << "        \"SRCROOT\": {\"uri\": \"file://"
      << json_escape(fs::absolute(repo).generic_string()) << "/\"}\n"
      << "      },\n"
      << "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    const Suppression* s = match_suppression(suppressions, f);
    const bool suppressed = s != nullptr && !s->reason.empty() &&
                            s->reason.rfind("UNREVIEWED", 0) != 0;
    out << (first ? "" : ",\n");
    first = false;
    out << "        {\n          \"ruleId\": \"" << f.rule << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file)
        << "\", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]";
    if (suppressed) {
      out << ",\n          \"suppressions\": [{\"kind\": \"external\", "
             "\"justification\": \""
          << json_escape(s->reason) << "\"}]";
    }
    out << "\n        }";
  }
  out << "\n      ]\n    }\n  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace ficon::lint
