// ficon_lint v2 rules — per-file analysis plus cross-file aggregation.
//
// analyze_file() runs every rule that depends only on one file's content:
// the F-series convention rules over the tokenizer's code/text views and
// the token-level D-series determinism rules. Checks that need global
// state are *extracted* per file and *decided* at aggregation time:
//
//   * F001 knob documentation — knob reads are collected per file and
//     checked against the README at aggregation, so a README edit never
//     invalidates cached per-file results;
//   * F002 schema membership — emitted trace names are collected per
//     file and checked against src/obs/schema.hpp at aggregation;
//   * quoted includes — collected per file, resolved and layer-checked
//     (L001/L002) by the include-graph module.
//
// This split is what makes the content-hash cache sound: a FileAnalysis
// is a pure function of (file content, kLintVersion).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint/include_graph.hpp"
#include "lint/report.hpp"

namespace ficon::lint {

/// Bumped whenever rule logic changes; part of the cache key, so stale
/// per-file results from an older analyzer are never reused.
extern const char kLintVersion[];

struct KnobRead {
  std::string knob;  // e.g. "FICON_THREADS"
  int line = 0;
};

struct TraceName {
  std::string kind;  // "type" | "row" | "schema_row"
  std::string name;
  int line = 0;
};

/// Everything the analyzer learns from one file, cacheable by content.
struct FileAnalysis {
  std::uint64_t hash = 0;             // content_hash of the raw bytes
  std::vector<Finding> findings;      // per-file rule findings
  std::vector<KnobRead> knobs;        // env_*("FICON_...") reads
  std::vector<TraceName> traces;      // names emitted from src/obs/
  std::vector<IncludeRef> includes;   // quoted #include directives
};

/// Run all per-file rules. `rel` is the repo-relative path ('/'-separated)
/// that scoping decisions key on.
FileAnalysis analyze_file(const std::string& rel, const std::string& content);

/// Cross-file checks (F001 knob table, F002 schema registry). `files`
/// must be sorted by path so the first-reader-wins knob dedup is stable.
std::vector<Finding> aggregate_findings(
    const std::vector<std::pair<std::string, const FileAnalysis*>>& files,
    const std::string& readme, bool schema_exists,
    const std::string& schema_content);

/// Load a per-file result cache. Entries from a different cache schema or
/// analyzer version are dropped wholesale; a missing file is empty.
std::map<std::string, FileAnalysis> load_cache(
    const std::filesystem::path& path);

/// Persist the cache. Returns false on I/O failure.
bool save_cache(const std::filesystem::path& path,
                const std::map<std::string, FileAnalysis>& files);

}  // namespace ficon::lint
