#include "lint/tokenizer.hpp"

#include <cctype>

namespace ficon::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// Character cursor over physical lines. Newlines read as '\n'. The
/// `splice` flag on get()/peek() transparently joins backslash-newline
/// continuations (phase-2 translation) — everything except raw strings
/// reads through it.
class Cursor {
 public:
  explicit Cursor(const std::vector<std::string>& lines) : lines_(lines) {}

  bool eof() const { return li_ >= lines_.size(); }
  int line() const { return static_cast<int>(li_) + 1; }
  std::size_t line_index() const { return li_; }
  std::size_t col() const { return col_; }

  /// Peek `ahead` characters forward (0 = next). Splices continuations.
  char peek(std::size_t ahead = 0) const {
    std::size_t li = li_, col = col_;
    for (;;) {
      if (li >= lines_.size()) return '\0';
      skip_splice(li, col);
      if (li >= lines_.size()) return '\0';
      const char c = at(li, col);
      if (ahead == 0) return c;
      --ahead;
      advance_raw(li, col);
    }
  }

  /// Consume one character (after splicing); reports where it came from.
  char get(std::size_t* out_li, std::size_t* out_col) {
    skip_splice(li_, col_);
    if (eof()) return '\0';
    *out_li = li_;
    *out_col = col_;
    const char c = at(li_, col_);
    advance_raw(li_, col_);
    return c;
  }

  /// Raw variants for raw-string bodies: no continuation splicing.
  char peek_raw() const { return eof() ? '\0' : at(li_, col_); }
  char get_raw(std::size_t* out_li, std::size_t* out_col) {
    if (eof()) return '\0';
    *out_li = li_;
    *out_col = col_;
    const char c = at(li_, col_);
    advance_raw(li_, col_);
    return c;
  }

 private:
  char at(std::size_t li, std::size_t col) const {
    const std::string& l = lines_[li];
    return col < l.size() ? l[col] : '\n';
  }
  void advance_raw(std::size_t& li, std::size_t& col) const {
    if (col < lines_[li].size()) {
      ++col;
    } else {
      ++li;
      col = 0;
    }
  }
  /// While positioned on a backslash that ends its line, jump past it.
  void skip_splice(std::size_t& li, std::size_t& col) const {
    while (li < lines_.size() && col == lines_[li].size() - 1 &&
           !lines_[li].empty() && lines_[li][col] == '\\') {
      ++li;
      col = 0;
    }
  }

  const std::vector<std::string>& lines_;
  std::size_t li_ = 0;
  std::size_t col_ = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::vector<std::string>& lines)
      : lines_(lines), cur_(lines) {
    out_.views.code.reserve(lines.size());
    out_.views.text.reserve(lines.size());
    for (const std::string& l : lines) {
      out_.views.code.emplace_back(l.size(), ' ');
      out_.views.text.emplace_back(l.size(), ' ');
    }
  }

  TokenizedSource run() {
    while (!cur_.eof()) {
      const char c = cur_.peek();
      if (c == '\0') break;
      if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
        std::size_t li, col;
        cur_.get(&li, &col);
        continue;
      }
      if (c == '/' && cur_.peek(1) == '/') {
        lex_line_comment();
      } else if (c == '/' && cur_.peek(1) == '*') {
        lex_block_comment();
      } else if (c == '"') {
        lex_string();
      } else if (c == '\'') {
        lex_char();
      } else if (is_ident_start(c)) {
        lex_ident_or_raw_string();
      } else if (is_digit(c) || (c == '.' && is_digit(cur_.peek(1)))) {
        lex_number();
      } else {
        lex_punct();
      }
    }
    return std::move(out_);
  }

 private:
  void put(std::size_t li, std::size_t col, char c, bool code, bool text) {
    if (li >= lines_.size() || col >= lines_[li].size()) return;
    if (code) out_.views.code[li][col] = c;
    if (text) out_.views.text[li][col] = c;
  }

  /// Consume one spliced char, mirror it into the selected views, append
  /// to `sink` when given.
  char take(bool code, bool text, std::string* sink = nullptr) {
    std::size_t li, col;
    const char c = cur_.get(&li, &col);
    if (c != '\0' && c != '\n') put(li, col, c, code, text);
    if (sink != nullptr && c != '\0') sink->push_back(c);
    return c;
  }

  void lex_line_comment() {
    Token t{TokKind::kComment, "", cur_.line()};
    take(false, false);  // '/'
    take(false, false);  // '/'
    // A line comment ends at an *unspliced* newline: the spliced cursor
    // transparently continues it across backslash-newline.
    while (!cur_.eof()) {
      if (cur_.peek() == '\n') {
        std::size_t li, col;
        cur_.get(&li, &col);
        break;
      }
      take(false, false, &t.text);
    }
    out_.tokens.push_back(std::move(t));
  }

  void lex_block_comment() {
    Token t{TokKind::kComment, "", cur_.line()};
    take(false, false);  // '/'
    take(false, false);  // '*'
    while (!cur_.eof()) {
      if (cur_.peek() == '*' && cur_.peek(1) == '/') {
        take(false, false);
        take(false, false);
        break;
      }
      const char c = take(false, false);
      if (c != '\n') t.text.push_back(c);
    }
    out_.tokens.push_back(std::move(t));
  }

  void lex_string() {
    Token t{TokKind::kString, "", cur_.line()};
    take(true, true);  // opening quote, kept in both views
    while (!cur_.eof()) {
      const char c = cur_.peek();
      if (c == '\n') break;  // unterminated; stop at end of line
      if (c == '\\') {
        take(false, true, &t.text);
        if (!cur_.eof() && cur_.peek() != '\n') take(false, true, &t.text);
        continue;
      }
      if (c == '"') {
        take(true, true);  // closing quote
        break;
      }
      take(false, true, &t.text);
    }
    out_.tokens.push_back(std::move(t));
  }

  void lex_char() {
    Token t{TokKind::kChar, "", cur_.line()};
    take(true, true);  // opening quote
    while (!cur_.eof()) {
      const char c = cur_.peek();
      if (c == '\n') break;
      if (c == '\\') {
        take(false, true, &t.text);
        if (!cur_.eof() && cur_.peek() != '\n') take(false, true, &t.text);
        continue;
      }
      if (c == '\'') {
        take(true, true);
        break;
      }
      take(false, true, &t.text);
    }
    out_.tokens.push_back(std::move(t));
  }

  void lex_ident_or_raw_string() {
    Token t{TokKind::kIdent, "", cur_.line()};
    while (!cur_.eof() && is_ident_char(cur_.peek())) {
      take(true, true, &t.text);
    }
    // Raw-string prefix? R"  u8R"  uR"  UR"  LR"
    if (cur_.peek() == '"' && !t.text.empty() && t.text.back() == 'R' &&
        (t.text == "R" || t.text == "u8R" || t.text == "uR" ||
         t.text == "UR" || t.text == "LR")) {
      lex_raw_string(std::move(t.text));
      return;
    }
    out_.tokens.push_back(std::move(t));
  }

  void lex_raw_string(std::string prefix) {
    // The prefix idents were already mirrored into both views; that
    // matches the v1 convention (R and " visible in the code view).
    Token t{TokKind::kString, "", cur_.line()};
    take(true, true);  // opening quote
    std::string delim;
    while (!cur_.eof() && cur_.peek_raw() != '(' && cur_.peek_raw() != '\n') {
      std::size_t li, col;
      const char c = cur_.get_raw(&li, &col);
      put(li, col, c, false, true);
      delim.push_back(c);
    }
    if (cur_.peek_raw() == '(') {
      std::size_t li, col;
      cur_.get_raw(&li, &col);
      put(li, col, '(', false, true);
    }
    const std::string closer = ")" + delim + "\"";
    std::string window;
    while (!cur_.eof()) {
      std::size_t li, col;
      const char c = cur_.get_raw(&li, &col);
      window.push_back(c);
      if (window.size() > closer.size()) window.erase(window.begin());
      if (window == closer) {
        // Drop the closer from the token text; it was written to the text
        // view already except this final quote, which both views keep.
        t.text.resize(t.text.size() - (closer.size() - 1));
        put(li, col, '"', true, true);
        break;
      }
      if (c != '\n') put(li, col, c, false, true);
      if (c != '\n') {
        t.text.push_back(c);
      } else {
        t.text.push_back('\n');
      }
    }
    (void)prefix;
    out_.tokens.push_back(std::move(t));
  }

  void lex_number() {
    Token t{TokKind::kNumber, "", cur_.line()};
    char prev = '\0';
    while (!cur_.eof()) {
      const char c = cur_.peek();
      const bool exp_sign =
          (c == '+' || c == '-') &&
          (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
      const bool digit_sep = c == '\'' && is_ident_char(cur_.peek(1));
      if (!(is_ident_char(c) || c == '.' || exp_sign || digit_sep)) break;
      prev = take(true, true, &t.text);
    }
    out_.tokens.push_back(std::move(t));
  }

  void lex_punct() {
    static const char* kThree[] = {"<<=", ">>=", "->*", "...", "<=>"};
    static const char* kTwo[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                 ">=", "==", "!=", "&&", "||", "+=", "-=",
                                 "*=", "/=", "%=", "&=", "|=", "^=", "##"};
    Token t{TokKind::kPunct, "", cur_.line()};
    const char a = cur_.peek(), b = cur_.peek(1), c = cur_.peek(2);
    std::size_t len = 1;
    for (const char* op : kThree) {
      if (op[0] == a && op[1] == b && op[2] == c) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (const char* op : kTwo) {
        if (op[0] == a && op[1] == b) {
          len = 2;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < len; ++i) take(true, true, &t.text);
    out_.tokens.push_back(std::move(t));
  }

  const std::vector<std::string>& lines_;
  Cursor cur_;
  TokenizedSource out_;
};

}  // namespace

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::string line;
  for (const char c : source) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(std::move(line));
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) {
    if (line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
  }
  return lines;
}

TokenizedSource tokenize(const std::string& source) {
  // The lexer borrows the line vector; keep it alive for the whole run.
  const std::vector<std::string> lines = split_lines(source);
  Lexer lexer(lines);
  return lexer.run();
}

std::uint64_t content_hash(const std::string& source) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : source) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ficon::lint
