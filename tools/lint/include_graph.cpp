#include "lint/include_graph.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

#include "obs/json.hpp"

namespace fs = std::filesystem;

namespace ficon::lint {
namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Whitespace-split a shell command line. Good enough for compiler
/// invocations, whose -I arguments never contain quoted spaces here.
std::vector<std::string> split_command(const std::string& command) {
  std::vector<std::string> args;
  std::istringstream in(command);
  std::string arg;
  while (in >> arg) args.push_back(std::move(arg));
  return args;
}

void collect_include_dirs(const std::vector<std::string>& args,
                          const fs::path& directory, CompileInfo* info) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string dir;
    if (args[i] == "-I" || args[i] == "-isystem") {
      if (i + 1 < args.size()) dir = args[++i];
    } else if (args[i].rfind("-I", 0) == 0) {
      dir = args[i].substr(2);
    }
    if (dir.empty()) continue;
    fs::path p(dir);
    if (p.is_relative()) p = directory / p;
    p = p.lexically_normal();
    if (std::find(info->include_dirs.begin(), info->include_dirs.end(), p) ==
        info->include_dirs.end()) {
      info->include_dirs.push_back(std::move(p));
    }
  }
}

/// The src/<module>/ directory a repo file belongs to, or "" for files
/// outside src/ or directly at its top level (the umbrella header).
std::string module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

}  // namespace

std::optional<CompileInfo> load_compile_commands(const fs::path& path,
                                                 std::string* error) {
  CompileInfo info;
  if (!fs::exists(path)) return info;  // not configured yet: no -I dirs
  const std::string text = read_file(path);
  std::string parse_error;
  const auto value = ficon::obs::parse_json(text, &parse_error);
  if (!value.has_value() ||
      value->type != ficon::obs::JsonValue::Type::kArray) {
    *error = path.string() + ": " +
             (parse_error.empty() ? "expected a JSON array" : parse_error);
    return std::nullopt;
  }
  for (const ficon::obs::JsonValue& entry : value->array) {
    const ficon::obs::JsonValue* dir = entry.find("directory");
    const fs::path directory =
        dir != nullptr && dir->is_string() ? fs::path(dir->string) : fs::path();
    if (const ficon::obs::JsonValue* args = entry.find("arguments");
        args != nullptr &&
        args->type == ficon::obs::JsonValue::Type::kArray) {
      std::vector<std::string> argv;
      for (const ficon::obs::JsonValue& a : args->array) {
        if (a.is_string()) argv.push_back(a.string);
      }
      collect_include_dirs(argv, directory, &info);
    } else if (const ficon::obs::JsonValue* cmd = entry.find("command");
               cmd != nullptr && cmd->is_string()) {
      collect_include_dirs(split_command(cmd->string), directory, &info);
    }
  }
  info.loaded = true;
  return info;
}

std::optional<std::string> resolve_include(const std::string& from_rel,
                                           const std::string& include,
                                           const std::set<std::string>& known,
                                           const fs::path& repo,
                                           const CompileInfo& compile) {
  const fs::path abs_repo = fs::absolute(repo).lexically_normal();
  const auto try_rel = [&](const fs::path& candidate)
      -> std::optional<std::string> {
    const std::string rel = candidate.lexically_normal().generic_string();
    if (known.count(rel) != 0) return rel;
    return std::nullopt;
  };
  // 1. Relative to the including file's directory.
  const fs::path from_dir = fs::path(from_rel).parent_path();
  if (auto hit = try_rel(from_dir / include); hit.has_value()) return hit;
  // 2. Each -I directory from the compile database, in order.
  for (const fs::path& dir : compile.include_dirs) {
    const fs::path abs = (dir / include).lexically_normal();
    const fs::path rel = abs.lexically_relative(abs_repo);
    if (rel.empty() || *rel.begin() == "..") continue;
    if (auto hit = try_rel(rel); hit.has_value()) return hit;
  }
  // 3. src/ fallback for an unconfigured tree.
  if (auto hit = try_rel(fs::path("src") / include); hit.has_value()) {
    return hit;
  }
  return std::nullopt;
}

std::optional<std::vector<LayerGroup>> parse_layers(const std::string& text,
                                                    std::string* error) {
  std::vector<LayerGroup> groups;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string name;
    if (!(ls >> name)) continue;  // blank line
    if (name.back() != ':') {
      *error = ".ficon-layers:" + std::to_string(lineno) +
               ": expected \"group:\" at line start";
      return std::nullopt;
    }
    name.pop_back();
    LayerGroup g;
    g.name = name;
    bool in_deps = false;
    std::string word;
    while (ls >> word) {
      if (word == "->") {
        in_deps = true;
        continue;
      }
      (in_deps ? g.deps : g.members).push_back(word);
    }
    if (g.members.empty()) {
      *error = ".ficon-layers:" + std::to_string(lineno) + ": group \"" +
               g.name + "\" has no member modules";
      return std::nullopt;
    }
    groups.push_back(std::move(g));
  }
  // Validate: unique group names, unique members, deps name real groups.
  std::set<std::string> names, members;
  for (const LayerGroup& g : groups) {
    if (!names.insert(g.name).second) {
      *error = ".ficon-layers: duplicate group \"" + g.name + "\"";
      return std::nullopt;
    }
    for (const std::string& m : g.members) {
      if (!members.insert(m).second) {
        *error = ".ficon-layers: module \"" + m +
                 "\" appears in more than one group";
        return std::nullopt;
      }
    }
  }
  for (const LayerGroup& g : groups) {
    for (const std::string& d : g.deps) {
      if (names.count(d) == 0) {
        *error = ".ficon-layers: group \"" + g.name +
                 "\" depends on unknown group \"" + d + "\"";
        return std::nullopt;
      }
      if (d == g.name) {
        *error = ".ficon-layers: group \"" + g.name + "\" depends on itself";
        return std::nullopt;
      }
    }
  }
  return groups;
}

namespace {

/// DFS cycle search over a string-keyed adjacency map. Returns the first
/// cycle found (in deterministic, sorted order), empty if acyclic.
std::vector<std::string> find_cycle(
    const std::map<std::string, std::vector<std::string>>& adj) {
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack, cycle;
  const std::function<bool(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        const auto it = adj.find(node);
        if (it != adj.end()) {
          for (const std::string& next : it->second) {
            const int c = color[next];
            if (c == 1) {
              const auto at =
                  std::find(stack.begin(), stack.end(), next);
              cycle.assign(at, stack.end());
              return true;
            }
            if (c == 0 && dfs(next)) return true;
          }
        }
        stack.pop_back();
        color[node] = 2;
        return false;
      };
  for (const auto& [node, targets] : adj) {
    if (color[node] == 0 && dfs(node)) break;
  }
  if (!cycle.empty()) {
    // Rotate so the smallest element leads: stable across start order.
    const auto min =
        std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min, cycle.end());
  }
  return cycle;
}

std::string join_cycle(const std::vector<std::string>& cycle) {
  std::string out;
  for (const std::string& n : cycle) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  out += " -> " + cycle.front();
  return out;
}

}  // namespace

std::vector<Finding> layering_findings(
    const std::map<std::string, std::vector<std::pair<std::string, int>>>&
        includes,
    const std::vector<LayerGroup>& groups) {
  std::vector<Finding> findings;
  std::map<std::string, const LayerGroup*> group_of;  // module dir -> group
  for (const LayerGroup& g : groups) {
    for (const std::string& m : g.members) group_of[m] = &g;
  }

  // L001 — every cross-module edge must be sanctioned by the manifest.
  std::set<std::string> reported;  // "file\ttoken" dedup
  const auto report = [&](const std::string& file, int line,
                          const std::string& message,
                          const std::string& token) {
    if (!reported.insert(file + "\t" + token).second) return;
    findings.push_back({"L001", file, line, message, token});
  };
  for (const auto& [file, targets] : includes) {
    const std::string mod = module_of(file);
    if (mod.empty()) continue;
    const auto from_it = group_of.find(mod);
    if (from_it == group_of.end()) {
      report(file, 1,
             "module \"" + mod + "\" is not declared in .ficon-layers",
             "unmapped:" + mod);
      continue;
    }
    for (const auto& [target, line] : targets) {
      const std::string tmod = module_of(target);
      if (tmod.empty() || tmod == mod) continue;
      const auto to_it = group_of.find(tmod);
      if (to_it == group_of.end()) {
        report(file, line,
               "module \"" + tmod + "\" is not declared in .ficon-layers",
               "unmapped:" + tmod);
        continue;
      }
      const LayerGroup* from = from_it->second;
      const LayerGroup* to = to_it->second;
      if (from == to) continue;  // intra-group edges are free
      if (std::find(from->deps.begin(), from->deps.end(), to->name) !=
          from->deps.end()) {
        continue;
      }
      report(file, line,
             "include of " + target + " crosses layers: group \"" +
                 from->name + "\" does not declare a dep on \"" + to->name +
                 "\" in .ficon-layers",
             from->name + "->" + to->name);
    }
  }

  // L002 — the declared group DAG must actually be a DAG.
  std::map<std::string, std::vector<std::string>> group_adj;
  for (const LayerGroup& g : groups) group_adj[g.name] = g.deps;
  if (const std::vector<std::string> cycle = find_cycle(group_adj);
      !cycle.empty()) {
    findings.push_back({"L002", ".ficon-layers", 1,
                        "declared group dependencies form a cycle: " +
                            join_cycle(cycle),
                        "groups:" + join_cycle(cycle)});
  }

  // L002 — file-level include cycles in src/.
  std::map<std::string, std::vector<std::string>> file_adj;
  for (const auto& [file, targets] : includes) {
    if (module_of(file).empty() && file.rfind("src/", 0) != 0) continue;
    std::vector<std::string>& out = file_adj[file];
    for (const auto& [target, line] : targets) out.push_back(target);
  }
  if (const std::vector<std::string> cycle = find_cycle(file_adj);
      !cycle.empty()) {
    findings.push_back({"L002", cycle.front(), 1,
                        "include cycle: " + join_cycle(cycle),
                        "cycle:" + join_cycle(cycle)});
  }
  return findings;
}

}  // namespace ficon::lint
