#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "lint/tokenizer.hpp"
#include "obs/json.hpp"

namespace fs = std::filesystem;

namespace ficon::lint {

const char kLintVersion[] = "ficon-lint-2.0.0";

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// One file mid-analysis: the raw lines (for default tokens), the token
/// stream and views, and the output under construction.
struct FileCtx {
  const std::string& rel;
  const std::vector<std::string>& raw;
  const TokenizedSource& src;
  FileAnalysis* out;

  void add(const std::string& rule, int line, const std::string& message,
           std::string token = "") {
    if (token.empty() && line >= 1 &&
        static_cast<std::size_t>(line) <= raw.size()) {
      token = collapse_whitespace(raw[line - 1]);
    }
    out->findings.push_back({rule, rel, line, message, std::move(token)});
  }
};

void extract_includes(FileCtx& ctx) {
  const std::vector<Token>& t = ctx.src.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct && t[i].text == "#" &&
        t[i + 1].kind == TokKind::kIdent && t[i + 1].text == "include" &&
        t[i + 2].kind == TokKind::kString) {
      ctx.out->includes.push_back({t[i + 2].text, t[i + 2].line});
    }
  }
}

// F001 (per-file half) — no raw getenv(); collect env_*("FICON_...")
// knob reads for the aggregation-time README check.
void rule_env_discipline(FileCtx& ctx) {
  static const std::regex raw_getenv("\\bgetenv\\s*\\(");
  static const std::regex knob_read(
      "\\benv_(?:string|int|double|list)\\s*\\(\\s*\"([A-Za-z0-9_]+)\"");
  const bool is_env_hpp = ctx.rel == "src/util/env.hpp";
  for (std::size_t i = 0; i < ctx.src.views.code.size(); ++i) {
    if (!is_env_hpp && std::regex_search(ctx.src.views.code[i], raw_getenv)) {
      ctx.add("F001", static_cast<int>(i + 1),
              "raw getenv(): read knobs through the env_* helpers in "
              "util/env.hpp");
    }
    const std::string& text = ctx.src.views.text[i];
    for (auto it = std::sregex_iterator(text.begin(), text.end(), knob_read);
         it != std::sregex_iterator(); ++it) {
      const std::string knob = (*it)[1].str();
      if (!starts_with(knob, "FICON_")) continue;
      ctx.out->knobs.push_back({knob, static_cast<int>(i + 1)});
    }
  }
}

// F002 (per-file half) — collect every name the trace writer emits from
// src/obs/; membership in the schema registry is checked at aggregation.
void rule_trace_names(FileCtx& ctx) {
  if (!starts_with(ctx.rel, "src/obs/") || ctx.rel == "src/obs/schema.hpp") {
    return;
  }
  static const std::regex emitted_type(
      "\\{\\\\\"type\\\\\":\\\\\"(\\w+)\\\\\"");
  static const std::regex schema_row("\\{\"(\\w+)\",(\\s*$|\\s*\\{\\{)");
  static const std::regex counter_row("\\{\"(\\w+)\",\\s*Counter::");
  static const std::regex schema_fn("\\btrace_schema\\s*\\(\\s*\\)");
  bool in_schema_fn = false;
  for (std::size_t i = 0; i < ctx.src.views.text.size(); ++i) {
    const std::string& text = ctx.src.views.text[i];
    if (std::regex_search(ctx.src.views.code[i], schema_fn)) {
      in_schema_fn = true;
    } else if (in_schema_fn && !ctx.src.views.code[i].empty() &&
               ctx.src.views.code[i][0] == '}') {
      in_schema_fn = false;  // function body closed at column 0
    }
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), emitted_type);
         it != std::sregex_iterator(); ++it) {
      ctx.out->traces.push_back(
          {"type", (*it)[1].str(), static_cast<int>(i + 1)});
    }
    std::smatch m;
    if (std::regex_search(text, m, counter_row)) {
      ctx.out->traces.push_back(
          {"row", m[1].str(), static_cast<int>(i + 1)});
    } else if (in_schema_fn && std::regex_search(text, m, schema_row)) {
      ctx.out->traces.push_back(
          {"schema_row", m[1].str(), static_cast<int>(i + 1)});
    }
  }
}

// F003 — examples/, bench/ and tools/ stay behind the umbrella header.
void rule_umbrella_includes(FileCtx& ctx) {
  static const std::regex deep_include(
      "#include\\s*\"(?:src/)?(?:geom|circuit|floorplan|route|router|"
      "congestion|anneal|core|exp|gen|obs|util|numeric|service)/[^\"]+\"");
  static const std::regex json_include(
      "#include\\s*\"(?:src/)?obs/json\\.hpp\"");
  const bool tool = starts_with(ctx.rel, "tools/");
  if (!starts_with(ctx.rel, "examples/") && !starts_with(ctx.rel, "bench/") &&
      !tool) {
    return;
  }
  for (std::size_t i = 0; i < ctx.src.views.text.size(); ++i) {
    // The include path itself is a string literal — use the text view.
    if (std::regex_search(ctx.src.views.text[i], deep_include)) {
      if (tool && std::regex_search(ctx.src.views.text[i], json_include)) {
        continue;
      }
      ctx.add("F003", static_cast<int>(i + 1),
              tool ? "deep src/ include; tools include \"ficon.hpp\" or "
                     "\"obs/json.hpp\" only"
                   : "deep src/ include; examples and benches include "
                     "\"ficon.hpp\" only");
    }
  }
}

// F004 — no ==/!= against floating-point literals.
void rule_float_equality(FileCtx& ctx) {
  static const std::regex float_eq(
      "(?:[=!]=\\s*[-+]?(?:\\d+\\.\\d*|\\.\\d+|"
      "\\d+(?:\\.\\d*)?[eE][-+]?\\d+)[fFlL]?)|"
      "(?:(?:\\d+\\.\\d*|\\.\\d+|\\d+(?:\\.\\d*)?[eE][-+]?\\d+)[fFlL]?"
      "\\s*[=!]=)");
  // Simpson integrators compare interval endpoints exactly on purpose.
  static const std::set<std::string> file_allowlist = {
      "src/congestion/approx.cpp", "src/numeric/simpson.hpp"};
  static const std::regex assertion_macro(
      "\\b(?:EXPECT_|ASSERT_|static_assert)");
  if (file_allowlist.count(ctx.rel) != 0) return;
  for (std::size_t i = 0; i < ctx.src.views.code.size(); ++i) {
    const std::string& code = ctx.src.views.code[i];
    if (!std::regex_search(code, float_eq)) continue;
    if (std::regex_search(code, assertion_macro)) continue;
    ctx.add("F004", static_cast<int>(i + 1),
            "floating-point ==/!= against a literal; use an epsilon or an "
            "integer representation");
  }
}

// F005 — randomness flows through util/rng.hpp seeded streams only.
void rule_rng_discipline(FileCtx& ctx) {
  static const std::regex raw_rng(
      "\\bstd::rand\\b|\\bsrand\\s*\\(|\\brandom_device\\b|"
      "\\bmt19937(?:_64)?\\b");
  if (ctx.rel == "src/util/rng.hpp") return;
  for (std::size_t i = 0; i < ctx.src.views.code.size(); ++i) {
    if (std::regex_search(ctx.src.views.code[i], raw_rng)) {
      ctx.add("F005", static_cast<int>(i + 1),
              "raw RNG primitive; use the seeded Rng streams from "
              "util/rng.hpp");
    }
  }
}

// F006 — in a class with a base list, `virtual` members must say
// `override` (and `virtual` together with `override` is redundant).
void rule_missing_override(FileCtx& ctx) {
  static const std::regex derived_head(
      "\\b(?:class|struct)\\s+\\w+[^;{=]*:\\s*"
      "(?:public|protected|private|virtual)\\b");
  static const std::regex enum_head("\\benum\\s+(?:class|struct)\\b");
  static const std::regex any_head("\\b(?:class|struct)\\s+\\w+");
  static const std::regex virtual_kw("\\bvirtual\\b");
  static const std::regex override_kw("\\boverride\\b|\\bfinal\\b");
  // Stack of (brace depth at class open, class has a base list).
  std::vector<std::pair<int, bool>> classes;
  int depth = 0;
  bool pending = false;          // class head seen, '{' not yet
  bool pending_derived = false;  // ... and it has a base list
  for (std::size_t i = 0; i < ctx.src.views.code.size(); ++i) {
    const std::string& code = ctx.src.views.code[i];
    if (!pending && !std::regex_search(code, enum_head) &&
        std::regex_search(code, any_head) &&
        code.find(';') == std::string::npos) {
      pending = true;
      pending_derived = std::regex_search(code, derived_head);
    } else if (pending && std::regex_search(code, derived_head)) {
      pending_derived = true;  // base list on a continuation line
    }
    const bool in_derived = !classes.empty() && classes.back().second;
    if (in_derived && std::regex_search(code, virtual_kw)) {
      if (std::regex_search(code, override_kw)) {
        ctx.add("F006", static_cast<int>(i + 1),
                "redundant `virtual` on an override (override implies "
                "virtual)");
      } else {
        ctx.add("F006", static_cast<int>(i + 1),
                "virtual member in a derived class must say `override` "
                "(or `final`)");
      }
    }
    for (const char c : code) {
      if (c == '{') {
        if (pending) {
          classes.emplace_back(depth, pending_derived);
          pending = false;
        }
        ++depth;
      } else if (c == '}') {
        --depth;
        if (!classes.empty() && classes.back().first == depth) {
          classes.pop_back();
        }
      }
    }
  }
}

// F007 — no ad-hoc SVG emission outside src/exp/. tests/ may quote the
// markup to assert on it; this file holds the needle literal itself.
void rule_svg_emission(FileCtx& ctx) {
  if (starts_with(ctx.rel, "src/exp/") || starts_with(ctx.rel, "tests/") ||
      ctx.rel == "tools/lint/rules.cpp") {
    return;
  }
  for (std::size_t i = 0; i < ctx.src.views.text.size(); ++i) {
    // The marker lives inside a string literal — use the text view.
    if (ctx.src.views.text[i].find("<svg") != std::string::npos) {
      ctx.add("F007", static_cast<int>(i + 1),
              "ad-hoc SVG emission; render through HeatMapSource / "
              "write_svg in src/exp/");
    }
  }
}

// F008 — the per-pair probability engines are internal: only
// src/congestion/ itself and the tests may include path_prob.hpp /
// approx.hpp directly.
void rule_probability_internal_headers(FileCtx& ctx) {
  static const std::regex deep_prob_include(
      "#include\\s*\"(?:src/)?congestion/(?:path_prob|approx)\\.hpp\"");
  if (starts_with(ctx.rel, "src/congestion/") ||
      starts_with(ctx.rel, "tests/") || ctx.rel == "tools/lint/rules.cpp") {
    return;
  }
  for (std::size_t i = 0; i < ctx.src.views.text.size(); ++i) {
    // The include path itself is a string literal — use the text view.
    if (std::regex_search(ctx.src.views.text[i], deep_prob_include)) {
      ctx.add("F008", static_cast<int>(i + 1),
              "internal probability header; include "
              "\"congestion/prob_eval.hpp\" (ProbabilityEvaluator) or "
              "\"congestion/prob_kernel.hpp\" instead");
    }
  }
}

// D001 — unordered associative containers under src/: libstdc++ does not
// promise an iteration order, so any walk over one can change results
// between toolchains. Ordered containers (or sorted snapshots) keep the
// engine bit-reproducible; a lookup-only hash index can be baselined.
void rule_unordered_containers(FileCtx& ctx) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  if (!starts_with(ctx.rel, "src/")) return;
  const std::vector<Token>& t = ctx.src.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || kUnordered.count(t[i].text) == 0) {
      continue;
    }
    // `<` after the name = a type use; `>` after = the #include <...>
    // header name, which is fine.
    if (t[i + 1].kind != TokKind::kPunct || t[i + 1].text != "<") continue;
    ctx.add("D001", t[i].line,
            "std::" + t[i].text +
                " in result-affecting code: iteration order is "
                "unspecified; use an ordered container or a sorted "
                "snapshot (or baseline a lookup-only index with a "
                "justification)");
  }
}

// D002 — wall-clock reads under src/ make results depend on when the run
// happened. steady_clock (telemetry durations) is fine; calendar time is
// not.
void rule_wall_clock(FileCtx& ctx) {
  static const std::set<std::string> kWallClock = {
      "system_clock", "gettimeofday", "localtime", "gmtime"};
  if (!starts_with(ctx.rel, "src/")) return;
  const std::vector<Token>& t = ctx.src.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kWallClock.count(t[i].text) != 0) {
      ctx.add("D002", t[i].line,
              "wall-clock use (" + t[i].text +
                  "): results must not depend on the time of the run; use "
                  "steady_clock for durations and seeded Rng for variation");
      continue;
    }
    if (t[i].text == "time" && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "(" &&
        (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->"))) {
      ctx.add("D002", t[i].line,
              "wall-clock use (time()): results must not depend on the "
              "time of the run; use steady_clock for durations and seeded "
              "Rng for variation");
    }
  }
}

// D003 helper — analyze one lambda passed to a pool dispatch. Returns
// the index of the lambda's closing token (to resume scanning after it).
std::size_t check_task_lambda(FileCtx& ctx, std::size_t open_bracket) {
  const std::vector<Token>& t = ctx.src.tokens;
  // Capture list: [&], [=], [&x, y], init-captures.
  std::size_t close = open_bracket;
  int d = 0;
  for (std::size_t k = open_bracket; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == "[") ++d;
    if (t[k].text == "]" && --d == 0) {
      close = k;
      break;
    }
  }
  if (close == open_bracket) return open_bracket;
  std::set<std::string> locals;  // value captures, params, body decls
  std::set<std::string> shared;  // &-captures: one object, many tasks
  bool default_by_value = false;
  for (std::size_t k = open_bracket + 1; k < close; ++k) {
    const Token& tk = t[k];
    if (tk.kind == TokKind::kPunct && tk.text == "=" &&
        (t[k - 1].text == "[" || t[k - 1].text == ",")) {
      default_by_value = true;
    } else if (tk.kind == TokKind::kIdent) {
      if (t[k - 1].kind == TokKind::kPunct && t[k - 1].text == "&") {
        shared.insert(tk.text);
      } else {
        locals.insert(tk.text);  // by-value copy or init-capture name
      }
    }
  }
  // Optional parameter list: names are idents right before , ) or =.
  std::size_t k = close + 1;
  if (k < t.size() && t[k].kind == TokKind::kPunct && t[k].text == "(") {
    int pd = 0;
    for (; k < t.size(); ++k) {
      if (t[k].kind == TokKind::kPunct && t[k].text == "(") ++pd;
      else if (t[k].kind == TokKind::kPunct && t[k].text == ")") {
        if (--pd == 0) {
          ++k;
          break;
        }
      } else if (t[k].kind == TokKind::kIdent && k + 1 < t.size() &&
                 t[k + 1].kind == TokKind::kPunct &&
                 (t[k + 1].text == "," || t[k + 1].text == ")" ||
                  t[k + 1].text == "=")) {
        locals.insert(t[k].text);
      }
    }
  }
  // Body: first '{' (skipping mutable/noexcept/trailing return type).
  while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
  if (k >= t.size() || t[k].text != "{") return close;
  const std::size_t body = k;
  std::size_t end = body;
  int bd = 0;
  for (std::size_t m = body; m < t.size(); ++m) {
    if (t[m].kind != TokKind::kPunct) continue;
    if (t[m].text == "{") ++bd;
    if (t[m].text == "}" && --bd == 0) {
      end = m;
      break;
    }
  }
  static const std::set<std::string> kCompound = {"+=", "-=", "*=", "/="};
  for (std::size_t m = body + 1; m < end; ++m) {
    const Token& tk = t[m];
    if (tk.kind == TokKind::kIdent && m > 0) {
      // Declaration heuristic: `type name`, `type& name`, `auto name`.
      const Token& p = t[m - 1];
      if (p.kind == TokKind::kIdent && p.text != "return") {
        locals.insert(tk.text);
      } else if (p.kind == TokKind::kPunct &&
                 (p.text == "&" || p.text == "*" || p.text == "&&") &&
                 m > 1 && t[m - 2].kind == TokKind::kIdent) {
        locals.insert(tk.text);
      }
      continue;
    }
    if (tk.kind != TokKind::kPunct || kCompound.count(tk.text) == 0) continue;
    const Token& p = t[m - 1];
    // `partial[b] +=` and `(*slot) +=` end in ] or ) — per-slot writes
    // through the ordered-reduction pattern, not shared accumulation.
    if (p.kind != TokKind::kIdent) continue;
    // Walk a member chain (acc.sum, self->total) back to its base.
    std::string target = p.text;
    std::size_t ti = m - 1;
    while (ti >= 2 && t[ti - 1].kind == TokKind::kPunct &&
           (t[ti - 1].text == "." || t[ti - 1].text == "->") &&
           t[ti - 2].kind == TokKind::kIdent) {
      ti -= 2;
      target = t[ti].text;
    }
    const bool qualified = ti >= 1 && t[ti - 1].text == "::";
    if (shared.count(target) == 0) {
      if (locals.count(target) != 0) continue;
      if (default_by_value && !qualified) continue;  // captured copy
    }
    ctx.add("D003", tk.line,
            "compound assignment to \"" + target +
                "\" shared across ThreadPool tasks: float accumulation "
                "order would follow scheduling; reduce into a per-block "
                "slot and combine in block order on the caller");
  }
  return end;
}

// D003 — inside ThreadPool task lambdas, no compound assignment into
// variables shared across tasks. The deterministic fork-join contract
// allows only per-block slots combined in block order by the caller
// (thread_pool.hpp's helpers are the sanctioned implementation).
void rule_pool_accumulation(FileCtx& ctx) {
  if (!starts_with(ctx.rel, "src/") ||
      ctx.rel == "src/util/thread_pool.hpp") {
    return;
  }
  const std::vector<Token>& t = ctx.src.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "run") continue;
    if (t[i + 1].kind != TokKind::kPunct || t[i + 1].text != "(") continue;
    if (t[i - 1].text != "." && t[i - 1].text != "->") continue;
    // The statement must mention a pool-ish receiver; plain .run() on
    // anything else (e.g. a benchmark runner) is out of scope.
    std::size_t stmt = i;
    while (stmt > 0 &&
           !(t[stmt - 1].kind == TokKind::kPunct &&
             (t[stmt - 1].text == ";" || t[stmt - 1].text == "{" ||
              t[stmt - 1].text == "}"))) {
      --stmt;
    }
    bool poolish = false;
    for (std::size_t m = stmt; m < i && !poolish; ++m) {
      if (t[m].kind != TokKind::kIdent) continue;
      std::string low;
      for (const char c : t[m].text) {
        low.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      }
      poolish = low.find("pool") != std::string::npos ||
                low.find("inlinescope") != std::string::npos;
    }
    if (!poolish) continue;
    // Walk the argument list; analyze each lambda literal in it.
    int depth = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].kind != TokKind::kPunct) continue;
      if (t[j].text == "(") {
        ++depth;
      } else if (t[j].text == ")") {
        if (--depth == 0) break;
      } else if (t[j].text == "[" && depth >= 1) {
        j = check_task_lambda(ctx, j);
      }
    }
  }
}

/// Parse every quoted string inside the brace block that follows the
/// first occurrence of `array_marker` (e.g. "kCounterNames[]").
std::set<std::string> registry_array(const std::string& text,
                                     const std::string& array_marker) {
  std::set<std::string> names;
  const std::size_t at = text.find(array_marker);
  if (at == std::string::npos) return names;
  const std::size_t open = text.find('{', at);
  const std::size_t close = text.find("};", at);
  if (open == std::string::npos || close == std::string::npos) return names;
  const std::string block = text.substr(open, close - open);
  static const std::regex quoted("\"([^\"]*)\"");
  for (auto it = std::sregex_iterator(block.begin(), block.end(), quoted);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

std::string to_hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::uint64_t from_hex(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::string globals_key() { return to_hex(content_hash(kLintVersion)); }

}  // namespace

FileAnalysis analyze_file(const std::string& rel,
                          const std::string& content) {
  FileAnalysis out;
  out.hash = content_hash(content);
  const std::vector<std::string> raw = split_lines(content);
  const TokenizedSource src = tokenize(content);
  FileCtx ctx{rel, raw, src, &out};
  extract_includes(ctx);
  rule_env_discipline(ctx);
  rule_trace_names(ctx);
  rule_umbrella_includes(ctx);
  rule_float_equality(ctx);
  rule_rng_discipline(ctx);
  rule_missing_override(ctx);
  rule_svg_emission(ctx);
  rule_probability_internal_headers(ctx);
  rule_unordered_containers(ctx);
  rule_wall_clock(ctx);
  rule_pool_accumulation(ctx);
  return out;
}

std::vector<Finding> aggregate_findings(
    const std::vector<std::pair<std::string, const FileAnalysis*>>& files,
    const std::string& readme, bool schema_exists,
    const std::string& schema_content) {
  std::vector<Finding> findings;

  // F001 — every FICON_* knob read anywhere must be in the README knob
  // table. First reader (in path order) carries the finding.
  std::set<std::string> reported_knobs;
  for (const auto& [rel, fa] : files) {
    for (const KnobRead& k : fa->knobs) {
      if (readme.find(k.knob) != std::string::npos) continue;
      if (!reported_knobs.insert(k.knob).second) continue;
      findings.push_back(
          {"F001", rel, k.line,
           "knob " + k.knob + " is not documented in the README knob table",
           k.knob});
    }
  }

  // F002 — emitted trace names must exist in the schema-v1 registry.
  if (!schema_exists) {
    findings.push_back({"F002", "src/obs/schema.hpp", 1,
                        "schema registry header is missing", "missing"});
    return findings;
  }
  const std::set<std::string> record_types =
      registry_array(schema_content, "kRecordTypes[]");
  std::set<std::string> value_names, row_names;
  for (const char* marker : {"kCounterNames[]", "kPhaseNames[]",
                             "kCacheNames[]", "kStrategyNames[]"}) {
    for (const std::string& n : registry_array(schema_content, marker)) {
      value_names.insert(n);
    }
  }
  for (const char* marker : {"kCacheNames[]", "kStrategyNames[]"}) {
    for (const std::string& n : registry_array(schema_content, marker)) {
      row_names.insert(n);
    }
  }
  for (const auto& [rel, fa] : files) {
    for (const TraceName& tn : fa->traces) {
      if (tn.kind == "type" && record_types.count(tn.name) == 0) {
        findings.push_back({"F002", rel, tn.line,
                            "record type \"" + tn.name +
                                "\" is not registered in obs/schema.hpp",
                            tn.name});
      } else if (tn.kind == "row" && row_names.count(tn.name) == 0) {
        findings.push_back({"F002", rel, tn.line,
                            "cache/strategy row \"" + tn.name +
                                "\" is not registered in obs/schema.hpp",
                            tn.name});
      } else if (tn.kind == "schema_row" &&
                 record_types.count(tn.name) == 0) {
        findings.push_back({"F002", rel, tn.line,
                            "validator record type \"" + tn.name +
                                "\" is not registered in obs/schema.hpp",
                            tn.name});
      }
    }
  }
  return findings;
}

std::map<std::string, FileAnalysis> load_cache(const fs::path& path) {
  std::map<std::string, FileAnalysis> out;
  if (!fs::exists(path)) return out;
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto value = ficon::obs::parse_json(buf.str());
  if (!value.has_value() || !value->is_object()) return out;
  const ficon::obs::JsonValue* schema = value->find("schema");
  const ficon::obs::JsonValue* globals = value->find("globals");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "ficon-lint-cache-v1" || globals == nullptr ||
      !globals->is_string() || globals->string != globals_key()) {
    return out;  // different analyzer version: drop everything
  }
  const ficon::obs::JsonValue* files = value->find("files");
  if (files == nullptr || !files->is_object()) return out;
  const auto str = [](const ficon::obs::JsonValue& v, const char* key,
                      std::string* dst) {
    const ficon::obs::JsonValue* m = v.find(key);
    if (m == nullptr || !m->is_string()) return false;
    *dst = m->string;
    return true;
  };
  const auto num = [](const ficon::obs::JsonValue& v, const char* key,
                      int* dst) {
    const ficon::obs::JsonValue* m = v.find(key);
    if (m == nullptr || !m->is_number()) return false;
    *dst = static_cast<int>(m->number);
    return true;
  };
  for (const auto& [rel, entry] : files->object) {
    FileAnalysis fa;
    std::string hash;
    if (!str(entry, "hash", &hash)) continue;
    fa.hash = from_hex(hash);
    bool ok = true;
    const auto each = [&](const char* key, const auto& fn) {
      const ficon::obs::JsonValue* list = entry.find(key);
      if (list == nullptr) return;
      if (list->type != ficon::obs::JsonValue::Type::kArray) {
        ok = false;
        return;
      }
      for (const ficon::obs::JsonValue& item : list->array) {
        if (!fn(item)) {
          ok = false;
          return;
        }
      }
    };
    each("findings", [&](const ficon::obs::JsonValue& v) {
      Finding f;
      f.file = rel;
      return str(v, "rule", &f.rule) && num(v, "line", &f.line) &&
             str(v, "message", &f.message) && str(v, "token", &f.token) &&
             (fa.findings.push_back(std::move(f)), true);
    });
    each("knobs", [&](const ficon::obs::JsonValue& v) {
      KnobRead k;
      return str(v, "knob", &k.knob) && num(v, "line", &k.line) &&
             (fa.knobs.push_back(std::move(k)), true);
    });
    each("traces", [&](const ficon::obs::JsonValue& v) {
      TraceName t;
      return str(v, "kind", &t.kind) && str(v, "name", &t.name) &&
             num(v, "line", &t.line) &&
             (fa.traces.push_back(std::move(t)), true);
    });
    each("includes", [&](const ficon::obs::JsonValue& v) {
      IncludeRef r;
      return str(v, "path", &r.path) && num(v, "line", &r.line) &&
             (fa.includes.push_back(std::move(r)), true);
    });
    if (ok) out.emplace(rel, std::move(fa));
  }
  return out;
}

bool save_cache(const fs::path& path,
                const std::map<std::string, FileAnalysis>& files) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"schema\": \"ficon-lint-cache-v1\", \"globals\": \""
      << globals_key() << "\",\n \"files\": {";
  bool first_file = true;
  for (const auto& [rel, fa] : files) {
    out << (first_file ? "\n" : ",\n");
    first_file = false;
    out << "  \"" << json_escape(rel) << "\": {\"hash\": \""
        << to_hex(fa.hash) << "\",\n   \"findings\": [";
    bool first = true;
    for (const Finding& f : fa.findings) {
      out << (first ? "" : ",\n     ") << "{\"rule\": \"" << f.rule
          << "\", \"line\": " << f.line << ", \"message\": \""
          << json_escape(f.message) << "\", \"token\": \""
          << json_escape(f.token) << "\"}";
      first = false;
    }
    out << "],\n   \"knobs\": [";
    first = true;
    for (const KnobRead& k : fa.knobs) {
      out << (first ? "" : ", ") << "{\"knob\": \"" << json_escape(k.knob)
          << "\", \"line\": " << k.line << "}";
      first = false;
    }
    out << "],\n   \"traces\": [";
    first = true;
    for (const TraceName& t : fa.traces) {
      out << (first ? "" : ", ") << "{\"kind\": \"" << t.kind
          << "\", \"name\": \"" << json_escape(t.name)
          << "\", \"line\": " << t.line << "}";
      first = false;
    }
    out << "],\n   \"includes\": [";
    first = true;
    for (const IncludeRef& r : fa.includes) {
      out << (first ? "" : ", ") << "{\"path\": \"" << json_escape(r.path)
          << "\", \"line\": " << r.line << "}";
      first = false;
    }
    out << "]}";
  }
  out << "\n }\n}\n";
  return static_cast<bool>(out);
}

}  // namespace ficon::lint
