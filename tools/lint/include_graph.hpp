// ficon_lint v2 include graph & layering — per-TU include extraction
// resolved against compile_commands.json, checked against the declared
// module DAG in .ficon-layers.
//
// Resolution mirrors the build: a quoted include is looked up relative
// to the including file's directory first, then in each -I directory
// from the compile database (CMAKE_EXPORT_COMPILE_COMMANDS is always on,
// so build/compile_commands.json is the default source), then under
// src/ as a fallback so the analyzer still works on a tree that has
// never been configured. Only includes that land on a scanned repo file
// become graph edges; system headers are ignored.
//
// The layering manifest groups src/ modules:
//
//   # group: member-dirs -> allowed-dep-groups
//   base: geom obs util
//   route: route -> base circuit
//
// Edges inside a group are free (util and obs are mutually dependent by
// design); an edge from group A to group B must appear in A's dep list
// (L001). The group dep graph itself and the file-level include graph
// must both be acyclic (L002).
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint/report.hpp"

namespace ficon::lint {

/// One quoted #include directive, as written.
struct IncludeRef {
  std::string path;  // the string between the quotes
  int line = 0;      // 1-based
};

/// Include search directories extracted from compile_commands.json.
struct CompileInfo {
  bool loaded = false;
  std::vector<std::filesystem::path> include_dirs;  // absolute, in order
};

/// Parse a compile database. Returns nullopt and fills `error` when the
/// file exists but cannot be parsed; a clean "not loaded" CompileInfo
/// when it does not exist.
std::optional<CompileInfo> load_compile_commands(
    const std::filesystem::path& path, std::string* error);

/// Resolve a quoted include from `from_rel` to a repo-relative path in
/// `known_files`, or nullopt for external/system headers.
std::optional<std::string> resolve_include(
    const std::string& from_rel, const std::string& include,
    const std::set<std::string>& known_files,
    const std::filesystem::path& repo, const CompileInfo& compile);

struct LayerGroup {
  std::string name;
  std::vector<std::string> members;  // src/ module directory names
  std::vector<std::string> deps;     // allowed dep group names
};

/// Parse the .ficon-layers manifest text. Returns nullopt and fills
/// `error` on malformed lines, duplicate members, or unknown dep names.
std::optional<std::vector<LayerGroup>> parse_layers(const std::string& text,
                                                    std::string* error);

/// Run the layering rules over the resolved src/ include graph.
/// `includes` maps repo-relative file -> resolved repo-relative targets
/// (with the line of the directive). Produces L001 and L002 findings.
std::vector<Finding> layering_findings(
    const std::map<std::string, std::vector<std::pair<std::string, int>>>&
        includes,
    const std::vector<LayerGroup>& groups);

}  // namespace ficon::lint
