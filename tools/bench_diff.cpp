// bench_diff — field-by-field comparison of two ficon-bench-v1 reports.
//
// The perf-regression gate: compares a freshly emitted BENCH_*.json
// against a committed baseline (bench/baselines/) and fails when a
// metric moved the wrong way by more than its threshold. Semantics:
//
//  * Reports must both be ficon-bench-v1 (see docs/BENCHMARKS.md) and
//    agree on the "bench" name; rows are matched by index and the row
//    counts must match.
//  * String values are identity fields (fingerprint, tier, circuit):
//    any mismatch is a violation regardless of thresholds.
//  * Null values (non-finite measurements) are skipped.
//  * Numeric values compare by relative delta against a per-metric
//    threshold (default --threshold, overridable with --metric key=T).
//    Direction is inferred from the key: `*_per_s` / `*_speedup` are
//    higher-better, `*_ms` / `*_mib` / `*_ns` / `*_bytes` / `seconds`
//    are lower-better, everything else is an identity metric that may
//    not drift in either direction (e.g. final_cost, bit_identical).
//  * A key present in one report but not the other is a violation
//    (schema drift) unless filtered out or on the optional-key list
//    (built in: peak_rss_mib, which benches omit where the platform
//    cannot measure it; extend with --optional key[,key]). Optional
//    keys present in both reports are still compared.
//  * The optional "manifest" member (machine provenance) is reported
//    but never compared — baselines are expected to come from a
//    different machine.
//
// Usage:
//   bench_diff [options] BASELINE CURRENT
//     --threshold F      default relative threshold (default 0.10)
//     --metric key=F     per-metric threshold override (repeatable)
//     --only key[,key]   compare only these metrics
//     --skip key[,key]   never compare these metrics
//     --require key[,key]  keys that must be present (meta or every row)
//                        in both reports
//     --optional key[,key]  additional keys exempt from key-drift checks
//
// Exit codes follow the project lint convention: 0 clean, 1 regression
// or schema violation, 2 unreadable/unparsable input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using ficon::obs::JsonValue;

struct Options {
  double threshold = 0.10;
  std::map<std::string, double> metric_thresholds;
  std::vector<std::string> only;
  std::vector<std::string> skip;
  std::vector<std::string> require;
  // Keys that may be absent from either report without counting as key
  // drift (still compared when both sides carry them). Seeded with the
  // platform-dependent metrics benches omit where unmeasurable — see
  // peak_rss_mib in bench/bench_common.hpp — and extensible with
  // --optional.
  std::vector<std::string> optional = {"peak_rss_mib"};
};

enum class Direction { kHigherBetter, kLowerBetter, kIdentity };

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Direction direction_of(const std::string& key) {
  if (ends_with(key, "_per_s") || ends_with(key, "_speedup")) {
    return Direction::kHigherBetter;
  }
  if (ends_with(key, "_ms") || ends_with(key, "_mib") ||
      ends_with(key, "_ns") || ends_with(key, "_bytes") ||
      key == "seconds") {
    return Direction::kLowerBetter;
  }
  return Direction::kIdentity;
}

bool contains(const std::vector<std::string>& keys, const std::string& key) {
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

bool compared(const Options& options, const std::string& key) {
  if (contains(options.skip, key)) return false;
  return options.only.empty() || contains(options.only, key);
}

std::string fmt_pct(double r) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.2f%%", 100.0 * r);
  return buffer;
}

struct Diff {
  int rc = 0;
  long long metrics = 0;
  long long regressions = 0;

  void fail(const std::string& message) {
    std::cerr << "bench_diff: " << message << "\n";
    rc = std::max(rc, 1);
  }
};

/// Compare one (baseline, current) scalar pair under the key's
/// direction and threshold.
void compare_value(Diff& diff, const Options& options,
                   const std::string& where, const std::string& key,
                   const JsonValue& base, const JsonValue& cur) {
  if (base.type != cur.type) {
    diff.fail(where + "." + key + ": type changed");
    return;
  }
  if (base.type == JsonValue::Type::kNull) {
    return;  // non-finite measurement, nothing to hold
  }
  ++diff.metrics;
  if (base.is_string()) {
    if (base.string != cur.string) {
      ++diff.regressions;
      diff.fail(where + "." + key + ": \"" + base.string + "\" -> \"" +
                cur.string + "\" (identity field changed)");
    }
    return;
  }
  const double denom = std::max(std::abs(base.number),
                                std::abs(cur.number));
  if (denom <= 0.0) return;  // both zero
  const double r = (cur.number - base.number) / denom;
  const auto it = options.metric_thresholds.find(key);
  const double threshold =
      it != options.metric_thresholds.end() ? it->second
                                            : options.threshold;
  const Direction direction = direction_of(key);
  const bool regressed =
      (direction == Direction::kHigherBetter && r < -threshold) ||
      (direction == Direction::kLowerBetter && r > threshold) ||
      (direction == Direction::kIdentity && std::abs(r) > threshold);
  if (regressed) {
    ++diff.regressions;
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%s.%s: %.17g -> %.17g (%s, threshold %.2f%%)",
                  where.c_str(), key.c_str(), base.number, cur.number,
                  fmt_pct(r).c_str(), 100.0 * threshold);
    diff.fail(buffer);
  }
}

/// Compare two scalar objects (meta, or one row) key by key.
void compare_object(Diff& diff, const Options& options,
                    const std::string& where, const JsonValue& base,
                    const JsonValue& cur) {
  for (const auto& [key, base_value] : base.object) {
    if (!compared(options, key)) continue;
    const JsonValue* cur_value = cur.find(key);
    if (cur_value == nullptr) {
      // Optional metrics (platform measurements like peak_rss_mib) may
      // be absent from one side — e.g. a Linux-built baseline held
      // against a sandboxed run — without being schema drift.
      if (!contains(options.optional, key)) {
        diff.fail(where + "." + key + ": dropped from current report");
      }
      continue;
    }
    compare_value(diff, options, where, key, base_value, *cur_value);
  }
  for (const auto& [key, cur_value] : cur.object) {
    if (!compared(options, key)) continue;
    if (base.find(key) == nullptr && !contains(options.optional, key)) {
      diff.fail(where + "." + key + ": not in baseline report");
    }
  }
}

std::optional<JsonValue> load_report(const std::string& path, int& rc) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "bench_diff: " << path << ": cannot open\n";
    rc = 2;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  auto doc = ficon::obs::parse_json(buffer.str(), &error);
  if (!doc) {
    std::cerr << "bench_diff: " << path << ": not JSON: " << error << "\n";
    rc = 2;
    return std::nullopt;
  }
  if (!doc->is_object()) {
    std::cerr << "bench_diff: " << path << ": top level must be an object\n";
    rc = std::max(rc, 1);
    return std::nullopt;
  }
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "ficon-bench-v1") {
    std::cerr << "bench_diff: " << path << ": not a ficon-bench-v1 report\n";
    rc = std::max(rc, 1);
    return std::nullopt;
  }
  return doc;
}

/// --require: the key must appear in meta or in every row.
bool has_required_key(const JsonValue& report, const std::string& key) {
  const JsonValue* meta = report.find("meta");
  if (meta != nullptr && meta->is_object() && meta->find(key) != nullptr) {
    return true;
  }
  const JsonValue* rows = report.find("rows");
  if (rows == nullptr || rows->type != JsonValue::Type::kArray ||
      rows->array.empty()) {
    return false;
  }
  for (const JsonValue& row : rows->array) {
    if (!row.is_object() || row.find(key) == nullptr) return false;
  }
  return true;
}

void append_keys(std::vector<std::string>& out, const std::string& csv) {
  std::istringstream keys(csv);
  std::string key;
  while (std::getline(keys, key, ',')) {
    if (!key.empty()) out.push_back(key);
  }
}

[[noreturn]] void usage(int rc) {
  (rc == 0 ? std::cout : std::cerr)
      << "usage: bench_diff [--threshold F] [--metric key=F]...\n"
         "                  [--only key[,key]] [--skip key[,key]]\n"
         "                  [--require key[,key]] [--optional key[,key]]\n"
         "                  BASELINE CURRENT\n";
  std::exit(rc);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    if (arg == "--threshold" && i + 1 < argc) {
      options.threshold = std::stod(argv[++i]);
    } else if (arg == "--metric" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) usage(2);
      options.metric_thresholds[spec.substr(0, eq)] =
          std::stod(spec.substr(eq + 1));
    } else if (arg == "--only" && i + 1 < argc) {
      append_keys(options.only, argv[++i]);
    } else if (arg == "--skip" && i + 1 < argc) {
      append_keys(options.skip, argv[++i]);
    } else if (arg == "--require" && i + 1 < argc) {
      append_keys(options.require, argv[++i]);
    } else if (arg == "--optional" && i + 1 < argc) {
      append_keys(options.optional, argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      usage(2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) usage(2);

  int rc = 0;
  const auto baseline = load_report(paths[0], rc);
  const auto current = load_report(paths[1], rc);
  if (!baseline || !current) return rc;

  Diff diff;
  const JsonValue* base_bench = baseline->find("bench");
  const JsonValue* cur_bench = current->find("bench");
  if (base_bench == nullptr || cur_bench == nullptr ||
      !base_bench->is_string() || !cur_bench->is_string() ||
      base_bench->string != cur_bench->string) {
    // Keep going: the metric comparison below still surfaces every other
    // problem in one run instead of stopping at the first.
    diff.fail("reports disagree on the \"bench\" name");
  }
  for (const std::string& key : options.require) {
    if (!has_required_key(*baseline, key)) {
      diff.fail(paths[0] + ": required key \"" + key + "\" missing");
    }
    if (!has_required_key(*current, key)) {
      diff.fail(paths[1] + ": required key \"" + key + "\" missing");
    }
  }
  for (const auto* report : {&*baseline, &*current}) {
    const JsonValue* manifest = report->find("manifest");
    if (manifest != nullptr && manifest->is_object()) {
      std::cout << "bench_diff: manifest"
                << (report == &*baseline ? " (baseline):" : " (current):");
      for (const auto& [key, value] : manifest->object) {
        std::cout << ' ' << key << '=';
        if (value.is_string()) {
          std::cout << value.string;
        } else if (value.is_number()) {
          std::cout << value.number;
        } else {
          std::cout << "?";
        }
      }
      std::cout << "\n";
    }
  }

  const JsonValue* base_meta = baseline->find("meta");
  const JsonValue* cur_meta = current->find("meta");
  if (base_meta != nullptr && cur_meta != nullptr &&
      base_meta->is_object() && cur_meta->is_object()) {
    compare_object(diff, options, "meta", *base_meta, *cur_meta);
  } else {
    diff.fail("both reports must carry a \"meta\" object");
  }
  const JsonValue* base_rows = baseline->find("rows");
  const JsonValue* cur_rows = current->find("rows");
  if (base_rows == nullptr || cur_rows == nullptr ||
      base_rows->type != JsonValue::Type::kArray ||
      cur_rows->type != JsonValue::Type::kArray) {
    diff.fail("both reports must carry a \"rows\" array");
  } else {
    if (base_rows->array.size() != cur_rows->array.size()) {
      // A structural failure, but the shared prefix still compares below
      // so every per-metric regression lands in the same run.
      diff.fail("row count changed: " +
                std::to_string(base_rows->array.size()) + " -> " +
                std::to_string(cur_rows->array.size()));
    }
    const std::size_t common =
        std::min(base_rows->array.size(), cur_rows->array.size());
    for (std::size_t i = 0; i < common; ++i) {
      const JsonValue& base_row = base_rows->array[i];
      const JsonValue& cur_row = cur_rows->array[i];
      if (!base_row.is_object() || !cur_row.is_object()) {
        diff.fail("rows[" + std::to_string(i) + "] must be objects");
        continue;
      }
      compare_object(diff, options, "rows[" + std::to_string(i) + "]",
                     base_row, cur_row);
    }
  }

  std::cout << "bench_diff: " << diff.metrics << " metric(s) compared, "
            << diff.regressions << " regression(s)";
  if (diff.rc == 0) std::cout << " — clean";
  std::cout << "\n";
  return diff.rc;
}
