// Shared configuration for the table/figure reproduction benches.
//
// Every bench prints a banner describing how the run is scaled relative to
// the paper (20 seeds, full annealing schedules on a 2.4 GHz P4). Set
// FICON_SEEDS=20 FICON_SCALE=1.0 to reproduce at paper scale.
#pragma once

#include <string>

#include "ficon.hpp"

namespace ficon::bench {

/// Annealing options tuned for the reproduction benches.
inline FloorplanOptions tuned_options(const ExperimentConfig& config) {
  FloorplanOptions o;
  o.effort = config.scale;
  o.anneal.cooling = 0.90;
  o.anneal.max_stall_temperatures = 8;
  o.anneal.stop_temperature_ratio = 1e-4;
  return o;
}

/// Congestion weight for the Table 2/3 objective. The paper does not state
/// its alpha/beta/gamma; 0.4 reproduces its trade-off at our reduced SA
/// effort (judged congestion clearly improves at a few percent of area /
/// wire penalty — see the gamma sweep in EXPERIMENTS.md). FICON_GAMMA
/// overrides.
inline double congestion_gamma() { return env_double("FICON_GAMMA", 0.4); }

/// The paper's per-circuit IR-grid fine pitch (Table 2): 60x60 um^2 for
/// apte, 30x30 um^2 for the others.
inline IrregularGridParams paper_ir_params(const std::string& circuit) {
  IrregularGridParams p;
  const double pitch = circuit == "apte" ? 60.0 : 30.0;
  p.grid_w = pitch;
  p.grid_h = pitch;
  return p;
}

/// Same pitches but forcing the paper's actual algorithm: Theorem 1 per
/// region, with the library's accuracy-first exact fallbacks narrowed so
/// the approximation really is what runs on MCNC-scale ranges.
inline IrregularGridParams paper_mode_params(const std::string& circuit) {
  IrregularGridParams p = paper_ir_params(circuit);
  p.strategy = IrEvalStrategy::kTheorem1;
  p.approx.narrow_range_threshold = 5;
  p.approx.small_region_threshold = 4;
  return p;
}

}  // namespace ficon::bench
