// Shared configuration and reporting for the benches.
//
// Every bench prints a banner describing how the run is scaled relative to
// the paper (20 seeds, full annealing schedules on a 2.4 GHz P4). Set
// FICON_SEEDS=20 FICON_SCALE=1.0 to reproduce at paper scale.
//
// Machine-readable results go through one path: BenchReport emits
// BENCH_<name>.json files in the "ficon-bench-v1" schema documented in
// docs/BENCHMARKS.md and checked by tools/bench_lint. FICON_BENCH_OUT
// picks the output directory (default: current directory).
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ficon.hpp"

namespace ficon::bench {

/// Mean wall-clock milliseconds of `fn` over `repeats` runs. With
/// `warmup`, one untimed call precedes the measurement (pages in partial
/// grids, fills log-factorial caches).
inline double timed_ms(const std::function<void()>& fn, int repeats,
                       bool warmup = false) {
  FICON_REQUIRE(repeats > 0, "need at least one repeat");
  if (warmup) fn();
  Stopwatch sw;
  for (int i = 0; i < repeats; ++i) fn();
  return sw.milliseconds() / repeats;
}

/// Peak resident set size of this process in MiB (Linux VmHWM — a
/// high-water mark, so it is monotone over a run: measure size tiers in
/// ascending order). nullopt where /proc/self/status or the VmHWM line
/// is unavailable (non-Linux, sandboxed): benches must then OMIT the
/// metric from their report rather than bake a fake 0.0 MiB into a
/// baseline that bench_diff would hold future runs against. The key is
/// on the optional-metric exemption list of bench_lint/bench_diff.
inline std::optional<double> peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;  // kB -> MiB
    }
  }
  return std::nullopt;
}

/// @brief Collects one bench run's metrics and writes BENCH_<name>.json.
///
/// Schema "ficon-bench-v1": a single object with "schema", "bench", a
/// flat "meta" object of run-level scalars, and "rows" — one object per
/// measured configuration (size tier, circuit, thread count, ...).
/// Doubles are printed with %.17g so values round-trip bit-exactly (the
/// trace writer's convention); non-finite values become null.
class BenchReport {
 public:
  /// The constructor stamps the machine manifest: git sha (from the
  /// FICON_GIT_SHA knob — CI sets it, local runs record "unknown"),
  /// compiler, configured thread count and hardware concurrency.
  /// Benches append workload identity (e.g. netlist fingerprints) via
  /// manifest(). The manifest is provenance, not a metric: bench_diff
  /// prints it but never compares it.
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {
    add(manifest_, "git_sha", quote(env_string("FICON_GIT_SHA", "unknown")));
    add(manifest_, "compiler", quote(compiler_id()));
    add(manifest_, "threads",
        std::to_string(static_cast<long long>(ThreadPool::env_threads())));
    add(manifest_, "hardware_threads",
        std::to_string(static_cast<long long>(
            std::thread::hardware_concurrency())));
  }

  /// Run-level scalar ("seed", "threads", "circuit", ...).
  void meta(const std::string& key, double v) { add(meta_, key, num(v)); }
  void meta(const std::string& key, long long v) {
    add(meta_, key, std::to_string(v));
  }
  void meta(const std::string& key, const std::string& v) {
    add(meta_, key, quote(v));
  }

  /// Machine/workload provenance ("netlist_fingerprint", ...).
  void manifest(const std::string& key, double v) {
    add(manifest_, key, num(v));
  }
  void manifest(const std::string& key, long long v) {
    add(manifest_, key, std::to_string(v));
  }
  void manifest(const std::string& key, const std::string& v) {
    add(manifest_, key, quote(v));
  }

  /// Start the next row; subsequent value() calls fill it.
  void begin_row() { rows_.emplace_back(); }
  void value(const std::string& key, double v) {
    add(rows_.back(), key, num(v));
  }
  void value(const std::string& key, long long v) {
    add(rows_.back(), key, std::to_string(v));
  }
  void value(const std::string& key, const std::string& v) {
    add(rows_.back(), key, quote(v));
  }

  std::size_t row_count() const { return rows_.size(); }

  void write(std::ostream& os) const {
    os << "{\n  \"schema\": \"ficon-bench-v1\",\n  \"bench\": "
       << quote(bench_) << ",\n  \"manifest\": " << object(manifest_)
       << ",\n  \"meta\": " << object(meta_)
       << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << (i == 0 ? "\n    " : ",\n    ") << object(rows_[i]);
    }
    os << "\n  ]\n}\n";
  }

  /// Write BENCH_<bench>.json under $FICON_BENCH_OUT (default ".").
  /// @return the path written.
  std::string write_file() const {
    const std::string path = env_string("FICON_BENCH_OUT", ".") + "/BENCH_" +
                             bench_ + ".json";
    std::ofstream os(path);
    FICON_REQUIRE(os.good(), "cannot open bench report for writing");
    write(os);
    return path;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static void add(Fields& fields, const std::string& key,
                  std::string encoded) {
    fields.emplace_back(key, std::move(encoded));
  }

  static std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
  }

  static std::string num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  static std::string object(const Fields& fields) {
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += quote(fields[i].first) + ": " + fields[i].second;
    }
    out += "}";
    return out;
  }

  std::string bench_;
  Fields manifest_;
  Fields meta_;
  std::vector<Fields> rows_;
};

/// Annealing options tuned for the reproduction benches.
inline FloorplanOptions tuned_options(const ExperimentConfig& config) {
  FloorplanOptions o;
  o.effort = config.scale;
  o.anneal.cooling = 0.90;
  o.anneal.max_stall_temperatures = 8;
  o.anneal.stop_temperature_ratio = 1e-4;
  return o;
}

/// Congestion weight for the Table 2/3 objective. The paper does not state
/// its alpha/beta/gamma; 0.4 reproduces its trade-off at our reduced SA
/// effort (judged congestion clearly improves at a few percent of area /
/// wire penalty — see the gamma sweep in EXPERIMENTS.md). FICON_GAMMA
/// overrides.
inline double congestion_gamma() { return env_double("FICON_GAMMA", 0.4); }

/// The paper's per-circuit IR-grid fine pitch (Table 2): 60x60 um^2 for
/// apte, 30x30 um^2 for the others.
inline IrregularGridParams paper_ir_params(const std::string& circuit) {
  IrregularGridParams p;
  const double pitch = circuit == "apte" ? 60.0 : 30.0;
  p.grid_w = pitch;
  p.grid_h = pitch;
  return p;
}

/// Same pitches but forcing the paper's actual algorithm: Theorem 1 per
/// region, with the library's accuracy-first exact fallbacks narrowed so
/// the approximation really is what runs on MCNC-scale ranges.
inline IrregularGridParams paper_mode_params(const std::string& circuit) {
  IrregularGridParams p = paper_ir_params(circuit);
  p.strategy = IrEvalStrategy::kTheorem1;
  p.approx.narrow_range_threshold = 5;
  p.approx.small_region_threshold = 4;
  return p;
}

}  // namespace ficon::bench
