// Beyond the paper: validate the validators. The paper judges floorplans
// with a fine fixed-grid *estimator*; this bench routes the decomposed nets
// with the capacitated monotone global router and correlates every
// estimator — IR-grid (30um), fixed-grid at several pitches — against the
// congestion the router actually realizes, across a spread of placements.
//
// Expected shape: all estimators correlate strongly with routed usage
// (the premise of probabilistic congestion analysis), with the fine judging
// pitch at the top — which justifies the paper's use of a 10um fixed grid
// as referee.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_T4_CIRCUIT", "ami33");
  const int placements = std::max(6, env_int("FICON_PLACEMENTS", 10));
  std::cout << "Router validation — estimator vs routed congestion over "
            << placements << " placements (" << circuit << ")\n";
  print_scale_banner(config);

  const Netlist netlist = make_mcnc(circuit);

  // A spread of placement qualities: annealed at different efforts/seeds.
  struct Sample {
    Placement placement;
    std::vector<TwoPinNet> nets;
  };
  std::vector<Sample> samples;
  for (int i = 0; i < placements; ++i) {
    FloorplanOptions o = bench::tuned_options(config);
    o.effort = 0.1 + 0.1 * (i % 4);
    o.seed = static_cast<std::uint64_t>(100 + i);
    Sample s;
    s.placement = Floorplanner(netlist, o).run().placement;
    s.nets = decompose_to_two_pin(netlist, s.placement);
    samples.push_back(std::move(s));
  }

  RouterParams rp;
  rp.pitch = env_double("FICON_ROUTER_PITCH", 20.0);
  rp.capacity = env_double("FICON_ROUTER_CAPACITY", 3.0);
  rp.ripup_passes = 2;
  const GlobalRouter router(rp);
  std::vector<double> routed;
  for (const Sample& s : samples) {
    routed.push_back(
        router.route(s.nets, s.placement.chip).top_fraction_usage(0.10));
  }

  TextTable table({"estimator", "corr vs routed top-10% usage"});
  const auto fixed_row = [&](double pitch) {
    const FixedGridModel model(FixedGridParams{pitch, pitch, 0.10});
    std::vector<double> est;
    for (const Sample& s : samples) {
      est.push_back(model.cost(s.nets, s.placement.chip));
    }
    table.add_row({"fixed grid " + fmt_fixed(pitch, 0) + "um",
                   fmt_fixed(pearson(est, routed), 3)});
  };
  fixed_row(100.0);
  fixed_row(50.0);
  fixed_row(10.0);

  const IrregularGridModel ir(bench::paper_ir_params(circuit));
  std::vector<double> ir_est;
  for (const Sample& s : samples) {
    ir_est.push_back(ir.cost(s.nets, s.placement.chip));
  }
  table.add_row({"IR-grid 30um (banded exact)",
                 fmt_fixed(pearson(ir_est, routed), 3)});

  const IrregularGridModel ir_paper(bench::paper_mode_params(circuit));
  std::vector<double> irp_est;
  for (const Sample& s : samples) {
    irp_est.push_back(ir_paper.cost(s.nets, s.placement.chip));
  }
  table.add_row({"IR-grid 30um (Theorem 1 paper mode)",
                 fmt_fixed(pearson(irp_est, routed), 3)});

  table.print(std::cout);
  std::cout << "router: pitch " << rp.pitch << " um, capacity " << rp.capacity
            << " tracks/cell, monotone min-congestion DP + rip-up\n";
  return 0;
}
