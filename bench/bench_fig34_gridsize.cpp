// Figures 3 and 4 reproduction (the motivation for the Irregular-Grid):
// on the fixed-size-grid model,
//   * the congestion picture depends on the arbitrary grid pitch
//     (Figure 3: the hottest cells move between a 4x4 and a 6x6 cut), and
//   * finer pitches waste work on near-empty cells (Figure 4: at 12x8,
//     "more than a half of grids only being passed through by one net").
#include <iostream>
#include <vector>

#include "ficon.hpp"

using namespace ficon;

namespace {

/// Five nets clustered on the right half of a 600x400 chip, echoing the
/// didactic layouts of Figures 3/4.
std::vector<TwoPinNet> didactic_nets() {
  return {
      {Point{320, 60}, Point{560, 220}, 0},
      {Point{360, 100}, Point{520, 340}, 1},
      {Point{400, 40}, Point{580, 300}, 2},
      {Point{340, 180}, Point{590, 360}, 3},
      {Point{50, 60}, Point{220, 160}, 4},   // one lonely net on the left
      {Point{380, 250}, Point{540, 390}, 5},
  };
}

struct HotCell {
  int x, y;
  double value;
};

HotCell hottest(const CongestionMap& map) {
  HotCell best{0, 0, -1.0};
  for (int y = 0; y < map.grid().ny(); ++y) {
    for (int x = 0; x < map.grid().nx(); ++x) {
      if (map.at(x, y) > best.value) best = HotCell{x, y, map.at(x, y)};
    }
  }
  return best;
}

CongestionMap evaluate_counts(const std::vector<TwoPinNet>& nets,
                              const Rect& chip, int nx, int ny) {
  const GridSpec grid = GridSpec::from_counts(chip, nx, ny);
  const FixedGridModel model(
      FixedGridParams{grid.pitch_x(), grid.pitch_y(), 0.10});
  return model.evaluate(nets, chip);
}

}  // namespace

int main() {
  const Rect chip{0, 0, 600, 400};
  const auto nets = didactic_nets();

  std::cout << "Figure 3 — the hot spot moves with the grid pitch\n";
  TextTable fig3({"cut", "hottest cell (fraction of chip)", "value",
                  "top-10% cost"});
  for (const auto& [nx, ny] : std::vector<std::pair<int, int>>{
           {4, 4}, {6, 6}, {12, 8}, {24, 16}}) {
    const CongestionMap map = evaluate_counts(nets, chip, nx, ny);
    const HotCell hot = hottest(map);
    // Built up with += (operator+ on a char* left operand trips gcc 12's
    // -Wrestrict false positive, PR105329, once inlining gets deep).
    std::string where = "(";
    where += fmt_fixed((hot.x + 0.5) / nx, 2);
    where += ", ";
    where += fmt_fixed((hot.y + 0.5) / ny, 2);
    where += ")";
    fig3.add_row({std::to_string(nx) + "x" + std::to_string(ny), where,
                  fmt_fixed(hot.value, 3),
                  fmt_fixed(map.top_fraction_cost(0.10), 4)});
  }
  fig3.print(std::cout);
  std::cout << "(the normalized hot-spot location and the cost level shift "
               "between cuts — the Figure 3 defect)\n\n";

  std::cout << "Figure 4 — fine fixed grids waste work on near-empty cells\n";
  TextTable fig4({"cut", "#cells", "cells with <=1 net (%)",
                  "cells untouched (%)"});
  for (const auto& [nx, ny] : std::vector<std::pair<int, int>>{
           {6, 4}, {12, 8}, {24, 16}, {48, 32}}) {
    const CongestionMap map = evaluate_counts(nets, chip, nx, ny);
    long long low = 0, zero = 0;
    for (const double v : map.values()) {
      if (v <= 1.0 + 1e-9) ++low;
      if (v <= 1e-12) ++zero;
    }
    const double total = static_cast<double>(map.values().size());
    fig4.add_row({std::to_string(nx) + "x" + std::to_string(ny),
                  std::to_string(map.values().size()),
                  fmt_fixed(100.0 * static_cast<double>(low) / total, 1),
                  fmt_fixed(100.0 * static_cast<double>(zero) / total, 1)});
  }
  fig4.print(std::cout);

  // The Irregular-Grid answer to the same workload.
  IrregularGridParams params;
  params.grid_w = 25.0;
  params.grid_h = 25.0;
  const IrregularGridModel ir(params);
  const IrregularCongestionMap ir_map = ir.evaluate(nets, chip);
  std::cout << "\nIrregular-Grid on the same nets: " << ir_map.cell_count()
            << " IR-cells (vs " << 48 * 32
            << " at the finest fixed cut), top-10%-area cost "
            << fmt_general(ir_map.top_fraction_cost(0.10), 4)
            << " — evaluation effort concentrates on the congested right "
               "half (paper section 4.1)\n";
  return 0;
}
