// Workload-axis scaling bench (ROADMAP item 2): the synthetic tier ladder.
//
// The reproduction benches pin quality on MCNC circuits; this one pins
// *throughput at scale*. Per tier of the synthetic ladder (src/gen) it
// measures the full evaluation pipeline on a single deterministic
// floorplan plus an annealing-style move stream:
//
//   * gen        — netlist synthesis (linear in pins; fingerprint printed
//                  so runs are comparable across machines),
//   * pack       — one from-scratch slicing pack of the initial Polish
//                  expression,
//   * decompose  — from-scratch MST decomposition, in nets/sec,
//   * IR eval    — one IrregularGridModel::evaluate, with the merged
//                  IR-cell count and nets/sec,
//   * move loop  — incremental pack_cached_ref + caching decompose +
//                  wirelength over a random move stream, in moves/sec,
//   * peak RSS   — VmHWM high-water mark (measure tiers smallest-first).
//
// The decompose / IR-eval workload runs on a deterministic O(m) shelf
// placement, not on the random initial slicing tree: a random Polish
// expression packs with deadspace that grows with the module count, which
// would inflate the chip — and with it the cut-line count — until the
// bench measures packing garbage instead of evaluator throughput. The IR
// fine pitch holds the paper's RELATIVE resolution constant: 30 um on
// ami49 is ~200 fine columns across the chip, so each tier uses
// max(30 um, chip extent / 200) and the per-net cost model stays
// comparable across four decades of circuit size.
//
// Results go to stdout (TextTable) and BENCH_scale.json ("ficon-bench-v1",
// see docs/BENCHMARKS.md; tools/bench_lint validates the structure).
//
// Knobs: FICON_SCALE_TIERS (comma list of tier tokens — "n<modules>",
// "ami49x<N>" or a plain module count; default
// n100,n300,ami49x20,ami49x80,ami49x240 — roughly 100 to 12k modules; go
// up to ami49x2048 for the ~100k-module regime), FICON_SCALE_MOVES (move
// stream length per tier, default 200), FICON_SEED, FICON_BENCH_OUT.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

namespace {

/// Deterministic O(m) shelf packing in module-index order. The generator
/// numbers modules tile by tile, so index order keeps each locality tile
/// spatially contiguous and net routing ranges realistically small; 15%
/// deadspace stands in for a packed floorplan's overhead.
Placement shelf_placement(const Netlist& netlist) {
  const double shelf_w = std::sqrt(1.15 * netlist.total_module_area());
  Placement p;
  p.module_rects.reserve(netlist.module_count());
  p.rotated.assign(netlist.module_count(), false);
  double x = 0.0, y = 0.0, row_h = 0.0, xmax = 0.0;
  for (const Module& m : netlist.modules()) {
    if (x > 0.0 && x + m.width > shelf_w) {
      x = 0.0;
      y += row_h;
      row_h = 0.0;
    }
    p.module_rects.push_back(Rect::from_size({x, y}, m.width, m.height));
    x += m.width;
    row_h = std::max(row_h, m.height);
    xmax = std::max(xmax, x);
  }
  p.chip = Rect{0.0, 0.0, xmax, y + row_h};
  return p;
}

}  // namespace

int main() {
  const std::vector<std::string> tiers = env_list(
      "FICON_SCALE_TIERS", {"n100", "n300", "ami49x20", "ami49x80",
                            "ami49x240"});
  const int moves = std::max(1, env_int("FICON_SCALE_MOVES", 200));
  const auto seed = static_cast<std::uint64_t>(env_int("FICON_SEED", 7));

  std::cout << "Workload scaling — synthetic tier ladder (src/gen), seed "
            << seed << ", " << moves << " moves per tier\n";

  bench::BenchReport report("scale");
  std::string tier_list;
  for (const std::string& token : tiers) {
    if (!tier_list.empty()) tier_list += ',';
    tier_list += token;
  }
  report.manifest("tiers", tier_list);
  report.meta("seed", static_cast<long long>(seed));
  report.meta("moves", static_cast<long long>(moves));

  TextTable table({"tier", "modules", "2-pin nets", "gen (ms)", "pack (ms)",
                   "dec knets/s", "IR cells", "IR knets/s", "moves/s",
                   "RSS (MiB)"});
  for (const std::string& token : tiers) {
    const ScaleTierSpec spec = parse_scale_tier(token);

    Stopwatch sw;
    const Netlist netlist = make_scale_netlist(spec, seed);
    const double gen_ms = sw.milliseconds();
    const std::uint64_t fingerprint = netlist_fingerprint(netlist);

    const PolishExpression expr =
        PolishExpression::initial(static_cast<int>(netlist.module_count()));
    SlicingPacker packer(netlist);
    sw = Stopwatch();
    const SlicingResult initial = packer.pack(expr);
    const double pack_ms = sw.milliseconds();

    const Placement shelf = shelf_placement(netlist);
    TwoPinDecomposer decomposer;
    sw = Stopwatch();
    const std::span<const TwoPinNet> nets =
        decomposer.decompose(netlist, shelf);
    const double decompose_ms = sw.milliseconds();
    const double two_pin = static_cast<double>(nets.size());
    const double decompose_nps = two_pin / (decompose_ms / 1e3);

    const double extent = std::max(shelf.chip.width(), shelf.chip.height());
    IrregularGridParams ir_params;
    ir_params.grid_w = ir_params.grid_h = std::max(30.0, extent / 200.0);
    const IrregularGridModel ir(ir_params);
    sw = Stopwatch();
    const long long ir_cells = ir.evaluate(nets, shelf.chip).cell_count();
    const double ir_ms = sw.milliseconds();
    const double ir_nps = two_pin / (ir_ms / 1e3);

    // Annealing-style move stream through the incremental pipeline:
    // random Polish move -> cached re-pack -> caching decompose ->
    // wirelength. Same Rng(7)-stream idiom as bench_incremental.
    PolishExpression moving = expr;
    Rng rng(7);
    double wirelength = 0.0;
    sw = Stopwatch();
    for (int i = 0; i < moves; ++i) {
      moving.random_move(rng);
      const SlicingResult& packed = packer.pack_cached_ref(moving);
      wirelength +=
          total_length(decomposer.decompose(netlist, packed.placement));
    }
    const double moves_per_s = moves / sw.seconds();
    const std::optional<double> rss = bench::peak_rss_mib();

    table.add_row({spec.name, std::to_string(spec.modules),
                   fmt_fixed(two_pin, 0), fmt_fixed(gen_ms, 1),
                   fmt_fixed(pack_ms, 1), fmt_fixed(decompose_nps / 1e3, 1),
                   std::to_string(ir_cells), fmt_fixed(ir_nps / 1e3, 1),
                   fmt_fixed(moves_per_s, 1),
                   rss ? fmt_fixed(*rss, 1) : "n/a"});

    report.begin_row();
    report.value("tier", spec.name);
    report.value("modules", static_cast<long long>(spec.modules));
    report.value("nets", static_cast<long long>(spec.nets));
    report.value("pins", static_cast<long long>(spec.pins));
    report.value("two_pin_nets", static_cast<long long>(nets.size()));
    report.value("fingerprint", std::to_string(fingerprint));
    report.value("gen_ms", gen_ms);
    report.value("pack_ms", pack_ms);
    report.value("decompose_ms", decompose_ms);
    report.value("decompose_nets_per_s", decompose_nps);
    report.value("ir_pitch_um", ir_params.grid_w);
    report.value("ir_eval_ms", ir_ms);
    report.value("ir_cells", ir_cells);
    report.value("ir_nets_per_s", ir_nps);
    report.value("moves_per_s", moves_per_s);
    report.value("stream_wirelength_um", wirelength);
    // Omitted (not null, not 0.0) when the platform cannot report VmHWM;
    // bench_lint/bench_diff treat the key as optional.
    if (rss) report.value("peak_rss_mib", *rss);
  }

  table.print(std::cout);
  const std::string path = report.write_file();
  std::cout << "# wrote " << path << " (" << report.row_count()
            << " tiers; schema ficon-bench-v1)\n";
  return 0;
}
