// Table 5 reproduction: congestion-only optimization (alpha = beta = 0)
// with the fixed-size-grid model on ami33, at grid sizes 100x100 and
// 50x50 um^2 — the Experiment 3 baseline against Table 4.
#include <iostream>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_T4_CIRCUIT", "ami33");
  std::cout << "Table 5 — congestion-only optimization with the fixed-size-"
               "grid model (" << circuit << ")\n";
  print_scale_banner(config);

  const Netlist netlist = make_mcnc(circuit);
  const FixedGridModel judge = make_judging_model(config.judging_pitch);
  TextTable table({"grid (um)", "avg #grids", "avg grid cgt", "avg time (s)",
                   "avg judging cgt", "best #grids", "best grid cgt",
                   "best time (s)", "best judging cgt"});
  for (const double pitch : {100.0, 50.0}) {
    FloorplanOptions options = bench::tuned_options(config);
    options.objective.alpha = 0.0;
    options.objective.beta = 0.0;
    options.objective.gamma = 1.0;
    options.objective.model = CongestionModelKind::kFixedGrid;
    options.objective.fixed.grid_w = pitch;
    options.objective.fixed.grid_h = pitch;
    const SeedSweep sweep =
        run_seed_sweep(netlist, options, config.seeds, judge);

    RunningStats cells;
    for (const JudgedRun& run : sweep.runs) {
      const GridSpec grid = GridSpec::from_pitch(run.solution.placement.chip,
                                                 pitch, pitch);
      cells.add(static_cast<double>(grid.cell_count()));
    }
    const JudgedRun& best = sweep.best();
    const GridSpec best_grid =
        GridSpec::from_pitch(best.solution.placement.chip, pitch, pitch);
    table.add_row({fmt_fixed(pitch, 0) + "x" + fmt_fixed(pitch, 0),
                   fmt_fixed(cells.mean(), 0),
                   fmt_fixed(sweep.mean_congestion(), 6),
                   fmt_fixed(sweep.mean_seconds(), 1),
                   fmt_fixed(sweep.mean_judging(), 5),
                   std::to_string(best_grid.cell_count()),
                   fmt_fixed(best.solution.metrics.congestion, 6),
                   fmt_fixed(best.solution.seconds, 1),
                   fmt_fixed(best.judging_cost, 6)});
  }
  table.print(std::cout);
  std::cout << "(paper Table 5: 561 / 2215 grids, 64 / 96 s — i.e. the "
               "IR-grid run of Table 4 was ~2.3x / ~3.5x faster AND judged "
               "better by 8.79% / 4.59% on averages)\n";
  return 0;
}
