// Table 2 reproduction: floorplanner additionally optimizing the
// Irregular-Grid congestion estimate (alpha*Area + beta*Wire +
// gamma*Congestion). Reports the IR-grid cost in the paper's x1000 scale
// alongside the judging model's verdict.
#include <iostream>

#include "bench_common.hpp"

using namespace ficon;

int main() {
  obs::set_thread_label("main");
  const ExperimentConfig config = experiment_config_from_env();
  std::cout << "Table 2 — results with the Irregular-Grid model in the "
               "objective (grid size 60x60 um^2 for apte, 30x30 otherwise)\n";
  print_scale_banner(config);

  const FixedGridModel judge = make_judging_model(config.judging_pitch);
  TextTable table({"circuit", "grid (um)", "avg area (mm^2)", "avg wire (um)",
                   "avg IR cgt (x1000)", "avg time (s)", "avg judging cgt",
                   "best area (mm^2)", "best wire (um)",
                   "best IR cgt (x1000)", "best time (s)",
                   "best judging cgt"});
  for (const std::string& circuit : config.circuits) {
    const Netlist netlist = make_mcnc(circuit);
    FloorplanOptions options = bench::tuned_options(config);
    options.objective.alpha = 1.0;
    options.objective.beta = 1.0;
    options.objective.gamma = bench::congestion_gamma();
    options.objective.model = CongestionModelKind::kIrregularGrid;
    options.objective.irregular = bench::paper_ir_params(circuit);
    const SeedSweep sweep =
        run_seed_sweep(netlist, options, config.seeds, judge);
    const JudgedRun& best = sweep.best();
    const double pitch = options.objective.irregular.grid_w;
    table.add_row({circuit, fmt_fixed(pitch, 0) + "x" + fmt_fixed(pitch, 0),
                   fmt_fixed(sweep.mean_area() / 1e6, 2),
                   fmt_fixed(sweep.mean_wirelength(), 0),
                   fmt_fixed(sweep.mean_congestion() * 1000.0, 4),
                   fmt_fixed(sweep.mean_seconds(), 1),
                   fmt_fixed(sweep.mean_judging(), 6),
                   fmt_fixed(best.solution.metrics.area / 1e6, 2),
                   fmt_fixed(best.solution.metrics.wirelength, 0),
                   fmt_fixed(best.solution.metrics.congestion * 1000.0, 4),
                   fmt_fixed(best.solution.seconds, 1),
                   fmt_fixed(best.judging_cost, 6)});
  }
  table.print(std::cout);
  std::cout << "(paper Table 2 shape: small area/wire penalty vs Table 1, "
               "judged congestion consistently lower)\n";
  obs::emit_env_trace(std::cout, "bench_table2");
  return 0;
}
