// Table 3 reproduction: improvement of the congestion-driven floorplanner
// (Table 2 configuration) over the area+wire baseline (Table 1
// configuration), as signed percentages. Positive = improvement, as in the
// paper; the headline result is a consistent judged-congestion gain at a
// small area/wire penalty.
#include <iostream>

#include "bench_common.hpp"

using namespace ficon;

namespace {
double improvement(double base, double with) {
  return base != 0.0 ? (base - with) / base : 0.0;
}
}  // namespace

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  std::cout << "Table 3 — improvement of the congestion-driven floorplanner "
               "over the area+wire baseline (positive % = better)\n";
  print_scale_banner(config);

  const FixedGridModel judge = make_judging_model(config.judging_pitch);
  TextTable table({"circuit", "avg area (%)", "avg wire (%)",
                   "avg judging cgt (%)", "best area (%)", "best wire (%)",
                   "best judging cgt (%)"});
  double sum_avg_gain = 0.0;
  for (const std::string& circuit : config.circuits) {
    const Netlist netlist = make_mcnc(circuit);

    FloorplanOptions baseline = bench::tuned_options(config);
    baseline.objective.alpha = 1.0;
    baseline.objective.beta = 1.0;
    const SeedSweep base =
        run_seed_sweep(netlist, baseline, config.seeds, judge);

    FloorplanOptions driven = baseline;
    driven.objective.gamma = bench::congestion_gamma();
    driven.objective.model = CongestionModelKind::kIrregularGrid;
    driven.objective.irregular = bench::paper_ir_params(circuit);
    const SeedSweep cgt = run_seed_sweep(netlist, driven, config.seeds, judge);

    const JudgedRun& bb = base.best();
    const JudgedRun& cb = cgt.best();
    table.add_row(
        {circuit,
         fmt_percent(improvement(base.mean_area(), cgt.mean_area())),
         fmt_percent(
             improvement(base.mean_wirelength(), cgt.mean_wirelength())),
         fmt_percent(improvement(base.mean_judging(), cgt.mean_judging())),
         fmt_percent(improvement(bb.solution.metrics.area,
                                 cb.solution.metrics.area)),
         fmt_percent(improvement(bb.solution.metrics.wirelength,
                                 cb.solution.metrics.wirelength)),
         fmt_percent(improvement(bb.judging_cost, cb.judging_cost))});
    sum_avg_gain += improvement(base.mean_judging(), cgt.mean_judging());
  }
  table.print(std::cout);
  std::cout << "mean judged-congestion improvement across circuits: "
            << fmt_percent(sum_avg_gain /
                           static_cast<double>(config.circuits.size()))
            << " % (paper Table 3: +2% .. +20% on averages)\n";
  return 0;
}
