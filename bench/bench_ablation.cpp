// Ablations of the design choices DESIGN.md calls out:
//   1. Cut-line merge factor (algorithm step 2): IR-cell count, cost and
//      evaluation time as the merge threshold sweeps around the paper's
//      "2x the grid pitch".
//   2. Evaluation strategy inside the annealer: Theorem 1 (paper),
//      exact-per-region, banded-exact (our fast path) — quality of the
//      final judged solution and run time.
#include <iostream>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_T4_CIRCUIT", "ami33");
  std::cout << "Ablation 1 — cut-line merge factor (" << circuit << ")\n";
  print_scale_banner(config);

  const Netlist netlist = make_mcnc(circuit);
  FloorplanOptions pack_opts = bench::tuned_options(config);
  const FloorplanSolution sol = Floorplanner(netlist, pack_opts).run();
  const auto nets = decompose_to_two_pin(netlist, sol.placement);

  TextTable merge_table(
      {"merge factor", "#IR-cells", "top-10% cost (x1000)", "eval time (ms)"});
  for (const double factor : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    IrregularGridParams params = bench::paper_ir_params(circuit);
    params.merge_factor = factor;
    const IrregularGridModel model(params);
    Stopwatch sw;
    const IrregularCongestionMap map = model.evaluate(nets, sol.placement.chip);
    const double ms = sw.milliseconds();
    merge_table.add_row({fmt_fixed(factor, 1),
                         std::to_string(map.cell_count()),
                         fmt_fixed(map.top_fraction_cost(0.10) * 1000.0, 4),
                         fmt_fixed(ms, 2)});
  }
  merge_table.print(std::cout);
  std::cout << "(why step 2 exists: without merging, sliver cells of "
               "near-zero area dominate the density cost and the cell count "
               "explodes; the paper's factor 2.0 sits at the knee)\n\n";

  std::cout << "Ablation 2 — evaluation strategy inside congestion-only "
               "annealing (" << circuit << ", seeds=" << config.seeds << ")\n";
  const FixedGridModel judge = make_judging_model(config.judging_pitch);
  TextTable strategy_table(
      {"strategy", "avg judged cgt", "avg SA time (s)"});
  const auto run_strategy = [&](const IrregularGridParams& params,
                                const char* name) {
    FloorplanOptions options = bench::tuned_options(config);
    options.objective.alpha = 0.0;
    options.objective.beta = 0.0;
    options.objective.gamma = 1.0;
    options.objective.model = CongestionModelKind::kIrregularGrid;
    options.objective.irregular = params;
    const SeedSweep sweep =
        run_seed_sweep(netlist, options, config.seeds, judge);
    strategy_table.add_row({name, fmt_fixed(sweep.mean_judging(), 5),
                            fmt_fixed(sweep.mean_seconds(), 2)});
  };
  run_strategy(bench::paper_ir_params(circuit), "banded exact (default)");
  run_strategy(bench::paper_mode_params(circuit),
               "Theorem 1 (paper mode, approximation active)");
  IrregularGridParams exact_params = bench::paper_ir_params(circuit);
  exact_params.strategy = IrEvalStrategy::kExactPerRegion;
  run_strategy(exact_params, "exact per region");
  strategy_table.print(std::cout);
  std::cout << "(same estimator semantics: solution quality should match "
               "within annealing noise; times differ)\n";
  return 0;
}
