// Table 1 reproduction: floorplanner optimizing area and wirelength only
// (no congestion term). Columns mirror the paper: area (mm^2), wire length
// (um), run time (s), and the judging model's congestion verdict, for the
// average and the best of the seed sweep.
#include <iostream>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  std::cout << "Table 1 — results with area+wirelength objective "
               "(fixed-size-grid judging at "
            << config.judging_pitch << "x" << config.judging_pitch
            << " um^2)\n";
  print_scale_banner(config);

  const FixedGridModel judge = make_judging_model(config.judging_pitch);
  TextTable table({"circuit", "avg area (mm^2)", "avg wire (um)",
                   "avg time (s)", "avg judging cgt", "best area (mm^2)",
                   "best wire (um)", "best time (s)", "best judging cgt"});
  for (const std::string& circuit : config.circuits) {
    const Netlist netlist = make_mcnc(circuit);
    FloorplanOptions options = bench::tuned_options(config);
    options.objective.alpha = 1.0;
    options.objective.beta = 1.0;
    const SeedSweep sweep =
        run_seed_sweep(netlist, options, config.seeds, judge);
    const JudgedRun& best = sweep.best();
    table.add_row({circuit, fmt_fixed(sweep.mean_area() / 1e6, 2),
                   fmt_fixed(sweep.mean_wirelength(), 0),
                   fmt_fixed(sweep.mean_seconds(), 1),
                   fmt_fixed(sweep.mean_judging(), 6),
                   fmt_fixed(best.solution.metrics.area / 1e6, 2),
                   fmt_fixed(best.solution.metrics.wirelength, 0),
                   fmt_fixed(best.solution.seconds, 1),
                   fmt_fixed(best.judging_cost, 6)});
  }
  table.print(std::cout);
  std::cout << "(paper Table 1 shapes: areas within ~1.3x of module totals; "
               "judging congestion highest for ami33)\n";
  return 0;
}
