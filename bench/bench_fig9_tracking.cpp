// Figure 9 reproduction (Experiment 2): does the Irregular-Grid estimate
// track the "real" congestion during floorplanning?
//
// A congestion-only annealing run on ami33 is snapshotted at every
// temperature-dropping step; each intermediate (locally optimized) solution
// is scored by
//   A — the Irregular-Grid model (30x30 um^2 fine pitch),
//   B — the judging model at 10x10 um^2 (paper plots 2.5 * B),
//   C — the judging model at 50x50 um^2.
// The paper's claim: A's slope tracks B's better than C's. We print the
// three series in obtaining order plus correlation statistics.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_T4_CIRCUIT", "ami33");
  std::cout << "Figure 9 — model tracking during congestion-only annealing ("
            << circuit << ")\n";
  print_scale_banner(config);

  const Netlist netlist = make_mcnc(circuit);
  FloorplanOptions options = bench::tuned_options(config);
  options.objective.alpha = 0.0;
  options.objective.beta = 0.0;
  options.objective.gamma = 1.0;
  options.objective.model = CongestionModelKind::kIrregularGrid;
  options.objective.irregular = bench::paper_ir_params(circuit);
  options.seed = 2;

  const FixedGridModel judge_fine = make_judging_model(10.0);
  const FixedGridModel judge_coarse = make_judging_model(50.0);

  std::vector<double> a_series, b_series, c_series;
  const Floorplanner planner(netlist, options);
  planner.run([&](const TemperatureSnapshot& snap) {
    const auto nets = decompose_to_two_pin(netlist, snap.placement);
    a_series.push_back(snap.metrics.congestion);
    b_series.push_back(judge_fine.cost(nets, snap.placement.chip));
    c_series.push_back(judge_coarse.cost(nets, snap.placement.chip));
  });

  // The paper plots 20 evenly spaced intermediate solutions.
  const std::size_t points = std::min<std::size_t>(20, a_series.size());
  TextTable table({"#", "A: IR-grid", "B: judging 10um (x2.5)",
                   "C: judging 50um"});
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t idx = i * (a_series.size() - 1) / std::max<std::size_t>(1, points - 1);
    table.add_row({std::to_string(i + 1), fmt_general(a_series[idx], 5),
                   fmt_general(2.5 * b_series[idx], 5),
                   fmt_general(c_series[idx], 5)});
  }
  table.print(std::cout);

  const auto diffs = [](const std::vector<double>& v) {
    std::vector<double> d;
    for (std::size_t i = 1; i < v.size(); ++i) d.push_back(v[i] - v[i - 1]);
    return d;
  };
  const double corr_ab = pearson(a_series, b_series);
  const double corr_ac = pearson(a_series, c_series);
  const double corr_bc = pearson(b_series, c_series);
  const std::vector<double> da = diffs(a_series), db = diffs(b_series),
                            dc = diffs(c_series);
  std::cout << "corr(A, B fine judging)   = " << fmt_fixed(corr_ab, 3)
            << "   slope corr = " << fmt_fixed(pearson(da, db), 3) << '\n';
  std::cout << "corr(A, C coarse judging) = " << fmt_fixed(corr_ac, 3)
            << "   slope corr = " << fmt_fixed(pearson(da, dc), 3) << '\n';
  std::cout << "corr(B, C)                = " << fmt_fixed(corr_bc, 3) << '\n';
  if (corr_ab >= 0.7) {
    std::cout << "-> Experiment 2's substantive claim reproduces: the "
                 "IR-grid estimate tracks the judging model through the "
                 "annealing trajectory.\n";
  } else {
    std::cout << "-> WARNING: weak tracking on this seed; rerun with "
                 "FICON_SCALE>=1 for longer trajectories.\n";
  }
  std::cout << "(The paper additionally reads A-B slopes as more similar "
               "than A-C. In our reproduction B and C are themselves nearly "
               "identical (corr(B,C) above), so that ordering is within "
               "noise; see EXPERIMENTS.md.)\n";
  return 0;
}
