// Microbenchmark (google-benchmark): the section 4.4 complexity claim.
// The exact Formula 3 costs O(exit-edge length) per IR-region; the
// Theorem 1 approximation costs O(1) (a fixed number of Simpson samples).
// Sweep the region edge length on a large routing range and watch the
// exact cost grow linearly while the approximation stays flat.
#include <benchmark/benchmark.h>

#include "ficon.hpp"

namespace {

using namespace ficon;

constexpr int kG = 400;  // 400x400 fine cells: a 12mm net at 30um pitch

LogFactorialTable& shared_table() {
  static LogFactorialTable table;
  return table;
}

void BM_Formula3Exact(benchmark::State& state) {
  const int span = static_cast<int>(state.range(0));
  PathProbability prob(shared_table());
  const NetGridShape shape{kG, kG, false};
  const int lo = kG / 2 - span / 2;
  const GridRect region{lo, lo, lo + span - 1, lo + span - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.region_probability_exact(shape, region));
  }
  state.SetComplexityN(span);
}

void BM_Theorem1Approx(benchmark::State& state) {
  const int span = static_cast<int>(state.range(0));
  PathProbability prob(shared_table());
  ApproxOptions options;
  options.small_region_threshold = 0;  // force the approximation path
  options.narrow_range_threshold = 0;
  const ApproxRegionProbability approx(prob, options);
  const int lo = kG / 2 - span / 2;
  const GridRect region{lo, lo, lo + span - 1, lo + span - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx.theorem1(kG, kG, region));
  }
  state.SetComplexityN(span);
}

void BM_BinomialTableLookup(benchmark::State& state) {
  LogFactorialTable& table = shared_table();
  table.log_factorial(2 * kG);  // pre-grow
  int n = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.log_choose(700, n));
    n = (n + 37) % 700;
  }
}

}  // namespace

BENCHMARK(BM_Formula3Exact)->RangeMultiplier(2)->Range(4, 256)->Complexity();
BENCHMARK(BM_Theorem1Approx)->RangeMultiplier(2)->Range(4, 256)->Complexity();
BENCHMARK(BM_BinomialTableLookup);

BENCHMARK_MAIN();
