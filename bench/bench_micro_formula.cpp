// Microbenchmark (google-benchmark): the section 4.4 complexity claim.
// The exact Formula 3 costs O(exit-edge length) per IR-region; the
// Theorem 1 approximation costs O(1) (a fixed number of Simpson samples).
// Sweep the region edge length on a large routing range and watch the
// exact cost grow linearly while the approximation stays flat.
//
// After the google-benchmark suite, main() runs the batched-kernel
// throughput harness and writes BENCH_kernel.json ("ficon-bench-v1"):
// Theorem-1 term evaluations per second for the per-pair scalar API, the
// batched scalar kernel and the batched SIMD kernel, at batch sizes
// 1/8/64/512. FICON_KERNEL_REPEATS picks the timing repeats per row
// (default 30; the best repeat is reported, which is robust to noisy
// shared machines); the per-row checksum pins the numerical results so
// bench_diff catches value drift, not just speed drift.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ficon.hpp"

namespace {

using namespace ficon;

constexpr int kG = 400;  // 400x400 fine cells: a 12mm net at 30um pitch

/// Theorem-1 knobs for the throughput rows: exact fallbacks disabled so
/// every region really runs the approximation.
ApproxOptions forced_theorem1(SimdMode mode) {
  ApproxOptions options;
  options.small_region_threshold = 0;
  options.narrow_range_threshold = 0;
  options.simd = mode;
  return options;
}

void BM_Formula3Exact(benchmark::State& state) {
  const int span = static_cast<int>(state.range(0));
  const ProbabilityEvaluator evaluator;
  const NetGridShape shape{kG, kG, false};
  const int lo = kG / 2 - span / 2;
  const GridRect region{lo, lo, lo + span - 1, lo + span - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.region_probability_exact(shape, region));
  }
  state.SetComplexityN(span);
}

void BM_Theorem1Approx(benchmark::State& state) {
  const int span = static_cast<int>(state.range(0));
  const ProbabilityEvaluator evaluator(forced_theorem1(SimdMode::kScalar));
  const int lo = kG / 2 - span / 2;
  const GridRect region{lo, lo, lo + span - 1, lo + span - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.theorem1(kG, kG, region));
  }
  state.SetComplexityN(span);
}

void BM_Theorem1BatchSimd(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  ProbabilityEvaluator evaluator(forced_theorem1(SimdMode::kSimd));
  const NetGridShape shape{kG, kG, false};
  std::vector<GridRect> regions;
  for (int i = 0; i < batch; ++i) {
    const int lo = 40 + 3 * i % 200;
    regions.push_back(GridRect{lo, lo, lo + 60, lo + 40});
  }
  std::vector<double> out(regions.size());
  for (auto _ : state) {
    evaluator.region_probability_batch(shape, regions, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_BinomialTableLookup(benchmark::State& state) {
  ProbabilityEvaluator evaluator;
  LogFactorialTable& table = evaluator.table();
  table.log_factorial(2 * kG);  // pre-grow
  int n = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.log_choose(700, n));
    n = (n + 37) % 700;
  }
}

BENCHMARK(BM_Formula3Exact)->RangeMultiplier(2)->Range(4, 256)->Complexity();
BENCHMARK(BM_Theorem1Approx)->RangeMultiplier(2)->Range(4, 256)->Complexity();
BENCHMARK(BM_Theorem1BatchSimd)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_BinomialTableLookup);

/// Deterministic interior regions on the kG x kG range (pin-free, so the
/// forced-Theorem-1 policy never short-circuits). Same sequence every run:
/// the row checksums double as a numerical pin in the committed baseline.
std::vector<GridRect> make_regions(std::size_t n) {
  std::vector<GridRect> regions;
  regions.reserve(n);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state](int lo, int hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return lo + static_cast<int>((state >> 33) %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  };
  for (std::size_t i = 0; i < n; ++i) {
    const int x1 = next(8, kG - 136);
    const int y1 = next(8, kG - 136);
    regions.push_back(
        GridRect{x1, y1, x1 + next(3, 120), y1 + next(3, 120)});
  }
  return regions;
}

struct KernelRow {
  double regions_per_s = 0.0;
  double checksum = 0.0;
};

/// Time full evaluations of `regions` through `eval`, which fills `out`;
/// returns throughput plus the last pass's output sum. Each repeat is
/// timed separately and the BEST repeat wins: the minimum is the
/// interference-free estimate on shared machines, where mean-of-repeats
/// moves with whatever else the container runs.
template <typename Eval>
KernelRow time_impl(const std::vector<GridRect>& regions,
                    std::vector<double>& out, int repeats, Eval&& eval) {
  // Equalize the measured work across batch sizes: each timed repeat
  // evaluates ~512 regions regardless of how many fit in one call.
  const int calls = std::max<int>(1, 512 / static_cast<int>(regions.size()));
  eval();  // warmup: log-factorial caches, scratch growth
  double best_ms = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int c = 0; c < calls; ++c) eval();
    best_ms = std::min(best_ms, sw.milliseconds());
  }
  KernelRow row;
  row.regions_per_s =
      static_cast<double>(regions.size()) * calls / (best_ms / 1e3);
  for (const double v : out) row.checksum += v;
  return row;
}

/// The BENCH_kernel.json harness: per-pair scalar vs batched scalar vs
/// batched SIMD throughput over the same region workload.
int run_kernel_report() {
  const int repeats = env_int("FICON_KERNEL_REPEATS", 30);
  const NetGridShape shape{kG, kG, false};
  const ProbabilityEvaluator probe;  // defaults, for the meta block only
  const int panels = probe.options().simpson_panels;
  // Every forced-Theorem-1 region integrates two exit edges at panels+1
  // Simpson samples each.
  const double terms_per_region = 2.0 * (panels + 1);

  bench::BenchReport report("kernel");
  report.meta("g", static_cast<long long>(kG));
  report.meta("simpson_panels", static_cast<long long>(panels));
  report.meta("repeats", static_cast<long long>(repeats));
  report.meta("simd_compiled",
              static_cast<long long>(kernel_simd_compiled() ? 1 : 0));

  TextTable table({"impl", "batch", "regions/s", "terms/s", "checksum"});
  double pair_terms_at_64 = 0.0;
  double simd_terms_at_64 = 0.0;

  for (const char* impl : {"scalar_pair", "batch_scalar", "batch_simd"}) {
    const bool pair = std::string(impl) == "scalar_pair";
    const SimdMode mode = std::string(impl) == "batch_simd"
                              ? SimdMode::kSimd
                              : SimdMode::kScalar;
    ProbabilityEvaluator evaluator(forced_theorem1(mode));
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8},
                                    std::size_t{64}, std::size_t{512}}) {
      const std::vector<GridRect> regions = make_regions(batch);
      std::vector<double> out(regions.size());
      const KernelRow row = time_impl(regions, out, repeats, [&] {
        if (pair) {
          for (std::size_t i = 0; i < regions.size(); ++i) {
            out[i] = evaluator.region_probability(shape, regions[i]);
          }
        } else {
          evaluator.region_probability_batch(shape, regions, out);
        }
      });
      const double terms_per_s = row.regions_per_s * terms_per_region;
      if (batch == 64 && pair) pair_terms_at_64 = terms_per_s;
      if (batch == 64 && mode == SimdMode::kSimd) {
        simd_terms_at_64 = terms_per_s;
      }
      report.begin_row();
      report.value("impl", std::string(impl));
      report.value("batch", static_cast<long long>(batch));
      report.value("regions_per_s", row.regions_per_s);
      report.value("terms_per_s", terms_per_s);
      report.value("checksum", row.checksum);
      table.add_row({impl, std::to_string(batch),
                     fmt_fixed(row.regions_per_s, 0),
                     fmt_fixed(terms_per_s, 0),
                     fmt_general(row.checksum, 12)});
    }
  }

  const double speedup =
      pair_terms_at_64 > 0.0 ? simd_terms_at_64 / pair_terms_at_64 : 0.0;
  report.meta("simd_speedup_batch64", speedup);
  table.print(std::cout);
  std::cout << "# simd/pair speedup at batch 64: " << fmt_fixed(speedup, 2)
            << "x\n";
  if (speedup < 2.0) {
    std::cout << "# KERNEL SPEEDUP BELOW GATE (" << fmt_fixed(speedup, 2)
              << "x < 2x)\n";
  }
  std::cout << "# wrote " << report.write_file() << "\n";
  obs::emit_env_trace(std::cout, "bench_micro_formula");
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_kernel_report();
}
