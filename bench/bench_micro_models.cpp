// Microbenchmark (google-benchmark): single-evaluation cost of each
// congestion model on fixed placements of the MCNC circuits — the
// apples-to-apples version of Experiment 3's run-time claim (the IR-grid
// model evaluates faster than fine fixed grids while judging better).
#include <benchmark/benchmark.h>

#include "ficon.hpp"

namespace {

using namespace ficon;

/// One packed placement per circuit, built once.
struct Workload {
  Rect chip;
  std::vector<TwoPinNet> nets;
};

const Workload& workload(const std::string& circuit) {
  static std::map<std::string, Workload> cache;
  auto it = cache.find(circuit);
  if (it == cache.end()) {
    const Netlist netlist = make_mcnc(circuit);
    FloorplanOptions options;
    options.effort = 0.2;
    options.anneal.stop_temperature_ratio = 1e-2;
    const FloorplanSolution sol = Floorplanner(netlist, options).run();
    Workload w;
    w.chip = sol.placement.chip;
    w.nets = decompose_to_two_pin(netlist, sol.placement);
    it = cache.emplace(circuit, std::move(w)).first;
  }
  return it->second;
}

void BM_FixedGrid(benchmark::State& state, const std::string& circuit,
                  double pitch) {
  const Workload& w = workload(circuit);
  const FixedGridModel model(FixedGridParams{pitch, pitch, 0.10});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cost(w.nets, w.chip));
  }
  state.SetLabel(circuit + " @" + std::to_string(static_cast<int>(pitch)) +
                 "um");
}

void BM_IrregularGrid(benchmark::State& state, const std::string& circuit,
                      IrEvalStrategy strategy, const char* label) {
  const Workload& w = workload(circuit);
  IrregularGridParams params;
  params.grid_w = 30.0;
  params.grid_h = 30.0;
  params.strategy = strategy;
  if (strategy == IrEvalStrategy::kTheorem1) {
    // Measure the paper's approximation itself, not the accuracy-first
    // exact fallbacks (which would swallow most MCNC-scale ranges).
    params.approx.narrow_range_threshold = 5;
    params.approx.small_region_threshold = 4;
  }
  const IrregularGridModel model(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cost(w.nets, w.chip));
  }
  state.SetLabel(circuit + " " + label);
}

void register_all() {
  for (const char* circuit : {"ami33", "ami49"}) {
    for (const double pitch : {100.0, 50.0, 10.0}) {
      benchmark::RegisterBenchmark(
          (std::string("fixed_grid/") + circuit + "/" +
           std::to_string(static_cast<int>(pitch)) + "um")
              .c_str(),
          [circuit, pitch](benchmark::State& s) {
            BM_FixedGrid(s, circuit, pitch);
          });
    }
    benchmark::RegisterBenchmark(
        (std::string("irregular/") + circuit + "/theorem1").c_str(),
        [circuit](benchmark::State& s) {
          BM_IrregularGrid(s, circuit, IrEvalStrategy::kTheorem1, "theorem1");
        });
    benchmark::RegisterBenchmark(
        (std::string("irregular/") + circuit + "/banded_exact").c_str(),
        [circuit](benchmark::State& s) {
          BM_IrregularGrid(s, circuit, IrEvalStrategy::kBandedExact,
                           "banded");
        });
  }
}

/// The Experiment 3 mechanism, independent of implementation constants:
/// how many cell regions each model touches per evaluation.
void print_workload_summary() {
  for (const char* circuit : {"ami33", "ami49"}) {
    const Workload& w = workload(circuit);
    printf("%s: %zu two-pin nets, chip %.2f x %.2f mm\n", circuit,
           w.nets.size(), w.chip.width() / 1e3, w.chip.height() / 1e3);
    for (const double pitch : {100.0, 50.0, 10.0}) {
      const GridSpec grid = GridSpec::from_pitch(w.chip, pitch, pitch);
      long long updates = 0;
      for (const TwoPinNet& net : w.nets) {
        const SpannedNet s = span_net(grid, net);
        updates += static_cast<long long>(s.shape.g1) * s.shape.g2;
      }
      printf("  fixed %3.0fum: %7lld cell updates over %lld grid cells\n",
             pitch, updates, grid.cell_count());
    }
    IrregularGridParams params;
    params.grid_w = 30.0;
    params.grid_h = 30.0;
    const IrregularGridModel model(params);
    const IrregularCongestionMap map = model.evaluate(w.nets, w.chip);
    long long regions = 0;
    const CutLines& cl = map.lines();
    for (const TwoPinNet& net : w.nets) {
      const Rect r = net.routing_range().intersection(w.chip);
      if (!r.valid()) continue;
      const long long nx = std::abs(cl.nearest_x(r.xhi) - cl.nearest_x(r.xlo));
      const long long ny = std::abs(cl.nearest_y(r.yhi) - cl.nearest_y(r.ylo));
      regions += std::max(1ll, nx) * std::max(1ll, ny);
    }
    printf("  IR-grid 30um: %7lld region evaluations over %lld IR-cells\n\n",
           regions, map.cell_count());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_workload_summary();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
