// Figure 8 reproduction: precision of the Theorem 1 approximation on a
// type I net divided into 31x21 grids.
//
//   (a/b) IR-grid with top edge y2 = 15: exact vs approximated Function (1)
//         values for x = 10..20 — "extremely accurate".
//   (c/d) IR-grid reaching y2 = 19 next to the sink pin: the approximation
//         has no value at the section 4.5 error cell (x = 30).
// Also quantifies the "deviation generally less than 0.05" claim across the
// whole range and the effect of the +-1/2 continuity correction on region
// integrals.
#include <cmath>
#include <iostream>

#include "ficon.hpp"

using namespace ficon;

int main() {
  const int g1 = 31, g2 = 21;
  const ProbabilityEvaluator approx;

  std::cout << "Figure 8 — approximation precision on a " << g1 << "x" << g2
            << " type I net\n\n";

  std::cout << "(b) Function(1) at y2 = 15, x = 10..20:\n";
  TextTable curve({"x", "exact", "approx", "|dev|"});
  double worst_b = 0.0;
  for (int x = 10; x <= 20; ++x) {
    const double e = approx.top_exit_term_exact(g1, g2, x, 15);
    const auto a = approx.top_exit_term_approx(g1, g2, x, 15);
    const double dev = a ? std::abs(*a - e) : -1.0;
    worst_b = std::max(worst_b, dev);
    curve.add_row({std::to_string(x), fmt_fixed(e, 6),
                   a ? fmt_fixed(*a, 6) : "(error cell)",
                   a ? fmt_fixed(dev, 6) : "-"});
  }
  curve.print(std::cout);
  std::cout << "max deviation on this curve: " << fmt_fixed(worst_b, 6)
            << " (paper: \"extremely accurate\")\n\n";

  std::cout << "(d) Function(1) at y2 = 19 (pin-adjacent row), x = 24..30:\n";
  TextTable edge({"x", "exact", "approx"});
  for (int x = 24; x <= 30; ++x) {
    const double e = approx.top_exit_term_exact(g1, g2, x, 19);
    const auto a = approx.top_exit_term_approx(g1, g2, x, 19);
    edge.add_row({std::to_string(x), fmt_fixed(e, 6),
                  a ? fmt_fixed(*a, 6) : "(no value — error cell)"});
  }
  edge.print(std::cout);
  std::cout << "(paper Figure 8(d): the curve shows no value at x = 30)\n\n";

  // Global deviation statistics away from the pin zones.
  double worst = 0.0;
  long long count = 0, above_005 = 0;
  for (int y2 = 0; y2 < g2 - 1; ++y2) {
    for (int x = 0; x < g1; ++x) {
      const auto a = approx.top_exit_term_approx(g1, g2, x, y2);
      if (!a) continue;
      const double dev =
          std::abs(*a - approx.top_exit_term_exact(g1, g2, x, y2));
      worst = std::max(worst, dev);
      ++count;
      if (dev >= 0.05) ++above_005;
    }
  }
  std::cout << "term deviation across all " << count
            << " valid cells: max = " << fmt_fixed(worst, 4) << ", "
            << above_005 << " cells >= 0.05 (paper: \"generally less than "
               "0.05\")\n\n";

  // Region-integral ablation: continuity correction on vs off.
  ApproxOptions literal;
  literal.continuity_correction = false;
  const ProbabilityEvaluator approx_literal(literal);
  const NetGridShape shape{g1, g2, false};
  double err_corrected = 0.0, err_literal = 0.0;
  int regions = 0;
  for (int x1 = 2; x1 < 26; x1 += 3) {
    for (int y1 = 2; y1 < 16; y1 += 3) {
      const GridRect r{x1, y1, std::min(x1 + 5, g1 - 2),
                       std::min(y1 + 4, g2 - 2)};
      const double e = approx.region_probability_exact(shape, r);
      const auto c = approx.theorem1(g1, g2, r);
      const auto l = approx_literal.theorem1(g1, g2, r);
      if (!c || !l) continue;
      err_corrected += std::abs(*c - e);
      err_literal += std::abs(*l - e);
      ++regions;
    }
  }
  std::cout << "region-probability mean |error| over " << regions
            << " interior IR-grids:\n"
            << "  with +-1/2 continuity correction : "
            << fmt_fixed(err_corrected / regions, 5) << '\n'
            << "  paper-literal integral bounds    : "
            << fmt_fixed(err_literal / regions, 5) << '\n';
  return 0;
}
