// Floorplanner-agnosticism check (paper section 4.6: the model "can be
// embedded into any general floorplanners"): run the area+wire baseline and
// the IR-congestion-driven objective under BOTH floorplan representations
// (the paper's Polish-expression slicing engine and a sequence-pair
// non-slicing engine) and verify the judged-congestion improvement appears
// in each.
#include <iostream>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_T4_CIRCUIT", "ami33");
  std::cout << "Engine comparison — IR-congestion objective under two "
               "floorplan representations (" << circuit << ")\n";
  print_scale_banner(config);

  const Netlist netlist = make_mcnc(circuit);
  const FixedGridModel judge = make_judging_model(config.judging_pitch);

  TextTable table({"engine", "objective", "avg area (mm^2)", "avg wire (um)",
                   "avg judging cgt", "avg time (s)"});
  for (const auto& [engine, engine_name] :
       std::vector<std::pair<FloorplanEngine, const char*>>{
           {FloorplanEngine::kPolishExpression, "Polish (paper)"},
           {FloorplanEngine::kSequencePair, "sequence pair"}}) {
    for (const bool congestion_driven : {false, true}) {
      FloorplanOptions options = bench::tuned_options(config);
      options.engine = engine;
      if (congestion_driven) {
        options.objective.gamma = bench::congestion_gamma();
        options.objective.model = CongestionModelKind::kIrregularGrid;
        options.objective.irregular = bench::paper_ir_params(circuit);
      }
      const SeedSweep sweep =
          run_seed_sweep(netlist, options, config.seeds, judge);
      table.add_row({engine_name,
                     congestion_driven ? "area+wire+IR cgt" : "area+wire",
                     fmt_fixed(sweep.mean_area() / 1e6, 3),
                     fmt_fixed(sweep.mean_wirelength(), 0),
                     fmt_fixed(sweep.mean_judging(), 4),
                     fmt_fixed(sweep.mean_seconds(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "(expected shape: within each engine, the +IR row judges "
               "lower than the baseline row)\n";
  return 0;
}
