// Service-layer throughput bench (ROADMAP item 1): one-shot vs
// session-amortized request serving.
//
// The one-shot column models today's scripting loop around ficon_cli:
// every request re-parses the circuit from disk and rebuilds the packer /
// decomposer caches before doing any work. The session column is the
// EngineSession path ficond serves: parse once, keep per-executor caches
// warm, fan requests out across the executor pool. Two request mixes:
//
//   * evaluate — pack + decompose + IR congestion of a given Polish
//     expression (the cheap interactive op, dominated by setup cost in
//     one-shot mode). Expressions are a deterministic random-move walk
//     from the initial expression, identical across modes.
//   * anneal   — full SA runs at low effort, one seed per request (the
//     heavyweight op; the session wins by running requests concurrently).
//
// Rows: {mode, op, requests, total_ms, requests_per_s}; meta carries the
// session/one-shot speedup per op. Results go to stdout (TextTable) and
// BENCH_service.json ("ficon-bench-v1", tools/bench_lint validates).
//
// Knobs: FICON_SERVICE_REQUESTS (evaluate requests, default 64),
// FICON_SERVICE_ANNEALS (anneal requests, default 8), FICON_SEED,
// FICON_THREADS (executor count), FICON_BENCH_OUT.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

namespace {

/// Deterministic request mix: expression i is i random moves down one
/// RNG stream from the initial expression. Both modes score the same
/// expressions in the same order.
std::vector<std::string> make_expressions(const Netlist& netlist, int count,
                                          std::uint64_t seed) {
  std::vector<std::string> expressions;
  expressions.reserve(static_cast<std::size_t>(count));
  PolishExpression expr =
      PolishExpression::initial(static_cast<int>(netlist.module_count()));
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    expressions.push_back(expr.to_string());
    expr.random_move(rng);
  }
  return expressions;
}

service::Request evaluate_request(const std::string& expression) {
  service::Request request;
  request.kind = service::RequestKind::kEvaluate;
  request.objective.gamma = 0.4;
  request.objective.model = CongestionModelKind::kIrregularGrid;
  request.objective.irregular.grid_w = 30.0;
  request.objective.irregular.grid_h = 30.0;
  request.expression = expression;
  return request;
}

service::Request anneal_request(std::uint64_t seed, double effort) {
  service::Request request;
  request.kind = service::RequestKind::kAnneal;
  request.objective.gamma = 0.4;
  request.objective.model = CongestionModelKind::kIrregularGrid;
  request.objective.irregular.grid_w = 30.0;
  request.objective.irregular.grid_h = 30.0;
  request.seed = seed;
  request.effort = effort;
  return request;
}

}  // namespace

int main() {
  const int evaluates = std::max(1, env_int("FICON_SERVICE_REQUESTS", 64));
  const int anneals = std::max(1, env_int("FICON_SERVICE_ANNEALS", 8));
  const auto seed = static_cast<std::uint64_t>(env_int("FICON_SEED", 7));
  const double effort = 0.05;
  const std::string circuit = "ami33";

  const Netlist netlist = make_mcnc(circuit);
  // One-shot mode re-loads the circuit from disk per request, like a
  // shell loop around ficon_cli would.
  const std::string netlist_path = "BENCH_service_circuit.ficon";
  {
    std::ofstream out(netlist_path);
    save_netlist(netlist, out);
  }
  const std::vector<std::string> expressions =
      make_expressions(netlist, evaluates, seed);

  std::cout << "Service throughput — " << circuit << ", " << evaluates
            << " evaluate + " << anneals << " anneal requests, "
            << ThreadPool::env_threads() << " workers\n";

  bench::BenchReport report("service");
  report.manifest("circuit", circuit);
  report.manifest("fingerprint", std::to_string(netlist_fingerprint(netlist)));
  report.meta("seed", static_cast<long long>(seed));
  report.meta("evaluate_requests", static_cast<long long>(evaluates));
  report.meta("anneal_requests", static_cast<long long>(anneals));
  report.meta("anneal_effort", effort);

  TextTable table({"mode", "op", "requests", "total (ms)", "req/s"});
  const auto emit = [&](const std::string& mode, const std::string& op,
                        int requests, double total_ms) {
    const double per_s = requests / (total_ms / 1e3);
    table.add_row({mode, op, std::to_string(requests),
                   fmt_fixed(total_ms, 1), fmt_fixed(per_s, 1)});
    report.begin_row();
    report.value("mode", mode);
    report.value("op", op);
    report.value("requests", static_cast<long long>(requests));
    report.value("total_ms", total_ms);
    report.value("requests_per_s", per_s);
    return total_ms;
  };

  // --- evaluate: one-shot (parse per request) vs session (parse once).
  Stopwatch sw;
  for (int i = 0; i < evaluates; ++i) {
    const Netlist fresh = load_netlist(netlist_path);
    const service::Reply reply =
        service::run_oneshot(fresh, evaluate_request(expressions[
            static_cast<std::size_t>(i)]));
    FICON_REQUIRE(reply.status == service::ReplyStatus::kOk,
                "one-shot evaluate failed");
  }
  const double oneshot_eval_ms =
      emit("one_shot", "evaluate", evaluates, sw.milliseconds());

  const std::size_t capacity =
      static_cast<std::size_t>(evaluates + anneals) + 16;
  sw.reset();
  double session_eval_ms = 0.0;
  double session_anneal_ms = 0.0;
  {
    service::SessionOptions options;
    options.queue_capacity = capacity;
    service::EngineSession session(load_netlist(netlist_path), options);
    std::vector<service::EngineSession::Ticket> tickets;
    tickets.reserve(expressions.size());
    for (const std::string& expression : expressions) {
      tickets.push_back(session.submit(evaluate_request(expression)));
    }
    for (const service::EngineSession::Ticket ticket : tickets) {
      FICON_REQUIRE(ticket != 0, "session evaluate rejected");
      FICON_REQUIRE(session.wait(ticket).status == service::ReplyStatus::kOk,
                  "session evaluate failed");
    }
    session_eval_ms =
        emit("session", "evaluate", evaluates, sw.milliseconds());

    // --- anneal: serial one-shot runs vs concurrent session shards.
    sw.reset();
    for (int i = 0; i < anneals; ++i) {
      const Netlist fresh = load_netlist(netlist_path);
      const service::Reply reply = service::run_oneshot(
          fresh, anneal_request(seed + static_cast<std::uint64_t>(i),
                                effort));
      FICON_REQUIRE(reply.status == service::ReplyStatus::kOk,
                  "one-shot anneal failed");
    }
    const double oneshot_anneal_ms =
        emit("one_shot", "anneal", anneals, sw.milliseconds());

    sw.reset();
    tickets.clear();
    for (int i = 0; i < anneals; ++i) {
      tickets.push_back(session.submit(
          anneal_request(seed + static_cast<std::uint64_t>(i), effort)));
    }
    for (const service::EngineSession::Ticket ticket : tickets) {
      FICON_REQUIRE(ticket != 0, "session anneal rejected");
      FICON_REQUIRE(session.wait(ticket).status == service::ReplyStatus::kOk,
                  "session anneal failed");
    }
    session_anneal_ms = emit("session", "anneal", anneals, sw.milliseconds());

    report.meta("speedup_evaluate", oneshot_eval_ms / session_eval_ms);
    report.meta("speedup_anneal", oneshot_anneal_ms / session_anneal_ms);
  }

  table.print(std::cout);
  std::remove(netlist_path.c_str());
  const std::string path = report.write_file();
  std::cout << "# wrote " << path << " (" << report.row_count()
            << " rows; schema ficon-bench-v1)\n";
  return 0;
}
