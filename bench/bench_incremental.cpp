// Incremental evaluation pipeline: speedup and bit-identity (PR 3).
//
// Two views of the same pipeline:
//
// 1. Stage throughput on an MCNC-scale annealing move stream. The
//    incremental re-pack (cached per-node shape curves, dirty-root-path
//    recomputation) and the caching decomposer are timed against their
//    from-scratch counterparts on an identical sequence of Polish
//    expression moves, asserting identical packing results move by move.
//    The re-pack stage is the pipeline's headline: the bench fails unless
//    it clears 2x moves/sec over full re-packing.
//
// 2. End-to-end congestion-driven annealing, incremental on vs off, at
//    1/2/4/8 threads. The pipeline is documented as a pure speedup: every
//    cached value is a pure function of its key, so the bench asserts
//    that final cost, metrics, accepted-move count and best representation
//    are bit-identical between the two modes at every thread count (and
//    across thread counts), and exits non-zero on any divergence. The
//    end-to-end gain here is modest by design — scoring is dominated by
//    nets whose geometry DID change, which no bit-exact cache can skip
//    (see docs/ARCHITECTURE.md, "Incremental evaluation pipeline") — so
//    this section gates correctness, not a speedup factor.
//
// Knobs: FICON_INC_CIRCUIT (default ami33), FICON_GAMMA, FICON_SCALE.
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

namespace {

struct StageResult {
  double baseline_mps = 0.0;
  double incremental_mps = 0.0;
  bool identical = true;
  double speedup() const { return incremental_mps / baseline_mps; }
};

/// Time pack() vs pack_cached() over the same annealing move stream,
/// verifying per-move that both produce the same packing.
StageResult repack_stage(const Netlist& netlist, int moves) {
  std::vector<PolishExpression> seq;
  seq.reserve(static_cast<std::size_t>(moves));
  Rng rng(7);
  PolishExpression expr =
      PolishExpression::initial(static_cast<int>(netlist.module_count()));
  for (int i = 0; i < moves; ++i) {
    expr.random_move(rng);
    seq.push_back(expr);
  }

  StageResult r;
  SlicingPacker full(netlist);
  SlicingPacker cached(netlist);
  std::vector<double> areas;
  areas.reserve(seq.size());
  Stopwatch sw;
  for (const PolishExpression& e : seq) areas.push_back(full.pack(e).area);
  r.baseline_mps = moves / sw.seconds();
  sw = Stopwatch();
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const SlicingResult& packed = cached.pack_cached_ref(seq[i]);
    if (packed.area != areas[i]) r.identical = false;
  }
  r.incremental_mps = moves / sw.seconds();
  return r;
}

/// Time decompose_to_two_pin() (fresh buffers per candidate) vs the
/// caching TwoPinDecomposer over the same placement stream, verifying
/// identical edges.
StageResult decompose_stage(const Netlist& netlist, int moves) {
  std::vector<Placement> placements;
  placements.reserve(static_cast<std::size_t>(moves));
  Rng rng(7);
  PolishExpression expr =
      PolishExpression::initial(static_cast<int>(netlist.module_count()));
  SlicingPacker packer(netlist);
  for (int i = 0; i < moves; ++i) {
    expr.random_move(rng);
    placements.push_back(packer.pack(expr).placement);
  }

  StageResult r;
  std::vector<double> lengths;
  lengths.reserve(placements.size());
  Stopwatch sw;
  for (const Placement& p : placements) {
    lengths.push_back(total_length(decompose_to_two_pin(netlist, p)));
  }
  r.baseline_mps = moves / sw.seconds();
  TwoPinDecomposer decomposer;
  sw = Stopwatch();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (total_length(decomposer.decompose(netlist, placements[i])) !=
        lengths[i]) {
      r.identical = false;
    }
  }
  r.incremental_mps = moves / sw.seconds();
  return r;
}

}  // namespace

int main() {
  obs::set_thread_label("main");
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_INC_CIRCUIT", "ami33");
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::cout << "Incremental evaluation pipeline — " << circuit
            << " congestion-driven annealing (hardware threads: "
            << std::thread::hardware_concurrency() << ")\n";
  print_scale_banner(config);

  const Netlist netlist = make_mcnc(circuit);
  bool identical = true;

  // --- Stage throughput on the annealing move stream. ---
  const int stage_moves =
      std::max(2000, static_cast<int>(20000 * config.scale));
  TextTable stages({"stage", "baseline mv/s", "incremental mv/s", "speedup"});
  const StageResult repack = repack_stage(netlist, stage_moves);
  stages.add_row({"re-pack", fmt_fixed(repack.baseline_mps, 0),
                  fmt_fixed(repack.incremental_mps, 0),
                  fmt_fixed(repack.speedup(), 2)});
  const StageResult decomp = decompose_stage(netlist, stage_moves);
  stages.add_row({"decompose+wirelength", fmt_fixed(decomp.baseline_mps, 0),
                  fmt_fixed(decomp.incremental_mps, 0),
                  fmt_fixed(decomp.speedup(), 2)});
  stages.print(std::cout);
  std::cout << "# re-pack speedup " << fmt_fixed(repack.speedup(), 2)
            << "x (gate: >= 2x), stages bit-identical: "
            << ((repack.identical && decomp.identical) ? "yes" : "NO")
            << "\n\n";
  identical = identical && repack.identical && decomp.identical;

  // --- End-to-end annealing, incremental on vs off, thread sweep. ---
  FloorplanOptions base = bench::tuned_options(config);
  base.objective.model = CongestionModelKind::kIrregularGrid;
  base.objective.gamma = bench::congestion_gamma();
  base.objective.irregular = bench::paper_ir_params(circuit);
  base.seed = 1;

  TextTable table({"threads", "baseline mv/s", "incremental mv/s", "speedup",
                   "final cost"});
  double reference_cost = 0.0;
  std::string reference_repr;

  bench::BenchReport report("incremental");
  report.manifest("netlist_fingerprint",
                  std::to_string(netlist_fingerprint(netlist)));
  report.meta("circuit", circuit);
  report.meta("scale", config.scale);
  report.meta("repack_speedup", repack.speedup());
  report.meta("decompose_speedup", decomp.speedup());

  for (const int threads : thread_counts) {
    ThreadPool::set_global_threads(threads);

    FloorplanOptions off = base;
    off.incremental = false;
    const FloorplanSolution slow = Floorplanner(netlist, off).run();

    FloorplanOptions on = base;
    on.incremental = true;
    const FloorplanSolution fast = Floorplanner(netlist, on).run();

    const double slow_mps =
        static_cast<double>(slow.stats.moves_proposed) / slow.seconds;
    const double fast_mps =
        static_cast<double>(fast.stats.moves_proposed) / fast.seconds;

    // Bit-identity between the two modes...
    if (fast.metrics.cost != slow.metrics.cost ||
        fast.metrics.area != slow.metrics.area ||
        fast.metrics.wirelength != slow.metrics.wirelength ||
        fast.metrics.congestion != slow.metrics.congestion ||
        fast.representation != slow.representation ||
        fast.stats.moves_accepted != slow.stats.moves_accepted) {
      identical = false;
    }
    // ...and across thread counts.
    if (threads == thread_counts.front()) {
      reference_cost = fast.metrics.cost;
      reference_repr = fast.representation;
    } else if (fast.metrics.cost != reference_cost ||
               fast.representation != reference_repr) {
      identical = false;
    }

    table.add_row({std::to_string(threads), fmt_fixed(slow_mps, 1),
                   fmt_fixed(fast_mps, 1),
                   fmt_fixed(fast_mps / slow_mps, 2),
                   fmt_general(fast.metrics.cost, 12)});

    report.begin_row();
    report.value("threads", static_cast<long long>(threads));
    report.value("baseline_moves_per_s", slow_mps);
    report.value("incremental_moves_per_s", fast_mps);
    report.value("final_cost", fast.metrics.cost);
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());

  table.print(std::cout);
  std::cout << (identical
                    ? "# bit-identity: incremental == baseline at every "
                      "thread count\n"
                    : "# BIT-IDENTITY VIOLATION: incremental and baseline "
                      "runs diverged\n");
  const bool pass = identical && repack.speedup() >= 2.0;
  if (repack.speedup() < 2.0) {
    std::cout << "# RE-PACK SPEEDUP BELOW GATE ("
              << fmt_fixed(repack.speedup(), 2) << "x < 2x)\n";
  }
  report.meta("bit_identical", static_cast<long long>(identical ? 1 : 0));
  std::cout << "# wrote " << report.write_file() << "\n";
  obs::emit_env_trace(std::cout, "bench_incremental");
  return pass ? 0 : 1;
}
