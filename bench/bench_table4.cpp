// Table 4 reproduction: congestion-only optimization (alpha = beta = 0)
// with the Irregular-Grid model on ami33 (grid 30x30 um^2). Reports the
// number of IR-grids of the final solution, the IR cost (paper's x100
// scale), run time, and the judging verdict.
#include <iostream>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_T4_CIRCUIT", "ami33");
  std::cout << "Table 4 — congestion-only optimization with the "
               "Irregular-Grid model (" << circuit << ", 30x30 um^2)\n";
  print_scale_banner(config);

  const Netlist netlist = make_mcnc(circuit);
  const FixedGridModel judge = make_judging_model(config.judging_pitch);
  FloorplanOptions options = bench::tuned_options(config);
  options.objective.alpha = 0.0;
  options.objective.beta = 0.0;
  options.objective.gamma = 1.0;
  options.objective.model = CongestionModelKind::kIrregularGrid;
  options.objective.irregular = bench::paper_ir_params(circuit);
  const SeedSweep sweep = run_seed_sweep(netlist, options, config.seeds, judge);

  // "# of IR-grid": evaluate the model once on each final placement.
  const IrregularGridModel model(options.objective.irregular);
  RunningStats cells;
  for (const JudgedRun& run : sweep.runs) {
    const auto nets = decompose_to_two_pin(netlist, run.solution.placement);
    cells.add(static_cast<double>(
        model.evaluate(nets, run.solution.placement.chip).cell_count()));
  }
  const JudgedRun& best = sweep.best();
  const auto best_nets = decompose_to_two_pin(netlist, best.solution.placement);
  const long long best_cells =
      model.evaluate(best_nets, best.solution.placement.chip).cell_count();

  TextTable table({"grid (um)", "avg #IR-grids", "avg IR cgt (x100)",
                   "avg time (s)", "avg judging cgt", "best #IR-grids",
                   "best IR cgt (x100)", "best time (s)",
                   "best judging cgt"});
  table.add_row({"30x30", fmt_fixed(cells.mean(), 0),
                 fmt_fixed(sweep.mean_congestion() * 100.0, 4),
                 fmt_fixed(sweep.mean_seconds(), 1),
                 fmt_fixed(sweep.mean_judging(), 5),
                 std::to_string(best_cells),
                 fmt_fixed(best.solution.metrics.congestion * 100.0, 4),
                 fmt_fixed(best.solution.seconds, 1),
                 fmt_fixed(best.judging_cost, 6)});
  table.print(std::cout);
  std::cout << "(paper Table 4: 589 IR-grids, 27.7 s, judging 0.21239 on "
               "their testbed; compare against Table 5's fixed-grid runs)\n";
  return 0;
}
