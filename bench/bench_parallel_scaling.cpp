// Parallel scaling of the evaluation hot paths (util/thread_pool.hpp).
//
// Three workloads on the full ami49 harness (the largest MCNC circuit),
// each measured at 1/2/4/8 threads with speedup relative to 1 thread:
//   * IrregularGridModel::evaluate  — the paper's model (kBandedExact),
//   * FixedGridModel::evaluate      — the 10 um judging referee,
//   * run_seed_sweep                — independent annealing runs fanned
//                                     out one-per-thread.
// Because every parallel reduction is blocked by problem size and merged
// in block order, the costs printed in the last column must be identical
// on every row — the bench asserts it (determinism is also covered by
// tests/determinism_test.cpp).
//
// Knobs: FICON_PAR_CIRCUIT (default ami49), FICON_PAR_REPEATS (default 5),
// FICON_SEEDS / FICON_SCALE for the sweep workload. Speedups depend on the
// machine; on a single hardware thread every row degenerates to ~1.0x.
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;

namespace {

// Warmed-up variant: page in partial grids, fill log-factorial caches.
double timed_ms(const std::function<void()>& fn, int repeats) {
  return bench::timed_ms(fn, repeats, /*warmup=*/true);
}

}  // namespace

int main() {
  const ExperimentConfig config = experiment_config_from_env();
  const std::string circuit = env_string("FICON_PAR_CIRCUIT", "ami49");
  const int repeats = std::max(1, env_int("FICON_PAR_REPEATS", 5));
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::cout << "Parallel scaling — " << circuit
            << " full-harness evaluation (hardware threads: "
            << std::thread::hardware_concurrency() << ")\n";
  print_scale_banner(config);

  // One deterministic floorplan provides the shared evaluation workload.
  const Netlist netlist = make_mcnc(circuit);
  FloorplanOptions base = bench::tuned_options(config);
  const FloorplanSolution sol = Floorplanner(netlist, base).run();
  const auto nets = decompose_to_two_pin(netlist, sol.placement);
  const Rect chip = sol.placement.chip;

  const IrregularGridModel ir(bench::paper_ir_params(circuit));
  const FixedGridModel judge = make_judging_model(config.judging_pitch);
  const int sweep_seeds = std::max(2, config.seeds);

  TextTable table({"threads", "IR eval (ms)", "speedup", "judge eval (ms)",
                   "speedup", "sweep (s)", "speedup", "IR cost"});
  double ir_base_ms = 0.0, judge_base_ms = 0.0, sweep_base_s = 0.0;
  double reference_cost = 0.0;
  bool deterministic = true;

  for (const int threads : thread_counts) {
    ThreadPool::set_global_threads(threads);

    const double ir_ms = timed_ms([&] { ir.evaluate(nets, chip); }, repeats);
    const double judge_ms =
        timed_ms([&] { judge.evaluate(nets, chip); }, repeats);
    Stopwatch sweep_sw;
    const SeedSweep sweep = run_seed_sweep(netlist, base, sweep_seeds, judge);
    const double sweep_s = sweep_sw.seconds();
    const double cost =
        ir.evaluate(nets, chip).top_fraction_cost(ir.params().top_fraction);

    if (threads == thread_counts.front()) {
      ir_base_ms = ir_ms;
      judge_base_ms = judge_ms;
      sweep_base_s = sweep_s;
      reference_cost = cost;
    }
    if (cost != reference_cost) deterministic = false;
    (void)sweep;  // timed for wall clock; results verified in tests

    table.add_row({std::to_string(threads), fmt_fixed(ir_ms, 2),
                   fmt_fixed(ir_base_ms / ir_ms, 2), fmt_fixed(judge_ms, 2),
                   fmt_fixed(judge_base_ms / judge_ms, 2),
                   fmt_fixed(sweep_s, 2), fmt_fixed(sweep_base_s / sweep_s, 2),
                   fmt_general(cost, 12)});
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());

  table.print(std::cout);
  std::cout << (deterministic
                    ? "# determinism: IR cost identical on every row\n"
                    : "# DETERMINISM VIOLATION: IR cost differs across "
                      "thread counts\n");
  return deterministic ? 0 : 1;
}
