// Complexity experiment (paper section 4.7): the time of the IR-grid
// algorithm is O(n * #IR-grids), which is formally O(n^3) but far below it
// in practice "because a lot of cutting-lines will duplicate" and merging
// removes more. Sweep a soft-block scaling ladder and report, per size:
// two-pin net count n, IR-grid count vs n^2, and single-evaluation times
// for the IR model and fixed grids.
#include <iostream>

#include "bench_common.hpp"
#include "ficon.hpp"

using namespace ficon;
using bench::timed_ms;

int main() {
  const int max_modules = env_int("FICON_SCALING_MAX", 200);
  std::cout << "Scaling — IR-grid count and evaluation time vs circuit size "
               "(soft-block ladder)\n";

  TextTable table({"modules", "2-pin nets n", "#IR-grids", "n^2",
                   "IR/n^2 (%)", "IR eval (ms)", "fixed 50um (ms)",
                   "fixed 10um (ms)"});
  for (const int m : {25, 50, 100, 200, 400}) {
    if (m > max_modules) break;
    const Netlist netlist = make_scaling_circuit(m);
    FloorplanOptions o;
    o.effort = 0.15;
    o.anneal.stop_temperature_ratio = 1e-2;
    const FloorplanSolution sol = Floorplanner(netlist, o).run();
    const auto nets = decompose_to_two_pin(netlist, sol.placement);
    const Rect chip = sol.placement.chip;
    const double n = static_cast<double>(nets.size());

    IrregularGridParams ir_params;
    ir_params.grid_w = ir_params.grid_h = 30.0;
    const IrregularGridModel ir(ir_params);
    const long long ir_cells = ir.evaluate(nets, chip).cell_count();

    const int repeats = m <= 100 ? 5 : 2;
    const double ir_ms =
        timed_ms([&] { ir.cost(nets, chip); }, repeats);
    const FixedGridModel f50(FixedGridParams{50, 50, 0.10});
    const double f50_ms = timed_ms([&] { f50.cost(nets, chip); }, repeats);
    const FixedGridModel f10(FixedGridParams{10, 10, 0.10});
    const double f10_ms = timed_ms([&] { f10.cost(nets, chip); }, repeats);

    table.add_row({std::to_string(m), fmt_fixed(n, 0),
                   std::to_string(ir_cells), fmt_fixed(n * n, 0),
                   fmt_fixed(100.0 * static_cast<double>(ir_cells) / (n * n),
                             2),
                   fmt_fixed(ir_ms, 2), fmt_fixed(f50_ms, 2),
                   fmt_fixed(f10_ms, 2)});
  }
  table.print(std::cout);
  std::cout << "(paper section 4.7: the IR-grid count stays far below n^2; "
               "evaluation effort scales with it)\n";
  return 0;
}
