// Fuzz harness for the Polish-expression layer: decodes arbitrary bytes
// into a token vector plus a move script and checks the invariants the
// annealer relies on:
//
//   * is_valid / is_normalized never crash or allocate absurdly, whatever
//     the token values (including operands near INT_MAX);
//   * an expression accepted by the validating constructor survives any
//     sequence of M1/M2/M3 moves with validity and normalization intact,
//     and module_count() never drifts.
//
// Input layout: byte 0 = module count seed, byte 1..8 = RNG seed, the
// rest alternates between raw token bytes (first half) and move selectors
// (second half). Built as a libFuzzer target under clang
// (-fsanitize=fuzzer); under gcc the same file compiles into a standalone
// driver that replays files given on the command line (or a built-in
// random smoke loop when run without arguments).
#include <cstdint>
#include <cstring>
#include <vector>

#include "floorplan/polish.hpp"
#include "util/rng.hpp"

using ficon::PolishExpression;
using ficon::PolishToken;

namespace {

/// Map one byte to a token: small values become operands (biased toward
/// the valid range), high bits select operators or extreme operands.
PolishToken decode_token(std::uint8_t b, int module_count) {
  switch (b & 0x07) {
    case 0: return PolishToken{PolishToken::kH};
    case 1: return PolishToken{PolishToken::kV};
    case 2: return PolishToken{(b >> 3) - 17};          // junk negatives
    case 3: return PolishToken{0x7fffff00 + (b >> 3)};  // near INT_MAX
    default:
      return PolishToken{module_count > 0 ? (b >> 3) % module_count
                                          : (b >> 3)};
  }
}

void check(bool ok, const char* what) {
  if (!ok) {
    // Crash loudly so both libFuzzer and the standalone driver report it.
    std::fprintf(stderr, "invariant violated: %s\n", what);
    __builtin_trap();
  }
}

void run_one(const std::uint8_t* data, std::size_t size) {
  if (size < 10) return;
  const int module_count = data[0] % 24 + 1;
  std::uint64_t seed = 0;
  std::memcpy(&seed, data + 1, 8);
  const std::uint8_t* payload = data + 9;
  const std::size_t payload_size = size - 9;

  // Phase 1: arbitrary token soup through the validators. Must not crash
  // and must agree with the validating constructor.
  std::vector<PolishToken> tokens;
  tokens.reserve(payload_size / 2);
  for (std::size_t i = 0; i < payload_size / 2; ++i) {
    tokens.push_back(decode_token(payload[i], module_count));
  }
  const bool valid = PolishExpression::is_valid(tokens);
  const bool normalized = PolishExpression::is_normalized(tokens);
  if (valid && normalized) {
    const PolishExpression parsed(tokens);  // must not throw
    check(parsed.tokens() == tokens, "constructor altered tokens");
  }

  // Phase 2: a known-good expression through a fuzz-chosen move script.
  PolishExpression expr = PolishExpression::initial(module_count);
  ficon::Rng rng(seed);
  for (std::size_t i = payload_size / 2; i < payload_size; ++i) {
    const std::uint8_t op = payload[i];
    switch (op & 0x03) {
      case 0:
        expr.move_swap_operands(op >> 2);
        break;
      case 1:
        expr.move_complement_chain(op >> 2);
        break;
      case 2:
        expr.move_swap_operand_operator(op >> 2);
        break;
      default:
        expr.random_move(rng);
        break;
    }
    check(PolishExpression::is_valid(expr.tokens()),
          "move produced an invalid expression");
    check(PolishExpression::is_normalized(expr.tokens()),
          "move produced a non-normalized expression");
    check(expr.module_count() == module_count,
          "move changed the module count");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  run_one(data, size);
  return 0;
}

#ifndef FICON_LIBFUZZER
// Standalone driver (gcc has no libFuzzer): replay corpus files, or with
// no arguments run a deterministic random smoke loop.
#include <cstdio>

int main(int argc, char** argv) {
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::FILE* f = std::fopen(argv[i], "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 2;
      }
      std::vector<std::uint8_t> data;
      std::uint8_t buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        data.insert(data.end(), buf, buf + n);
      }
      std::fclose(f);
      run_one(data.data(), data.size());
      std::printf("%s: ok (%zu bytes)\n", argv[i], data.size());
    }
    return 0;
  }
  // Smoke mode: ~20k random inputs from a fixed seed. The generator here
  // only produces *inputs*; all checking stays inside run_one.
  ficon::SplitMix64 gen(0xF1C0Du);
  std::vector<std::uint8_t> data;
  for (int iter = 0; iter < 20000; ++iter) {
    data.resize(10 + gen.next() % 120);
    for (std::uint8_t& b : data) {
      b = static_cast<std::uint8_t>(gen.next());
    }
    run_one(data.data(), data.size());
  }
  std::printf("polish_fuzz smoke: 20000 inputs ok\n");
  return 0;
}
#endif
