// Subprocess contract tests for ficon_cli's option parsing and service
// mode (satellite of ROADMAP item 1): the parser must distinguish
// "missing value" from "unknown flag", validate numeric arguments, and
// exit 2 with a targeted message on every usage error — previously a
// trailing `--seed` crashed and `--seeds` was silently mis-parsed as an
// abbreviation of `--seed`.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_cli(const std::string& args) {
  const std::string cmd = std::string(FICON_CLI_BINARY) + " " + args + " 2>&1";
  CliRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    run.output += buffer;
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

TEST(FiconCliTest, TrailingFlagReportsMissingValueNotUnknownOption) {
  const CliRun run = run_cli("--circuit apte --seed");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("'--seed' requires a value"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("unknown option"), std::string::npos)
      << run.output;
}

TEST(FiconCliTest, UnknownOptionIsReportedByName) {
  const CliRun run = run_cli("--bogus 1");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("unknown option '--bogus'"), std::string::npos)
      << run.output;
}

TEST(FiconCliTest, NonNumericValueIsRejected) {
  const CliRun run = run_cli("--alpha 1.5x");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("'--alpha' needs a number"), std::string::npos)
      << run.output;
  // Negative seeds must not wrap around through strtoull.
  const CliRun negative = run_cli("--seed -3");
  EXPECT_EQ(negative.exit_code, 2);
  EXPECT_NE(negative.output.find("non-negative integer"), std::string::npos)
      << negative.output;
}

TEST(FiconCliTest, OutOfRangeAndInvalidEnumValuesAreRejected) {
  EXPECT_EQ(run_cli("--seeds 0 --json").exit_code, 2);
  EXPECT_EQ(run_cli("--seeds 5000 --json").exit_code, 2);
  EXPECT_EQ(run_cli("--grid -5").exit_code, 2);
  EXPECT_EQ(run_cli("--effort 0").exit_code, 2);
  const CliRun model = run_cli("--model irr");
  EXPECT_EQ(model.exit_code, 2);
  EXPECT_NE(model.output.find("unknown model 'irr'"), std::string::npos)
      << model.output;
  EXPECT_EQ(run_cli("--engine fast").exit_code, 2);
  EXPECT_EQ(run_cli("--op polish --json").exit_code, 2);
}

TEST(FiconCliTest, ServiceKnobsRequireJsonMode) {
  const CliRun run = run_cli("--circuit apte --op evaluate");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("--json"), std::string::npos) << run.output;
  // Exports are mutually exclusive with --json output.
  EXPECT_EQ(run_cli("--json --svg out.svg").exit_code, 2);
}

TEST(FiconCliTest, UnknownCircuitExitsTwo) {
  const CliRun run = run_cli("--circuit no_such_circuit --json --op evaluate");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("cannot load 'no_such_circuit'"),
            std::string::npos)
      << run.output;
}

TEST(FiconCliTest, JsonEvaluatePrintsOneCanonicalLine) {
  const CliRun run = run_cli("--circuit apte --op evaluate --json");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.rfind("{\"op\":\"evaluate\"", 0), 0u) << run.output;
  EXPECT_NE(run.output.find("\"circuit\":\"apte\""), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"status\":\"ok\""), std::string::npos)
      << run.output;
  // Exactly one line, and no wall-clock field that would break diffing.
  EXPECT_EQ(run.output.find('\n'), run.output.size() - 1) << run.output;
  EXPECT_EQ(run.output.find("seconds"), std::string::npos) << run.output;
}

TEST(FiconCliTest, ConnectWithoutDaemonExitsThree) {
  const CliRun run =
      run_cli("--circuit apte --connect /tmp/ficon_cli_test_no_daemon.sock");
  EXPECT_EQ(run.exit_code, 3);
  EXPECT_NE(run.output.find("connect"), std::string::npos) << run.output;
}

}  // namespace
