// Fixed-size-grid congestion model tests (the section 3 baseline and the
// judging model).
#include <sstream>

#include <gtest/gtest.h>

#include "congestion/fixed_grid.hpp"
#include "congestion/path_prob.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

const Rect kChip{0, 0, 100, 100};

TEST(FixedGrid, SingleNetMatchesCellProbabilities) {
  // One type I net spanning cells (0,0)..(7,4): every grid cell's
  // accumulated value must equal Formula 2 directly.
  const FixedGridModel model(FixedGridParams{10, 10, 0.10});
  const std::vector<TwoPinNet> nets{{Point{5, 5}, Point{75, 45}, 0}};
  const CongestionMap map = model.evaluate(nets, kChip);

  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape shape{8, 5, false};
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      const double expected =
          (x < 8 && y < 5) ? prob.cell_probability(shape, x, y) : 0.0;
      EXPECT_NEAR(map.at(x, y), expected, 1e-9) << "cell " << x << ',' << y;
    }
  }
}

TEST(FixedGrid, TypeTwoNetAccumulatesMirrored) {
  const FixedGridModel model(FixedGridParams{10, 10, 0.10});
  const std::vector<TwoPinNet> nets{{Point{5, 45}, Point{75, 5}, 0}};
  const CongestionMap map = model.evaluate(nets, kChip);
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape shape{8, 5, true};
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_NEAR(map.at(x, y), prob.cell_probability(shape, x, y), 1e-9)
          << "cell " << x << ',' << y;
    }
  }
  // Pins sit in (0,4) and (7,0): both must read probability 1.
  EXPECT_NEAR(map.at(0, 4), 1.0, 1e-12);
  EXPECT_NEAR(map.at(7, 0), 1.0, 1e-12);
}

TEST(FixedGrid, RowConservationPerNet) {
  // Summing f over any anti-diagonal of a single net's span gives exactly 1
  // (each route crosses it once) — the map must inherit that.
  const FixedGridModel model(FixedGridParams{10, 10, 0.10});
  const std::vector<TwoPinNet> nets{{Point{5, 5}, Point{95, 95}, 0}};
  const CongestionMap map = model.evaluate(nets, kChip);
  for (int d = 0; d <= 18; ++d) {
    double sum = 0.0;
    for (int x = 0; x <= d; ++x) {
      const int y = d - x;
      if (x < 10 && y < 10) sum += map.at(x, y);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "diagonal " << d;
  }
}

TEST(FixedGrid, DegenerateNetsCountOnce) {
  const FixedGridModel model(FixedGridParams{10, 10, 0.10});
  const std::vector<TwoPinNet> nets{
      {Point{15, 15}, Point{15, 15}, 0},  // point
      {Point{5, 55}, Point{95, 55}, 1},   // horizontal line
  };
  const CongestionMap map = model.evaluate(nets, kChip);
  EXPECT_DOUBLE_EQ(map.at(1, 1), 1.0);
  for (int x = 0; x < 10; ++x) {
    EXPECT_DOUBLE_EQ(map.at(x, 5), 1.0);
  }
  EXPECT_DOUBLE_EQ(map.at(0, 9), 0.0);
}

TEST(FixedGrid, SuperpositionOverNets) {
  const FixedGridModel model(FixedGridParams{10, 10, 0.10});
  const std::vector<TwoPinNet> a{{Point{5, 5}, Point{45, 45}, 0}};
  const std::vector<TwoPinNet> b{{Point{25, 5}, Point{65, 75}, 1}};
  std::vector<TwoPinNet> both = a;
  both.insert(both.end(), b.begin(), b.end());
  const CongestionMap ma = model.evaluate(a, kChip);
  const CongestionMap mb = model.evaluate(b, kChip);
  const CongestionMap mboth = model.evaluate(both, kChip);
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      EXPECT_NEAR(mboth.at(x, y), ma.at(x, y) + mb.at(x, y), 1e-9);
    }
  }
}

TEST(FixedGrid, IncrementalRatioMatchesDirectFormula) {
  // The production evaluator advances P along rows with a multiplicative
  // recurrence; verify against direct per-cell evaluation on a larger span.
  const FixedGridModel model(FixedGridParams{2, 2, 0.10});
  const std::vector<TwoPinNet> nets{{Point{1, 1}, Point{79, 59}, 0}};
  const CongestionMap map = model.evaluate(nets, kChip);
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape shape{40, 30, false};
  for (int y = 0; y < 30; y += 3) {
    for (int x = 0; x < 40; x += 3) {
      EXPECT_NEAR(map.at(x, y), prob.cell_probability(shape, x, y), 1e-9);
    }
  }
}

TEST(FixedGrid, CostIsTopTenPercentMean) {
  const FixedGridModel model(FixedGridParams{50, 50, 0.10});
  // 2x2 grid on a 100x100 chip: top 10% of 4 cells = the single hottest.
  const std::vector<TwoPinNet> nets{{Point{10, 10}, Point{90, 90}, 0}};
  const CongestionMap map = model.evaluate(nets, kChip);
  EXPECT_DOUBLE_EQ(model.cost(nets, kChip), map.top_fraction_cost(0.10));
  double peak = 0.0;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) peak = std::max(peak, map.at(x, y));
  }
  EXPECT_DOUBLE_EQ(map.top_fraction_cost(0.10), peak);
}

TEST(FixedGrid, JudgingModelUsesTenMicronPitch) {
  const FixedGridModel judge = make_judging_model();
  EXPECT_DOUBLE_EQ(judge.params().grid_w, 10.0);
  EXPECT_DOUBLE_EQ(judge.params().grid_h, 10.0);
}

TEST(FixedGrid, GridSizeChangesEstimate) {
  // The motivating defect of the fixed model (Figures 3/4): the same
  // workload scores differently under different pitches.
  std::vector<TwoPinNet> nets;
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    nets.push_back(TwoPinNet{Point{rng.uniform(50, 100), rng.uniform(0, 50)},
                             Point{rng.uniform(50, 100), rng.uniform(50, 100)},
                             i});
  }
  const double cost_coarse =
      FixedGridModel(FixedGridParams{25, 25, 0.10}).cost(nets, kChip);
  const double cost_fine =
      FixedGridModel(FixedGridParams{5, 5, 0.10}).cost(nets, kChip);
  EXPECT_GT(cost_coarse, 0.0);
  EXPECT_GT(cost_fine, 0.0);
  EXPECT_NE(cost_coarse, cost_fine);
}

TEST(CongestionMap, CsvAndAsciiOutputs) {
  const FixedGridModel model(FixedGridParams{50, 50, 0.10});
  const std::vector<TwoPinNet> nets{{Point{10, 10}, Point{90, 90}, 0}};
  const CongestionMap map = model.evaluate(nets, kChip);
  std::ostringstream csv;
  map.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("x,y,congestion"), std::string::npos);
  // Header + 4 cells.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
  std::ostringstream art;
  map.write_ascii(art);
  EXPECT_FALSE(art.str().empty());
}

TEST(FixedGrid, RejectsNonPositivePitch) {
  EXPECT_THROW(FixedGridModel(FixedGridParams{0, 10, 0.1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ficon
