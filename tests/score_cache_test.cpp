// Shape-keyed LRU memo for per-net IR-grid scoring.
#include <gtest/gtest.h>

#include "congestion/score_cache.hpp"

namespace ficon {
namespace {

ScoreMemo::Key key(int v) { return ScoreMemo::Key{v, v + 1, v + 2}; }
ScoreMemo::Value value(double v) { return ScoreMemo::Value{v, 2 * v}; }

TEST(ScoreMemo, DisabledByDefaultAndAtZeroCapacity) {
  ScoreMemo memo;
  EXPECT_FALSE(memo.enabled());
  memo.insert(key(1), value(1.0));
  EXPECT_EQ(memo.find(key(1)), nullptr);
  EXPECT_EQ(memo.size(), 0u);
  memo.configure(0, 42);
  EXPECT_FALSE(memo.enabled());
}

TEST(ScoreMemo, FindReturnsInsertedValue) {
  ScoreMemo memo;
  memo.configure(4, 1);
  EXPECT_TRUE(memo.enabled());
  EXPECT_EQ(memo.find(key(1)), nullptr);  // cold miss
  memo.insert(key(1), value(0.25));
  const ScoreMemo::Value* hit = memo.find(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, value(0.25));
  EXPECT_EQ(memo.stats().hits, 1);
  EXPECT_EQ(memo.stats().misses, 1);
}

TEST(ScoreMemo, EvictsLeastRecentlyUsed) {
  ScoreMemo memo;
  memo.configure(2, 1);
  memo.insert(key(1), value(1.0));
  memo.insert(key(2), value(2.0));
  ASSERT_NE(memo.find(key(1)), nullptr);  // refresh 1: now 2 is LRU
  memo.insert(key(3), value(3.0));        // evicts 2
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.stats().evictions, 1);
  EXPECT_EQ(memo.find(key(2)), nullptr);
  EXPECT_NE(memo.find(key(1)), nullptr);
  EXPECT_NE(memo.find(key(3)), nullptr);
}

TEST(ScoreMemo, InsertOverwritesExistingKey) {
  ScoreMemo memo;
  memo.configure(2, 1);
  memo.insert(key(1), value(1.0));
  memo.insert(key(1), value(9.0));
  EXPECT_EQ(memo.size(), 1u);
  const ScoreMemo::Value* hit = memo.find(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, value(9.0));
}

TEST(ScoreMemo, FingerprintChangeClearsEntries) {
  // Values are pure functions of (key, evaluation options); when the
  // options fingerprint changes the whole cache must go, or stale matrices
  // from another strategy would be served.
  ScoreMemo memo;
  memo.configure(4, 1);
  memo.insert(key(1), value(1.0));
  memo.configure(4, 1);  // same binding: entries survive
  EXPECT_EQ(memo.size(), 1u);
  memo.configure(4, 2);  // new fingerprint: cleared
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_EQ(memo.find(key(1)), nullptr);
  memo.insert(key(1), value(5.0));
  memo.configure(8, 2);  // capacity change also clears
  EXPECT_EQ(memo.size(), 0u);
}

}  // namespace
}  // namespace ficon
