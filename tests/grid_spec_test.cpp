// Uniform grid geometry and net span classification (Figure 1 semantics).
#include <gtest/gtest.h>

#include "congestion/grid_spec.hpp"

namespace ficon {
namespace {

TEST(GridSpec, FromPitchCoversChip) {
  const GridSpec g = GridSpec::from_pitch(Rect{0, 0, 95, 52}, 10, 10);
  EXPECT_EQ(g.nx(), 10);  // ceil(95/10)
  EXPECT_EQ(g.ny(), 6);   // ceil(52/10)
  EXPECT_EQ(g.cell_count(), 60);
  EXPECT_DOUBLE_EQ(g.pitch_x(), 10.0);
}

TEST(GridSpec, FromCountsDerivesPitch) {
  const GridSpec g = GridSpec::from_counts(Rect{0, 0, 120, 60}, 4, 6);
  EXPECT_DOUBLE_EQ(g.pitch_x(), 30.0);
  EXPECT_DOUBLE_EQ(g.pitch_y(), 10.0);
  EXPECT_EQ(g.cell_rect(0, 0), (Rect{0, 0, 30, 10}));
  EXPECT_EQ(g.cell_rect(3, 5), (Rect{90, 50, 120, 60}));
  EXPECT_THROW(g.cell_rect(4, 0), std::invalid_argument);
}

TEST(GridSpec, ExactPitchDivision) {
  // A 100-unit chip at pitch 10 must give exactly 10 cells, not 11
  // (guards the ceil-with-epsilon rounding).
  const GridSpec g = GridSpec::from_pitch(Rect{0, 0, 100, 100}, 10, 10);
  EXPECT_EQ(g.nx(), 10);
  EXPECT_EQ(g.ny(), 10);
}

TEST(GridSpec, CellLookupClampsToChip) {
  const GridSpec g = GridSpec::from_pitch(Rect{0, 0, 100, 100}, 10, 10);
  EXPECT_EQ(g.cell_x(-5.0), 0);
  EXPECT_EQ(g.cell_x(0.0), 0);
  EXPECT_EQ(g.cell_x(9.999), 0);
  EXPECT_EQ(g.cell_x(10.0), 1);
  EXPECT_EQ(g.cell_x(99.9), 9);
  EXPECT_EQ(g.cell_x(100.0), 9);  // chip edge belongs to last cell
  EXPECT_EQ(g.cell_x(250.0), 9);
}

TEST(GridSpec, RejectsBadArguments) {
  EXPECT_THROW(GridSpec::from_pitch(Rect{0, 0, 0, 10}, 10, 10),
               std::invalid_argument);
  EXPECT_THROW(GridSpec::from_pitch(Rect{0, 0, 10, 10}, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(GridSpec::from_counts(Rect{0, 0, 10, 10}, 0, 3),
               std::invalid_argument);
}

TEST(SpanNet, TypeOneWhenLeftPinIsLower) {
  const GridSpec g = GridSpec::from_pitch(Rect{0, 0, 100, 100}, 10, 10);
  const TwoPinNet net{Point{5, 5}, Point{75, 45}, 0};
  const SpannedNet s = span_net(g, net);
  EXPECT_EQ(s.origin, (GridPoint{0, 0}));
  EXPECT_EQ(s.shape.g1, 8);
  EXPECT_EQ(s.shape.g2, 5);
  EXPECT_FALSE(s.shape.type2);
}

TEST(SpanNet, TypeTwoWhenLeftPinIsUpper) {
  const GridSpec g = GridSpec::from_pitch(Rect{0, 0, 100, 100}, 10, 10);
  const TwoPinNet net{Point{5, 45}, Point{75, 5}, 0};
  const SpannedNet s = span_net(g, net);
  EXPECT_EQ(s.origin, (GridPoint{0, 0}));
  EXPECT_TRUE(s.shape.type2);
  // Pin order in the struct must not matter.
  const SpannedNet swapped = span_net(g, TwoPinNet{net.b, net.a, 0});
  EXPECT_EQ(swapped.shape, s.shape);
  EXPECT_EQ(swapped.origin, s.origin);
}

TEST(SpanNet, DegenerateShapes) {
  const GridSpec g = GridSpec::from_pitch(Rect{0, 0, 100, 100}, 10, 10);
  // Same cell -> 1x1 point.
  const SpannedNet point = span_net(g, TwoPinNet{Point{12, 13}, Point{17, 18}, 0});
  EXPECT_TRUE(point.shape.degenerate());
  EXPECT_EQ(point.shape.g1, 1);
  EXPECT_EQ(point.shape.g2, 1);
  // Same row -> horizontal line; type flag must be false (irrelevant).
  const SpannedNet row = span_net(g, TwoPinNet{Point{5, 33}, Point{95, 38}, 0});
  EXPECT_TRUE(row.shape.degenerate());
  EXPECT_EQ(row.shape.g2, 1);
  EXPECT_FALSE(row.shape.type2);
  // Same column -> vertical line.
  const SpannedNet col = span_net(g, TwoPinNet{Point{41, 5}, Point{44, 95}, 0});
  EXPECT_EQ(col.shape.g1, 1);
  EXPECT_EQ(col.shape.g2, 10);
}

TEST(SpanNet, PinsOnCellBoundary) {
  const GridSpec g = GridSpec::from_pitch(Rect{0, 0, 100, 100}, 10, 10);
  // A pin exactly on a cell boundary goes to the upper cell (floor rule),
  // except at the chip edge where it clamps inward.
  const SpannedNet s = span_net(g, TwoPinNet{Point{20, 0}, Point{100, 100}, 0});
  EXPECT_EQ(s.origin, (GridPoint{2, 0}));
  EXPECT_EQ(s.shape.g1, 8);   // cells 2..9
  EXPECT_EQ(s.shape.g2, 10);  // cells 0..9
}

}  // namespace
}  // namespace ficon
