// Sequence-pair representation and packer tests.
#include <set>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "floorplan/sequence_pair.hpp"
#include "floorplan/slicing.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

Netlist two_modules() {
  return Netlist("t", {{"a", 10, 20}, {"b", 30, 5}},
                 {{"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}});
}

TEST(SequencePair, InitialIsValid) {
  const SequencePair p = SequencePair::initial(5);
  EXPECT_EQ(p.module_count(), 5);
  EXPECT_TRUE(SequencePair::is_valid(p.positive(), p.negative()));
  EXPECT_EQ(p.positive(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SequencePair, ValidityChecks) {
  EXPECT_TRUE(SequencePair::is_valid({1, 0, 2}, {2, 1, 0}));
  EXPECT_FALSE(SequencePair::is_valid({}, {}));
  EXPECT_FALSE(SequencePair::is_valid({0, 1}, {0}));       // length mismatch
  EXPECT_FALSE(SequencePair::is_valid({0, 0}, {0, 1}));    // repeat
  EXPECT_FALSE(SequencePair::is_valid({0, 2}, {0, 1}));    // out of range
}

TEST(SequencePair, ConstructorRejectsBadInput) {
  EXPECT_THROW(SequencePair({0, 0}, {0, 1}, {false, false}),
               std::invalid_argument);
  EXPECT_THROW(SequencePair({0, 1}, {1, 0}, {false}), std::invalid_argument);
}

TEST(SequencePair, MovesPreserveValidity) {
  Rng rng(61);
  SequencePair p = SequencePair::initial(9);
  std::set<int> kinds;
  for (int i = 0; i < 2000; ++i) {
    const int kind = p.random_move(rng);
    kinds.insert(kind);
    ASSERT_TRUE(SequencePair::is_valid(p.positive(), p.negative()))
        << "iter " << i;
  }
  EXPECT_EQ(kinds.size(), 3u);
}

TEST(SequencePair, SingleModuleHasNoMoves) {
  Rng rng(1);
  SequencePair p = SequencePair::initial(1);
  EXPECT_EQ(p.random_move(rng), 0);
}

TEST(SequencePairPacker, SideBySideAndStacked) {
  const Netlist n = two_modules();
  const SequencePairPacker packer(n);
  // Both sequences (0 1): module 0 left of module 1.
  const auto lr = packer.pack(
      SequencePair({0, 1}, {0, 1}, {false, false}));
  EXPECT_DOUBLE_EQ(lr.width, 40.0);
  EXPECT_DOUBLE_EQ(lr.height, 20.0);
  EXPECT_DOUBLE_EQ(lr.placement.module_rects[1].xlo, 10.0);
  EXPECT_TRUE(placement_is_legal(lr.placement));
  // G+ (1 0), G- (0 1): module 0 below module 1.
  const auto stacked = packer.pack(
      SequencePair({1, 0}, {0, 1}, {false, false}));
  EXPECT_DOUBLE_EQ(stacked.width, 30.0);
  EXPECT_DOUBLE_EQ(stacked.height, 25.0);
  EXPECT_DOUBLE_EQ(stacked.placement.module_rects[1].ylo, 20.0);
  EXPECT_TRUE(placement_is_legal(stacked.placement));
}

TEST(SequencePairPacker, RotationSwapsDimensions) {
  const Netlist n = two_modules();
  const SequencePairPacker packer(n);
  const auto r = packer.pack(SequencePair({0, 1}, {0, 1}, {true, false}));
  EXPECT_DOUBLE_EQ(r.placement.module_rects[0].width(), 20.0);
  EXPECT_DOUBLE_EQ(r.placement.module_rects[0].height(), 10.0);
  EXPECT_TRUE(r.placement.rotated[0]);
}

TEST(SequencePairPacker, RandomStatesAlwaysLegal) {
  const Netlist n = make_mcnc("ami33");
  const SequencePairPacker packer(n);
  Rng rng(62);
  SequencePair p = SequencePair::initial(static_cast<int>(n.module_count()));
  for (int iter = 0; iter < 100; ++iter) {
    for (int k = 0; k < 10; ++k) p.random_move(rng);
    const auto r = packer.pack(p);
    ASSERT_TRUE(placement_is_legal(r.placement)) << "iter " << iter;
    ASSERT_GE(r.area + 1e-6, n.total_module_area());
    for (std::size_t m = 0; m < n.module_count(); ++m) {
      ASSERT_NEAR(r.placement.module_rects[m].area(), n.modules()[m].area(),
                  1e-6);
    }
  }
}

TEST(SequencePairPacker, InterleavedPairKnownLayout) {
  // Three 10x10 squares; G+ (0 1 2), G- (1 0 2): 1 below 0, both left of 2.
  const Netlist n("t", {{"a", 10, 10}, {"b", 10, 10}, {"c", 10, 10}},
                  {{"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}});
  const SequencePairPacker packer(n);
  const auto r = packer.pack(
      SequencePair({0, 1, 2}, {1, 0, 2}, {false, false, false}));
  EXPECT_DOUBLE_EQ(r.width, 20.0);
  EXPECT_DOUBLE_EQ(r.height, 20.0);
  EXPECT_DOUBLE_EQ(r.placement.module_rects[1].ylo, 0.0);   // b at bottom
  EXPECT_DOUBLE_EQ(r.placement.module_rects[0].ylo, 10.0);  // a above b
  EXPECT_DOUBLE_EQ(r.placement.module_rects[2].xlo, 10.0);  // c to the right
  EXPECT_TRUE(placement_is_legal(r.placement));
}

TEST(SequencePairPacker, RejectsMismatchedPair) {
  const Netlist n = two_modules();
  const SequencePairPacker packer(n);
  EXPECT_THROW(packer.pack(SequencePair::initial(3)), std::invalid_argument);
}

TEST(SequencePair, ToStringShowsBothSequences) {
  const SequencePair p({1, 0}, {0, 1}, {true, false});
  EXPECT_EQ(p.to_string(), "(1 0 | 0 1 | R.)");
}

}  // namespace
}  // namespace ficon
