// Slicing packer: expressions -> legal placements.
#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "floorplan/slicing.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

Netlist three_modules() {
  return Netlist("t",
                 {{"a", 10, 10}, {"b", 20, 5}, {"c", 5, 15}},
                 {{"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}});
}

std::vector<PolishToken> toks(std::initializer_list<int> vals) {
  std::vector<PolishToken> out;
  for (const int v : vals) out.push_back(PolishToken{v});
  return out;
}
constexpr int H = PolishToken::kH;
constexpr int V = PolishToken::kV;

TEST(Slicing, TwoModuleVerticalCut) {
  const Netlist n("t", {{"a", 10, 10}, {"b", 20, 5}}, {
      {"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}});
  const SlicingPacker packer(n);
  const SlicingResult r = packer.pack(PolishExpression(toks({0, 1, V})));
  // Optimal: rotate b to 5x20? Options: a(10x10) | b(20x5 or 5x20).
  // V-cut: widths add, heights max:
  //   10+20 wide, max(10,5)=10 tall -> 300; 10+5, max(10,20)=20 -> 300.
  EXPECT_DOUBLE_EQ(r.area, 300.0);
  EXPECT_TRUE(placement_is_legal(r.placement));
  // Modules must keep their (possibly transposed) dimensions.
  const Rect& ra = r.placement.module_rects[0];
  EXPECT_DOUBLE_EQ(ra.width() * ra.height(), 100.0);
  const Rect& rb = r.placement.module_rects[1];
  EXPECT_DOUBLE_EQ(rb.width() * rb.height(), 100.0);
}

TEST(Slicing, HorizontalCutStacksBottomToTop) {
  const Netlist n("t", {{"a", 10, 4}, {"b", 10, 6}}, {
      {"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}});
  const SlicingPacker packer(n);
  const SlicingResult r = packer.pack(PolishExpression(toks({0, 1, H})));
  EXPECT_DOUBLE_EQ(r.width, 10.0);
  EXPECT_DOUBLE_EQ(r.height, 10.0);
  // H places the left operand (module 0) below the right operand.
  EXPECT_DOUBLE_EQ(r.placement.module_rects[0].ylo, 0.0);
  EXPECT_DOUBLE_EQ(r.placement.module_rects[1].ylo,
                   r.placement.module_rects[0].yhi);
  EXPECT_TRUE(placement_is_legal(r.placement));
}

TEST(Slicing, VerticalCutPlacesLeftToRight) {
  const Netlist n("t", {{"a", 4, 10}, {"b", 6, 10}}, {
      {"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}});
  const SlicingPacker packer(n);
  const SlicingResult r = packer.pack(PolishExpression(toks({0, 1, V})));
  EXPECT_DOUBLE_EQ(r.placement.module_rects[0].xlo, 0.0);
  EXPECT_DOUBLE_EQ(r.placement.module_rects[1].xlo,
                   r.placement.module_rects[0].xhi);
}

TEST(Slicing, AreaLowerBoundedByModuleSum) {
  const Netlist n = three_modules();
  const SlicingPacker packer(n);
  for (const auto& expr :
       {toks({0, 1, V, 2, H}), toks({0, 1, H, 2, V}), toks({0, 1, 2, V, H}),
        toks({2, 0, V, 1, H})}) {
    const SlicingResult r = packer.pack(PolishExpression(expr));
    EXPECT_GE(r.area + 1e-9, n.total_module_area());
    EXPECT_TRUE(placement_is_legal(r.placement));
  }
}

TEST(Slicing, RandomExpressionsAlwaysLegal) {
  // Property sweep: every reachable expression packs into a legal,
  // area-consistent placement on a realistic circuit.
  const Netlist n = make_mcnc("ami33");
  const SlicingPacker packer(n);
  Rng rng(31);
  PolishExpression e =
      PolishExpression::initial(static_cast<int>(n.module_count()));
  for (int iter = 0; iter < 100; ++iter) {
    for (int k = 0; k < 10; ++k) e.random_move(rng);
    const SlicingResult r = packer.pack(e);
    ASSERT_TRUE(placement_is_legal(r.placement)) << "iter " << iter;
    ASSERT_GE(r.area + 1e-6, n.total_module_area());
    ASSERT_DOUBLE_EQ(r.area, r.width * r.height);
    // Each module keeps its area (rotation only).
    for (std::size_t m = 0; m < n.module_count(); ++m) {
      const Rect& rect = r.placement.module_rects[m];
      ASSERT_NEAR(rect.area(), n.modules()[m].area(), 1e-6);
      const Module& mod = n.modules()[m];
      if (r.placement.rotated[m]) {
        ASSERT_DOUBLE_EQ(rect.width(), mod.height);
      } else {
        ASSERT_DOUBLE_EQ(rect.width(), mod.width);
      }
    }
  }
}

TEST(Slicing, CachedPackMatchesFullPackBitwise) {
  // The incremental pipeline's contract: pack_cached() is bit-identical to
  // the stateless pack() after any sequence of Wong-Liu moves — including
  // M3 moves, which change the kind pattern and force a full rebuild.
  const Netlist n = make_mcnc("ami33");
  SlicingPacker cached(n);
  const SlicingPacker fresh(n);
  Rng rng(33);
  PolishExpression e =
      PolishExpression::initial(static_cast<int>(n.module_count()));
  for (int iter = 0; iter < 200; ++iter) {
    e.random_move(rng);
    const SlicingResult a = cached.pack_cached(e);
    const SlicingResult b = fresh.pack(e);
    ASSERT_EQ(a.width, b.width) << "iter " << iter;
    ASSERT_EQ(a.height, b.height) << "iter " << iter;
    ASSERT_EQ(a.area, b.area) << "iter " << iter;
    ASSERT_EQ(a.placement.chip, b.placement.chip) << "iter " << iter;
    for (std::size_t m = 0; m < n.module_count(); ++m) {
      ASSERT_EQ(a.placement.module_rects[m], b.placement.module_rects[m])
          << "iter " << iter << " module " << m;
      ASSERT_EQ(a.placement.rotated[m], b.placement.rotated[m])
          << "iter " << iter << " module " << m;
    }
  }
  // 200 random moves must have exercised both cache paths, and the dirty
  // pass must be doing real work: far fewer curves recombined than a full
  // rebuild per move would cost.
  const SlicingPacker::CacheStats& stats = cached.cache_stats();
  EXPECT_GT(stats.incremental_packs, 0);
  EXPECT_GT(stats.full_rebuilds, 0);  // M3 moves change the kind pattern
  EXPECT_LT(stats.nodes_recomputed, stats.nodes_total / 2);
}

TEST(Slicing, PackCachedRefMatchesPackAcrossMoves) {
  // pack_cached_ref() reuses one internal SlicingResult across calls; a
  // partially-updated buffer (stale rect or rotation flag from the previous
  // move surviving) would show up here as a mismatch against pack().
  const Netlist n = make_mcnc("ami33");
  SlicingPacker cached(n);
  const SlicingPacker fresh(n);
  Rng rng(77);
  PolishExpression e =
      PolishExpression::initial(static_cast<int>(n.module_count()));
  for (int iter = 0; iter < 120; ++iter) {
    e.random_move(rng);
    const SlicingResult& a = cached.pack_cached_ref(e);
    const SlicingResult b = fresh.pack(e);
    ASSERT_EQ(a.area, b.area) << "iter " << iter;
    ASSERT_EQ(a.placement.chip, b.placement.chip) << "iter " << iter;
    for (std::size_t m = 0; m < n.module_count(); ++m) {
      ASSERT_EQ(a.placement.module_rects[m], b.placement.module_rects[m])
          << "iter " << iter << " module " << m;
      ASSERT_EQ(a.placement.rotated[m], b.placement.rotated[m])
          << "iter " << iter << " module " << m;
    }
  }
}

TEST(Slicing, CacheInvalidationForcesRebuild) {
  const Netlist n = three_modules();
  SlicingPacker packer(n);
  const PolishExpression e(toks({0, 1, V, 2, H}));
  packer.pack_cached(e);
  const long long rebuilds = packer.cache_stats().full_rebuilds;
  packer.pack_cached(e);  // warm: incremental, zero dirty nodes
  EXPECT_EQ(packer.cache_stats().full_rebuilds, rebuilds);
  packer.invalidate_cache();
  packer.pack_cached(e);  // cold again
  EXPECT_EQ(packer.cache_stats().full_rebuilds, rebuilds + 1);
}

TEST(Slicing, DeadspaceReasonableAfterManyMoves) {
  // Not an optimality proof — just a sanity bound: even unoptimized random
  // slicing packings of ami33 stay within ~2.5x the module area (the
  // annealer's job is to close the rest of the gap; see floorplanner_test).
  const Netlist n = make_mcnc("ami33");
  const SlicingPacker packer(n);
  Rng rng(32);
  PolishExpression e =
      PolishExpression::initial(static_cast<int>(n.module_count()));
  double best = 1e300;
  for (int iter = 0; iter < 300; ++iter) {
    e.random_move(rng);
    best = std::min(best, packer.pack(e).area);
  }
  EXPECT_LT(best, n.total_module_area() * 2.5);
}

TEST(Slicing, RejectsMismatchedExpression) {
  const Netlist n = three_modules();
  const SlicingPacker packer(n);
  EXPECT_THROW(packer.pack(PolishExpression(toks({0, 1, V}))),
               std::invalid_argument);
}

TEST(Slicing, SingleModule) {
  const Netlist n("t", {{"a", 12, 8}, {"b", 1, 1}},
                  {{"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}});
  const SlicingPacker packer(n);
  const SlicingResult r = packer.pack(PolishExpression(toks({0, 1, V})));
  EXPECT_TRUE(placement_is_legal(r.placement));
}

TEST(Slicing, SoftModulesFlexToFillDeadspace) {
  // A 10x10 hard block next to a 100-area soft block: with aspect range
  // [0.25, 4] the soft block can become 10 tall and the V-cut packing is
  // deadspace-free; pinned at a square it cannot.
  const Netlist flexible(
      "t", {{"a", 10, 10}, Module::make_soft("s", 100.0, 0.25, 4.0)},
      {{"n", {Pin::on_module(0), Pin::on_module(1)}}});
  const SlicingPacker packer(flexible);
  const SlicingResult r = packer.pack(
      PolishExpression({PolishToken{0}, PolishToken{1}, PolishToken{PolishToken::kV}}));
  EXPECT_NEAR(r.area, 200.0, 1e-6);  // perfect packing
  EXPECT_TRUE(placement_is_legal(r.placement));
  // Soft module keeps its area at the chosen aspect.
  EXPECT_NEAR(r.placement.module_rects[1].area(), 100.0, 1e-6);
}

TEST(PlacementLegality, DetectsOverlapsAndEscapes) {
  Placement p;
  p.chip = Rect{0, 0, 10, 10};
  p.module_rects = {Rect{0, 0, 5, 5}, Rect{4, 4, 8, 8}};
  p.rotated = {false, false};
  EXPECT_FALSE(placement_is_legal(p));
  p.module_rects = {Rect{0, 0, 5, 5}, Rect{5, 0, 11, 5}};
  EXPECT_FALSE(placement_is_legal(p));  // escapes chip
  p.module_rects = {Rect{0, 0, 5, 5}, Rect{5, 0, 10, 5}};
  EXPECT_TRUE(placement_is_legal(p));  // abutting is fine
}

}  // namespace
}  // namespace ficon
