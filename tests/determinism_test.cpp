// Cross-thread-count determinism: the contract of the parallel evaluators
// (util/thread_pool.hpp) is that FICON_THREADS changes wall-clock time and
// NOTHING else. Every computation is blocked by problem size and reduced
// in block order, so congestion maps, costs, and whole seed sweeps must be
// bit-identical at 1, 2, 4 and 8 threads.
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "congestion/fixed_grid.hpp"
#include "congestion/irregular_grid.hpp"
#include "core/floorplanner.hpp"
#include "exp/experiment.hpp"
#include "route/two_pin.hpp"
#include "util/thread_pool.hpp"

namespace ficon {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

FloorplanOptions tiny_options() {
  FloorplanOptions o;
  o.effort = 0.15;
  o.anneal.cooling = 0.8;
  o.anneal.stop_temperature_ratio = 1e-3;
  o.anneal.max_stall_temperatures = 4;
  return o;
}

/// A fixed non-trivial placement shared by the map tests: one deterministic
/// annealing run (computed at 1 thread, used at every thread count).
struct PlacedCircuit {
  Netlist netlist;
  Placement placement;
  std::vector<TwoPinNet> nets;

  explicit PlacedCircuit(const std::string& name) : netlist(make_mcnc(name)) {
    ThreadPool::set_global_threads(1);
    FloorplanOptions o = tiny_options();
    o.seed = 5;
    placement = Floorplanner(netlist, o).run().placement;
    nets = decompose_to_two_pin(netlist, placement);
  }
};

class DeterminismTest : public ::testing::Test {
 protected:
  // Every test leaves the global pool back at 1 thread so ordering between
  // tests cannot matter.
  void TearDown() override { ThreadPool::set_global_threads(1); }
};

TEST_F(DeterminismTest, IrregularGridMapBitIdenticalAcrossThreadCounts) {
  const PlacedCircuit pc("hp");
  for (const IrEvalStrategy strategy :
       {IrEvalStrategy::kBandedExact, IrEvalStrategy::kTheorem1,
        IrEvalStrategy::kExactPerRegion}) {
    IrregularGridParams params;
    params.strategy = strategy;

    ThreadPool::set_global_threads(1);
    const IrregularGridModel model(params);
    const IrregularCongestionMap reference =
        model.evaluate(pc.nets, pc.placement.chip);
    ASSERT_GT(reference.cell_count(), 0);

    for (const int threads : kThreadCounts) {
      ThreadPool::set_global_threads(threads);
      const IrregularCongestionMap map =
          model.evaluate(pc.nets, pc.placement.chip);
      ASSERT_EQ(map.nx(), reference.nx());
      ASSERT_EQ(map.ny(), reference.ny());
      for (int iy = 0; iy < map.ny(); ++iy) {
        for (int ix = 0; ix < map.nx(); ++ix) {
          // EXPECT_EQ, not EXPECT_NEAR: bit-identical is the contract.
          EXPECT_EQ(map.flow(ix, iy), reference.flow(ix, iy))
              << "strategy=" << static_cast<int>(strategy)
              << " threads=" << threads << " cell=(" << ix << ',' << iy << ')';
        }
      }
      EXPECT_EQ(map.top_fraction_cost(0.10), reference.top_fraction_cost(0.10));
    }
  }
}

TEST_F(DeterminismTest, FixedGridMapBitIdenticalAcrossThreadCounts) {
  const PlacedCircuit pc("hp");
  const FixedGridModel judge = make_judging_model(25.0);

  ThreadPool::set_global_threads(1);
  const CongestionMap reference = judge.evaluate(pc.nets, pc.placement.chip);

  for (const int threads : kThreadCounts) {
    ThreadPool::set_global_threads(threads);
    const CongestionMap map = judge.evaluate(pc.nets, pc.placement.chip);
    ASSERT_EQ(map.values().size(), reference.values().size());
    for (std::size_t i = 0; i < map.values().size(); ++i) {
      EXPECT_EQ(map.values()[i], reference.values()[i])
          << "threads=" << threads << " cell " << i;
    }
    EXPECT_EQ(map.top_fraction_cost(0.10), reference.top_fraction_cost(0.10));
  }
}

TEST_F(DeterminismTest, SeedSweepIdenticalAcrossThreadCounts) {
  const Netlist netlist = make_mcnc("apte");
  const FixedGridModel judge = make_judging_model(50.0);
  FloorplanOptions base = tiny_options();
  base.objective.gamma = 0.4;
  base.objective.model = CongestionModelKind::kIrregularGrid;
  constexpr int kSeeds = 3;

  ThreadPool::set_global_threads(1);
  const SeedSweep reference = run_seed_sweep(netlist, base, kSeeds, judge);
  ASSERT_EQ(reference.runs.size(), static_cast<std::size_t>(kSeeds));

  for (const int threads : kThreadCounts) {
    ThreadPool::set_global_threads(threads);
    const SeedSweep sweep = run_seed_sweep(netlist, base, kSeeds, judge);
    ASSERT_EQ(sweep.runs.size(), reference.runs.size());
    for (std::size_t s = 0; s < sweep.runs.size(); ++s) {
      // Same seed -> same annealing trajectory -> same solution, metrics
      // and judging verdict, whichever thread ran it.
      EXPECT_EQ(sweep.runs[s].solution.representation,
                reference.runs[s].solution.representation)
          << "threads=" << threads << " seed " << s;
      EXPECT_EQ(sweep.runs[s].solution.metrics.cost,
                reference.runs[s].solution.metrics.cost);
      EXPECT_EQ(sweep.runs[s].solution.metrics.congestion,
                reference.runs[s].solution.metrics.congestion);
      EXPECT_EQ(sweep.runs[s].judging_cost, reference.runs[s].judging_cost);
    }
    EXPECT_EQ(sweep.best().solution.metrics.cost,
              reference.best().solution.metrics.cost);
    EXPECT_EQ(sweep.mean_judging(), reference.mean_judging());
    EXPECT_EQ(sweep.mean_congestion(), reference.mean_congestion());
  }
}

}  // namespace
}  // namespace ficon
