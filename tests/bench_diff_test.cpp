// bench_diff end-to-end: the perf-regression gate's CLI contract. A
// report must diff clean against itself, a synthetic regression beyond
// the threshold must fail with exit 1, unreadable input must fail with
// exit 2, and the filter/threshold/require flags must behave as
// documented — CI leans on exactly these codes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct DiffRun {
  int exit_code = -1;
  std::string output;
};

DiffRun run_diff(const std::string& args) {
  const std::string cmd =
      std::string(FICON_BENCH_DIFF_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  DiffRun run;
  char buf[4096];
  while (fgets(buf, sizeof buf, pipe) != nullptr) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

/// Writes bench-report fixtures under TempDir and cleans up after itself.
class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "bench_diff_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& json) {
    const fs::path path = dir_ / name;
    std::ofstream(path) << json;
    return path.string();
  }

  /// A minimal but schema-complete scale-style report. The knobs let
  /// each test dial in one divergence.
  static std::string report(double moves_per_s, double pack_ms,
                            const std::string& fingerprint,
                            const std::string& manifest_sha = "abc") {
    return std::string("{\"schema\": \"ficon-bench-v1\", \"bench\": "
                       "\"scale\",\n \"manifest\": {\"git_sha\": \"") +
           manifest_sha +
           "\", \"threads\": 1},\n \"meta\": {\"seed\": 7, \"moves\": 50},\n"
           " \"rows\": [{\"tier\": \"n100\", \"fingerprint\": \"" +
           fingerprint + "\", \"moves_per_s\": " +
           std::to_string(moves_per_s) +
           ", \"pack_ms\": " + std::to_string(pack_ms) + "}]}\n";
  }

 private:
  fs::path dir_;
};

TEST_F(BenchDiffTest, SelfCompareIsClean) {
  const std::string path = write("base.json", report(1000.0, 5.0, "f1"));
  const DiffRun run = run_diff(path + " " + path);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 regression(s) — clean"), std::string::npos)
      << run.output;
  // The manifest is surfaced for the log, never compared.
  EXPECT_NE(run.output.find("manifest (baseline): git_sha=abc"),
            std::string::npos)
      << run.output;
}

TEST_F(BenchDiffTest, TwentyPercentThroughputDropFailsDefaultThreshold) {
  const std::string base = write("base.json", report(1000.0, 5.0, "f1"));
  const std::string cur = write("cur.json", report(800.0, 5.0, "f1"));
  const DiffRun run = run_diff(base + " " + cur);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("moves_per_s"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("1 regression(s)"), std::string::npos)
      << run.output;

  // Higher-better direction: a 20% throughput GAIN is not a regression.
  const DiffRun gain = run_diff(cur + " " + base);
  EXPECT_EQ(gain.exit_code, 0) << gain.output;
}

TEST_F(BenchDiffTest, LowerBetterAndThresholdFlagsApply) {
  const std::string base = write("base.json", report(1000.0, 5.0, "f1"));
  const std::string cur = write("cur.json", report(1000.0, 6.0, "f1"));
  // pack_ms rose ~16.7%: over the 10% default...
  EXPECT_EQ(run_diff(base + " " + cur).exit_code, 1);
  // ...inside a looser global threshold...
  EXPECT_EQ(run_diff("--threshold 0.3 " + base + " " + cur).exit_code, 0);
  // ...and a per-metric override beats the global default.
  EXPECT_EQ(run_diff("--metric pack_ms=0.5 " + base + " " + cur).exit_code,
            0);
  EXPECT_EQ(
      run_diff("--threshold 0.3 --metric pack_ms=0.01 " + base + " " + cur)
          .exit_code,
      1);
}

TEST_F(BenchDiffTest, SkipAndOnlyFilterMetrics) {
  const std::string base = write("base.json", report(1000.0, 5.0, "f1"));
  const std::string cur = write("cur.json", report(800.0, 5.0, "f1"));
  EXPECT_EQ(run_diff("--skip moves_per_s " + base + " " + cur).exit_code, 0);
  EXPECT_EQ(run_diff("--only pack_ms " + base + " " + cur).exit_code, 0);
  EXPECT_EQ(run_diff("--only moves_per_s " + base + " " + cur).exit_code, 1);
}

TEST_F(BenchDiffTest, IdentityStringMismatchFailsRegardlessOfThreshold) {
  const std::string base = write("base.json", report(1000.0, 5.0, "f1"));
  const std::string cur = write("cur.json", report(1000.0, 5.0, "f2"));
  const DiffRun run = run_diff("--threshold 99 " + base + " " + cur);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("identity field changed"), std::string::npos)
      << run.output;
}

TEST_F(BenchDiffTest, ManifestDivergenceIsNotARegression) {
  const std::string base =
      write("base.json", report(1000.0, 5.0, "f1", "sha-one"));
  const std::string cur =
      write("cur.json", report(1000.0, 5.0, "f1", "sha-two"));
  const DiffRun run = run_diff(base + " " + cur);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(BenchDiffTest, RequireEnforcesKeyPresence) {
  const std::string base = write("base.json", report(1000.0, 5.0, "f1"));
  EXPECT_EQ(run_diff("--require fingerprint,seed " + base + " " + base)
                .exit_code,
            0);
  const DiffRun missing =
      run_diff("--require final_cost " + base + " " + base);
  EXPECT_EQ(missing.exit_code, 1) << missing.output;
  EXPECT_NE(missing.output.find("required key \"final_cost\" missing"),
            std::string::npos)
      << missing.output;
}

TEST_F(BenchDiffTest, SchemaDriftAndNameMismatchFail) {
  const std::string base = write("base.json", report(1000.0, 5.0, "f1"));
  // A dropped metric is schema drift even when nothing regressed.
  const std::string dropped = write(
      "dropped.json",
      "{\"schema\": \"ficon-bench-v1\", \"bench\": \"scale\",\n"
      " \"meta\": {\"seed\": 7, \"moves\": 50},\n"
      " \"rows\": [{\"tier\": \"n100\", \"fingerprint\": \"f1\","
      " \"moves_per_s\": 1000.0}]}\n");
  const DiffRun drift = run_diff(base + " " + dropped);
  EXPECT_EQ(drift.exit_code, 1) << drift.output;
  EXPECT_NE(drift.output.find("dropped from current report"),
            std::string::npos)
      << drift.output;

  const std::string other = write(
      "other.json",
      "{\"schema\": \"ficon-bench-v1\", \"bench\": \"incremental\",\n"
      " \"meta\": {}, \"rows\": [{\"threads\": 1}]}\n");
  const DiffRun renamed = run_diff(base + " " + other);
  EXPECT_EQ(renamed.exit_code, 1) << renamed.output;
  EXPECT_NE(renamed.output.find("\"bench\" name"), std::string::npos)
      << renamed.output;
}

TEST_F(BenchDiffTest, OptionalMetricsAreExemptFromKeyDrift) {
  // peak_rss_mib is built into the optional list: a platform that cannot
  // measure RSS omits it, and the gate must not read that as schema
  // drift — in either direction.
  const std::string with_rss = write(
      "with_rss.json",
      "{\"schema\": \"ficon-bench-v1\", \"bench\": \"scale\",\n"
      " \"meta\": {\"seed\": 7, \"moves\": 50},\n"
      " \"rows\": [{\"tier\": \"n100\", \"fingerprint\": \"f1\","
      " \"moves_per_s\": 1000.0, \"pack_ms\": 5.0,"
      " \"peak_rss_mib\": 42.0}]}\n");
  const std::string without_rss = write("without_rss.json",
                                        report(1000.0, 5.0, "f1"));
  EXPECT_EQ(run_diff(with_rss + " " + without_rss).exit_code, 0)
      << run_diff(with_rss + " " + without_rss).output;
  EXPECT_EQ(run_diff(without_rss + " " + with_rss).exit_code, 0);
  // When both sides carry it, it still participates in the comparison
  // (lower-better: a big jump is a regression).
  const std::string more_rss = write(
      "more_rss.json",
      "{\"schema\": \"ficon-bench-v1\", \"bench\": \"scale\",\n"
      " \"meta\": {\"seed\": 7, \"moves\": 50},\n"
      " \"rows\": [{\"tier\": \"n100\", \"fingerprint\": \"f1\","
      " \"moves_per_s\": 1000.0, \"pack_ms\": 5.0,"
      " \"peak_rss_mib\": 84.0}]}\n");
  const DiffRun grew = run_diff(with_rss + " " + more_rss);
  EXPECT_EQ(grew.exit_code, 1) << grew.output;
  EXPECT_NE(grew.output.find("peak_rss_mib"), std::string::npos)
      << grew.output;

  // --optional extends the exemption to user-declared keys.
  const std::string custom = write(
      "custom.json",
      "{\"schema\": \"ficon-bench-v1\", \"bench\": \"scale\",\n"
      " \"meta\": {\"seed\": 7, \"moves\": 50},\n"
      " \"rows\": [{\"tier\": \"n100\", \"fingerprint\": \"f1\","
      " \"moves_per_s\": 1000.0, \"pack_ms\": 5.0,"
      " \"customkey\": 1.0}]}\n");
  EXPECT_EQ(run_diff(custom + " " + without_rss).exit_code, 1);
  EXPECT_EQ(run_diff("--optional customkey " + custom + " " + without_rss)
                .exit_code,
            0);
}

TEST_F(BenchDiffTest, AllFailuresAreReportedInOneRun) {
  // The gate must not stop at the first problem: a rename, a dropped row,
  // and a metric regression in the surviving row all surface together, so
  // one CI run shows the whole damage.
  const std::string base = write(
      "base.json",
      "{\"schema\": \"ficon-bench-v1\", \"bench\": \"scale\",\n"
      " \"meta\": {\"seed\": 7, \"moves\": 50},\n"
      " \"rows\": [{\"tier\": \"n100\", \"fingerprint\": \"f1\","
      " \"moves_per_s\": 1000.0, \"pack_ms\": 5.0},\n"
      "          {\"tier\": \"n200\", \"fingerprint\": \"f2\","
      " \"moves_per_s\": 500.0, \"pack_ms\": 9.0}]}\n");
  const std::string cur = write(
      "cur.json",
      "{\"schema\": \"ficon-bench-v1\", \"bench\": \"renamed\",\n"
      " \"meta\": {\"seed\": 7, \"moves\": 50},\n"
      " \"rows\": [{\"tier\": \"n100\", \"fingerprint\": \"f1\","
      " \"moves_per_s\": 700.0, \"pack_ms\": 5.0}]}\n");
  const DiffRun run = run_diff(base + " " + cur);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("\"bench\" name"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("row count changed: 2 -> 1"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("moves_per_s"), std::string::npos) << run.output;
}

TEST_F(BenchDiffTest, UnreadableInputIsExitTwo) {
  const std::string base = write("base.json", report(1000.0, 5.0, "f1"));
  EXPECT_EQ(run_diff(base + " /nonexistent/BENCH.json").exit_code, 2);
  const std::string garbage = write("garbage.json", "$$ not json $$\n");
  EXPECT_EQ(run_diff(base + " " + garbage).exit_code, 2);
  // Valid JSON, wrong schema tag: a schema problem (1), not I/O (2).
  const std::string wrong = write("wrong.json", "{\"schema\": \"v9\"}\n");
  EXPECT_EQ(run_diff(base + " " + wrong).exit_code, 1);
  // Flag misuse is exit 2 as well.
  EXPECT_EQ(run_diff("--bogus " + base + " " + base).exit_code, 2);
  EXPECT_EQ(run_diff(base).exit_code, 2);
}

}  // namespace
