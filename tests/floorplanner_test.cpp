// Routability-driven floorplanner facade: end-to-end behaviour.
#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "core/floorplanner.hpp"
#include "route/two_pin.hpp"

namespace ficon {
namespace {

FloorplanOptions fast_options() {
  FloorplanOptions o;
  o.effort = 0.15;
  o.anneal.cooling = 0.8;
  o.anneal.max_stall_temperatures = 4;
  o.anneal.stop_temperature_ratio = 1e-3;
  return o;
}

TEST(Floorplanner, ProducesLegalPlacement) {
  const Netlist netlist = make_mcnc("hp");
  const Floorplanner planner(netlist, fast_options());
  const FloorplanSolution sol = planner.run();
  EXPECT_TRUE(placement_is_legal(sol.placement));
  EXPECT_EQ(sol.placement.module_rects.size(), netlist.module_count());
  EXPECT_GE(sol.metrics.area + 1e-6, netlist.total_module_area());
  EXPECT_GT(sol.metrics.wirelength, 0.0);
  EXPECT_GT(sol.seconds, 0.0);
}

TEST(Floorplanner, DeterministicPerSeed) {
  const Netlist netlist = make_mcnc("apte");
  FloorplanOptions o = fast_options();
  o.seed = 77;
  const FloorplanSolution a = Floorplanner(netlist, o).run();
  const FloorplanSolution b = Floorplanner(netlist, o).run();
  EXPECT_EQ(a.expression.to_string(), b.expression.to_string());
  EXPECT_DOUBLE_EQ(a.metrics.area, b.metrics.area);
  EXPECT_DOUBLE_EQ(a.metrics.wirelength, b.metrics.wirelength);
  o.seed = 78;
  const FloorplanSolution c = Floorplanner(netlist, o).run();
  EXPECT_NE(a.expression.to_string(), c.expression.to_string());
}

TEST(Floorplanner, IncrementalPipelineIsBitIdenticalToBaseline) {
  // The whole point of the incremental evaluation pipeline (cached shape
  // curves, shared decomposition, scoring memo): it is a pure speedup. The
  // same seed must walk the exact same annealing trajectory with the
  // pipeline on or off, down to the last bit of every metric.
  const Netlist netlist = make_mcnc("ami33");
  FloorplanOptions on = fast_options();
  on.objective.model = CongestionModelKind::kIrregularGrid;
  on.objective.gamma = 1.0;
  on.seed = 9;
  on.incremental = true;
  FloorplanOptions off = on;
  off.incremental = false;
  const FloorplanSolution a = Floorplanner(netlist, on).run();
  const FloorplanSolution b = Floorplanner(netlist, off).run();
  EXPECT_EQ(a.expression.to_string(), b.expression.to_string());
  EXPECT_EQ(a.metrics.area, b.metrics.area);
  EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength);
  EXPECT_EQ(a.metrics.congestion, b.metrics.congestion);
  EXPECT_EQ(a.metrics.cost, b.metrics.cost);
  EXPECT_EQ(a.stats.moves_proposed, b.stats.moves_proposed);
  EXPECT_EQ(a.stats.moves_accepted, b.stats.moves_accepted);
}

TEST(Floorplanner, OptimizationBeatsInitialExpression) {
  const Netlist netlist = make_mcnc("ami33");
  const Floorplanner planner(netlist, fast_options());
  const FloorplanMetrics initial = planner.evaluate(
      PolishExpression::initial(static_cast<int>(netlist.module_count())));
  const FloorplanSolution sol = planner.run();
  EXPECT_LT(sol.metrics.cost, initial.cost);
  EXPECT_LT(sol.metrics.area, initial.area);
}

TEST(Floorplanner, AreaOnlyObjectiveReachesTightPacking) {
  const Netlist netlist = make_mcnc("apte");
  FloorplanOptions o = fast_options();
  o.objective.alpha = 1.0;
  o.objective.beta = 0.0;
  o.effort = 0.5;
  const FloorplanSolution sol = Floorplanner(netlist, o).run();
  // Slicing floorplans of apte typically reach < 25% deadspace quickly.
  EXPECT_LT(sol.metrics.area, netlist.total_module_area() * 1.35);
}

TEST(Floorplanner, SnapshotsArriveInOrder) {
  const Netlist netlist = make_mcnc("hp");
  const Floorplanner planner(netlist, fast_options());
  int last_step = -1;
  int count = 0;
  const FloorplanSolution sol = planner.run([&](const TemperatureSnapshot& s) {
    EXPECT_EQ(s.step, last_step + 1);
    last_step = s.step;
    EXPECT_TRUE(placement_is_legal(s.placement));
    EXPECT_GT(s.metrics.area, 0.0);
    ++count;
  });
  EXPECT_EQ(count, sol.stats.temperature_steps);
}

TEST(Floorplanner, CongestionObjectiveIsEvaluated) {
  const Netlist netlist = make_mcnc("hp");
  FloorplanOptions o = fast_options();
  o.objective.model = CongestionModelKind::kIrregularGrid;
  o.objective.gamma = 1.0;
  o.objective.irregular.grid_w = 30;
  o.objective.irregular.grid_h = 30;
  const Floorplanner planner(netlist, o);
  const FloorplanSolution sol = planner.run();
  EXPECT_GT(sol.metrics.congestion, 0.0);
  EXPECT_TRUE(placement_is_legal(sol.placement));
}

TEST(Floorplanner, CongestionDrivenReducesJudgedCongestion) {
  // Experiment 1 in miniature: with a congestion term, the judged
  // congestion of the result should not be (much) worse than without it.
  // Run a couple of seeds and compare means to damp annealing noise.
  const Netlist netlist = make_mcnc("ami33");
  const FixedGridModel judge = make_judging_model(20.0);  // coarser = faster
  const auto judged = [&](const FloorplanSolution& sol) {
    const auto nets = decompose_to_two_pin(netlist, sol.placement);
    return judge.cost(nets, sol.placement.chip);
  };
  double base_sum = 0.0, cgt_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FloorplanOptions base = fast_options();
    base.effort = 0.25;
    base.seed = seed;
    base_sum += judged(Floorplanner(netlist, base).run());
    FloorplanOptions cgt = base;
    cgt.objective.model = CongestionModelKind::kIrregularGrid;
    cgt.objective.gamma = 1.5;
    cgt_sum += judged(Floorplanner(netlist, cgt).run());
  }
  // Generous slack: small-effort SA is noisy; the congestion-driven mean
  // must at least not regress by more than 15%.
  EXPECT_LT(cgt_sum, base_sum * 1.15);
}

TEST(Floorplanner, FixedGridObjectiveSupported) {
  const Netlist netlist = make_mcnc("hp");
  FloorplanOptions o = fast_options();
  o.objective.model = CongestionModelKind::kFixedGrid;
  o.objective.gamma = 1.0;
  o.objective.fixed.grid_w = 100;
  o.objective.fixed.grid_h = 100;
  const FloorplanSolution sol = Floorplanner(netlist, o).run();
  EXPECT_GT(sol.metrics.congestion, 0.0);
}

TEST(Floorplanner, CongestionOnlyObjective) {
  // Experiment 3 setup: alpha = beta = 0.
  const Netlist netlist = make_mcnc("hp");
  FloorplanOptions o = fast_options();
  o.objective.alpha = 0.0;
  o.objective.beta = 0.0;
  o.objective.gamma = 1.0;
  o.objective.model = CongestionModelKind::kIrregularGrid;
  const FloorplanSolution sol = Floorplanner(netlist, o).run();
  EXPECT_TRUE(placement_is_legal(sol.placement));
  EXPECT_GT(sol.metrics.congestion, 0.0);
}

TEST(Floorplanner, SequencePairEngineProducesLegalPlacements) {
  const Netlist netlist = make_mcnc("hp");
  FloorplanOptions o = fast_options();
  o.engine = FloorplanEngine::kSequencePair;
  const FloorplanSolution sol = Floorplanner(netlist, o).run();
  EXPECT_TRUE(placement_is_legal(sol.placement));
  EXPECT_GE(sol.metrics.area + 1e-6, netlist.total_module_area());
  EXPECT_FALSE(sol.representation.empty());
  EXPECT_NE(sol.representation.find('|'), std::string::npos);
}

TEST(Floorplanner, SequencePairEngineDeterministicPerSeed) {
  const Netlist netlist = make_mcnc("apte");
  FloorplanOptions o = fast_options();
  o.engine = FloorplanEngine::kSequencePair;
  o.seed = 5;
  const FloorplanSolution a = Floorplanner(netlist, o).run();
  const FloorplanSolution b = Floorplanner(netlist, o).run();
  EXPECT_EQ(a.representation, b.representation);
  EXPECT_DOUBLE_EQ(a.metrics.area, b.metrics.area);
}

TEST(Floorplanner, SequencePairEngineSupportsCongestionObjective) {
  const Netlist netlist = make_mcnc("hp");
  FloorplanOptions o = fast_options();
  o.engine = FloorplanEngine::kSequencePair;
  o.objective.model = CongestionModelKind::kIrregularGrid;
  o.objective.gamma = 1.0;
  int snapshots = 0;
  const FloorplanSolution sol =
      Floorplanner(netlist, o).run([&](const TemperatureSnapshot& s) {
        EXPECT_TRUE(placement_is_legal(s.placement));
        ++snapshots;
      });
  EXPECT_GT(sol.metrics.congestion, 0.0);
  EXPECT_EQ(snapshots, sol.stats.temperature_steps);
}

TEST(Floorplanner, EnginesReachComparableAreas) {
  // Both engines should land in the same area ballpark on a small circuit
  // at equal (reduced) effort — a smoke check that the sequence-pair DP
  // and the slicing packer optimize the same objective. The bound is loose
  // because a short anneal is noisy.
  const Netlist netlist = make_mcnc("apte");
  FloorplanOptions o = fast_options();
  o.effort = 0.5;
  const double polish_area = Floorplanner(netlist, o).run().metrics.area;
  o.engine = FloorplanEngine::kSequencePair;
  const double sp_area = Floorplanner(netlist, o).run().metrics.area;
  EXPECT_LT(std::abs(polish_area - sp_area) / polish_area, 0.5);
}

TEST(Floorplanner, RejectsBadOptions) {
  const Netlist netlist = make_mcnc("hp");
  FloorplanOptions o;
  o.objective.alpha = -1.0;
  EXPECT_THROW(Floorplanner(netlist, o), std::invalid_argument);
  FloorplanOptions o2;
  o2.effort = 0.0;
  EXPECT_THROW(Floorplanner(netlist, o2), std::invalid_argument);
}

}  // namespace
}  // namespace ficon
