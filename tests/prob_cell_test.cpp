// Formula 1 / Formula 2 validation: per-cell crossing probabilities.
//
// Strategy: the library computes everything in a canonical type I frame
// (type II via y-mirror, log-space binomials). The tests pin it against
//  (a) an independent, literal transcription of the paper's type I *and*
//      type II formulas using plain double binomials, and
//  (b) the brute-force DP oracle,
// plus structural invariants (anti-diagonal sums, symmetry, boundary
// behaviour).
#include <cmath>

#include <gtest/gtest.h>

#include "congestion/path_prob.hpp"
#include "numeric/factorial.hpp"

namespace ficon {
namespace {

/// Paper Formula 2, transcribed literally (both net types).
double paper_cell_probability(int g1, int g2, bool type2, int x, int y) {
  if (x < 0 || x >= g1 || y < 0 || y >= g2) return 0.0;
  const double total = choose_double(g1 + g2 - 2, g2 - 1);
  if (!type2) {
    const double ta = choose_double(x + y, y);
    const double tb =
        choose_double(g1 + g2 - 2 - (x + y), g2 - 1 - y);
    return ta * tb / total;
  }
  const double ta = choose_double(x + (g2 - 1 - y), x);
  const double tb = choose_double((g1 - 1 - x) + y, g1 - 1 - x);
  return ta * tb / total;
}

class CellProbSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(CellProbSweep, MatchesPaperFormula) {
  const auto [g1, g2, type2] = GetParam();
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{g1, g2, type2};
  for (int y = 0; y < g2; ++y) {
    for (int x = 0; x < g1; ++x) {
      const double expected = paper_cell_probability(g1, g2, type2, x, y);
      EXPECT_NEAR(prob.cell_probability(s, x, y), expected, 1e-10)
          << "g=(" << g1 << ',' << g2 << ") type2=" << type2 << " cell=("
          << x << ',' << y << ')';
    }
  }
}

TEST_P(CellProbSweep, MatchesOracle) {
  const auto [g1, g2, type2] = GetParam();
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{g1, g2, type2};
  for (int y = 0; y < g2; ++y) {
    for (int x = 0; x < g1; ++x) {
      EXPECT_NEAR(prob.cell_probability(s, x, y),
                  prob.cell_probability_oracle(s, x, y), 1e-10)
          << "cell=(" << x << ',' << y << ')';
    }
  }
}

TEST_P(CellProbSweep, AntiDiagonalSumsToOne) {
  // Every monotone route crosses each anti-diagonal (type I) / diagonal
  // (type II) of the routing range exactly once, so the probabilities on it
  // sum to 1. This is the strongest conservation property of Formula 2.
  const auto [g1, g2, type2] = GetParam();
  if (g1 == 1 || g2 == 1) GTEST_SKIP() << "degenerate range";
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{g1, g2, type2};
  for (int d = 0; d <= g1 + g2 - 2; ++d) {
    double sum = 0.0;
    for (int x = 0; x < g1; ++x) {
      const int y = type2 ? (g2 - 1) - (d - x) : d - x;
      if (y >= 0 && y < g2) sum += prob.cell_probability(s, x, y);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "diagonal " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CellProbSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 13),
                       ::testing::Values(2, 4, 7, 11),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, int, bool>>& sweep) {
      return "g1_" + std::to_string(std::get<0>(sweep.param)) + "_g2_" +
             std::to_string(std::get<1>(sweep.param)) +
             (std::get<2>(sweep.param) ? "_type2" : "_type1");
    });

TEST(CellProb, PinCellsAlwaysProbabilityOne) {
  LogFactorialTable table;
  const PathProbability prob(table);
  for (int g1 = 2; g1 <= 9; ++g1) {
    for (int g2 = 2; g2 <= 9; ++g2) {
      const NetGridShape t1{g1, g2, false};
      EXPECT_NEAR(prob.cell_probability(t1, 0, 0), 1.0, 1e-12);
      EXPECT_NEAR(prob.cell_probability(t1, g1 - 1, g2 - 1), 1.0, 1e-12);
      const NetGridShape t2{g1, g2, true};
      EXPECT_NEAR(prob.cell_probability(t2, 0, g2 - 1), 1.0, 1e-12);
      EXPECT_NEAR(prob.cell_probability(t2, g1 - 1, 0), 1.0, 1e-12);
    }
  }
}

TEST(CellProb, OutsideRangeIsZero) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{4, 5, false};
  EXPECT_EQ(prob.cell_probability(s, -1, 0), 0.0);
  EXPECT_EQ(prob.cell_probability(s, 0, -1), 0.0);
  EXPECT_EQ(prob.cell_probability(s, 4, 0), 0.0);
  EXPECT_EQ(prob.cell_probability(s, 0, 5), 0.0);
}

TEST(CellProb, DegenerateRangesAreCertain) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape point{1, 1, false};
  EXPECT_EQ(prob.cell_probability(point, 0, 0), 1.0);
  const NetGridShape row{6, 1, false};
  for (int x = 0; x < 6; ++x) {
    EXPECT_EQ(prob.cell_probability(row, x, 0), 1.0);
  }
  const NetGridShape column{1, 4, false};
  for (int y = 0; y < 4; ++y) {
    EXPECT_EQ(prob.cell_probability(column, 0, y), 1.0);
  }
}

TEST(CellProb, TypeTwoIsMirrorOfTypeOne) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape t1{7, 5, false};
  const NetGridShape t2{7, 5, true};
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 7; ++x) {
      EXPECT_NEAR(prob.cell_probability(t2, x, y),
                  prob.cell_probability(t1, x, 4 - y), 1e-12);
    }
  }
}

TEST(CellProb, CentreOfSquareRangeMatchesClosedForm) {
  // For a (2k+1)^2 type I range the central cell's probability is
  // C(2k,k)^2 / C(4k,2k) (both half-paths hit the centre of the diagonal).
  LogFactorialTable table;
  const PathProbability prob(table);
  for (int k = 1; k <= 6; ++k) {
    const int g = 2 * k + 1;
    const NetGridShape s{g, g, false};
    const double expected = choose_double(2 * k, k) * choose_double(2 * k, k) /
                            choose_double(4 * k, 2 * k);
    EXPECT_NEAR(prob.cell_probability(s, k, k), expected, 1e-10) << "k=" << k;
  }
}

TEST(CellProb, Figure2StyleCounts) {
  // Ta/Tb of Definition 1 on a 4x3 type I range: spot-check the route
  // counts the paper tabulates in Figure 2.
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{4, 3, false};
  EXPECT_NEAR(std::exp(*prob.log_ta(s, 0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(*prob.log_ta(s, 1, 1)), 2.0, 1e-12);
  EXPECT_NEAR(std::exp(*prob.log_ta(s, 3, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(*prob.log_tb(s, 0, 0)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(*prob.log_tb(s, 3, 2)), 1.0, 1e-12);
  EXPECT_FALSE(prob.log_ta(s, 4, 0).has_value());
  EXPECT_FALSE(prob.log_tb(s, 0, 3).has_value());
}

}  // namespace
}  // namespace ficon
