// Netlist structure, the MCNC-like generator and both file parsers.
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "circuit/netlist.hpp"
#include "circuit/parser.hpp"
#include "gen/scale.hpp"

namespace ficon {
namespace {

Netlist tiny() {
  std::vector<Module> modules{{"a", 10, 20}, {"b", 30, 15}};
  std::vector<Net> nets{{"n0", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(1, 0.25, 0.75)}}};
  return Netlist("tiny", std::move(modules), std::move(nets));
}

TEST(Netlist, BasicAccessors) {
  const Netlist n = tiny();
  EXPECT_EQ(n.name(), "tiny");
  EXPECT_EQ(n.module_count(), 2u);
  EXPECT_EQ(n.net_count(), 1u);
  EXPECT_EQ(n.pin_count(), 2u);
  EXPECT_DOUBLE_EQ(n.total_module_area(), 10 * 20 + 30 * 15);
  EXPECT_EQ(n.find_module("b"), 1);
  EXPECT_EQ(n.find_module("zz"), -1);
}

TEST(Netlist, ValidationRejectsBadInput) {
  EXPECT_THROW(Netlist("x", {{"a", 0, 5}}, {}), std::invalid_argument);
  EXPECT_THROW(Netlist("x", {{"a", 5, 5}, {"a", 2, 2}}, {}),
               std::invalid_argument);
  EXPECT_THROW(
      Netlist("x", {{"a", 5, 5}}, {{"n", {Pin::on_module(0, 0.5, 0.5)}}}),
      std::invalid_argument);  // degree < 2
  EXPECT_THROW(
      Netlist("x", {{"a", 5, 5}},
              {{"n", {Pin::on_module(0, 0.5, 0.5), Pin::on_module(3, 0.5, 0.5)}}}),
      std::invalid_argument);  // bad module reference
  EXPECT_THROW(
      Netlist("x", {{"a", 5, 5}, {"b", 1, 1}},
              {{"n", {Pin::on_module(0, 1.5, 0.5), Pin::on_module(1, 0.5, 0.5)}}}),
      std::invalid_argument);  // offset outside module
}

TEST(Placement, PinPositionRespectsRotation) {
  Placement p;
  p.chip = Rect{0, 0, 100, 100};
  p.module_rects = {Rect{10, 20, 30, 80}};  // 20 x 60 as placed
  p.rotated = {false};
  const Pin pin = Pin::on_module(0, 0.25, 0.75);
  const Point unrotated = p.pin_position(pin);
  EXPECT_DOUBLE_EQ(unrotated.x, 10 + 0.25 * 20);
  EXPECT_DOUBLE_EQ(unrotated.y, 20 + 0.75 * 60);
  p.rotated = {true};
  const Point rotated = p.pin_position(pin);
  EXPECT_DOUBLE_EQ(rotated.x, 10 + 0.75 * 20);  // fx/fy transposed
  EXPECT_DOUBLE_EQ(rotated.y, 20 + 0.25 * 60);
}

TEST(Netlist, TerminalsValidated) {
  const std::vector<Module> mods{{"a", 5, 5}, {"b", 5, 5}};
  // Valid: a net joining a module and a pad.
  const Terminal pad{"p0", 0.0, 0.5};
  const Netlist ok("x", mods, {pad},
                   {{"n", {Pin::on_module(0), Pin::on_terminal(0, pad)}}});
  EXPECT_EQ(ok.terminal_count(), 1u);
  EXPECT_EQ(ok.find_terminal("p0"), 0);
  EXPECT_EQ(ok.find_terminal("nope"), -1);
  // Terminal position outside the chip fraction.
  EXPECT_THROW(Netlist("x", mods, {Terminal{"p0", 1.5, 0.0}}, {}),
               std::invalid_argument);
  // Duplicate name across modules and terminals.
  EXPECT_THROW(Netlist("x", mods, {Terminal{"a", 0.0, 0.0}}, {}),
               std::invalid_argument);
  // Net referencing a terminal that does not exist.
  EXPECT_THROW(
      Netlist("x", mods, {pad},
              {{"n", {Pin::on_module(0), Pin{-1, 3, 0.5, 0.5}}}}),
      std::invalid_argument);
  // Pad-only nets are rejected (no floorplanning degree of freedom).
  const Terminal pad2{"p1", 1.0, 0.5};
  EXPECT_THROW(
      Netlist("x", mods, {pad, pad2},
              {{"n", {Pin::on_terminal(0, pad), Pin::on_terminal(1, pad2)}}}),
      std::invalid_argument);
}

TEST(Placement, TerminalPinTracksChipOutline) {
  Placement p;
  p.chip = Rect{0, 0, 200, 100};
  const Terminal pad{"p", 0.25, 1.0};
  const Pin pin = Pin::on_terminal(0, pad);
  EXPECT_EQ(p.pin_position(pin), (Point{50.0, 100.0}));
  p.chip = Rect{0, 0, 400, 300};  // chip resized: pad moves with it
  EXPECT_EQ(p.pin_position(pin), (Point{100.0, 300.0}));
}

// ---------------------------------------------------------------------------
// MCNC-like generator
// ---------------------------------------------------------------------------

TEST(Mcnc, SpecsMatchPublishedStatistics) {
  EXPECT_EQ(mcnc_specs().size(), 5u);
  EXPECT_EQ(mcnc_spec("apte").modules, 9);
  EXPECT_EQ(mcnc_spec("xerox").modules, 10);
  EXPECT_EQ(mcnc_spec("hp").modules, 11);
  EXPECT_EQ(mcnc_spec("ami33").modules, 33);
  EXPECT_EQ(mcnc_spec("ami49").modules, 49);
  EXPECT_EQ(mcnc_spec("ami33").nets, 123);
  EXPECT_EQ(mcnc_spec("ami49").nets, 408);
  EXPECT_EQ(mcnc_spec("apte").terminals, 73);
  EXPECT_EQ(mcnc_spec("ami33").terminals, 42);
  EXPECT_THROW(mcnc_spec("bogus"), std::invalid_argument);
}

class McncCircuits : public ::testing::TestWithParam<std::string> {};

TEST_P(McncCircuits, GeneratedStatisticsMatchSpec) {
  const McncSpec& spec = mcnc_spec(GetParam());
  const Netlist n = make_mcnc(GetParam());
  EXPECT_EQ(static_cast<int>(n.module_count()), spec.modules);
  EXPECT_EQ(static_cast<int>(n.net_count()), spec.nets);
  EXPECT_EQ(static_cast<int>(n.pin_count()), spec.pins);
  EXPECT_EQ(static_cast<int>(n.terminal_count()), spec.terminals);
  // Rounding to integer um dims loses at most ~0.2% of total area.
  EXPECT_NEAR(n.total_module_area(), spec.total_area_um2,
              spec.total_area_um2 * 0.01);
  n.validate();
}

TEST_P(McncCircuits, GenerationIsDeterministic) {
  const Netlist a = make_mcnc(GetParam());
  const Netlist b = make_mcnc(GetParam());
  ASSERT_EQ(a.module_count(), b.module_count());
  for (std::size_t i = 0; i < a.module_count(); ++i) {
    EXPECT_EQ(a.modules()[i].width, b.modules()[i].width);
    EXPECT_EQ(a.modules()[i].height, b.modules()[i].height);
  }
  ASSERT_EQ(a.net_count(), b.net_count());
  for (std::size_t i = 0; i < a.net_count(); ++i) {
    ASSERT_EQ(a.nets()[i].pins.size(), b.nets()[i].pins.size());
    for (std::size_t p = 0; p < a.nets()[i].pins.size(); ++p) {
      EXPECT_EQ(a.nets()[i].pins[p], b.nets()[i].pins[p]);
    }
  }
}

TEST_P(McncCircuits, AspectRatiosBounded) {
  const Netlist n = make_mcnc(GetParam());
  for (const Module& m : n.modules()) {
    const double aspect = m.width / m.height;
    EXPECT_GE(aspect, 1.0 / 4.0) << m.name;  // 3 + rounding slack
    EXPECT_LE(aspect, 4.0) << m.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, McncCircuits,
                         ::testing::Values("apte", "xerox", "hp", "ami33",
                                           "ami49"));

TEST(Mcnc, DistinctCircuitsDiffer) {
  const Netlist a = make_mcnc("ami33");
  const Netlist b = make_mcnc("ami49");
  EXPECT_NE(a.module_count(), b.module_count());
}

TEST(Mcnc, SyntheticSpecValidation) {
  McncSpec bad{"bad", 1, 1, 2, 100.0};
  EXPECT_THROW(make_synthetic(bad, 1), std::invalid_argument);
  McncSpec underpinned{"u", 4, 5, 7, 100.0};  // pins < 2*nets
  EXPECT_THROW(make_synthetic(underpinned, 1), std::invalid_argument);
  const Netlist ok = make_synthetic(McncSpec{"ok", 6, 10, 25, 5000.0}, 9);
  EXPECT_EQ(ok.module_count(), 6u);
  EXPECT_EQ(ok.pin_count(), 25u);
}

// ---------------------------------------------------------------------------
// Native parser
// ---------------------------------------------------------------------------

TEST(Parser, RoundTripsGeneratedCircuit) {
  const Netlist original = make_mcnc("ami33");
  std::stringstream buffer;
  save_netlist(original, buffer);
  const Netlist parsed = parse_netlist(buffer);
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.module_count(), original.module_count());
  for (std::size_t i = 0; i < parsed.module_count(); ++i) {
    EXPECT_EQ(parsed.modules()[i].name, original.modules()[i].name);
    EXPECT_DOUBLE_EQ(parsed.modules()[i].width, original.modules()[i].width);
  }
  ASSERT_EQ(parsed.net_count(), original.net_count());
  for (std::size_t i = 0; i < parsed.net_count(); ++i) {
    ASSERT_EQ(parsed.nets()[i].pins.size(), original.nets()[i].pins.size());
    for (std::size_t p = 0; p < parsed.nets()[i].pins.size(); ++p) {
      EXPECT_EQ(parsed.nets()[i].pins[p].module,
                original.nets()[i].pins[p].module);
      EXPECT_DOUBLE_EQ(parsed.nets()[i].pins[p].fx,
                       original.nets()[i].pins[p].fx);
    }
  }
}

TEST(Parser, AcceptsCommentsAndDefaults) {
  std::istringstream in(
      "# a comment\n"
      "circuit demo\n"
      "module a 10 20  # trailing comment\n"
      "module b 5 5\n"
      "\n"
      "net n1 a b@0.1,0.9\n");
  const Netlist n = parse_netlist(in);
  EXPECT_EQ(n.name(), "demo");
  EXPECT_EQ(n.nets()[0].pins[0].fx, 0.5);  // default center pin
  EXPECT_EQ(n.nets()[0].pins[1].fx, 0.1);
  EXPECT_EQ(n.nets()[0].pins[1].fy, 0.9);
}

TEST(Parser, RejectsMalformedInputWithLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::istringstream in(text);
    try {
      parse_netlist(in);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("module a 10\n", "module needs");
  expect_error("module a 10 -5\n", "positive");
  expect_error("module a 1 1\nmodule a 2 2\n", "duplicate");
  expect_error("module a 1 1\nnet n a zz\n", "unknown module");
  expect_error("module a 1 1\nnet n a\n", ">= 2 pins");
  expect_error("module a 1 1\nmodule b 1 1\nnet n a@2,0 b\n", "outside");
  expect_error("blurb\n", "unknown keyword");
}

// ---------------------------------------------------------------------------
// GSRC parser
// ---------------------------------------------------------------------------

TEST(GsrcParser, ParsesBlocksAndNets) {
  std::istringstream blocks(
      "UCSC blocks 1.0\n"
      "# created by hand\n"
      "NumSoftRectangularBlocks : 0\n"
      "NumHardRectilinearBlocks : 3\n"
      "NumTerminals : 2\n"
      "sb0 hardrectilinear 4 (0, 0) (0, 133) (126, 133) (126, 0)\n"
      "sb1 hardrectilinear 4 (0, 0) (0, 50) (100, 50) (100, 0)\n"
      "sb2 hardrectilinear 4 (0, 0) (0, 20) (30, 20) (30, 0)\n"
      "p1 terminal\n"
      "p2 terminal\n");
  std::istringstream nets(
      "UCLA nets 1.0\n"
      "NumNets : 3\n"
      "NumPins : 7\n"
      "NetDegree : 2\n"
      "sb0 B\n"
      "sb1 B\n"
      "NetDegree : 3\n"
      "sb1 B\n"
      "sb2 B\n"
      "p1 B\n"
      "NetDegree : 2\n"
      "p1 B\n"
      "p2 B\n");
  const Netlist n = parse_gsrc(blocks, nets, "toy");
  EXPECT_EQ(n.module_count(), 3u);
  EXPECT_DOUBLE_EQ(n.modules()[0].width, 126.0);
  EXPECT_DOUBLE_EQ(n.modules()[0].height, 133.0);
  // Net 3 connected only terminals and is dropped; net 2 loses its pad pin.
  EXPECT_EQ(n.net_count(), 2u);
  EXPECT_EQ(n.nets()[0].pins.size(), 2u);
  EXPECT_EQ(n.nets()[1].pins.size(), 2u);
}

TEST(GsrcParser, SoftBlocksInstantiatedAtUnitAspect) {
  std::istringstream blocks(
      "UCSC blocks 1.0\n"
      "NumSoftRectangularBlocks : 1\n"
      "sb0 softrectangular 400 0.5 2.0\n");
  std::istringstream nets("UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n");
  // A single module with no nets is still a valid netlist.
  const Netlist n = parse_gsrc(blocks, nets, "soft");
  EXPECT_EQ(n.module_count(), 1u);
  EXPECT_DOUBLE_EQ(n.modules()[0].width, 20.0);
  EXPECT_DOUBLE_EQ(n.modules()[0].height, 20.0);
}

TEST(GsrcParser, RejectsUnknownBlockKindsAndPins) {
  {
    std::istringstream blocks("sb0 mystery 4\n");
    std::istringstream nets("");
    EXPECT_THROW(parse_gsrc(blocks, nets, "x"), std::invalid_argument);
  }
  {
    std::istringstream blocks(
        "sb0 hardrectilinear 4 (0,0) (0,1) (1,1) (1,0)\n");
    std::istringstream nets("NetDegree : 2\nsb0 B\nghost B\n");
    EXPECT_THROW(parse_gsrc(blocks, nets, "x"), std::invalid_argument);
  }
}


// ---------------------------------------------------------------------------
// Terminals in both file formats
// ---------------------------------------------------------------------------

TEST(Parser, TerminalDeclarationAndPins) {
  std::istringstream in(
      "circuit demo\n"
      "module a 10 20\n"
      "module b 5 5\n"
      "terminal p0 0.0 0.25\n"
      "net n1 a p0\n"
      "net n2 a@0.1,0.9 b\n");
  const Netlist n = parse_netlist(in);
  ASSERT_EQ(n.terminal_count(), 1u);
  EXPECT_DOUBLE_EQ(n.terminals()[0].fy, 0.25);
  ASSERT_TRUE(n.nets()[0].pins[1].is_terminal());
  EXPECT_EQ(n.nets()[0].pins[1].terminal, 0);
  EXPECT_DOUBLE_EQ(n.nets()[0].pins[1].fx, 0.0);
}

TEST(Parser, TerminalRoundTrip) {
  const Netlist original = make_mcnc("ami33");
  ASSERT_GT(original.terminal_count(), 0u);
  std::stringstream buffer;
  save_netlist(original, buffer);
  const Netlist parsed = parse_netlist(buffer);
  ASSERT_EQ(parsed.terminal_count(), original.terminal_count());
  for (std::size_t t = 0; t < parsed.terminal_count(); ++t) {
    EXPECT_EQ(parsed.terminals()[t].name, original.terminals()[t].name);
    EXPECT_DOUBLE_EQ(parsed.terminals()[t].fx, original.terminals()[t].fx);
    EXPECT_DOUBLE_EQ(parsed.terminals()[t].fy, original.terminals()[t].fy);
  }
  EXPECT_EQ(parsed.pin_count(), original.pin_count());
}

TEST(Parser, TerminalErrors) {
  {
    std::istringstream in("terminal p0 2.0 0.0\n");
    EXPECT_THROW(parse_netlist(in), std::invalid_argument);
  }
  {
    std::istringstream in(
        "module a 1 1\nterminal p0 0 0\nnet n a p0@0.5,0.5\n");
    EXPECT_THROW(parse_netlist(in), std::invalid_argument);  // pad offset
  }
  {
    std::istringstream in("module a 1 1\nterminal a 0 0\n");
    EXPECT_THROW(parse_netlist(in), std::invalid_argument);  // name clash
  }
}

TEST(GsrcParser, PlStreamKeepsTerminals) {
  std::istringstream blocks(
      "UCSC blocks 1.0\n"
      "NumHardRectilinearBlocks : 2\n"
      "NumTerminals : 2\n"
      "sb0 hardrectilinear 4 (0, 0) (0, 10) (10, 10) (10, 0)\n"
      "sb1 hardrectilinear 4 (0, 0) (0, 20) (20, 20) (20, 0)\n"
      "p1 terminal\n"
      "p2 terminal\n");
  std::istringstream nets(
      "UCLA nets 1.0\n"
      "NetDegree : 2\n"
      "sb0 B\n"
      "p1 B\n"
      "NetDegree : 2\n"
      "sb1 B\n"
      "p2 B\n");
  std::istringstream pl(
      "UCLA pl 1.0\n"
      "sb0 0 0\n"
      "p1 0 0\n"
      "p2 100 50\n");
  const Netlist n = parse_gsrc(blocks, nets, &pl, "toy");
  ASSERT_EQ(n.terminal_count(), 2u);
  EXPECT_DOUBLE_EQ(n.terminals()[0].fx, 0.0);
  EXPECT_DOUBLE_EQ(n.terminals()[1].fx, 1.0);
  EXPECT_DOUBLE_EQ(n.terminals()[1].fy, 1.0);
  ASSERT_EQ(n.net_count(), 2u);
  EXPECT_TRUE(n.nets()[0].pins[1].is_terminal());
  EXPECT_TRUE(n.nets()[1].pins[1].is_terminal());
}

// Pins the parser's output bit-for-bit. The parser's name-interning maps
// are ordered containers (ficon_lint rule D001): a lookup structure must
// never be able to change the parsed module/net order, and this
// fingerprint would move if one ever did.
TEST(YalParser, FingerprintIsStable) {
  std::istringstream in(
      "module a 10 20\n"
      "module b 5 5\n"
      "module c 8 12\n"
      "terminal p0 0.0 0.25\n"
      "terminal p1 1.0 0.75\n"
      "net n1 a p0\n"
      "net n2 a@0.1,0.9 b\n"
      "net n3 b c p1\n");
  const Netlist n = parse_netlist(in);
  EXPECT_EQ(netlist_fingerprint(n), 0xf0844de208fa6bc9ull);
}

}  // namespace
}  // namespace ficon
