// ficon_lint end-to-end: the real tree must lint clean against the
// committed baseline, and a seeded violation of each rule (F001–F008,
// D001–D003, L001–L002) must be caught in a synthetic repo. Runs the
// binary as a subprocess — contract tests on the CLI (output + exit
// codes) — plus unit tests of the v2 analyzer core (tokenizer, layer
// manifest) linked directly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint/include_graph.hpp"
#include "lint/tokenizer.hpp"
#include "obs/json.hpp"

namespace fs = std::filesystem;

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(FICON_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintRun run;
  char buf[4096];
  while (fgets(buf, sizeof buf, pipe) != nullptr) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

/// Synthetic repo under TempDir with the scaffolding every tree needs
/// (README + schema registry), torn down on destruction.
class SeededRepo {
 public:
  explicit SeededRepo(const std::string& name)
      : root_(fs::path(::testing::TempDir()) / ("ficon_lint_" + name)) {
    fs::remove_all(root_);
    write("README.md", "# seeded tree\nKnobs: FICON_DOCUMENTED\n");
    write("src/obs/schema.hpp",
          "inline constexpr const char* kRecordTypes[] = {\"meta\"};\n"
          "inline constexpr const char* kCounterNames[] = {\"good_counter\"};\n"
          "inline constexpr const char* kPhaseNames[] = {\"pack\"};\n"
          "inline constexpr const char* kCacheNames[] = {\"score_memo\"};\n"
          "inline constexpr const char* kStrategyNames[] = {\"theorem1\"};\n");
  }
  ~SeededRepo() { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream(path) << content;
  }

  LintRun lint() const { return run_lint("--repo " + root_.string()); }
  LintRun lint(const std::string& extra) const {
    return run_lint("--repo " + root_.string() + " " + extra);
  }
  const fs::path& root() const { return root_; }

 private:
  fs::path root_;
};

TEST(FiconLint, RealTreeIsCleanAgainstCommittedBaseline) {
  const LintRun run = run_lint("--repo " FICON_REPO_DIR);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("clean"), std::string::npos) << run.output;
  // The committed baseline must not have rotted: no stale entries.
  EXPECT_EQ(run.output.find("stale baseline entry"), std::string::npos)
      << run.output;
}

TEST(FiconLint, ListRulesAndUsage) {
  const LintRun rules = run_lint("--list-rules");
  EXPECT_EQ(rules.exit_code, 0);
  for (const char* id :
       {"F001", "F002", "F003", "F004", "F005", "F006", "F007", "F008",
        "D001", "D002", "D003", "L001", "L002"}) {
    EXPECT_NE(rules.output.find(id), std::string::npos) << id;
  }
  EXPECT_EQ(run_lint("--bogus-flag").exit_code, 2);
  EXPECT_EQ(run_lint("--repo /nonexistent/ficon").exit_code, 2);
}

TEST(FiconLint, F001CatchesRawGetenvAndUndocumentedKnob) {
  SeededRepo repo("f001");
  repo.write("src/a.cpp",
             "#include <cstdlib>\n"
             "const char* v = std::getenv(\"FICON_RAW\");\n");
  repo.write("src/b.cpp",
             "int n = env_int(\"FICON_UNDOCUMENTED\", 1);\n"
             "int m = env_int(\"FICON_DOCUMENTED\", 1);\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("F001"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("raw getenv"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("FICON_UNDOCUMENTED"), std::string::npos)
      << run.output;
  // The documented knob must NOT be flagged.
  EXPECT_EQ(run.output.find("FICON_DOCUMENTED"), std::string::npos)
      << run.output;
}

TEST(FiconLint, F002CatchesUnregisteredTraceNames) {
  SeededRepo repo("f002");
  repo.write("src/obs/writer.cpp",
             "void emit(std::ostream& os) {\n"
             "  os << \"{\\\"type\\\":\\\"bogus_record\\\",\\\"v\\\":1}\";\n"
             "  os << \"{\\\"type\\\":\\\"meta\\\",\\\"version\\\":1}\";\n"
             "}\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("F002"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("bogus_record"), std::string::npos) << run.output;
  // The registered type must pass.
  EXPECT_EQ(run.output.find("\"meta\""), std::string::npos) << run.output;
}

TEST(FiconLint, F003CatchesDeepIncludesFromExamplesAndBench) {
  SeededRepo repo("f003");
  repo.write("examples/demo.cpp",
             "#include \"ficon.hpp\"\n"
             "#include \"util/env.hpp\"\n");
  repo.write("bench/bench_x.cpp", "#include \"congestion/field.hpp\"\n");
  // Deep includes inside src/ are fine.
  repo.write("src/core/a.cpp", "#include \"util/env.hpp\"\n");
  // Tools get the same rule, with a carve-out for the JSON parser (the
  // JSON-only linters) — but not for other deep headers, src/service/
  // included.
  repo.write("tools/my_lint.cpp",
             "#include \"obs/json.hpp\"\n"
             "#include \"service/session.hpp\"\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("examples/demo.cpp:2: F003"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("bench/bench_x.cpp:1: F003"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/core/a.cpp"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("tools/my_lint.cpp:1"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("tools/my_lint.cpp:2: F003"), std::string::npos)
      << run.output;
}

TEST(FiconLint, F004CatchesFloatEqualityButSkipsAssertionsAndComments) {
  SeededRepo repo("f004");
  repo.write("src/x.cpp",
             "bool f(double a) { return a == 1.0; }\n"
             "// a == 1.0 in a comment is fine\n"
             "void g() { EXPECT_EQ(h(), 2.5); }\n"
             "bool k(double a) { return 0.5 != a; }\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/x.cpp:1: F004"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/x.cpp:4: F004"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find(":2: F004"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":3: F004"), std::string::npos) << run.output;
}

TEST(FiconLint, F005CatchesRawRngPrimitives) {
  SeededRepo repo("f005");
  repo.write("src/y.cpp",
             "#include <random>\n"
             "int roll() { std::mt19937 gen(7); return (int)gen(); }\n");
  repo.write("src/util/rng.hpp",
             "#include <random>\n"
             "struct Rng { std::mt19937_64 engine; };\n");  // allowlisted
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/y.cpp:2: F005"), std::string::npos)
      << run.output;
  // The message text mentions rng.hpp; assert no *finding* points there.
  EXPECT_EQ(run.output.find("rng.hpp:"), std::string::npos) << run.output;
}

TEST(FiconLint, F006CatchesMissingAndRedundantOverride) {
  SeededRepo repo("f006");
  repo.write("src/z.hpp",
             "struct Base {\n"
             "  virtual ~Base() = default;\n"  // no base list: not flagged
             "  virtual int f() const = 0;\n"
             "};\n"
             "struct Derived : public Base {\n"
             "  virtual int f() const;\n"        // missing override
             "  virtual int g() const override;\n"  // redundant virtual
             "  int h() const override;\n"       // correct: not flagged
             "};\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/z.hpp:6: F006"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/z.hpp:7: F006"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("redundant"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("z.hpp:2:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("z.hpp:3:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("z.hpp:8:"), std::string::npos) << run.output;
}

TEST(FiconLint, F007CatchesAdHocSvgEmissionOutsideExp) {
  SeededRepo repo("f007");
  repo.write("src/anneal/dump.cpp",
             "void dump(std::ostream& os) { os << \"<svg width='9'>\"; }\n");
  // src/exp/ owns SVG rendering; tests may build fixtures.
  repo.write("src/exp/writer.cpp",
             "void w(std::ostream& os) { os << \"<svg>\"; }\n");
  repo.write("tests/fixture.cpp", "const char* kSvg = \"<svg>\";\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/anneal/dump.cpp:1: F007"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/exp/writer.cpp"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("tests/fixture.cpp"), std::string::npos)
      << run.output;
}

TEST(FiconLint, F008CatchesDeepProbabilityIncludesOutsideCongestion) {
  SeededRepo repo("f008");
  repo.write("src/anneal/cost.cpp", "#include \"congestion/approx.hpp\"\n");
  repo.write("examples/probe.cpp",
             "#include \"src/congestion/path_prob.hpp\"\n");
  // The probability engine itself and tests keep deep access.
  repo.write("src/congestion/glue.cpp", "#include \"congestion/approx.hpp\"\n");
  repo.write("tests/probe_test.cpp",
             "#include \"congestion/path_prob.hpp\"\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/anneal/cost.cpp:1: F008"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("examples/probe.cpp:1: F008"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("prob_eval.hpp"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("src/congestion/glue.cpp"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("tests/probe_test.cpp"), std::string::npos)
      << run.output;
}

TEST(FiconLint, BaselineSuppressesOnlyJustifiedEntries) {
  SeededRepo repo("baseline");
  repo.write("src/x.cpp", "bool f(double a) { return a == 1.0; }\n");

  // --update-baseline captures the finding but marks it UNREVIEWED...
  const LintRun update = repo.lint("--update-baseline");
  EXPECT_EQ(update.exit_code, 0) << update.output;
  EXPECT_NE(update.output.find("1 suppression"), std::string::npos)
      << update.output;

  // ...and an UNREVIEWED entry does NOT silence the finding.
  const LintRun unreviewed = repo.lint();
  EXPECT_EQ(unreviewed.exit_code, 1) << unreviewed.output;
  EXPECT_NE(unreviewed.output.find("baselined without justification"),
            std::string::npos)
      << unreviewed.output;

  // A human-supplied reason does.
  repo.write(".ficon-lint-baseline.json",
             "{\"suppressions\": [{\"rule\": \"F004\", \"file\": "
             "\"src/x.cpp\", \"token\": "
             "\"bool f(double a) { return a == 1.0; }\", "
             "\"reason\": \"exact sentinel compare\"}]}\n");
  const LintRun justified = repo.lint();
  EXPECT_EQ(justified.exit_code, 0) << justified.output;

  // Fixing the code turns the entry stale — reported, but still exit 0.
  repo.write("src/x.cpp", "bool f(double a) { return a > 1.0; }\n");
  const LintRun stale = repo.lint();
  EXPECT_EQ(stale.exit_code, 0) << stale.output;
  EXPECT_NE(stale.output.find("stale baseline entry"), std::string::npos)
      << stale.output;

  // A corrupt baseline is an I/O error, not a silent pass.
  repo.write(".ficon-lint-baseline.json", "{nope");
  EXPECT_EQ(repo.lint().exit_code, 2);
}

TEST(FiconLint, D001CatchesUnorderedContainersUnderSrcOnly) {
  SeededRepo repo("d001");
  repo.write("src/a.cpp",
             "#include <unordered_map>\n"
             "#include <map>\n"
             "std::unordered_map<int, int> lookup;\n"
             "std::map<int, int> ordered;\n");
  // tools/ may use whatever containers it likes: only src/ affects
  // engine results.
  repo.write("tools/t.cpp", "std::unordered_set<int> scratch;\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/a.cpp:3: D001"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("iteration order"), std::string::npos)
      << run.output;
  // The #include line and the ordered container must NOT be flagged.
  EXPECT_EQ(run.output.find(":1: D001"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":4: D001"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("tools/t.cpp"), std::string::npos) << run.output;
}

TEST(FiconLint, D002CatchesWallClockButNotSteadyClockOrMembers) {
  SeededRepo repo("d002");
  repo.write(
      "src/clock.cpp",
      "#include <chrono>\n"
      "long now() { return std::chrono::system_clock::now()"
      ".time_since_epoch().count(); }\n"
      "long stamp() { return time(nullptr); }\n"
      "double ok(const Stopwatch& s) { return s.time(); }\n"
      "long mono() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/clock.cpp:2: D002"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/clock.cpp:3: D002"), std::string::npos)
      << run.output;
  // Member calls named time() and steady_clock are fine.
  EXPECT_EQ(run.output.find(":4: D002"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":5: D002"), std::string::npos) << run.output;
}

TEST(FiconLint, D003CatchesSharedAccumulationInPoolTasks) {
  SeededRepo repo("d003");
  repo.write("src/core/accum.cpp",
             "void f(ThreadPool& pool) {\n"
             "  double sum = 0.0;\n"
             "  std::vector<double> partial(4, 0.0);\n"
             "  pool.run(4, [&](std::size_t b) {\n"
             "    double local = 0.0;\n"
             "    local += 1.0;\n"
             "    partial[b] += 2.0;\n"
             "    sum += 3.0;\n"
             "  });\n"
             "}\n"
             "void g(BenchRunner& runner) {\n"
             "  double total = 0.0;\n"
             "  runner.run(4, [&](std::size_t b) { total += 1.0; });\n"
             "}\n"
             "void h(ThreadPool& pool, double seed) {\n"
             "  pool.run(2, [=](std::size_t) mutable { seed += 1.0; });\n"
             "}\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Only the &-captured accumulator is shared across tasks.
  EXPECT_NE(run.output.find("src/core/accum.cpp:8: D003"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"sum\""), std::string::npos) << run.output;
  // Body locals and per-block slots follow the sanctioned reduction
  // pattern; .run() on a non-pool receiver and by-value captures are
  // out of scope.
  EXPECT_EQ(run.output.find(":6: D003"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":7: D003"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":13: D003"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":16: D003"), std::string::npos) << run.output;
}

TEST(FiconLint, L001CatchesUndeclaredCrossGroupInclude) {
  SeededRepo repo("l001");
  repo.write(".ficon-layers",
             "base: obs\n"
             "alpha: a -> base\n"
             "beta: b -> alpha\n");
  repo.write("src/a/x.cpp", "#include \"b/y.hpp\"\n");  // alpha->beta: no dep
  repo.write("src/b/y.hpp", "#include \"a/z.hpp\"\n");  // beta->alpha: fine
  repo.write("src/a/z.hpp", "inline int z() { return 0; }\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/a/x.cpp:1: L001"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"alpha\" does not declare a dep on \"beta\""),
            std::string::npos)
      << run.output;
  // The declared edge must not be flagged (the undeclared finding's
  // message mentions src/b/y.hpp as its target, so anchor on file:line).
  EXPECT_EQ(run.output.find("src/b/y.hpp:1:"), std::string::npos)
      << run.output;
}

TEST(FiconLint, L001CatchesModulesMissingFromTheManifest) {
  SeededRepo repo("l001_unmapped");
  // The manifest forgets src/obs/ (seeded by the fixture).
  repo.write(".ficon-layers", "alpha: a\n");
  repo.write("src/a/x.cpp", "inline int x() { return 0; }\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("L001"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("\"obs\" is not declared"), std::string::npos)
      << run.output;
}

TEST(FiconLint, L002CatchesIncludeCycles) {
  SeededRepo repo("l002_files");
  repo.write(".ficon-layers", "base: obs\nalpha: a -> base\n");
  repo.write("src/a/x.hpp", "#include \"a/y.hpp\"\n");
  repo.write("src/a/y.hpp", "#include \"a/x.hpp\"\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("L002"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find(
                "include cycle: src/a/x.hpp -> src/a/y.hpp -> src/a/x.hpp"),
            std::string::npos)
      << run.output;
}

TEST(FiconLint, L002CatchesDeclaredGroupCycles) {
  SeededRepo repo("l002_groups");
  repo.write(".ficon-layers",
             "base: obs\n"
             "alpha: a -> beta\n"
             "beta: b -> alpha\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find(".ficon-layers:1: L002"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("declared group dependencies form a cycle"),
            std::string::npos)
      << run.output;
}

TEST(FiconLint, MalformedLayersManifestIsAUsageError) {
  SeededRepo repo("l_badmanifest");
  repo.write(".ficon-layers", "alpha a b\n");  // missing ':'
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 2) << run.output;
  EXPECT_NE(run.output.find("expected \"group:\""), std::string::npos)
      << run.output;
}

TEST(FiconLint, SarifLogIsWellFormedAndCarriesSuppressions) {
  SeededRepo repo("sarif");
  repo.write("src/x.cpp", "bool f(double a) { return a == 1.0; }\n");
  const fs::path sarif = repo.root() / "out.sarif";

  const LintRun run = repo.lint("--sarif " + sarif.string());
  EXPECT_EQ(run.exit_code, 1) << run.output;

  std::ifstream in(sarif);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto doc = ficon::obs::parse_json(buf.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("version"), nullptr);
  EXPECT_EQ(doc->find("version")->string, "2.1.0");
  const auto* runs = doc->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const auto& r = runs->array[0];
  const auto* driver = r.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->string, "ficon_lint");
  EXPECT_EQ(driver->find("rules")->array.size(), 13u);
  const auto* results = r.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 1u);
  const auto& hit = results->array[0];
  EXPECT_EQ(hit.find("ruleId")->string, "F004");
  EXPECT_EQ(hit.find("suppressions"), nullptr);
  const auto* loc = hit.find("locations");
  ASSERT_NE(loc, nullptr);
  ASSERT_EQ(loc->array.size(), 1u);
  const auto* phys = loc->array[0].find("physicalLocation");
  ASSERT_NE(phys, nullptr);
  EXPECT_EQ(phys->find("artifactLocation")->find("uri")->string, "src/x.cpp");
  EXPECT_EQ(phys->find("region")->find("startLine")->number, 1.0);

  // A justified baseline entry turns the result into a suppressed one.
  repo.write(".ficon-lint-baseline.json",
             "{\"suppressions\": [{\"rule\": \"F004\", \"file\": "
             "\"src/x.cpp\", \"token\": "
             "\"bool f(double a) { return a == 1.0; }\", "
             "\"reason\": \"exact sentinel compare\"}]}\n");
  const LintRun clean = repo.lint("--sarif " + sarif.string());
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  std::ifstream in2(sarif);
  std::ostringstream buf2;
  buf2 << in2.rdbuf();
  const auto doc2 = ficon::obs::parse_json(buf2.str(), &error);
  ASSERT_TRUE(doc2.has_value()) << error;
  const auto& hit2 = doc2->find("runs")->array[0].find("results")->array[0];
  const auto* sup = hit2.find("suppressions");
  ASSERT_NE(sup, nullptr);
  ASSERT_EQ(sup->array.size(), 1u);
  EXPECT_EQ(sup->array[0].find("kind")->string, "external");
  EXPECT_EQ(sup->array[0].find("justification")->string,
            "exact sentinel compare");
}

TEST(FiconLint, CacheInvalidatesOnContentChangeAndSurvivesCorruption) {
  SeededRepo repo("cache");
  repo.write("src/x.cpp", "int f() { return 1; }\n");
  const std::string cache = (repo.root() / "lint-cache.json").string();

  EXPECT_EQ(repo.lint("--cache " + cache).exit_code, 0);
  EXPECT_TRUE(fs::exists(cache));
  // Warm run replays the cached (clean) analyses.
  EXPECT_EQ(repo.lint("--cache " + cache).exit_code, 0);

  // A content change invalidates that file's entry: the fresh analysis
  // must see the new violation, and the next run replays it from cache.
  repo.write("src/x.cpp", "bool f(double a) { return a == 1.0; }\n");
  const LintRun fresh = repo.lint("--cache " + cache);
  EXPECT_EQ(fresh.exit_code, 1) << fresh.output;
  EXPECT_NE(fresh.output.find("F004"), std::string::npos) << fresh.output;
  const LintRun replay = repo.lint("--cache " + cache);
  EXPECT_EQ(replay.exit_code, 1) << replay.output;
  EXPECT_NE(replay.output.find("F004"), std::string::npos) << replay.output;

  // A corrupt cache is a miss, not a failure.
  repo.write("lint-cache.json", "garbage{");
  const LintRun cold = repo.lint("--cache " + cache);
  EXPECT_EQ(cold.exit_code, 1) << cold.output;
  EXPECT_NE(cold.output.find("F004"), std::string::npos) << cold.output;
}

// ---- analyzer-core unit tests (linked against ficon_lint_core) ----

using ficon::lint::TokKind;
using ficon::lint::tokenize;

bool has_token(const ficon::lint::TokenizedSource& src, TokKind kind,
               const std::string& text) {
  for (const auto& t : src.tokens) {
    if (t.kind == kind && t.text == text) return true;
  }
  return false;
}

TEST(LintTokenizer, RawStringContentsStayOutOfTheCodeView) {
  const auto src =
      tokenize("auto s = R\"x(a == 1.0 \"q\\)x\";\nint t = 2;\n");
  // The contents — including the embedded quote and the backslash that
  // would escape it in an ordinary literal — lex as one string token.
  bool found = false;
  for (const auto& t : src.tokens) {
    if (t.kind == TokKind::kString &&
        t.text.find("a == 1.0") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Code view blanks the literal contents; text view keeps them.
  EXPECT_EQ(src.views.code[0].find("1.0"), std::string::npos)
      << src.views.code[0];
  EXPECT_NE(src.views.text[0].find("1.0"), std::string::npos)
      << src.views.text[0];
  // The line after the raw string lexes normally.
  EXPECT_TRUE(has_token(src, TokKind::kIdent, "t"));
}

TEST(LintTokenizer, LineContinuationSplicesInsideTokens) {
  const auto src = tokenize("int fo\\\nobar = 1;\n");
  EXPECT_TRUE(has_token(src, TokKind::kIdent, "foobar"));
  EXPECT_FALSE(has_token(src, TokKind::kIdent, "fo"));
  EXPECT_FALSE(has_token(src, TokKind::kIdent, "obar"));
}

TEST(LintTokenizer, LineCommentContinuesAcrossBackslashNewline) {
  const auto src =
      tokenize("// note \\\nint hidden = 1;\nint visible = 2;\n");
  // The second physical line is still part of the comment.
  EXPECT_FALSE(has_token(src, TokKind::kIdent, "hidden"));
  EXPECT_TRUE(has_token(src, TokKind::kIdent, "visible"));
  EXPECT_EQ(src.views.code[1].find("hidden"), std::string::npos)
      << src.views.code[1];
}

TEST(LintTokenizer, CommentsContainingCodeAreBlankedInBothViews) {
  const auto src =
      tokenize("/* a == 1.0 */ int x = 0;\nconst char* s = \"b == 2.0\";\n");
  EXPECT_EQ(src.views.code[0].find("1.0"), std::string::npos);
  EXPECT_EQ(src.views.text[0].find("1.0"), std::string::npos);
  EXPECT_TRUE(has_token(src, TokKind::kIdent, "x"));
  // Ordinary string contents: blanked in code, kept in text.
  EXPECT_EQ(src.views.code[1].find("2.0"), std::string::npos);
  EXPECT_NE(src.views.text[1].find("2.0"), std::string::npos);
}

TEST(LintTokenizer, MultiCharPunctuatorsAndDigitSeparators) {
  const auto src = tokenize("x += 1'000'000;\ny <<= 2;\np->q;\n");
  EXPECT_TRUE(has_token(src, TokKind::kPunct, "+="));
  EXPECT_TRUE(has_token(src, TokKind::kPunct, "<<="));
  EXPECT_TRUE(has_token(src, TokKind::kPunct, "->"));
  EXPECT_TRUE(has_token(src, TokKind::kNumber, "1'000'000"));
}

TEST(LintLayers, ManifestParsesGroupsMembersAndDeps) {
  std::string error;
  const auto groups = ficon::lint::parse_layers(
      "# comment\n"
      "base: geom util  # trailing comment\n"
      "core: core anneal -> base\n",
      &error);
  ASSERT_TRUE(groups.has_value()) << error;
  ASSERT_EQ(groups->size(), 2u);
  EXPECT_EQ((*groups)[0].name, "base");
  EXPECT_EQ((*groups)[0].members,
            (std::vector<std::string>{"geom", "util"}));
  EXPECT_TRUE((*groups)[0].deps.empty());
  EXPECT_EQ((*groups)[1].name, "core");
  EXPECT_EQ((*groups)[1].deps, (std::vector<std::string>{"base"}));
}

TEST(LintLayers, ManifestRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ficon::lint::parse_layers("base geom\n", &error));
  EXPECT_NE(error.find("expected"), std::string::npos);
  EXPECT_FALSE(ficon::lint::parse_layers("a: m\nb: m\n", &error));
  EXPECT_NE(error.find("more than one group"), std::string::npos);
  EXPECT_FALSE(ficon::lint::parse_layers("a: m -> zz\n", &error));
  EXPECT_NE(error.find("unknown group"), std::string::npos);
  EXPECT_FALSE(ficon::lint::parse_layers("a: m -> a\n", &error));
  EXPECT_NE(error.find("depends on itself"), std::string::npos);
  EXPECT_FALSE(ficon::lint::parse_layers("a:\n", &error));
  EXPECT_NE(error.find("no member modules"), std::string::npos);
}

}  // namespace
