// ficon_lint end-to-end: the real tree must lint clean against the
// committed baseline, and a seeded violation of each rule F001–F008 must
// be caught in a synthetic repo. Runs the binary as a subprocess — these
// are contract tests on the CLI (output + exit codes), not unit tests of
// the scanner internals.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(FICON_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintRun run;
  char buf[4096];
  while (fgets(buf, sizeof buf, pipe) != nullptr) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

/// Synthetic repo under TempDir with the scaffolding every tree needs
/// (README + schema registry), torn down on destruction.
class SeededRepo {
 public:
  explicit SeededRepo(const std::string& name)
      : root_(fs::path(::testing::TempDir()) / ("ficon_lint_" + name)) {
    fs::remove_all(root_);
    write("README.md", "# seeded tree\nKnobs: FICON_DOCUMENTED\n");
    write("src/obs/schema.hpp",
          "inline constexpr const char* kRecordTypes[] = {\"meta\"};\n"
          "inline constexpr const char* kCounterNames[] = {\"good_counter\"};\n"
          "inline constexpr const char* kPhaseNames[] = {\"pack\"};\n"
          "inline constexpr const char* kCacheNames[] = {\"score_memo\"};\n"
          "inline constexpr const char* kStrategyNames[] = {\"theorem1\"};\n");
  }
  ~SeededRepo() { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream(path) << content;
  }

  LintRun lint() const { return run_lint("--repo " + root_.string()); }
  LintRun lint(const std::string& extra) const {
    return run_lint("--repo " + root_.string() + " " + extra);
  }
  const fs::path& root() const { return root_; }

 private:
  fs::path root_;
};

TEST(FiconLint, RealTreeIsCleanAgainstCommittedBaseline) {
  const LintRun run = run_lint("--repo " FICON_REPO_DIR);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("clean"), std::string::npos) << run.output;
  // The committed baseline must not have rotted: no stale entries.
  EXPECT_EQ(run.output.find("stale baseline entry"), std::string::npos)
      << run.output;
}

TEST(FiconLint, ListRulesAndUsage) {
  const LintRun rules = run_lint("--list-rules");
  EXPECT_EQ(rules.exit_code, 0);
  for (const char* id :
       {"F001", "F002", "F003", "F004", "F005", "F006", "F007", "F008"}) {
    EXPECT_NE(rules.output.find(id), std::string::npos) << id;
  }
  EXPECT_EQ(run_lint("--bogus-flag").exit_code, 2);
  EXPECT_EQ(run_lint("--repo /nonexistent/ficon").exit_code, 2);
}

TEST(FiconLint, F001CatchesRawGetenvAndUndocumentedKnob) {
  SeededRepo repo("f001");
  repo.write("src/a.cpp",
             "#include <cstdlib>\n"
             "const char* v = std::getenv(\"FICON_RAW\");\n");
  repo.write("src/b.cpp",
             "int n = env_int(\"FICON_UNDOCUMENTED\", 1);\n"
             "int m = env_int(\"FICON_DOCUMENTED\", 1);\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("F001"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("raw getenv"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("FICON_UNDOCUMENTED"), std::string::npos)
      << run.output;
  // The documented knob must NOT be flagged.
  EXPECT_EQ(run.output.find("FICON_DOCUMENTED"), std::string::npos)
      << run.output;
}

TEST(FiconLint, F002CatchesUnregisteredTraceNames) {
  SeededRepo repo("f002");
  repo.write("src/obs/writer.cpp",
             "void emit(std::ostream& os) {\n"
             "  os << \"{\\\"type\\\":\\\"bogus_record\\\",\\\"v\\\":1}\";\n"
             "  os << \"{\\\"type\\\":\\\"meta\\\",\\\"version\\\":1}\";\n"
             "}\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("F002"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("bogus_record"), std::string::npos) << run.output;
  // The registered type must pass.
  EXPECT_EQ(run.output.find("\"meta\""), std::string::npos) << run.output;
}

TEST(FiconLint, F003CatchesDeepIncludesFromExamplesAndBench) {
  SeededRepo repo("f003");
  repo.write("examples/demo.cpp",
             "#include \"ficon.hpp\"\n"
             "#include \"util/env.hpp\"\n");
  repo.write("bench/bench_x.cpp", "#include \"congestion/field.hpp\"\n");
  // Deep includes inside src/ are fine.
  repo.write("src/core/a.cpp", "#include \"util/env.hpp\"\n");
  // Tools get the same rule, with a carve-out for the JSON parser (the
  // JSON-only linters) — but not for other deep headers, src/service/
  // included.
  repo.write("tools/my_lint.cpp",
             "#include \"obs/json.hpp\"\n"
             "#include \"service/session.hpp\"\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("examples/demo.cpp:2: F003"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("bench/bench_x.cpp:1: F003"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/core/a.cpp"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("tools/my_lint.cpp:1"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("tools/my_lint.cpp:2: F003"), std::string::npos)
      << run.output;
}

TEST(FiconLint, F004CatchesFloatEqualityButSkipsAssertionsAndComments) {
  SeededRepo repo("f004");
  repo.write("src/x.cpp",
             "bool f(double a) { return a == 1.0; }\n"
             "// a == 1.0 in a comment is fine\n"
             "void g() { EXPECT_EQ(h(), 2.5); }\n"
             "bool k(double a) { return 0.5 != a; }\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/x.cpp:1: F004"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/x.cpp:4: F004"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find(":2: F004"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":3: F004"), std::string::npos) << run.output;
}

TEST(FiconLint, F005CatchesRawRngPrimitives) {
  SeededRepo repo("f005");
  repo.write("src/y.cpp",
             "#include <random>\n"
             "int roll() { std::mt19937 gen(7); return (int)gen(); }\n");
  repo.write("src/util/rng.hpp",
             "#include <random>\n"
             "struct Rng { std::mt19937_64 engine; };\n");  // allowlisted
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/y.cpp:2: F005"), std::string::npos)
      << run.output;
  // The message text mentions rng.hpp; assert no *finding* points there.
  EXPECT_EQ(run.output.find("rng.hpp:"), std::string::npos) << run.output;
}

TEST(FiconLint, F006CatchesMissingAndRedundantOverride) {
  SeededRepo repo("f006");
  repo.write("src/z.hpp",
             "struct Base {\n"
             "  virtual ~Base() = default;\n"  // no base list: not flagged
             "  virtual int f() const = 0;\n"
             "};\n"
             "struct Derived : public Base {\n"
             "  virtual int f() const;\n"        // missing override
             "  virtual int g() const override;\n"  // redundant virtual
             "  int h() const override;\n"       // correct: not flagged
             "};\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/z.hpp:6: F006"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/z.hpp:7: F006"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("redundant"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("z.hpp:2:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("z.hpp:3:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("z.hpp:8:"), std::string::npos) << run.output;
}

TEST(FiconLint, F007CatchesAdHocSvgEmissionOutsideExp) {
  SeededRepo repo("f007");
  repo.write("src/anneal/dump.cpp",
             "void dump(std::ostream& os) { os << \"<svg width='9'>\"; }\n");
  // src/exp/ owns SVG rendering; tests may build fixtures.
  repo.write("src/exp/writer.cpp",
             "void w(std::ostream& os) { os << \"<svg>\"; }\n");
  repo.write("tests/fixture.cpp", "const char* kSvg = \"<svg>\";\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/anneal/dump.cpp:1: F007"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/exp/writer.cpp"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("tests/fixture.cpp"), std::string::npos)
      << run.output;
}

TEST(FiconLint, F008CatchesDeepProbabilityIncludesOutsideCongestion) {
  SeededRepo repo("f008");
  repo.write("src/anneal/cost.cpp", "#include \"congestion/approx.hpp\"\n");
  repo.write("examples/probe.cpp",
             "#include \"src/congestion/path_prob.hpp\"\n");
  // The probability engine itself and tests keep deep access.
  repo.write("src/congestion/glue.cpp", "#include \"congestion/approx.hpp\"\n");
  repo.write("tests/probe_test.cpp",
             "#include \"congestion/path_prob.hpp\"\n");
  const LintRun run = repo.lint();
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/anneal/cost.cpp:1: F008"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("examples/probe.cpp:1: F008"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("prob_eval.hpp"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("src/congestion/glue.cpp"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("tests/probe_test.cpp"), std::string::npos)
      << run.output;
}

TEST(FiconLint, BaselineSuppressesOnlyJustifiedEntries) {
  SeededRepo repo("baseline");
  repo.write("src/x.cpp", "bool f(double a) { return a == 1.0; }\n");

  // --update-baseline captures the finding but marks it UNREVIEWED...
  const LintRun update = repo.lint("--update-baseline");
  EXPECT_EQ(update.exit_code, 0) << update.output;
  EXPECT_NE(update.output.find("1 suppression"), std::string::npos)
      << update.output;

  // ...and an UNREVIEWED entry does NOT silence the finding.
  const LintRun unreviewed = repo.lint();
  EXPECT_EQ(unreviewed.exit_code, 1) << unreviewed.output;
  EXPECT_NE(unreviewed.output.find("baselined without justification"),
            std::string::npos)
      << unreviewed.output;

  // A human-supplied reason does.
  repo.write(".ficon-lint-baseline.json",
             "{\"suppressions\": [{\"rule\": \"F004\", \"file\": "
             "\"src/x.cpp\", \"token\": "
             "\"bool f(double a) { return a == 1.0; }\", "
             "\"reason\": \"exact sentinel compare\"}]}\n");
  const LintRun justified = repo.lint();
  EXPECT_EQ(justified.exit_code, 0) << justified.output;

  // Fixing the code turns the entry stale — reported, but still exit 0.
  repo.write("src/x.cpp", "bool f(double a) { return a > 1.0; }\n");
  const LintRun stale = repo.lint();
  EXPECT_EQ(stale.exit_code, 0) << stale.output;
  EXPECT_NE(stale.output.find("stale baseline entry"), std::string::npos)
      << stale.output;

  // A corrupt baseline is an I/O error, not a silent pass.
  repo.write(".ficon-lint-baseline.json", "{nope");
  EXPECT_EQ(repo.lint().exit_code, 2);
}

}  // namespace
