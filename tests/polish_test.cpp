// Normalized Polish expression invariants and moves (Wong-Liu).
#include <set>

#include <gtest/gtest.h>

#include "floorplan/polish.hpp"

namespace ficon {
namespace {

std::vector<PolishToken> toks(std::initializer_list<int> vals) {
  std::vector<PolishToken> out;
  for (const int v : vals) out.push_back(PolishToken{v});
  return out;
}
constexpr int H = PolishToken::kH;
constexpr int V = PolishToken::kV;

TEST(Polish, InitialExpressionIsValidAndNormalized) {
  for (int m = 1; m <= 40; ++m) {
    const PolishExpression e = PolishExpression::initial(m);
    EXPECT_EQ(e.module_count(), m);
    EXPECT_EQ(e.tokens().size(), static_cast<std::size_t>(2 * m - 1));
    EXPECT_TRUE(PolishExpression::is_valid(e.tokens()));
    EXPECT_TRUE(PolishExpression::is_normalized(e.tokens()));
  }
}

TEST(Polish, ValidityChecks) {
  EXPECT_TRUE(PolishExpression::is_valid(toks({0, 1, V})));
  EXPECT_TRUE(PolishExpression::is_valid(toks({0, 1, V, 2, H})));
  EXPECT_FALSE(PolishExpression::is_valid(toks({})));
  EXPECT_FALSE(PolishExpression::is_valid(toks({0, 1})));        // missing op
  EXPECT_FALSE(PolishExpression::is_valid(toks({0, V, 1})));     // balloting
  EXPECT_FALSE(PolishExpression::is_valid(toks({V, 0, 1})));     // balloting
  EXPECT_FALSE(PolishExpression::is_valid(toks({0, 0, V})));     // repeat
  EXPECT_FALSE(PolishExpression::is_valid(toks({0, 2, V})));     // gap in ids
  EXPECT_FALSE(PolishExpression::is_valid(toks({0, 1, V, V})));  // extra op
}

TEST(Polish, NormalizationChecks) {
  EXPECT_TRUE(PolishExpression::is_normalized(toks({0, 1, V, 2, H})));
  EXPECT_FALSE(PolishExpression::is_normalized(toks({0, 1, 2, V, V})));
  EXPECT_TRUE(PolishExpression::is_normalized(toks({0, 1, 2, V, H})));
}

TEST(Polish, ConstructorRejectsBadExpressions) {
  EXPECT_THROW(PolishExpression(toks({0, 1})), std::invalid_argument);
  EXPECT_THROW(PolishExpression(toks({0, 1, 2, V, V})), std::invalid_argument);
}

TEST(Polish, ToStringReadable) {
  const PolishExpression e(toks({0, 1, V, 2, H}));
  EXPECT_EQ(e.to_string(), "0 1 V 2 H");
}

TEST(Polish, M1SwapsAdjacentOperands) {
  PolishExpression e(toks({0, 1, V, 2, H}));
  ASSERT_TRUE(e.move_swap_operands(1));  // swap operands '1' and '2'
  EXPECT_EQ(e.to_string(), "0 2 V 1 H");
  EXPECT_TRUE(PolishExpression::is_valid(e.tokens()));
  EXPECT_FALSE(e.move_swap_operands(2));  // no operand after the last
}

TEST(Polish, M2ComplementsChains) {
  PolishExpression e(toks({0, 1, V, 2, H, 3, V}));
  EXPECT_EQ(e.chain_count(), 3u);
  ASSERT_TRUE(e.move_complement_chain(1));
  EXPECT_EQ(e.to_string(), "0 1 V 2 V 3 V");
  ASSERT_TRUE(e.move_complement_chain(0));
  EXPECT_EQ(e.to_string(), "0 1 H 2 V 3 V");
  EXPECT_FALSE(e.move_complement_chain(99));
}

TEST(Polish, M2ComplementsWholeMultiOperatorChain) {
  PolishExpression e(toks({0, 1, 2, V, H, 3, V}));
  EXPECT_EQ(e.chain_count(), 2u);
  ASSERT_TRUE(e.move_complement_chain(0));
  EXPECT_EQ(e.to_string(), "0 1 2 H V 3 V");
  EXPECT_TRUE(PolishExpression::is_normalized(e.tokens()));
}

TEST(Polish, M3KeepsExpressionsValid) {
  PolishExpression e(toks({0, 1, V, 2, H}));
  // Swapping "V 2" -> "2 V" gives 0 1 2 V H: valid and normalized.
  ASSERT_TRUE(e.move_swap_operand_operator(2));
  EXPECT_EQ(e.to_string(), "0 1 2 V H");
  // Swapping back.
  ASSERT_TRUE(e.move_swap_operand_operator(2));
  EXPECT_EQ(e.to_string(), "0 1 V 2 H");
}

TEST(Polish, M3RejectsBallotingViolations) {
  PolishExpression e(toks({0, 1, V, 2, H}));
  // Swapping "1 V" would give "0 V 1 2 H": balloting violation.
  EXPECT_FALSE(e.move_swap_operand_operator(1));
  EXPECT_EQ(e.to_string(), "0 1 V 2 H");  // unchanged
}

TEST(Polish, M3RejectsDenormalization) {
  PolishExpression e(toks({0, 1, 2, V, H, 3, V}));
  // Swapping "2 V" gives "0 1 V 2 H 3 V"? No: "0 1 V 2 H 3 V" is fine;
  // instead check a swap creating "V V": swapping tokens 3,4 is op-op and
  // must be rejected outright.
  EXPECT_FALSE(e.move_swap_operand_operator(3));
}

TEST(Polish, RandomMovePreservesInvariantsLongRun) {
  Rng rng(99);
  PolishExpression e = PolishExpression::initial(12);
  std::set<int> kinds_seen;
  for (int i = 0; i < 3000; ++i) {
    const int kind = e.random_move(rng);
    ASSERT_GE(kind, 1);
    ASSERT_LE(kind, 3);
    kinds_seen.insert(kind);
    ASSERT_TRUE(PolishExpression::is_valid(e.tokens())) << "iter " << i;
    ASSERT_TRUE(PolishExpression::is_normalized(e.tokens())) << "iter " << i;
  }
  // All three move kinds must actually occur.
  EXPECT_EQ(kinds_seen.size(), 3u);
}

TEST(Polish, RandomMoveIsDeterministicPerSeed) {
  Rng r1(5), r2(5);
  PolishExpression a = PolishExpression::initial(9);
  PolishExpression b = PolishExpression::initial(9);
  for (int i = 0; i < 200; ++i) {
    a.random_move(r1);
    b.random_move(r2);
    ASSERT_EQ(a.to_string(), b.to_string());
  }
}

TEST(Polish, SingleModuleHasNoMoves) {
  Rng rng(1);
  PolishExpression e = PolishExpression::initial(1);
  EXPECT_EQ(e.random_move(rng), 0);
  EXPECT_EQ(e.to_string(), "0");
}

TEST(Polish, IsValidRejectsHostileOperandValuesCheaply) {
  // Regression (found by fuzz/polish_fuzz): an operand value near INT_MAX
  // used to drive seen.resize(value+1) — a multi-hundred-MB allocation —
  // before the expression was rejected. Any operand >= the token count
  // must be rejected up front.
  using Tok = PolishToken;
  EXPECT_FALSE(PolishExpression::is_valid(
      {Tok{0}, Tok{0x7fffff42}, Tok{Tok::kV}}));
  EXPECT_FALSE(PolishExpression::is_valid(
      {Tok{2147483647}, Tok{1}, Tok{Tok::kH}}));
  // Operand == token count is just as invalid (indices are 0..n-1).
  EXPECT_FALSE(
      PolishExpression::is_valid({Tok{0}, Tok{3}, Tok{Tok::kV}}));
  // And the boundary that IS legal still passes: indices {0,1}, 3 tokens.
  EXPECT_TRUE(
      PolishExpression::is_valid({Tok{0}, Tok{1}, Tok{Tok::kV}}));
}

TEST(Polish, ValidatorsHandleFuzzedTokenSoup) {
  // Byte-soup shapes the fuzzer exercises: all operators, duplicate
  // operands, junk negatives. None may crash; all must be invalid.
  using Tok = PolishToken;
  EXPECT_FALSE(PolishExpression::is_valid({Tok{Tok::kH}, Tok{Tok::kV}}));
  EXPECT_FALSE(
      PolishExpression::is_valid({Tok{0}, Tok{0}, Tok{Tok::kV}}));
  EXPECT_FALSE(PolishExpression::is_valid({Tok{0}, Tok{1}, Tok{-17}}));
  EXPECT_FALSE(PolishExpression::is_valid({}));
  // is_normalized is independent of validity and must tolerate the same.
  EXPECT_TRUE(PolishExpression::is_normalized({Tok{Tok::kH}, Tok{Tok::kV}}));
  EXPECT_FALSE(
      PolishExpression::is_normalized({Tok{Tok::kH}, Tok{Tok::kH}}));
}

TEST(Polish, MovesReachManyDistinctStructures) {
  // The move set should explore the solution space, not cycle among a few
  // states: 500 moves on 8 modules must visit >100 distinct expressions.
  Rng rng(3);
  PolishExpression e = PolishExpression::initial(8);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) {
    e.random_move(rng);
    seen.insert(e.to_string());
  }
  EXPECT_GT(seen.size(), 100u);
}

}  // namespace
}  // namespace ficon
