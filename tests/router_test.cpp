// Global-router substrate tests.
#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "core/floorplanner.hpp"
#include "route/two_pin.hpp"
#include "router/global_router.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

const Rect kChip{0, 0, 100, 100};

RouterParams coarse() {
  RouterParams p;
  p.pitch = 10.0;
  p.capacity = 2.0;
  return p;
}

/// Total usage across the chip.
double total_usage(const RoutedCongestion& r) {
  double sum = 0.0;
  for (const double u : r.usage()) sum += u;
  return sum;
}

TEST(Router, SingleNetUsesExactlyItsPathLength) {
  const GlobalRouter router(coarse());
  const std::vector<TwoPinNet> nets{{Point{5, 5}, Point{75, 45}, 0}};
  const RoutedCongestion r = router.route(nets, kChip);
  // Monotone path over an 8x5 cell span touches exactly 8+5-1 cells.
  EXPECT_DOUBLE_EQ(total_usage(r), 12.0);
  EXPECT_DOUBLE_EQ(r.max_usage(), 1.0);
  // Endpoints must be used.
  EXPECT_DOUBLE_EQ(r.usage(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.usage(7, 4), 1.0);
}

TEST(Router, TypeTwoNetRoutesBetweenItsPins) {
  const GlobalRouter router(coarse());
  const std::vector<TwoPinNet> nets{{Point{5, 45}, Point{75, 5}, 0}};
  const RoutedCongestion r = router.route(nets, kChip);
  EXPECT_DOUBLE_EQ(r.usage(0, 4), 1.0);  // upper-left pin
  EXPECT_DOUBLE_EQ(r.usage(7, 0), 1.0);  // lower-right pin
  EXPECT_DOUBLE_EQ(total_usage(r), 12.0);
}

TEST(Router, DegenerateNetsOccupyTheirCells) {
  const GlobalRouter router(coarse());
  const std::vector<TwoPinNet> nets{
      {Point{15, 15}, Point{15, 15}, 0},
      {Point{5, 55}, Point{95, 55}, 1},
  };
  const RoutedCongestion r = router.route(nets, kChip);
  EXPECT_DOUBLE_EQ(r.usage(1, 1), 1.0);
  for (int x = 0; x < 10; ++x) EXPECT_DOUBLE_EQ(r.usage(x, 5), 1.0);
}

TEST(Router, PathsStayInsideRoutingRange) {
  Rng rng(71);
  const GlobalRouter router(coarse());
  for (int trial = 0; trial < 20; ++trial) {
    const Point a{rng.uniform(0, 100), rng.uniform(0, 100)};
    const Point b{rng.uniform(0, 100), rng.uniform(0, 100)};
    const std::vector<TwoPinNet> nets{{a, b, 0}};
    const RoutedCongestion r = router.route(nets, kChip);
    const GridSpec& g = r.grid();
    const GridPoint ca = g.cell_of(a), cb = g.cell_of(b);
    for (int cy = 0; cy < g.ny(); ++cy) {
      for (int cx = 0; cx < g.nx(); ++cx) {
        if (r.usage(cx, cy) > 0.0) {
          EXPECT_GE(cx, std::min(ca.x, cb.x));
          EXPECT_LE(cx, std::max(ca.x, cb.x));
          EXPECT_GE(cy, std::min(ca.y, cb.y));
          EXPECT_LE(cy, std::max(ca.y, cb.y));
        }
      }
    }
  }
}

TEST(Router, ConservationAcrossDiagonals) {
  // Every routed (non-degenerate) net crosses each anti-diagonal of its
  // span exactly once, so total usage = sum of (g1 + g2 - 1) per net.
  Rng rng(72);
  std::vector<TwoPinNet> nets;
  double expected = 0.0;
  const GridSpec grid = GridSpec::from_pitch(kChip, 10, 10);
  for (int i = 0; i < 25; ++i) {
    const TwoPinNet net{{rng.uniform(0, 100), rng.uniform(0, 100)},
                        {rng.uniform(0, 100), rng.uniform(0, 100)},
                        i};
    nets.push_back(net);
    const SpannedNet s = span_net(grid, net);
    expected += s.shape.g1 + s.shape.g2 - 1;
  }
  const GlobalRouter router(coarse());
  EXPECT_DOUBLE_EQ(total_usage(router.route(nets, kChip)), expected);
}

TEST(Router, CongestionAwareRoutingSpreadsLoad) {
  // Eight identical nets spanning the same 10x10 cell window: every net
  // must use the two pin cells (usage 8 there is unavoidable), but a
  // congestion-aware router spreads the staircases in between — a blind
  // router would stack all 8 on one path.
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 8; ++i) {
    nets.push_back(TwoPinNet{Point{5, 5}, Point{95, 95}, i});
  }
  const GlobalRouter router(coarse());
  const RoutedCongestion r = router.route(nets, kChip);
  EXPECT_DOUBLE_EQ(r.usage(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(r.usage(9, 9), 8.0);
  long long heavy = 0;
  for (int cy = 0; cy < 10; ++cy) {
    for (int cx = 0; cx < 10; ++cx) {
      if (r.usage(cx, cy) >= 7.0) ++heavy;
    }
  }
  EXPECT_LE(heavy, 4);  // only the pin neighbourhoods may stay heavy
}

TEST(Router, RipUpReducesOverflow) {
  Rng rng(73);
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 120; ++i) {
    nets.push_back(TwoPinNet{{rng.uniform(30, 70), rng.uniform(30, 70)},
                             {rng.uniform(30, 70), rng.uniform(30, 70)},
                             i});
  }
  RouterParams no_ripup = coarse();
  no_ripup.ripup_passes = 0;
  RouterParams with_ripup = coarse();
  with_ripup.ripup_passes = 3;
  const double before =
      GlobalRouter(no_ripup).route(nets, kChip).overflow(coarse().capacity);
  const double after =
      GlobalRouter(with_ripup).route(nets, kChip).overflow(coarse().capacity);
  EXPECT_LE(after, before);
}

TEST(Router, OverflowMetrics) {
  RoutedCongestion r(GridSpec::from_counts(kChip, 2, 2));
  r.add_usage(0, 0, 5.0);
  r.add_usage(1, 1, 1.0);
  EXPECT_DOUBLE_EQ(r.overflow(2.0), 3.0);
  EXPECT_EQ(r.overflowed_cells(2.0), 1);
  EXPECT_DOUBLE_EQ(r.max_usage(), 5.0);
  EXPECT_DOUBLE_EQ(r.top_fraction_usage(0.25), 5.0);
}

TEST(Router, RejectsBadParams) {
  RouterParams bad;
  bad.pitch = 0.0;
  EXPECT_THROW(GlobalRouter{bad}, std::invalid_argument);
  RouterParams bad2;
  bad2.ripup_passes = -1;
  EXPECT_THROW(GlobalRouter{bad2}, std::invalid_argument);
}

TEST(Router, EstimatorsPredictRoutedCongestion) {
  // The paper's core premise, end to end: both probabilistic estimators
  // must rank placements consistently with actually-routed congestion.
  const Netlist netlist = make_mcnc("ami33");
  FloorplanOptions o;
  o.effort = 0.15;
  o.anneal.stop_temperature_ratio = 1e-2;
  std::vector<double> routed, judged;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    o.seed = seed;
    const FloorplanSolution sol = Floorplanner(netlist, o).run();
    const auto nets = decompose_to_two_pin(netlist, sol.placement);
    RouterParams rp;
    rp.pitch = 20.0;
    rp.capacity = 3.0;
    routed.push_back(
        GlobalRouter(rp).route(nets, sol.placement.chip).top_fraction_usage());
    judged.push_back(
        make_judging_model(20.0).cost(nets, sol.placement.chip));
  }
  EXPECT_GT(pearson(routed, judged), 0.5);
}

}  // namespace
}  // namespace ficon
