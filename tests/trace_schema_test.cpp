// JSONL trace schema: the bundled JSON parser must handle the grammar the
// writer emits (including %.17g doubles, bit-exactly), and the validator
// must accept exactly the documented record shapes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ficon.hpp"
#include "obs/json.hpp"

namespace ficon {
namespace {

using obs::JsonValue;
using obs::parse_json;

TEST(JsonParser, ParsesScalars) {
  EXPECT_EQ(parse_json("null")->type, JsonValue::Type::kNull);
  EXPECT_TRUE(parse_json("true")->boolean);
  EXPECT_FALSE(parse_json("false")->boolean);
  EXPECT_DOUBLE_EQ(parse_json("42")->number, 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-1.5e3")->number, -1500.0);
  EXPECT_EQ(parse_json("\"hi\"")->string, "hi");
}

TEST(JsonParser, ParsesEscapesAndNesting) {
  const auto v = parse_json(R"({"a":[1,{"b":"x\n\t\"\\A"}],"c":{}})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  const JsonValue* b = a->array[1].find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string, "x\n\t\"\\A");
  EXPECT_TRUE(v->find("c")->is_object());
}

TEST(JsonParser, RoundTripsSeventeenDigitDoubles) {
  // The writer prints doubles with %.17g; parsing that text must return
  // the original bits.
  for (const double x : {0.1, 1.0 / 3.0, 6.02214076e23, -2.2250738585072014e-308}) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    const auto v = parse_json(buf);
    ASSERT_TRUE(v.has_value()) << buf;
    EXPECT_EQ(v->number, x) << buf;
  }
}

TEST(JsonParser, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(parse_json("nul", &error).has_value());
  EXPECT_FALSE(parse_json("1 2", &error).has_value());  // trailing garbage
  EXPECT_FALSE(error.empty());
}

TEST(TraceSchema, AcceptsEveryDocumentedRecordType) {
  const char* lines[] = {
      R"({"type":"meta","version":2,"tool":"t"})",
      R"({"type":"counter","name":"anneal_runs","value":1})",
      R"({"type":"phase","name":"pack","calls":3,"seconds":0.5})",
      R"({"type":"cache","name":"score_memo","hits":1,"misses":2,"evictions":0})",
      R"({"type":"strategy","name":"theorem1","regions":9,"exact_fallbacks":1})",
      R"({"type":"thread_pool","thread":"worker-0","tasks":4,"queue_wait_seconds":0.001})",
      R"({"type":"anneal_summary","runs":1,"temperatures":2,"proposed":40,"accepted":12,"uphill_accepted":3,"stall_temperatures":0})",
      R"({"type":"solution","area":1.0,"wirelength":2.0,"congestion":0.5,"cost":3.5,"seconds":0.1})",
      R"({"type":"hist","name":"repack_latency_ns","count":3,"sum":9,"buckets":[{"lo":1,"hi":2,"count":1},{"lo":2,"hi":4,"count":2}]})",
      R"({"type":"hist","name":"accept_ratio_ppm","count":0,"sum":0,"buckets":[]})",
  };
  for (const char* line : lines) {
    std::string error;
    EXPECT_TRUE(obs::validate_trace_line(line, &error)) << line << ": "
                                                        << error;
  }
}

TEST(TraceSchema, HistRecordsAreCheckedForBucketConsistency) {
  // Bucket lists must be well-formed: numeric lo/hi/count per bucket,
  // lo < hi, strictly increasing lo, non-negative counts summing to the
  // declared "count". A sparse export is how a corrupted merge would
  // slip by — lint it hard.
  const char* bad[] = {
      // Unregistered histogram name.
      R"({"type":"hist","name":"vibes_ns","count":0,"sum":0,"buckets":[]})",
      // Bucket is not an object.
      R"({"type":"hist","name":"repack_latency_ns","count":1,"sum":1,"buckets":[7]})",
      // Bucket missing "count".
      R"({"type":"hist","name":"repack_latency_ns","count":1,"sum":1,"buckets":[{"lo":1,"hi":2}]})",
      // lo >= hi.
      R"({"type":"hist","name":"repack_latency_ns","count":1,"sum":1,"buckets":[{"lo":4,"hi":2,"count":1}]})",
      // Non-monotone lo sequence.
      R"({"type":"hist","name":"repack_latency_ns","count":2,"sum":6,"buckets":[{"lo":4,"hi":8,"count":1},{"lo":2,"hi":4,"count":1}]})",
      // Negative bucket count.
      R"({"type":"hist","name":"repack_latency_ns","count":1,"sum":1,"buckets":[{"lo":1,"hi":2,"count":-1}]})",
      // Bucket counts do not sum to the declared total.
      R"({"type":"hist","name":"repack_latency_ns","count":5,"sum":9,"buckets":[{"lo":1,"hi":2,"count":1},{"lo":2,"hi":4,"count":2}]})",
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(obs::validate_trace_line(line, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(TraceSchema, EveryHistNameIsRegistered) {
  for (int i = 0; i < obs::kHistCount; ++i) {
    const std::string line =
        std::string(R"({"type":"hist","name":")") +
        obs::hist_name(static_cast<obs::Hist>(i)) +
        R"(","count":0,"sum":0,"buckets":[]})";
    std::string error;
    EXPECT_TRUE(obs::validate_trace_line(line, &error)) << error;
  }
}

TEST(TraceSchema, RejectsBadRecords) {
  const char* lines[] = {
      "not json at all",
      "[1,2,3]",                                       // not an object
      R"({"name":"x","value":1})",                     // missing type
      R"({"type":"launch_codes"})",                    // unknown type
      R"({"type":"counter","name":"anneal_runs"})",    // missing field
      R"({"type":"counter","name":7,"value":1})",      // wrong field kind
      R"({"type":"phase","name":"pack","calls":"3","seconds":0.5})",
  };
  for (const char* line : lines) {
    std::string error;
    EXPECT_FALSE(obs::validate_trace_line(line, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(TraceSchema, RejectsNamesMissingFromRegistry) {
  // Free-form names defeat the point of a schema: every counter, phase,
  // cache, and strategy name must come from obs/schema.hpp.
  const char* lines[] = {
      R"({"type":"counter","name":"made_up_counter","value":1})",
      R"({"type":"phase","name":"warp","calls":3,"seconds":0.5})",
      R"({"type":"cache","name":"l5","hits":1,"misses":2,"evictions":0})",
      R"({"type":"strategy","name":"vibes","regions":9,"exact_fallbacks":0})",
  };
  for (const char* line : lines) {
    std::string error;
    EXPECT_FALSE(obs::validate_trace_line(line, &error)) << line;
    EXPECT_NE(error.find("schema registry"), std::string::npos) << error;
  }
}

TEST(TraceSchema, EveryCounterAndPhaseNameIsRegistered) {
  // counter_name/phase_name draw from the registry tables; the validator
  // must accept everything the writer can emit.
  for (int i = 0; i < obs::kCounterCount; ++i) {
    const std::string line =
        std::string(R"({"type":"counter","name":")") +
        obs::counter_name(static_cast<obs::Counter>(i)) +
        R"(","value":0})";
    std::string error;
    EXPECT_TRUE(obs::validate_trace_line(line, &error)) << error;
  }
  for (int i = 0; i < obs::kPhaseCount; ++i) {
    const std::string line =
        std::string(R"({"type":"phase","name":")") +
        obs::phase_name(static_cast<obs::Phase>(i)) +
        R"(","calls":0,"seconds":0.0})";
    std::string error;
    EXPECT_TRUE(obs::validate_trace_line(line, &error)) << error;
  }
}

TEST(TraceSchema, StreamValidatorRequiresLeadingMeta) {
  std::string error;

  std::istringstream good(
      "{\"type\":\"meta\",\"version\":2,\"tool\":\"t\"}\n"
      "{\"type\":\"counter\",\"name\":\"anneal_runs\",\"value\":0}\n"
      "\n");  // blank lines are fine
  EXPECT_TRUE(obs::validate_trace(good, &error)) << error;

  std::istringstream headless(
      "{\"type\":\"counter\",\"name\":\"anneal_runs\",\"value\":0}\n");
  EXPECT_FALSE(obs::validate_trace(headless, &error));

  std::istringstream wrong_version(
      "{\"type\":\"meta\",\"version\":999,\"tool\":\"t\"}\n");
  EXPECT_FALSE(obs::validate_trace(wrong_version, &error));

  std::istringstream bad_tail(
      "{\"type\":\"meta\",\"version\":2,\"tool\":\"t\"}\n"
      "{\"type\":\"counter\"}\n");
  EXPECT_FALSE(obs::validate_trace(bad_tail, &error));
  EXPECT_NE(error.find("line"), std::string::npos);  // position-tagged
}

TEST(TraceLint, DistinguishesSchemaViolationFromParseError) {
  // trace_lint's exit codes come straight from TraceLintResult: CI must
  // be able to tell a malformed trace (1) from an unreadable file (2).
  static_assert(static_cast<int>(obs::TraceLintResult::kOk) == 0);
  static_assert(
      static_cast<int>(obs::TraceLintResult::kSchemaViolation) == 1);
  static_assert(static_cast<int>(obs::TraceLintResult::kIoError) == 2);

  std::string error;
  std::istringstream ok(
      "{\"type\":\"meta\",\"version\":2,\"tool\":\"t\"}\n");
  EXPECT_EQ(obs::lint_trace(ok, &error), obs::TraceLintResult::kOk);

  // Well-formed JSON, but the record violates the schema -> 1.
  std::istringstream bad_record(
      "{\"type\":\"meta\",\"version\":2,\"tool\":\"t\"}\n"
      "{\"type\":\"counter\",\"name\":\"anneal_runs\"}\n");
  EXPECT_EQ(obs::lint_trace(bad_record, &error),
            obs::TraceLintResult::kSchemaViolation);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  // Headless / wrong version are schema problems, not I/O problems.
  std::istringstream headless(
      "{\"type\":\"counter\",\"name\":\"anneal_runs\",\"value\":0}\n");
  EXPECT_EQ(obs::lint_trace(headless, &error),
            obs::TraceLintResult::kSchemaViolation);

  // Not JSON at all -> 2.
  std::istringstream garbage("$$ not a trace $$\n");
  EXPECT_EQ(obs::lint_trace(garbage, &error),
            obs::TraceLintResult::kIoError);
}

TEST(TraceLint, FileEntryPointsReportIoErrors) {
  std::string error;
  EXPECT_EQ(obs::lint_trace_file("/nonexistent/ficon-trace.jsonl", &error),
            obs::TraceLintResult::kIoError);
  EXPECT_EQ(error, "cannot open");

  // Round-trip through an actual file: written traces lint clean.
  const std::string path = ::testing::TempDir() + "trace_lint_test.jsonl";
  {
    std::ofstream out(path);
    obs::write_jsonl(out, obs::TraceReport{}, "trace_schema_test");
  }
  EXPECT_EQ(obs::lint_trace_file(path, &error), obs::TraceLintResult::kOk)
      << error;
  std::remove(path.c_str());
}

TEST(TraceSchema, EmptyReportStillValidates) {
  // Even a run with zeroed sinks produces a schema-complete document.
  obs::reset();
  std::ostringstream out;
  obs::write_jsonl(out, obs::TraceReport{}, "trace_schema_test");
  std::istringstream in(out.str());
  std::string error;
  EXPECT_TRUE(obs::validate_trace(in, &error)) << error;
}

}  // namespace
}  // namespace ficon
