// Randomized property tests on the probability engine — invariants that
// must hold for ALL regions and range shapes, checked over random draws.
#include <gtest/gtest.h>

#include "congestion/approx.hpp"
#include "congestion/path_prob.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

class ProbProperties : public ::testing::Test {
 protected:
  GridRect random_region(int g1, int g2) {
    const int x1 = rng_.uniform_int(0, g1 - 1);
    const int x2 = rng_.uniform_int(x1, g1 - 1);
    const int y1 = rng_.uniform_int(0, g2 - 1);
    const int y2 = rng_.uniform_int(y1, g2 - 1);
    return GridRect{x1, y1, x2, y2};
  }

  NetGridShape random_shape() {
    return NetGridShape{rng_.uniform_int(2, 24), rng_.uniform_int(2, 24),
                        rng_.chance(0.5)};
  }

  Rng rng_{2024};
  LogFactorialTable table_;
  PathProbability prob_{table_};
};

TEST_F(ProbProperties, ReversalSymmetry) {
  // Reversing every path (walking sink -> source) is a bijection, so a
  // region and its 180-degree rotation have equal crossing probability.
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    const GridRect rotated{s.g1 - 1 - r.xhi, s.g2 - 1 - r.yhi,
                           s.g1 - 1 - r.xlo, s.g2 - 1 - r.ylo};
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_exact(s, rotated), 1e-10)
        << "g=(" << s.g1 << ',' << s.g2 << ") region " << r;
  }
}

TEST_F(ProbProperties, TypeMirrorConsistency) {
  // A type II net is the y-mirror of a type I net: region probabilities
  // must match under the mirror map.
  for (int trial = 0; trial < 300; ++trial) {
    NetGridShape s = random_shape();
    s.type2 = true;
    NetGridShape mirrored = s;
    mirrored.type2 = false;
    const GridRect r = random_region(s.g1, s.g2);
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_exact(mirrored,
                                               mirror_region_y(s.g2, r)),
                1e-10);
  }
}

TEST_F(ProbProperties, MonotoneUnderRegionGrowth) {
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    const GridRect grown{std::max(0, r.xlo - 1), std::max(0, r.ylo - 1),
                         std::min(s.g1 - 1, r.xhi + 1),
                         std::min(s.g2 - 1, r.yhi + 1)};
    EXPECT_LE(prob_.region_probability_exact(s, r),
              prob_.region_probability_exact(s, grown) + 1e-12);
  }
}

TEST_F(ProbProperties, UnionBoundOnStripeSplits) {
  // Splitting a full-height stripe vertically: every path crosses the
  // stripe, so P(A) + P(B) >= 1; each part alone is <= 1.
  for (int trial = 0; trial < 200; ++trial) {
    const NetGridShape s = random_shape();
    const int x1 = rng_.uniform_int(0, s.g1 - 1);
    const int x2 = rng_.uniform_int(x1, s.g1 - 1);
    const int split = rng_.uniform_int(0, s.g2 - 2);
    const GridRect lower{x1, 0, x2, split};
    const GridRect upper{x1, split + 1, x2, s.g2 - 1};
    const GridRect full{x1, 0, x2, s.g2 - 1};
    const double pl = prob_.region_probability_exact(s, lower);
    const double pu = prob_.region_probability_exact(s, upper);
    EXPECT_NEAR(prob_.region_probability_exact(s, full), 1.0, 1e-12);
    EXPECT_GE(pl + pu + 1e-12, 1.0);
    EXPECT_LE(pl, 1.0 + 1e-12);
    EXPECT_LE(pu, 1.0 + 1e-12);
  }
}

TEST_F(ProbProperties, CellProbabilitiesBoundRegionProbability) {
  // max cell P in region <= region P <= sum of cell Ps (union bound).
  for (int trial = 0; trial < 120; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    double max_cell = 0.0, sum_cells = 0.0;
    for (int y = r.ylo; y <= r.yhi; ++y) {
      for (int x = r.xlo; x <= r.xhi; ++x) {
        const double p = prob_.cell_probability(s, x, y);
        max_cell = std::max(max_cell, p);
        sum_cells += p;
      }
    }
    const double region = prob_.region_probability_exact(s, r);
    EXPECT_GE(region + 1e-10, max_cell);
    EXPECT_LE(region, sum_cells + 1e-10);
  }
}

TEST_F(ProbProperties, RegionProbabilityStaysInUnitInterval) {
  // P is a probability: [0,1] for every shape/region draw, including the
  // degenerate single-row/column shapes where every path is forced.
  for (int trial = 0; trial < 400; ++trial) {
    // 1-in-5 draws force a degenerate shape (g1 == 1 or g2 == 1).
    NetGridShape s = random_shape();
    if (trial % 5 == 0) {
      (rng_.chance(0.5) ? s.g1 : s.g2) = 1;
    }
    const GridRect r = random_region(s.g1, s.g2);
    const double p = prob_.region_probability_exact(s, r);
    EXPECT_GE(p, 0.0) << "g=(" << s.g1 << ',' << s.g2 << ") region " << r;
    EXPECT_LE(p, 1.0) << "g=(" << s.g1 << ',' << s.g2 << ") region " << r;
    // Cell probabilities obey the same bounds (sampled corner).
    const double pc = prob_.cell_probability(s, r.xlo, r.ylo);
    EXPECT_GE(pc, 0.0);
    EXPECT_LE(pc, 1.0);
    // A degenerate shape has exactly one path: every cell on it is
    // crossed with certainty.
    if (s.degenerate()) {
      EXPECT_NEAR(p, 1.0, 1e-12);
    }
  }
}

TEST_F(ProbProperties, TransposeSymmetry) {
  // Swapping the x and y axes is a bijection on monotone lattice paths
  // (for both net types), so P over (g1,g2) at region r equals P over
  // (g2,g1) at the transposed region.
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    const NetGridShape t{s.g2, s.g1, s.type2};
    const GridRect transposed{r.ylo, r.xlo, r.yhi, r.xhi};
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_exact(t, transposed), 1e-10)
        << "g=(" << s.g1 << ',' << s.g2 << ") t2=" << s.type2 << " region "
        << r;
  }
}

TEST_F(ProbProperties, MonotoneOverRandomNestedRegions) {
  // Containment monotonicity for ARBITRARY nesting (the RegionGrowth test
  // above only grows by one ring): inner ⊆ outer implies P(inner) <=
  // P(outer), because every path crossing the inner region crosses the
  // outer one.
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect outer = random_region(s.g1, s.g2);
    const int xlo = rng_.uniform_int(outer.xlo, outer.xhi);
    const int xhi = rng_.uniform_int(xlo, outer.xhi);
    const int ylo = rng_.uniform_int(outer.ylo, outer.yhi);
    const int yhi = rng_.uniform_int(ylo, outer.yhi);
    const GridRect inner{xlo, ylo, xhi, yhi};
    EXPECT_LE(prob_.region_probability_exact(s, inner),
              prob_.region_probability_exact(s, outer) + 1e-12)
        << "g=(" << s.g1 << ',' << s.g2 << ") inner " << inner << " outer "
        << outer;
  }
}

TEST_F(ProbProperties, OracleAgreesEverywhereRandomized) {
  for (int trial = 0; trial < 150; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_oracle(s, r), 1e-10)
        << "g=(" << s.g1 << ',' << s.g2 << ") t2=" << s.type2 << " region "
        << r;
  }
}

TEST_F(ProbProperties, ApproxPolicyBoundedErrorRandomized) {
  // The Theorem 1 policy inherits the paper's Figure 8(d) weakness: terms
  // adjacent to a pin are underestimated, and on LARGE regions hugging the
  // pin-side boundary the underestimate accumulates. So: tight bound for
  // regions clear of the pin-adjacent frame, loose bound globally. (The
  // default kBandedExact strategy is exact everywhere; kTheorem1 is the
  // paper-fidelity mode.)
  const ApproxRegionProbability approx(prob_);
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s{rng_.uniform_int(12, 40), rng_.uniform_int(12, 40),
                         rng_.chance(0.5)};
    const GridRect r = random_region(s.g1, s.g2);
    const double expected = prob_.region_covers_pin(s, r)
                                ? 1.0
                                : prob_.region_probability_exact(s, r);
    const double got = approx.region_probability(s, r);
    const bool near_pin_frame =
        r.xlo <= 1 || r.ylo <= 1 || r.xhi >= s.g1 - 2 || r.yhi >= s.g2 - 2;
    EXPECT_NEAR(got, expected, near_pin_frame ? 0.20 : 0.06)
        << "g=(" << s.g1 << ',' << s.g2 << ") region " << r
        << " near_pin_frame=" << near_pin_frame;
  }
}

TEST_F(ProbProperties, DiagonalSumsStayOneUnderMirror) {
  // Conservation must survive the type II mirror for every shape drawn.
  for (int trial = 0; trial < 60; ++trial) {
    const NetGridShape s = random_shape();
    for (int d = 0; d <= s.g1 + s.g2 - 2; d += 3) {
      double sum = 0.0;
      for (int x = 0; x < s.g1; ++x) {
        const int y = s.type2 ? (s.g2 - 1) - (d - x) : d - x;
        if (y >= 0 && y < s.g2) sum += prob_.cell_probability(s, x, y);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace ficon
