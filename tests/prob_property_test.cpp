// Randomized property tests on the probability engine — invariants that
// must hold for ALL regions and range shapes, checked over random draws.
// Includes the batched-kernel equivalence contract: ProbKernel's
// contiguous-array surface must agree with the scalar per-pair reference
// bitwise in kScalar mode and to sub-ulp-of-probability tolerance in kSimd
// mode, with bit-identical fallback decisions.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "congestion/approx.hpp"
#include "congestion/irregular_grid.hpp"
#include "congestion/path_prob.hpp"
#include "congestion/prob_kernel.hpp"
#include "route/two_pin.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ficon {
namespace {

class ProbProperties : public ::testing::Test {
 protected:
  GridRect random_region(int g1, int g2) {
    const int x1 = rng_.uniform_int(0, g1 - 1);
    const int x2 = rng_.uniform_int(x1, g1 - 1);
    const int y1 = rng_.uniform_int(0, g2 - 1);
    const int y2 = rng_.uniform_int(y1, g2 - 1);
    return GridRect{x1, y1, x2, y2};
  }

  NetGridShape random_shape() {
    return NetGridShape{rng_.uniform_int(2, 24), rng_.uniform_int(2, 24),
                        rng_.chance(0.5)};
  }

  Rng rng_{2024};
  LogFactorialTable table_;
  PathProbability prob_{table_};
};

TEST_F(ProbProperties, ReversalSymmetry) {
  // Reversing every path (walking sink -> source) is a bijection, so a
  // region and its 180-degree rotation have equal crossing probability.
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    const GridRect rotated{s.g1 - 1 - r.xhi, s.g2 - 1 - r.yhi,
                           s.g1 - 1 - r.xlo, s.g2 - 1 - r.ylo};
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_exact(s, rotated), 1e-10)
        << "g=(" << s.g1 << ',' << s.g2 << ") region " << r;
  }
}

TEST_F(ProbProperties, TypeMirrorConsistency) {
  // A type II net is the y-mirror of a type I net: region probabilities
  // must match under the mirror map.
  for (int trial = 0; trial < 300; ++trial) {
    NetGridShape s = random_shape();
    s.type2 = true;
    NetGridShape mirrored = s;
    mirrored.type2 = false;
    const GridRect r = random_region(s.g1, s.g2);
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_exact(mirrored,
                                               mirror_region_y(s.g2, r)),
                1e-10);
  }
}

TEST_F(ProbProperties, MonotoneUnderRegionGrowth) {
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    const GridRect grown{std::max(0, r.xlo - 1), std::max(0, r.ylo - 1),
                         std::min(s.g1 - 1, r.xhi + 1),
                         std::min(s.g2 - 1, r.yhi + 1)};
    EXPECT_LE(prob_.region_probability_exact(s, r),
              prob_.region_probability_exact(s, grown) + 1e-12);
  }
}

TEST_F(ProbProperties, UnionBoundOnStripeSplits) {
  // Splitting a full-height stripe vertically: every path crosses the
  // stripe, so P(A) + P(B) >= 1; each part alone is <= 1.
  for (int trial = 0; trial < 200; ++trial) {
    const NetGridShape s = random_shape();
    const int x1 = rng_.uniform_int(0, s.g1 - 1);
    const int x2 = rng_.uniform_int(x1, s.g1 - 1);
    const int split = rng_.uniform_int(0, s.g2 - 2);
    const GridRect lower{x1, 0, x2, split};
    const GridRect upper{x1, split + 1, x2, s.g2 - 1};
    const GridRect full{x1, 0, x2, s.g2 - 1};
    const double pl = prob_.region_probability_exact(s, lower);
    const double pu = prob_.region_probability_exact(s, upper);
    EXPECT_NEAR(prob_.region_probability_exact(s, full), 1.0, 1e-12);
    EXPECT_GE(pl + pu + 1e-12, 1.0);
    EXPECT_LE(pl, 1.0 + 1e-12);
    EXPECT_LE(pu, 1.0 + 1e-12);
  }
}

TEST_F(ProbProperties, CellProbabilitiesBoundRegionProbability) {
  // max cell P in region <= region P <= sum of cell Ps (union bound).
  for (int trial = 0; trial < 120; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    double max_cell = 0.0, sum_cells = 0.0;
    for (int y = r.ylo; y <= r.yhi; ++y) {
      for (int x = r.xlo; x <= r.xhi; ++x) {
        const double p = prob_.cell_probability(s, x, y);
        max_cell = std::max(max_cell, p);
        sum_cells += p;
      }
    }
    const double region = prob_.region_probability_exact(s, r);
    EXPECT_GE(region + 1e-10, max_cell);
    EXPECT_LE(region, sum_cells + 1e-10);
  }
}

TEST_F(ProbProperties, RegionProbabilityStaysInUnitInterval) {
  // P is a probability: [0,1] for every shape/region draw, including the
  // degenerate single-row/column shapes where every path is forced.
  for (int trial = 0; trial < 400; ++trial) {
    // 1-in-5 draws force a degenerate shape (g1 == 1 or g2 == 1).
    NetGridShape s = random_shape();
    if (trial % 5 == 0) {
      (rng_.chance(0.5) ? s.g1 : s.g2) = 1;
    }
    const GridRect r = random_region(s.g1, s.g2);
    const double p = prob_.region_probability_exact(s, r);
    EXPECT_GE(p, 0.0) << "g=(" << s.g1 << ',' << s.g2 << ") region " << r;
    EXPECT_LE(p, 1.0) << "g=(" << s.g1 << ',' << s.g2 << ") region " << r;
    // Cell probabilities obey the same bounds (sampled corner).
    const double pc = prob_.cell_probability(s, r.xlo, r.ylo);
    EXPECT_GE(pc, 0.0);
    EXPECT_LE(pc, 1.0);
    // A degenerate shape has exactly one path: every cell on it is
    // crossed with certainty.
    if (s.degenerate()) {
      EXPECT_NEAR(p, 1.0, 1e-12);
    }
  }
}

TEST_F(ProbProperties, TransposeSymmetry) {
  // Swapping the x and y axes is a bijection on monotone lattice paths
  // (for both net types), so P over (g1,g2) at region r equals P over
  // (g2,g1) at the transposed region.
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    const NetGridShape t{s.g2, s.g1, s.type2};
    const GridRect transposed{r.ylo, r.xlo, r.yhi, r.xhi};
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_exact(t, transposed), 1e-10)
        << "g=(" << s.g1 << ',' << s.g2 << ") t2=" << s.type2 << " region "
        << r;
  }
}

TEST_F(ProbProperties, MonotoneOverRandomNestedRegions) {
  // Containment monotonicity for ARBITRARY nesting (the RegionGrowth test
  // above only grows by one ring): inner ⊆ outer implies P(inner) <=
  // P(outer), because every path crossing the inner region crosses the
  // outer one.
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect outer = random_region(s.g1, s.g2);
    const int xlo = rng_.uniform_int(outer.xlo, outer.xhi);
    const int xhi = rng_.uniform_int(xlo, outer.xhi);
    const int ylo = rng_.uniform_int(outer.ylo, outer.yhi);
    const int yhi = rng_.uniform_int(ylo, outer.yhi);
    const GridRect inner{xlo, ylo, xhi, yhi};
    EXPECT_LE(prob_.region_probability_exact(s, inner),
              prob_.region_probability_exact(s, outer) + 1e-12)
        << "g=(" << s.g1 << ',' << s.g2 << ") inner " << inner << " outer "
        << outer;
  }
}

TEST_F(ProbProperties, OracleAgreesEverywhereRandomized) {
  for (int trial = 0; trial < 150; ++trial) {
    const NetGridShape s = random_shape();
    const GridRect r = random_region(s.g1, s.g2);
    EXPECT_NEAR(prob_.region_probability_exact(s, r),
                prob_.region_probability_oracle(s, r), 1e-10)
        << "g=(" << s.g1 << ',' << s.g2 << ") t2=" << s.type2 << " region "
        << r;
  }
}

TEST_F(ProbProperties, ApproxPolicyBoundedErrorRandomized) {
  // The Theorem 1 policy inherits the paper's Figure 8(d) weakness: terms
  // adjacent to a pin are underestimated, and on LARGE regions hugging the
  // pin-side boundary the underestimate accumulates. So: tight bound for
  // regions clear of the pin-adjacent frame, loose bound globally. (The
  // default kBandedExact strategy is exact everywhere; kTheorem1 is the
  // paper-fidelity mode.)
  const ApproxRegionProbability approx(prob_);
  for (int trial = 0; trial < 300; ++trial) {
    const NetGridShape s{rng_.uniform_int(12, 40), rng_.uniform_int(12, 40),
                         rng_.chance(0.5)};
    const GridRect r = random_region(s.g1, s.g2);
    const double expected = prob_.region_covers_pin(s, r)
                                ? 1.0
                                : prob_.region_probability_exact(s, r);
    const double got = approx.region_probability(s, r);
    const bool near_pin_frame =
        r.xlo <= 1 || r.ylo <= 1 || r.xhi >= s.g1 - 2 || r.yhi >= s.g2 - 2;
    EXPECT_NEAR(got, expected, near_pin_frame ? 0.20 : 0.06)
        << "g=(" << s.g1 << ',' << s.g2 << ") region " << r
        << " near_pin_frame=" << near_pin_frame;
  }
}

TEST_F(ProbProperties, BatchMatchesPerPairScalarBitwise) {
  // kScalar batch calls ARE the historical per-pair path run in a loop:
  // batching (and scratch reuse across calls) must never change a bit.
  ApproxOptions o;
  o.simd = SimdMode::kScalar;
  ProbKernel kernel(prob_, o);
  const ApproxRegionProbability scalar(prob_, o);
  for (int trial = 0; trial < 120; ++trial) {
    const NetGridShape s = random_shape();
    std::vector<GridRect> regions;
    for (int i = 0; i < 17; ++i) regions.push_back(random_region(s.g1, s.g2));
    // Raw out-of-range rects must clamp exactly like the per-pair API.
    regions.push_back(GridRect{-3, -2, s.g1 + 4, 2});
    regions.push_back(GridRect{s.g1 - 2, -5, s.g1 + 6, s.g2 + 9});
    std::vector<double> out(regions.size(), -1.0);
    kernel.region_probability_batch(s, regions, out);
    for (std::size_t i = 0; i < regions.size(); ++i) {
      EXPECT_EQ(out[i], scalar.region_probability(s, regions[i]))
          << "g=(" << s.g1 << ',' << s.g2 << ") t2=" << s.type2 << " region "
          << regions[i];
    }
    std::vector<double> exact_out(regions.size(), -1.0);
    kernel.region_probability_exact_batch(s, regions, exact_out);
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const double expected = prob_.region_covers_pin(s, regions[i])
                                  ? 1.0
                                  : prob_.region_probability_exact(s, regions[i]);
      EXPECT_EQ(exact_out[i], expected) << "region " << regions[i];
    }
  }
}

TEST_F(ProbProperties, SimdKernelMatchesScalarWithinUlps) {
  // The vectorized path replaces only the pdf evaluation (custom exp);
  // validity predicates are shared IEEE expressions, so which regions drop
  // to exact fallback is bit-identical — asserted by the tight tolerance
  // holding even across the fallback boundary (exact values are EQUAL, so
  // any mode disagreement would show up as an approximation-sized jump).
  ApproxOptions so;
  so.simd = SimdMode::kScalar;
  ApproxOptions vo;
  vo.simd = SimdMode::kSimd;
  ProbKernel scalar_kernel(prob_, so);
  ProbKernel simd_kernel(prob_, vo);
  EXPECT_FALSE(scalar_kernel.simd());
  EXPECT_TRUE(simd_kernel.simd());
  for (int trial = 0; trial < 200; ++trial) {
    const NetGridShape s{rng_.uniform_int(12, 40), rng_.uniform_int(12, 40),
                         rng_.chance(0.5)};
    std::vector<GridRect> regions;
    for (int i = 0; i < 16; ++i) regions.push_back(random_region(s.g1, s.g2));
    std::vector<double> a(regions.size()), b(regions.size());
    scalar_kernel.region_probability_batch(s, regions, a);
    simd_kernel.region_probability_batch(s, regions, b);
    for (std::size_t i = 0; i < regions.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-12)
          << "g=(" << s.g1 << ',' << s.g2 << ") t2=" << s.type2 << " region "
          << regions[i];
    }
  }
}

TEST_F(ProbProperties, BatchTermSamplersMarkExactlyThePaperCellsInvalid) {
  // Section 4.5: the four pin-adjacent cells are the ONLY invalid top-exit
  // samples on integer abscissae, and both kernel modes must mark exactly
  // those with NaN (the batch encoding of the scalar probe's nullopt).
  const int g1 = 9, g2 = 7;
  for (const SimdMode mode : {SimdMode::kScalar, SimdMode::kSimd}) {
    ApproxOptions o;
    o.simd = mode;
    ProbKernel kernel(prob_, o);
    std::vector<double> xs(static_cast<std::size_t>(g1));
    for (int x = 0; x < g1; ++x) xs[static_cast<std::size_t>(x)] = x;
    std::vector<double> out(xs.size());
    for (int y2 = 0; y2 < g2; ++y2) {
      kernel.eval_top_exit_terms(g1, g2, y2, xs, out);
      for (int x = 0; x < g1; ++x) {
        const bool predicted = (x == 0 && y2 == 0) ||
                               (x == g1 - 2 && y2 == g2 - 1) ||
                               (x == g1 - 1 && y2 == g2 - 2) ||
                               (x == g1 - 1 && y2 == g2 - 1);
        EXPECT_EQ(std::isnan(out[static_cast<std::size_t>(x)]), predicted)
            << "mode=" << static_cast<int>(mode) << " x=" << x
            << " y2=" << y2;
      }
    }
    // The right-exit mirror: same four cells under the x/y swap.
    std::vector<double> ys(static_cast<std::size_t>(g2));
    for (int y = 0; y < g2; ++y) ys[static_cast<std::size_t>(y)] = y;
    std::vector<double> rout(ys.size());
    for (int x2 = 0; x2 < g1; ++x2) {
      kernel.eval_right_exit_terms(g1, g2, x2, ys, rout);
      for (int y = 0; y < g2; ++y) {
        const bool predicted = (x2 == 0 && y == 0) ||
                               (x2 == g1 - 1 && y == g2 - 2) ||
                               (x2 == g1 - 2 && y == g2 - 1) ||
                               (x2 == g1 - 1 && y == g2 - 1);
        EXPECT_EQ(std::isnan(rout[static_cast<std::size_t>(y)]), predicted)
            << "mode=" << static_cast<int>(mode) << " x2=" << x2
            << " y=" << y;
      }
    }
  }
}

TEST_F(ProbProperties, TheoremOneBatchNaNAgreesWithScalarNullopt) {
  // theorem1_batch's NaN marker must coincide exactly with the scalar
  // reference's nullopt — the fallback decision both modes feed from.
  ApproxOptions o;
  o.simd = SimdMode::kSimd;
  ProbKernel kernel(prob_, o);
  const ApproxRegionProbability scalar(prob_);
  for (int trial = 0; trial < 120; ++trial) {
    const NetGridShape s{rng_.uniform_int(5, 30), rng_.uniform_int(5, 30),
                         false};
    std::vector<GridRect> regions;
    for (int i = 0; i < 8; ++i) regions.push_back(random_region(s.g1, s.g2));
    std::vector<double> out(regions.size());
    kernel.theorem1_batch(s.g1, s.g2, regions, out);
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const auto ref = scalar.theorem1(s.g1, s.g2, regions[i]);
      EXPECT_EQ(std::isnan(out[i]), !ref.has_value())
          << "g=(" << s.g1 << ',' << s.g2 << ") region " << regions[i];
      if (ref.has_value() && !std::isnan(out[i])) {
        EXPECT_NEAR(out[i], *ref, 1e-12) << "region " << regions[i];
      }
    }
  }
}

TEST_F(ProbProperties, BatchedSimdEvaluateBitIdenticalAcrossThreadCounts) {
  // End-to-end determinism pin for the batched path: the kTheorem1
  // strategy on the SIMD kernel must produce bit-identical flow grids at
  // every thread count (same contract as determinism_test, which covers
  // the default strategies).
  Rng rng(77);
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 150; ++i) {
    const Point a{static_cast<double>(rng.uniform_int(0, 900)),
                  static_cast<double>(rng.uniform_int(0, 700))};
    const Point b{static_cast<double>(rng.uniform_int(0, 900)),
                  static_cast<double>(rng.uniform_int(0, 700))};
    nets.push_back(TwoPinNet{a, b, i});
  }
  const Rect chip{0.0, 0.0, 930.0, 730.0};
  IrregularGridParams params;
  params.strategy = IrEvalStrategy::kTheorem1;
  params.approx.simd = SimdMode::kSimd;
  const IrregularGridModel model(params);

  ThreadPool::set_global_threads(1);
  const IrregularCongestionMap reference = model.evaluate(nets, chip);
  ASSERT_GT(reference.cell_count(), 0);

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool::set_global_threads(threads);
    const IrregularCongestionMap map = model.evaluate(nets, chip);
    ASSERT_EQ(map.nx(), reference.nx());
    ASSERT_EQ(map.ny(), reference.ny());
    for (int iy = 0; iy < map.ny(); ++iy) {
      for (int ix = 0; ix < map.nx(); ++ix) {
        EXPECT_EQ(map.flow(ix, iy), reference.flow(ix, iy))
            << "threads=" << threads << " cell=(" << ix << ',' << iy << ')';
      }
    }
    EXPECT_EQ(map.top_fraction_cost(0.10), reference.top_fraction_cost(0.10));
  }
  ThreadPool::set_global_threads(1);
}

TEST_F(ProbProperties, DiagonalSumsStayOneUnderMirror) {
  // Conservation must survive the type II mirror for every shape drawn.
  for (int trial = 0; trial < 60; ++trial) {
    const NetGridShape s = random_shape();
    for (int d = 0; d <= s.g1 + s.g2 - 2; d += 3) {
      double sum = 0.0;
      for (int x = 0; x < s.g1; ++x) {
        const int y = s.type2 ? (s.g2 - 1) - (d - x) : d - x;
        if (y >= 0 && y < s.g2) sum += prob_.cell_probability(s, x, y);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace ficon
