// SVG export sanity tests.
#include <sstream>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "congestion/fixed_grid.hpp"
#include "congestion/irregular_grid.hpp"
#include "core/floorplanner.hpp"
#include "exp/svg.hpp"
#include "route/two_pin.hpp"

namespace ficon {
namespace {

struct Scene {
  Netlist netlist = make_mcnc("hp");
  FloorplanSolution solution;
  std::vector<TwoPinNet> nets;

  Scene() {
    FloorplanOptions o;
    o.effort = 0.1;
    o.anneal.stop_temperature_ratio = 1e-2;
    solution = Floorplanner(netlist, o).run();
    nets = decompose_to_two_pin(netlist, solution.placement);
  }
};

long long count_of(const std::string& haystack, const std::string& needle) {
  long long n = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Svg, PlacementRendering) {
  const Scene scene;
  std::ostringstream os;
  write_svg(os, scene.netlist, scene.solution.placement);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One outline per module, plus background and chip outline.
  EXPECT_GE(count_of(svg, "<rect"),
            static_cast<long long>(scene.netlist.module_count()) + 2);
  // Module names present.
  EXPECT_NE(svg.find(scene.netlist.modules()[0].name), std::string::npos);
  // Terminals drawn as circles.
  EXPECT_EQ(count_of(svg, "<circle"),
            static_cast<long long>(scene.netlist.terminal_count()));
}

TEST(Svg, FixedGridOverlay) {
  const Scene scene;
  const FixedGridModel model(FixedGridParams{100, 100, 0.10});
  const CongestionMap map =
      model.evaluate(scene.nets, scene.solution.placement.chip);
  std::ostringstream os;
  write_svg(os, scene.netlist, scene.solution.placement, map);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("fill-opacity"), std::string::npos);
  // Heat cells drawn only where congestion is non-zero.
  long long nonzero = 0;
  for (const double v : map.values()) {
    if (v > 0.0) ++nonzero;
  }
  EXPECT_GE(count_of(svg, "<rect"), nonzero);
}

TEST(Svg, IrregularOverlayIncludesCutLines) {
  const Scene scene;
  IrregularGridParams params;
  params.grid_w = params.grid_h = 30.0;
  const IrregularGridModel model(params);
  const IrregularCongestionMap map =
      model.evaluate(scene.nets, scene.solution.placement.chip);
  std::ostringstream os;
  write_svg(os, scene.netlist, scene.solution.placement, map);
  const std::string svg = os.str();
  // One <line> per cut line in each axis (Figure 5 rendering).
  EXPECT_EQ(count_of(svg, "<line"),
            static_cast<long long>(map.lines().xs().size() +
                                   map.lines().ys().size()));
}

TEST(Svg, NoNanCoordinates) {
  const Scene scene;
  std::ostringstream os;
  write_svg(os, scene.netlist, scene.solution.placement);
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
  EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

}  // namespace
}  // namespace ficon
